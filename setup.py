"""Setup shim: lets ``pip install -e .`` work on toolchains without the
``wheel`` package (no-network environment) via the legacy code path."""

from setuptools import setup

setup()

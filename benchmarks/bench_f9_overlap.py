"""Benchmark F9: overlap-hypothesis ablation."""

from repro.experiments import exp_f9_overlap


def test_f9_overlap(record):
    result = record(
        exp_f9_overlap.run,
        keys=("mean_abs_err_serial_pct", "mean_abs_err_overlap_pct"),
    )
    # The serial hypothesis matches this substrate's transfer semantics.
    assert (
        result["mean_abs_err_serial_pct"]
        <= result["mean_abs_err_overlap_pct"] + 1.0
    )

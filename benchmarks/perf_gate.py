"""Gate a fresh benchmark artifact against a committed baseline.

Usage::

    python benchmarks/perf_gate.py BASELINE.json CURRENT.json \
        [--tolerance 0.5]

Both files are standardized BENCH artifacts (see
``benchmarks/artifact.py``); the artifact ``name`` selects the rule
set.  The gate checks **relative** metrics only — speedups, ratios and
fractions — never absolute wall times, so it is robust to slower CI
hardware.  A ratio metric passes when it is at least

    max(absolute_floor, tolerance * baseline_value)

with a generous default tolerance of 0.5 (a genuine fast-path
regression collapses these ratios toward 1x, far below half the
baseline; ordinary machine noise does not).  Boolean and count-style
guards (load shedding observed, server healthy, LC fraction nonzero)
are checked exactly.
"""

from __future__ import annotations

import argparse
import sys

from artifact import load_artifact

#: name -> {metric: (absolute_floor, use_relative)}.  Relative metrics
#: must also clear tolerance * baseline.
RATIO_RULES = {
    "perf_substrate": {
        "engine_speedup_min": 3.0,
        "memoization_speedup": 10.0,
        "sweep_geomean_speedup": 3.0,
        "sweep_total_speedup": 1.5,
    },
    "service": {
        "warm_over_cold": 10.0,
        # Warm passes re-serve a fixed payload set from the response
        # tier, so its hit ratio is workload-determined (~0.9); a
        # regression here means the response tier stopped admitting or
        # serving.
        "warm_response_hit_rate": 0.75,
    },
    # The fabric adds a router hop, so on a single-core box its warm
    # RPS trails one process; the honest gate is "did not regress
    # relative to the committed same-box baseline", not an absolute.
    "fabric_load": {
        "fabric_rps": 25.0,
        "fabric_over_single": 0.1,
    },
}

#: name -> {metric: predicate description} checked exactly.
GUARDS = {
    "perf_substrate": {
        "sweep_lc_fraction": lambda v: v > 0,
    },
    "service": {
        "shed": lambda v: v >= 1,
        "healthy_after": lambda v: v is True,
        # The near-match drill probes nearby grids against warmed
        # supports; a zero serve rate means the approximate tier is
        # dead.
        "approx_serve_rate": lambda v: v is not None and v > 0,
    },
    "fabric_load": {
        "errors": lambda v: v == 0,
        "lost_jobs": lambda v: v == 0,
        "healthy_after": lambda v: v is True,
        # Cheap p95 with the expensive queue saturated vs idle.  Very
        # lenient (timing-noise-proof): isolation has failed outright
        # when cheap latency blows up by more than ~20x.
        "cheap_isolation_ratio": lambda v: v is not None and v > 0.05,
        # bench_overload: armed predict goodput over plain goodput
        # under the same tune storm.  ``None`` means the plain server
        # starved completely (strictly better); otherwise the armed
        # server must at least match it — in practice the margin is
        # orders of magnitude, so >= 1 is timing-noise-proof.
        "overload_goodput_ratio": lambda v: v is None or v >= 1.0,
        # The ratio only means something if the ladder actually walked
        # to the analytic stage — otherwise the resilience stack was
        # never exercised.
        "overload_brownout_engaged": lambda v: v is True,
        "overload_errors": lambda v: v == 0,
        "overload_healthy_after": lambda v: v is True,
    },
}


def gate(
    baseline: dict,
    current: dict,
    tolerance: float,
    missing: str = "warn",
) -> tuple[list[str], list[str]]:
    """Check ``current`` against ``baseline``.

    Returns ``(failures, warnings)``.  A rule whose baseline value is
    absent can no longer be skipped silently: with ``missing="warn"``
    (the default) the metric is still checked against its absolute
    floor and the hole is reported as a warning; with
    ``missing="fail"`` it is a failure — use that once a baseline has
    been committed with the full metric set.
    """
    if missing not in ("warn", "fail"):
        raise ValueError(f"missing must be 'warn' or 'fail', got {missing!r}")
    failures: list[str] = []
    warnings: list[str] = []
    name = current["name"]
    if baseline["name"] != name:
        return [
            f"artifact mismatch: baseline {baseline['name']!r}"
            f" vs current {name!r}"
        ], warnings
    if name not in RATIO_RULES and name not in GUARDS:
        return [f"no gate rules for benchmark {name!r}"], warnings
    base_quick = baseline["config"].get("quick")
    cur_quick = current["config"].get("quick")
    if base_quick != cur_quick:
        # Quick and full runs measure different case sets; their
        # ratios are not comparable.
        return [
            f"config mismatch: baseline quick={base_quick}"
            f" vs current quick={cur_quick}"
        ], warnings
    for metric, floor in RATIO_RULES.get(name, {}).items():
        base = baseline["metrics"].get(metric)
        cur = current["metrics"].get(metric)
        if cur is None:
            failures.append(f"{metric}: missing from current artifact")
            continue
        if base is None:
            message = (
                f"{metric}: absent from baseline"
                f" (rev {baseline.get('git_rev', '?')}) —"
                f" checked against absolute floor {floor} only;"
                f" re-commit the baseline to restore the relative gate"
            )
            (failures if missing == "fail" else warnings).append(message)
            if missing == "fail":
                continue
        bound = floor if base is None else max(floor, tolerance * base)
        if cur < bound:
            failures.append(
                f"{metric}: {cur} < {round(bound, 3)}"
                f" (floor {floor}, baseline {base},"
                f" tolerance {tolerance})"
            )
    for metric, predicate in GUARDS.get(name, {}).items():
        if metric not in current["metrics"]:
            message = f"{metric}: guard target absent from current artifact"
            (failures if missing == "fail" else warnings).append(message)
            continue
        cur = current["metrics"].get(metric)
        try:
            ok = predicate(cur)
        except TypeError:
            # A predicate like ``v >= 1`` crashes on None/strings; an
            # uncomparable value is a failed guard, not a crashed gate.
            ok = False
        if not ok:
            failures.append(f"{metric}: guard failed (value {cur!r})")
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json artifact")
    parser.add_argument("current", help="freshly produced artifact")
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="fraction of the baseline ratio that must be retained",
    )
    parser.add_argument(
        "--missing", choices=("warn", "fail"), default="warn",
        help="what an absent baseline metric / guard target does: "
        "'warn' (default) lists the hole and falls back to the "
        "absolute floor; 'fail' fails the gate",
    )
    args = parser.parse_args(argv)
    baseline = load_artifact(args.baseline)
    current = load_artifact(args.current)
    failures, warnings = gate(
        baseline, current, args.tolerance, missing=args.missing
    )
    name = current["name"]
    for warning in warnings:
        print(f"PERF GATE WARN [{name}]: {warning}", file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"PERF GATE FAIL [{name}]: {failure}", file=sys.stderr)
        return 1
    checked = sorted(RATIO_RULES.get(name, {})) + sorted(GUARDS.get(name, {}))
    summary = f"perf gate ok [{name}]: {', '.join(checked)}"
    if warnings:
        summary += f" ({len(warnings)} warning(s) above)"
    print(
        summary
        + f" (baseline rev {baseline['git_rev']},"
        f" current rev {current['git_rev']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

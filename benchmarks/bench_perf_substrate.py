"""Benchmark the measurement substrate itself.

Unlike the ``bench_f*``/``bench_t*`` files (which time the paper's
*experiments*), this one times the simulator that powers them:

* scalar vs. vectorized cache-replay engine on a blocked sweep
  (``measure_sweep`` with ``engine="scalar"`` / ``"vector"``),
* cold vs. memoized ``simulate_kernel`` (traffic-cache hit path), and
* serial replay-only variant sweeps vs. the layer-condition fast path
  (``predictor="auto"``: LC-exact serves + order-equivalence collapse
  + shared sweep prefixes), asserting the measurements stay
  bit-identical across predictors.

Run standalone::

    python benchmarks/bench_perf_substrate.py [--quick] [--json PATH] \
        [--artifact PATH] [--timestamp ISO]

It prints a JSON record with the speedups; the vectorized engine is
expected to be >= 3x on the blocked 3d7pt replay, the memoized path
>= 10x over a cold simulate_kernel, and the predictor fast path >= 3x
on the exhaustive sweeps (geomean).  ``--artifact`` additionally
writes a standardized ``BENCH_perf_substrate.json`` record (see
``benchmarks/artifact.py``) that the perf gate diffs against the
committed baseline.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.cachesim import TrafficCache, measure_sweep, prefix_stats
from repro.cachesim.dispatch import predictor_counters
from repro.codegen.plan import KernelPlan, candidate_plans
from repro.grid.grid import GridSet
from repro.machine.presets import cascade_lake_sp
from repro.perf.simulate import simulate_kernel
from repro.stencil.library import get_stencil

#: (stencil, grid shape, block) cases for the engine comparison.
CASES_FULL = [
    ("3d7pt", (40, 40, 96), (20, 20, 96)),
    ("3d25pt", (32, 32, 64), (16, 16, 64)),
]
CASES_QUICK = [
    ("3d7pt", (32, 32, 64), (16, 16, 64)),
]

#: (stencil, grid shape) cases for the exhaustive variant sweeps.
SWEEP_CASES_FULL = [
    ("heat2d", (2048, 256)),
    ("2d9pt_box", (2048, 256)),
    ("3d7pt", (48, 48, 128)),
]
SWEEP_CASES_QUICK = [
    ("heat2d", (1024, 256)),
    ("3d7pt", (32, 32, 64)),
]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_engines(quick: bool) -> list[dict]:
    """Time scalar vs. vector replay on identical sweeps."""
    machine = cascade_lake_sp()
    repeats = 1 if quick else 2
    rows = []
    for name, shape, block in (CASES_QUICK if quick else CASES_FULL):
        spec = get_stencil(name)
        grids = GridSet(spec, shape)
        plan = KernelPlan(block=block)

        def run(engine):
            # predictor="simulate" keeps LC analysis out of the engine
            # timing: this section compares replay engines only.
            return measure_sweep(
                spec, grids, plan, machine,
                engine=engine, traffic_cache=None, predictor="simulate",
            )

        r_scalar = run("scalar")
        r_vector = run("vector")
        if r_scalar.as_dict() != r_vector.as_dict():
            raise AssertionError(
                f"{name}: engine reports differ:"
                f" {r_scalar.as_dict()} vs {r_vector.as_dict()}"
            )
        t_scalar = _best_of(lambda: run("scalar"), repeats)
        t_vector = _best_of(lambda: run("vector"), repeats)
        rows.append(
            {
                "case": name,
                "grid": list(shape),
                "block": list(block),
                "scalar_s": round(t_scalar, 4),
                "vector_s": round(t_vector, 4),
                "speedup": round(t_scalar / t_vector, 2),
            }
        )
    return rows


def bench_memoization(quick: bool) -> dict:
    """Time cold vs. memoized simulate_kernel on one configuration."""
    machine = cascade_lake_sp()
    name, shape, block = ("3d7pt", (32, 32, 64), (16, 16, 64))
    spec = get_stencil(name)
    grids = GridSet(spec, shape)
    plan = KernelPlan(block=block)
    cache = TrafficCache()

    t0 = time.perf_counter()
    cold = simulate_kernel(
        spec, grids, plan, machine, seed=0, traffic_cache=cache
    )
    t_cold = time.perf_counter() - t0

    t_warm = _best_of(
        lambda: simulate_kernel(
            spec, grids, plan, machine, seed=0, traffic_cache=cache
        ),
        3,
    )
    warm = simulate_kernel(
        spec, grids, plan, machine, seed=0, traffic_cache=cache
    )
    if warm.cycles_per_lup != cold.cycles_per_lup:
        raise AssertionError("memoized measurement differs from cold run")
    return {
        "case": name,
        "grid": list(shape),
        "cold_s": round(t_cold, 4),
        "memoized_s": round(t_warm, 6),
        "speedup": round(t_cold / t_warm, 1),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
    }


def bench_sweeps(quick: bool) -> dict:
    """Serial replay-only exhaustive sweeps vs. the predictor fast path.

    The serial baseline evaluates every candidate plan with
    ``predictor="simulate"`` and no traffic memo — the pre-fast-path
    cost of an exhaustive tune.  The fast path uses ``predictor="auto"``
    with a fresh :class:`TrafficCache`, which layers the LC-exact serve,
    the order-equivalence collapse and the shared sweep prefix.  Every
    per-variant measurement must be bit-identical between the two runs
    (the LC fast path is served only when provably exact, and noise is
    seeded per variant), so winners agree by construction — asserted
    anyway.
    """
    machine = cascade_lake_sp()
    cases = SWEEP_CASES_QUICK if quick else SWEEP_CASES_FULL
    rows = []
    for name, shape in cases:
        spec = get_stencil(name)
        grids = GridSet(spec, shape)
        plans = list(candidate_plans(spec, shape, machine))

        t0 = time.perf_counter()
        serial = [
            simulate_kernel(
                spec, grids, plan, machine, seed=i,
                traffic_cache=None, predictor="simulate",
            )
            for i, plan in enumerate(plans)
        ]
        serial_s = time.perf_counter() - t0

        cache = TrafficCache()
        counters0 = predictor_counters().snapshot()
        prefixes0 = prefix_stats()
        t0 = time.perf_counter()
        fast = [
            simulate_kernel(
                spec, grids, plan, machine, seed=i,
                traffic_cache=cache, predictor="auto",
            )
            for i, plan in enumerate(plans)
        ]
        fast_s = time.perf_counter() - t0
        counters1 = predictor_counters().snapshot()
        prefixes1 = prefix_stats()

        for plan, a, b in zip(plans, serial, fast):
            if a.mlups != b.mlups or a.cycles_per_lup != b.cycles_per_lup:
                raise AssertionError(
                    f"{name} {plan}: fast-path measurement differs:"
                    f" {a.mlups} vs {b.mlups} MLUPS"
                )
        winner = max(range(len(plans)), key=lambda i: serial[i].mlups)
        rows.append(
            {
                "case": name,
                "grid": list(shape),
                "variants": len(plans),
                "serial_s": round(serial_s, 4),
                "fast_s": round(fast_s, 4),
                "speedup": round(serial_s / fast_s, 2),
                "winner_block": list(plans[winner].block),
                "winner_mlups": round(serial[winner].mlups, 3),
                "lc_served": (
                    counters1["lc_served"] - counters0["lc_served"]
                ),
                "sim_served": (
                    counters1["sim_served"] - counters0["sim_served"]
                ),
                "memo_hits": cache.hits,
                "prefix_builds": prefixes1["builds"] - prefixes0["builds"],
                "prefix_reuses": prefixes1["reuses"] - prefixes0["reuses"],
            }
        )
    speedups = [row["speedup"] for row in rows]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    total_serial = sum(row["serial_s"] for row in rows)
    total_fast = sum(row["fast_s"] for row in rows)
    return {
        "rows": rows,
        "geomean_speedup": round(geomean, 2),
        "total_speedup": round(total_serial / total_fast, 2),
        "lc_fraction": round(
            sum(r["lc_served"] for r in rows)
            / max(1, sum(r["lc_served"] + r["sim_served"] for r in rows)),
            3,
        ),
    }


def run(quick: bool = True) -> dict:
    """Produce the substrate-performance record."""
    engines = bench_engines(quick)
    memo = bench_memoization(quick)
    sweeps = bench_sweeps(quick)
    return {
        "quick": quick,
        "engine_speedups": engines,
        "memoization": memo,
        "sweeps": sweeps,
        "rows": engines + [memo] + sweeps["rows"],
    }


def to_artifact(result: dict, timestamp: str) -> dict:
    """Fold one :func:`run` record into the standard artifact schema."""
    from artifact import make_artifact

    return make_artifact(
        name="perf_substrate",
        config={"quick": result["quick"]},
        metrics={
            "engine_speedup_min": min(
                r["speedup"] for r in result["engine_speedups"]
            ),
            "memoization_speedup": result["memoization"]["speedup"],
            "sweep_geomean_speedup": result["sweeps"]["geomean_speedup"],
            "sweep_total_speedup": result["sweeps"]["total_speedup"],
            "sweep_lc_fraction": result["sweeps"]["lc_fraction"],
            "detail": {
                "engine_speedups": result["engine_speedups"],
                "memoization": result["memoization"],
                "sweeps": result["sweeps"],
            },
        },
        timestamp=timestamp,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument(
        "--artifact", default=None,
        help="write a standardized BENCH artifact record here",
    )
    parser.add_argument(
        "--timestamp", default=None,
        help="ISO timestamp recorded in the artifact (default: now)",
    )
    parser.add_argument(
        "--artifact-dir", default=None,
        help="accumulate a timestamped BENCH artifact into this "
        "directory (trajectory input for benchmarks/trend.py)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    text = json.dumps(result, indent=2)
    print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    if args.artifact or args.artifact_dir:
        from artifact import utc_now, write_artifact, write_artifact_dir

        stamp = args.timestamp or utc_now()
        record = to_artifact(result, stamp)
        if args.artifact:
            write_artifact(args.artifact, record)
        if args.artifact_dir:
            write_artifact_dir(args.artifact_dir, record)
    worst = min(r["speedup"] for r in result["engine_speedups"])
    print(
        f"# vector engine >= {worst:.2f}x, "
        f"memoized >= {result['memoization']['speedup']:.0f}x, "
        f"sweep fast path {result['sweeps']['geomean_speedup']:.2f}x "
        f"geomean (lc fraction "
        f"{result['sweeps']['lc_fraction']:.2f})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

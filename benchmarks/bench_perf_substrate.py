"""Benchmark the measurement substrate itself.

Unlike the ``bench_f*``/``bench_t*`` files (which time the paper's
*experiments*), this one times the simulator that powers them:

* scalar vs. vectorized cache-replay engine on a blocked sweep
  (``measure_sweep`` with ``engine="scalar"`` / ``"vector"``), and
* cold vs. memoized ``simulate_kernel`` (traffic-cache hit path).

Run standalone::

    python benchmarks/bench_perf_substrate.py [--quick] [--json PATH]

It prints a JSON record with the speedups; the vectorized engine is
expected to be >= 3x on the blocked 3d7pt replay and the memoized path
>= 10x over a cold simulate_kernel.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.cachesim import TrafficCache, measure_sweep
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.presets import cascade_lake_sp
from repro.perf.simulate import simulate_kernel
from repro.stencil.library import get_stencil

#: (stencil, grid shape, block) cases for the engine comparison.
CASES_FULL = [
    ("3d7pt", (40, 40, 96), (20, 20, 96)),
    ("3d25pt", (32, 32, 64), (16, 16, 64)),
]
CASES_QUICK = [
    ("3d7pt", (32, 32, 64), (16, 16, 64)),
]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_engines(quick: bool) -> list[dict]:
    """Time scalar vs. vector replay on identical sweeps."""
    machine = cascade_lake_sp()
    repeats = 1 if quick else 2
    rows = []
    for name, shape, block in (CASES_QUICK if quick else CASES_FULL):
        spec = get_stencil(name)
        grids = GridSet(spec, shape)
        plan = KernelPlan(block=block)

        def run(engine):
            return measure_sweep(
                spec, grids, plan, machine,
                engine=engine, traffic_cache=None,
            )

        r_scalar = run("scalar")
        r_vector = run("vector")
        if r_scalar.as_dict() != r_vector.as_dict():
            raise AssertionError(
                f"{name}: engine reports differ:"
                f" {r_scalar.as_dict()} vs {r_vector.as_dict()}"
            )
        t_scalar = _best_of(lambda: run("scalar"), repeats)
        t_vector = _best_of(lambda: run("vector"), repeats)
        rows.append(
            {
                "case": name,
                "grid": list(shape),
                "block": list(block),
                "scalar_s": round(t_scalar, 4),
                "vector_s": round(t_vector, 4),
                "speedup": round(t_scalar / t_vector, 2),
            }
        )
    return rows


def bench_memoization(quick: bool) -> dict:
    """Time cold vs. memoized simulate_kernel on one configuration."""
    machine = cascade_lake_sp()
    name, shape, block = ("3d7pt", (32, 32, 64), (16, 16, 64))
    spec = get_stencil(name)
    grids = GridSet(spec, shape)
    plan = KernelPlan(block=block)
    cache = TrafficCache()

    t0 = time.perf_counter()
    cold = simulate_kernel(
        spec, grids, plan, machine, seed=0, traffic_cache=cache
    )
    t_cold = time.perf_counter() - t0

    t_warm = _best_of(
        lambda: simulate_kernel(
            spec, grids, plan, machine, seed=0, traffic_cache=cache
        ),
        3,
    )
    warm = simulate_kernel(
        spec, grids, plan, machine, seed=0, traffic_cache=cache
    )
    if warm.cycles_per_lup != cold.cycles_per_lup:
        raise AssertionError("memoized measurement differs from cold run")
    return {
        "case": name,
        "grid": list(shape),
        "cold_s": round(t_cold, 4),
        "memoized_s": round(t_warm, 6),
        "speedup": round(t_cold / t_warm, 1),
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
    }


def run(quick: bool = True) -> dict:
    """Produce the substrate-performance record."""
    engines = bench_engines(quick)
    memo = bench_memoization(quick)
    return {
        "quick": quick,
        "engine_speedups": engines,
        "memoization": memo,
        "rows": engines + [memo],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default=None, help="also write JSON here")
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    text = json.dumps(result, indent=2)
    print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    worst = min(r["speedup"] for r in result["engine_speedups"])
    print(
        f"# vector engine >= {worst:.2f}x, "
        f"memoized >= {result['memoization']['speedup']:.0f}x",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

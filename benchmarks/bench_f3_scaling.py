"""Benchmark F3: multicore scaling and saturation."""

from repro.experiments import exp_f3_scaling


def test_f3_scaling(record):
    result = record(exp_f3_scaling.run, keys=())
    assert result["rows"]

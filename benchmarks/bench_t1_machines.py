"""Benchmark T1: regenerate the machine-testbed table."""

from repro.experiments import exp_t1_machines


def test_t1_machines(record):
    result = record(exp_t1_machines.run, keys=("machines",))
    assert len(result["rows"]) >= 8

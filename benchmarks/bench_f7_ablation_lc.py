"""Benchmark F7: layer-condition ablation."""

from repro.experiments import exp_f7_ablation_lc


def test_f7_ablation_lc(record):
    result = record(
        exp_f7_ablation_lc.run,
        keys=("mean_abs_err_full_pct", "mean_abs_err_nolc_pct"),
    )
    assert result["mean_abs_err_nolc_pct"] > result["mean_abs_err_full_pct"]

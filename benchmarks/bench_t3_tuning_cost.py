"""Benchmark T3: autotuning cost ledger."""

from repro.experiments import exp_t3_tuning_cost


def test_t3_tuning_cost(record):
    result = record(exp_t3_tuning_cost.run, keys=("quality_vs_exhaustive",))
    assert result["rows"]

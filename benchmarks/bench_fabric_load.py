"""Load-generate against the sharded fabric vs one process.

A zipfian-popularity, mixed-endpoint workload (predict / tune / rank)
is replayed against (a) one single-process service and (b) a 3-shard
fabric behind the consistent-hash router, in three phases:

* **warmup** — every distinct payload once (fills the response caches
  and runs the tune jobs fresh through the job ledger),
* **sustained** — N zipf-sampled requests from concurrent clients; the
  measured RPS and client p50/p95/p99 are the headline numbers,
* **burst** — a spike of distinct cold payloads with ``retries=0``;
  shed (HTTP 429) and degraded responses are *reported as rates*, not
  asserted, because whether a burst sheds depends on queue headroom.

A fourth phase (``bench_cost_isolation``) turns cost routing on against
a single-process server: greedy tune sweeps saturate the dedicated
expensive queue while cheap analytic predicts are latency-probed — the
cheap p95 must not collapse (``cheap_isolation_ratio``), and the cheap
lane must never shed.

A fifth phase (``bench_overload``) replays the same tune storm against
a plain one-worker server and one with the overload stack armed (SLO
burn alerts -> brownout ladder + adaptive limits): the plain server's
predicts starve behind the sweeps while the armed one pages, browns
out, and keeps answering predicts from the analytic model.  The
headline is ``overload_goodput_ratio`` (armed / plain predict goodput,
>= 1 required) plus the guard that the ladder actually engaged.

After the fabric run the job ledger must be fully drained (no pending
tune job without a published result) and every shard still healthy —
those are the gate's exact guards.  The RPS comparisons are gated
**relative to a committed baseline from the same box**
(``benchmarks/baselines/BENCH_fabric_load.json``): on a single-core
host the fabric cannot win by parallelism, so the honest check is that
neither topology regressed, not a cross-machine absolute.

Run standalone::

    python benchmarks/bench_fabric_load.py [--quick] [--json PATH] \
        [--artifact PATH] [--timestamp ISO]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.autotune.jobs import JobLedger
from repro.fabric import BackgroundFabric, FabricConfig
from repro.service.background import BackgroundServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.overload import BROWNOUT_STAGES

SCALE = 1 / 32  # shrink caches so the exact simulation stays fast
ZIPF_EXPONENT = 1.1
SEED = 20260809


def build_workload(quick: bool) -> list[dict]:
    """Distinct request payloads, most-popular first (zipf rank 1..n)."""
    stencils = ("3d7pt", "heat3d") if quick else ("3d7pt", "heat3d",
                                                  "3d27pt", "3d25pt")
    grids = ([16, 16, 32], [16, 32, 32]) if quick else (
        [16, 16, 32], [16, 32, 32], [24, 24, 32], [32, 32, 32])
    work: list[dict] = []
    for s in stencils:
        for g in grids:
            work.append({"path": "/predict",
                         "payload": {"stencil": s, "grid": list(g),
                                     "cache_scale": SCALE}})
    for method in ("radau_iia", "lobatto_iiia"):
        work.append({"path": "/rank",
                     "payload": {"method": method, "grid": [16, 16, 32],
                                 "cache_scale": SCALE, "validate": False}})
    for s in stencils[:2]:
        work.append({"path": "/tune",
                     "payload": {"stencil": s, "grid": [16, 16, 32],
                                 "tuner": "ecm", "cache_scale": SCALE}})
    return work


def zipf_schedule(n_requests: int, n_items: int, seed: int) -> list[int]:
    """Zipf-popularity item indices (rank r drawn ∝ 1/r^s), seeded."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT for rank in range(n_items)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc / total)
    schedule = []
    for _ in range(n_requests):
        u = rng.random()
        idx = next(i for i, c in enumerate(cumulative) if u <= c)
        schedule.append(idx)
    return schedule


def _percentiles_ms(samples: list[float]) -> dict:
    ordered = sorted(samples)

    def pct(q: float) -> float:
        idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return round(ordered[idx] * 1e3, 3)

    return {"p50_ms": pct(0.50), "p95_ms": pct(0.95), "p99_ms": pct(0.99)}


def _fire(client: ServiceClient, item: dict) -> tuple[float, str]:
    """One request; returns (latency_s, outcome-tag)."""
    t0 = time.perf_counter()
    try:
        response = client.request("POST", item["path"], item["payload"])
    except ServiceError as err:
        return time.perf_counter() - t0, f"http_{err.status}"
    except Exception:
        return time.perf_counter() - t0, "transport_error"
    tag = response.get("served", "ok")
    if response.get("degraded"):
        tag = "degraded"
    return time.perf_counter() - t0, tag


def drive(host: str, port: int, quick: bool) -> dict:
    """The three load phases against one target address."""
    workload = build_workload(quick)
    n_sustained = 240 if quick else 1200
    concurrency = 8
    client = ServiceClient(host=host, port=port, retries=2)

    # -- warmup: every payload once (tunes run fresh exactly here) ----
    t0 = time.perf_counter()
    for item in workload:
        client.request("POST", item["path"], item["payload"])
    warmup_s = time.perf_counter() - t0

    # -- sustained: zipf-sampled mixed traffic, concurrent clients ----
    schedule = [workload[i] for i in
                zipf_schedule(n_sustained, len(workload), SEED)]
    outcomes: dict[str, int] = {}
    latencies: list[float] = []
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        for latency, tag in pool.map(lambda it: _fire(client, it), schedule):
            latencies.append(latency)
            outcomes[tag] = outcomes.get(tag, 0) + 1
    sustained_s = time.perf_counter() - t0

    # -- burst: a spike of distinct cold predicts, no retries ---------
    burst_n = 24 if quick else 48
    burst_items = [
        {"path": "/predict",
         "payload": {"stencil": "3d7pt",
                     "grid": [8 + 2 * (i % 12), 16, 32 + 16 * (i // 12)],
                     "cache_scale": SCALE}}
        for i in range(burst_n)
    ]
    burst_client = ServiceClient(host=host, port=port, retries=0)
    burst_outcomes: dict[str, int] = {}
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=burst_n) as pool:
        for _, tag in pool.map(
            lambda it: _fire(burst_client, it), burst_items
        ):
            burst_outcomes[tag] = burst_outcomes.get(tag, 0) + 1
    burst_s = time.perf_counter() - t0

    shed = burst_outcomes.get("http_429", 0)
    degraded = (outcomes.get("degraded", 0)
                + burst_outcomes.get("degraded", 0))
    errors = sum(
        count for tag, count in {**outcomes, **burst_outcomes}.items()
        if tag in ("http_500", "http_504", "transport_error")
    )
    # Per-tier hit ratios from the unified store ledger.  The fabric
    # router nests its fan-in under "aggregate"; a single process
    # reports the same tier shape at the top level.
    body = client.metrics()
    tiers = body.get("aggregate", body).get("tiers", {})
    tier_hit_rates = {
        name: ledger.get("hit_rate") for name, ledger in tiers.items()
    }
    served_approx = (outcomes.get("approximate", 0)
                     + burst_outcomes.get("approximate", 0))
    return {
        "distinct_payloads": len(workload),
        "warmup_s": round(warmup_s, 4),
        "sustained_requests": n_sustained,
        "sustained_s": round(sustained_s, 4),
        "sustained_rps": round(n_sustained / sustained_s, 1),
        "latency": _percentiles_ms(latencies),
        "outcomes": outcomes,
        "burst_requests": burst_n,
        "burst_s": round(burst_s, 4),
        "burst_outcomes": burst_outcomes,
        "shed": shed,
        "shed_rate": round(shed / burst_n, 4),
        "degraded": degraded,
        "degraded_rate": round(
            degraded / (n_sustained + burst_n), 4
        ),
        "errors": errors,
        "tier_hit_rates": tier_hit_rates,
        "approximate_served": served_approx,
        "approx_serve_rate": round(
            served_approx / (n_sustained + burst_n), 4
        ),
    }


def bench_cost_isolation(quick: bool) -> dict:
    """Cheap-lane latency while the expensive queue is saturated.

    With cost routing on and a dedicated one-worker expensive pool,
    multi-second greedy tune sweeps are parked on their own queue; the
    cheap lane (analytic predicts) must keep serving at its idle
    latency.  Reported as ``cheap_isolation_ratio`` = idle p95 /
    saturated p95 — near 1.0 when isolation holds, collapsing toward 0
    if expensive work blocks the cheap lane.
    """
    n_cheap = 24 if quick else 64
    cfg = ServiceConfig(
        port=0,
        executor="thread",
        workers=4,
        queue_limit=256,
        cost_routing=True,
        cost_threshold_s=1e-3,
        expensive_workers=1,
        expensive_queue_limit=8,
    )
    tune_items = [
        {"stencil": s, "grid": [24, 24, 32], "machine": m,
         "tuner": "greedy", "cache_scale": SCALE}
        for s in ("3d7pt", "heat3d") for m in ("clx", "rome")
    ]

    def cheap_p95(client: ServiceClient, z: int) -> float:
        # A per-phase depth axis keeps every payload distinct from the
        # other phase's, so both phases do fresh (uncached) work.
        samples = []
        for i in range(n_cheap):
            payload = {"stencil": "3d7pt",
                       "grid": [8 + 2 * (i % 12), 16 + 2 * (i // 12), z],
                       "cache_scale": SCALE, "exact": True}
            t0 = time.perf_counter()
            client.request("POST", "/predict", payload)
            samples.append(time.perf_counter() - t0)
        return _percentiles_ms(samples)["p95_ms"]

    with BackgroundServer(cfg) as bg:
        client = ServiceClient(port=bg.port)
        idle_p95_ms = cheap_p95(client, 32)
        with ThreadPoolExecutor(max_workers=len(tune_items)) as pool:
            futures = [
                pool.submit(client.request, "POST", "/tune", item)
                for item in tune_items
            ]
            # Wait until the expensive queue actually has work parked.
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if (bg.service.dispatcher.queue_snapshot()["expensive"]
                        ["pending"] >= 2):
                    break
                time.sleep(0.005)
            saturated_p95_ms = cheap_p95(client, 48)
            expensive_pending = (
                bg.service.dispatcher.queue_snapshot()["expensive"]["pending"]
            )
            for f in futures:
                f.result(timeout=300)
        queues = bg.metrics_snapshot()["queues"]
    return {
        "cheap_requests": n_cheap,
        "expensive_jobs": len(tune_items),
        "expensive_pending_during_probe": expensive_pending,
        "cheap_p95_idle_ms": idle_p95_ms,
        "cheap_p95_saturated_ms": saturated_p95_ms,
        "cheap_isolation_ratio": round(
            idle_p95_ms / saturated_p95_ms, 4
        ) if saturated_p95_ms else None,
        "cheap_shed": queues["cheap"]["shed"],
        "expensive_shed": queues["expensive"]["shed"],
    }


#: SLO for the overload phase: tight windows and a low page threshold
#: so a saturated one-worker pool pages within a second or two, letting
#: the brownout ladder engage inside a benchmark-sized run.
OVERLOAD_SLO = {
    "windows": {"page": [0.5, 1.0], "warn": [1.5, 3.0]},
    "burn": {"page": 1.0, "warn": 0.75},
    "objectives": [
        {"name": "availability", "type": "availability", "target": 0.999},
        {"name": "latency-p95", "type": "latency", "quantile": 0.95,
         "threshold_ms": 50.0},
    ],
}


def _overload_target(resilient: bool) -> ServiceConfig:
    base = dict(
        port=0,
        executor="thread",
        workers=1,
        queue_limit=64,
        request_timeout_s=15.0,
        drain_timeout_s=10.0,
    )
    if resilient:
        base.update(
            slo_enabled=True,
            slo_config=json.dumps(OVERLOAD_SLO),
            adaptive_limits=True,
            adaptive_target_ms=1000.0,
            brownout=True,
            brownout_escalate_s=2.0,
            brownout_recover_s=0.7,
        )
    return ServiceConfig(**base)


def _overload_drive(resilient: bool, quick: bool) -> dict:
    """Predict goodput while greedy tunes saturate a one-worker pool.

    The same storm hits a plain server and one with the overload stack
    armed (SLO burn -> brownout ladder + adaptive limits): the plain
    server's predicts starve behind multi-second tune sweeps, the
    resilient one pages, browns out, and keeps serving predicts from
    the analytic model.  Returns goodput/latency plus what the ladder
    did; ``run()`` reports the ratio.
    """
    window_s = 1.5 if quick else 2.5
    with BackgroundServer(_overload_target(resilient)) as bg:
        stop_load = threading.Event()
        tune_outcomes: dict[str, int] = {}
        tune_lock = threading.Lock()

        def tune_storm(thread_id: int) -> None:
            client = ServiceClient(port=bg.port, retries=0, timeout_s=20.0)
            k = 0
            while not stop_load.is_set():
                k += 1
                # Cycle a 128-combo cross product at near-constant grid
                # volume: distinct payloads (a cached tune costs nothing
                # and would defuse the storm) whose ~100ms sweeps land
                # often enough inside the SLO's page window to keep the
                # burn alert alive.
                idx = (thread_id * 43 + k) % 128
                payload = {
                    "stencil": "3d7pt",
                    "grid": [
                        14 + 2 * (idx % 4),
                        14 + 2 * ((idx // 4) % 4),
                        14 + 2 * ((idx // 16) % 4),
                    ],
                    "machine": "clx" if idx < 64 else "rome",
                    "tuner": "greedy",
                    "cache_scale": SCALE,
                }
                try:
                    client.request("POST", "/tune", payload)
                    tag = "ok"
                except ServiceError as err:
                    tag = f"http_{err.status}"
                    time.sleep(0.05)  # don't hot-spin on sheds
                except Exception:
                    tag = "transport_error"
                with tune_lock:
                    tune_outcomes[tag] = tune_outcomes.get(tag, 0) + 1

        storm = [
            threading.Thread(target=tune_storm, args=(i,)) for i in range(3)
        ]
        for t in storm:
            t.start()

        # Wait for the stack to reach its steady overload state: the
        # plain server just needs queued work; the resilient one must
        # have walked the ladder to the analytic stage.
        engaged = False
        deadline = time.time() + 20.0
        while time.time() < deadline:
            if resilient:
                health = bg.client.healthz()
                if health.get("brownout", {}).get("stage", 0) >= 2:
                    engaged = True
                    break
            else:
                if bg.service.dispatcher.pending >= 2:
                    engaged = True
                    break
            time.sleep(0.05)

        # -- the measured window: predict goodput under the storm -----
        ok_latencies: list[float] = []
        probe_outcomes: dict[str, int] = {}
        probe_lock = threading.Lock()
        stop_at = time.perf_counter() + window_s

        def probe(thread_id: int) -> None:
            client = ServiceClient(port=bg.port, retries=0, timeout_s=3.0)
            k = 0
            while time.perf_counter() < stop_at:
                k += 1
                payload = {
                    "stencil": "heat3d",
                    "grid": [16, 16 + 2 * thread_id, 64 + k],
                    "cache_scale": SCALE,
                }
                t0 = time.perf_counter()
                try:
                    client.request("POST", "/predict", payload)
                except ServiceError as err:
                    tag = f"http_{err.status}"
                except Exception:
                    tag = "starved"  # socket timeout: the pool is busy
                else:
                    tag = "ok"
                    with probe_lock:
                        ok_latencies.append(time.perf_counter() - t0)
                with probe_lock:
                    probe_outcomes[tag] = probe_outcomes.get(tag, 0) + 1

        t0 = time.perf_counter()
        probes = [
            threading.Thread(target=probe, args=(i,)) for i in range(2)
        ]
        for t in probes:
            t.start()
        for t in probes:
            t.join(timeout=window_s + 30.0)
        measured_s = time.perf_counter() - t0

        stop_load.set()
        for t in storm:
            t.join(timeout=60.0)
        healthy = bg.client.healthz()["http_status"] == 200
        max_stage = 0
        if resilient:
            snapshot = bg.client.metrics().get("overload", {})
            max_stage = snapshot.get("brownout", {}).get("stage", 0)
            for entry in snapshot.get("brownout", {}).get(
                "transitions", []
            ):
                if entry["direction"] == "escalate":
                    max_stage = max(
                        max_stage,
                        BROWNOUT_STAGES.index(entry["to"]),
                    )
    errors = sum(
        count for tag, count in {**tune_outcomes, **probe_outcomes}.items()
        if tag in ("http_500", "transport_error")
    )
    goodput = probe_outcomes.get("ok", 0)
    return {
        "resilient": resilient,
        "window_s": round(measured_s, 4),
        "goodput": goodput,
        "goodput_rps": round(goodput / measured_s, 2),
        "predict_latency": (
            _percentiles_ms(ok_latencies) if ok_latencies else None
        ),
        "probe_outcomes": probe_outcomes,
        "tune_outcomes": tune_outcomes,
        "engaged": engaged,
        "max_brownout_stage": max_stage,
        "errors": errors,
        "healthy_after": healthy,
    }


def bench_overload(quick: bool) -> dict:
    """Goodput under sustained overload, with/without the resilience
    stack; the headline is ``goodput_ratio`` (armed / plain)."""
    plain = _overload_drive(resilient=False, quick=quick)
    armed = _overload_drive(resilient=True, quick=quick)
    ratio = (
        round(armed["goodput_rps"] / plain["goodput_rps"], 3)
        if plain["goodput_rps"]
        else None  # the plain server fully starved: strictly better
    )
    return {
        "plain": plain,
        "armed": armed,
        "goodput_ratio": ratio,
        "brownout_engaged": armed["engaged"]
        and armed["max_brownout_stage"] >= 2,
        "errors": plain["errors"] + armed["errors"],
        "healthy_after": plain["healthy_after"] and armed["healthy_after"],
    }


def run(quick: bool = True) -> dict:
    # Single process first (its numbers are the comparison base).
    with BackgroundServer(
        ServiceConfig(port=0, executor="thread", workers=2)
    ) as single:
        single_report = drive(single.config.host, single.port, quick)
        single_healthy = single.client.healthz()["http_status"] == 200

    fabric_dir = Path(tempfile.mkdtemp(prefix="bench-fabric-"))
    config = FabricConfig(
        fabric_dir=str(fabric_dir),
        port=0,
        shards=3,
        executor="thread",
        workers=1,
        probe_interval_s=0.5,
        steal_interval_s=0.2,
    )
    with BackgroundFabric(config) as fabric:
        fabric_report = drive(config.host, fabric.port, quick)
        # Every enqueued tune job must have a published result: a
        # pending job here would be work the fabric lost track of.
        ledger = JobLedger(fabric_dir / "jobs")
        deadline = time.time() + 15.0
        pending = ledger.pending()
        while pending and time.time() < deadline:
            time.sleep(0.2)
            pending = ledger.pending()
        health = fabric.client.healthz()
        fabric_healthy = (
            health["http_status"] == 200
            and all(info["up"] for info in health["shards"].values())
        )
    cost = bench_cost_isolation(quick)
    overload = bench_overload(quick)
    return {
        "quick": quick,
        "single": single_report,
        "fabric": fabric_report,
        "cost": cost,
        "overload": overload,
        "single_healthy_after": single_healthy,
        "fabric_healthy_after": fabric_healthy,
        "lost_jobs": len(pending),
        "fabric_over_single": round(
            fabric_report["sustained_rps"]
            / single_report["sustained_rps"],
            3,
        ),
    }


def to_artifact(result: dict, timestamp: str) -> dict:
    """Fold one :func:`run` record into the standard artifact schema."""
    from artifact import make_artifact

    return make_artifact(
        name="fabric_load",
        config={
            "quick": result["quick"],
            "cache_scale": SCALE,
            "shards": 3,
            "zipf_exponent": ZIPF_EXPONENT,
        },
        metrics={
            "fabric_rps": result["fabric"]["sustained_rps"],
            "single_rps": result["single"]["sustained_rps"],
            "fabric_over_single": result["fabric_over_single"],
            "fabric_p99_ms": result["fabric"]["latency"]["p99_ms"],
            "shed_rate": result["fabric"]["shed_rate"],
            "degraded_rate": result["fabric"]["degraded_rate"],
            "errors": (result["fabric"]["errors"]
                       + result["single"]["errors"]),
            "lost_jobs": result["lost_jobs"],
            "healthy_after": (result["fabric_healthy_after"]
                              and result["single_healthy_after"]),
            "cheap_isolation_ratio": result["cost"]["cheap_isolation_ratio"],
            "approx_serve_rate": result["fabric"]["approx_serve_rate"],
            "overload_goodput_ratio": result["overload"]["goodput_ratio"],
            "overload_brownout_engaged": (
                result["overload"]["brownout_engaged"]
            ),
            "overload_errors": result["overload"]["errors"],
            "overload_healthy_after": result["overload"]["healthy_after"],
            "detail": {
                "single": result["single"],
                "fabric": result["fabric"],
                "cost": result["cost"],
                "overload": result["overload"],
            },
        },
        timestamp=timestamp,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument(
        "--artifact", default=None,
        help="write a standardized BENCH artifact record here",
    )
    parser.add_argument(
        "--timestamp", default=None,
        help="ISO timestamp recorded in the artifact (default: now)",
    )
    parser.add_argument(
        "--artifact-dir", default=None,
        help="accumulate a timestamped BENCH artifact into this "
        "directory (trajectory input for benchmarks/trend.py)",
    )
    args = parser.parse_args(argv)
    result = run(quick=args.quick)
    text = json.dumps(result, indent=2)
    print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    if args.artifact or args.artifact_dir:
        from artifact import utc_now, write_artifact, write_artifact_dir

        stamp = args.timestamp or utc_now()
        record = to_artifact(result, stamp)
        if args.artifact:
            write_artifact(args.artifact, record)
        if args.artifact_dir:
            write_artifact_dir(args.artifact_dir, record)
    print(
        f"# single {result['single']['sustained_rps']} rps, "
        f"fabric {result['fabric']['sustained_rps']} rps "
        f"({result['fabric_over_single']}x), "
        f"shed_rate={result['fabric']['shed_rate']}, "
        f"cheap_isolation={result['cost']['cheap_isolation_ratio']}, "
        f"overload_goodput_ratio={result['overload']['goodput_ratio']}, "
        f"lost_jobs={result['lost_jobs']}, "
        f"healthy_after={result['fabric_healthy_after']}",
        file=sys.stderr,
    )
    if result["lost_jobs"]:
        print("FAIL: fabric lost tune jobs", file=sys.stderr)
        return 1
    if result["cost"]["cheap_shed"]:
        print("FAIL: cheap lane shed while only the expensive queue "
              "was saturated", file=sys.stderr)
        return 1
    if not (result["fabric_healthy_after"]
            and result["single_healthy_after"]):
        print("FAIL: a target was unhealthy after the load", file=sys.stderr)
        return 1
    if result["fabric"]["errors"] or result["single"]["errors"]:
        print("FAIL: hard errors during the load", file=sys.stderr)
        return 1
    if not result["overload"]["brownout_engaged"]:
        print("FAIL: brownout ladder never engaged under the overload "
              "storm", file=sys.stderr)
        return 1
    if result["overload"]["errors"]:
        print("FAIL: hard errors during the overload phase",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

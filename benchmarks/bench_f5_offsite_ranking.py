"""Benchmark F5: Offsite variant-ranking reliability."""

from repro.experiments import exp_f5_offsite_ranking


def test_f5_offsite_ranking(record):
    result = record(
        exp_f5_offsite_ranking.run,
        keys=("kendall_taus", "top1_hits", "mean_abs_err_pct"),
    )
    assert all(t >= 0.3 for t in result["kendall_taus"])

"""Benchmark-suite configuration.

Each ``bench_*`` file regenerates one table/figure of the paper (see
DESIGN.md for the experiment index).  The benchmark value is the wall
time of producing the experiment's data; the experiment's own result is
attached as ``extra_info`` so the numbers behind EXPERIMENTS.md are in
the benchmark JSON.
"""

import json

import pytest


def attach_rows(benchmark, result: dict, keys: tuple[str, ...] = ()) -> None:
    """Record experiment summary metrics on the benchmark record."""
    for key in keys:
        value = result.get(key)
        try:
            json.dumps(value)
        except TypeError:
            value = str(value)
        benchmark.extra_info[key] = value
    benchmark.extra_info["n_rows"] = len(result.get("rows", []))


@pytest.fixture
def record(benchmark):
    """Run an experiment under the benchmark and attach its summary."""

    def _run(run_func, keys: tuple[str, ...] = (), quick: bool = True):
        result = benchmark(run_func, quick)
        attach_rows(benchmark, result, keys)
        return result

    return _run

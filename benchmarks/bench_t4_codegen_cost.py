"""Benchmark T4: code-generation and tuning time budget."""

from repro.experiments import exp_t4_codegen_cost


def test_t4_codegen_cost(record):
    result = record(exp_t4_codegen_cost.run)
    assert result["rows"]

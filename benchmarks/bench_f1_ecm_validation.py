"""Benchmark F1: ECM prediction vs simulated measurement."""

from repro.experiments import exp_f1_ecm_validation


def test_f1_ecm_validation(record):
    result = record(
        exp_f1_ecm_validation.run,
        keys=("mean_abs_err_pct", "max_abs_err_pct"),
    )
    assert result["mean_abs_err_pct"] < 25.0

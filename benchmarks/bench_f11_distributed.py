"""Benchmark F11: distributed weak/strong scaling shapes."""

from repro.experiments import exp_f11_distributed


def test_f11_distributed(record):
    result = record(
        exp_f11_distributed.run,
        keys=("weak_efficiency_min", "strong_efficiency_last"),
    )
    assert result["weak_efficiency_min"] > 0.85
    assert result["strong_monotone_decay"]

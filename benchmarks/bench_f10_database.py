"""Benchmark F10: tuning-database deployment."""

from repro.experiments import exp_f10_database


def test_f10_database(record):
    result = record(
        exp_f10_database.run,
        keys=("deployed_vs_oracle", "deployed_vs_naive"),
    )
    # The looked-up choice must be close to the oracle and beat naive.
    assert result["deployed_vs_oracle"] < 1.15
    assert result["deployed_vs_naive"] > 1.1

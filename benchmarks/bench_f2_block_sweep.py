"""Benchmark F2: block-size sweep, analytic vs empirical optimum."""

from repro.experiments import exp_f2_block_sweep


def test_f2_block_sweep(record):
    result = record(exp_f2_block_sweep.run, keys=("max_gap_pct",))
    assert result["max_gap_pct"] < 10.0

"""Benchmark F6: end-to-end ODE speedup of tuned kernels."""

from repro.experiments import exp_f6_ode_speedup


def test_f6_ode_speedup(record):
    result = record(exp_f6_ode_speedup.run, keys=("geomean_speedup",))
    assert result["geomean_speedup"] > 1.1

"""Benchmark F8: in-core model detail-level ablation."""

from repro.experiments import exp_f8_incore_detail


def test_f8_incore_detail(record):
    result = record(
        exp_f8_incore_detail.run,
        keys=("mean_abs_err_simple_pct", "mean_abs_err_detailed_pct"),
    )
    # Both in-core models must stay in the accurate regime.
    assert result["mean_abs_err_simple_pct"] < 30.0
    assert result["mean_abs_err_detailed_pct"] < 30.0

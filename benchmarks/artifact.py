"""Standardized benchmark artifact records (``BENCH_*.json``).

Every benchmark entry point emits one artifact with the same shape::

    {
        "name":      "perf_substrate",          # benchmark identity
        "config":    {"quick": true, ...},      # what was run
        "metrics":   {...},                     # what was measured
        "timestamp": "2026-08-09T12:00:00Z",    # passed in by caller
        "git_rev":   "abc1234",                 # repo state of the run
    }

so the perf gate (``benchmarks/perf_gate.py``) can diff a fresh run
against a committed baseline without per-benchmark knowledge.  The
timestamp is an argument, not a clock read inside the record builder:
the benchmarks stay replayable, and two artifacts of the same rev
differ only in timing metrics.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import subprocess

__all__ = [
    "git_rev", "make_artifact", "write_artifact", "write_artifact_dir",
    "load_artifact", "utc_now",
]

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Keys every artifact must carry, in emission order.
SCHEMA_KEYS = ("name", "config", "metrics", "timestamp", "git_rev")


def git_rev() -> str:
    """Short git revision of the repo, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def utc_now() -> str:
    """ISO-8601 UTC timestamp for callers that pass "now" in."""
    now = datetime.datetime.now(datetime.timezone.utc)
    return now.strftime("%Y-%m-%dT%H:%M:%SZ")


def make_artifact(
    name: str, config: dict, metrics: dict, timestamp: str
) -> dict:
    """Build one schema-conforming artifact record."""
    if not isinstance(timestamp, str) or not timestamp:
        raise ValueError("timestamp must be passed in as a non-empty string")
    return {
        "name": name,
        "config": dict(config),
        "metrics": dict(metrics),
        "timestamp": timestamp,
        "git_rev": git_rev(),
    }


def write_artifact(path: str | pathlib.Path, artifact: dict) -> None:
    """Write one artifact as pretty JSON (trailing newline, sorted keys
    inside the payload sections, schema keys in canonical order)."""
    missing = [key for key in SCHEMA_KEYS if key not in artifact]
    if missing:
        raise ValueError(f"artifact missing schema keys: {missing}")
    ordered = {key: artifact[key] for key in SCHEMA_KEYS}
    text = json.dumps(ordered, indent=2, sort_keys=False)
    pathlib.Path(path).write_text(text + "\n")


def write_artifact_dir(
    directory: str | pathlib.Path, artifact: dict
) -> pathlib.Path:
    """Accumulate one artifact into ``directory`` for trend analysis.

    The filename embeds the artifact's identity, variant, timestamp
    and revision — ``BENCH_<name>_<variant>_<timestamp>_<rev>.json`` —
    so a soak directory collects runs across commits without
    collisions (a quick and a full run of one commit in the same
    second are distinct files) and ``benchmarks/trend.py`` can fold
    them into a trajectory.  Returns the written path.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = artifact["timestamp"].replace(":", "").replace("-", "")
    variant = "quick" if artifact["config"].get("quick") else "full"
    path = directory / (
        f"BENCH_{artifact['name']}_{variant}_{stamp}"
        f"_{artifact['git_rev']}.json"
    )
    write_artifact(path, artifact)
    return path


def load_artifact(path: str | pathlib.Path) -> dict:
    """Read one artifact back, validating the schema keys."""
    data = json.loads(pathlib.Path(path).read_text())
    missing = [key for key in SCHEMA_KEYS if key not in data]
    if missing:
        raise ValueError(f"{path}: artifact missing schema keys: {missing}")
    return data

"""Benchmark the tuning/prediction service end to end.

Times the HTTP service (``repro.service``) over a loopback socket:

* cold vs. warm throughput — the first pass over a set of distinct
  ``/tune`` payloads executes on the worker pool; repeat passes are
  served from the in-process response cache and are expected to
  sustain >= 10x the cold request rate,
* client- and server-side latency percentiles (p50/p95/p99), and
* admission control — a flood of distinct requests against a
  ``queue_limit=1`` server must shed with HTTP 429 while the server
  stays healthy, and
* approximate serving — with the near-match tier enabled, nearby-grid
  probes must serve interpolated answers (``approx_serve_rate``) while
  far probes fall back to exact computation.

Run standalone::

    python benchmarks/bench_service.py [--quick] [--json PATH] \
        [--artifact PATH] [--timestamp ISO]

``--artifact`` additionally writes a standardized
``BENCH_service.json`` record (see ``benchmarks/artifact.py``) that
the perf gate diffs against the committed baseline.

``--smoke`` instead exercises the ``python -m repro serve`` subprocess
path (healthz -> predict -> metrics -> SIGTERM drain) and exits 0 on a
clean drain; CI uses it as the service smoke check.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.service.background import BackgroundServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig

SCALE = 1 / 32  # shrink caches so the exact simulation stays fast

STENCILS_FULL = ("3d7pt", "3d27pt", "heat3d", "3d25pt")
STENCILS_QUICK = ("3d7pt", "heat3d")


def _cfg(**kwargs) -> ServiceConfig:
    defaults = dict(port=0, executor="thread", workers=4, queue_limit=256)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


def _payloads(quick: bool) -> list[dict]:
    # Tuning runs are the expensive request class (tens to hundreds of
    # ms fresh), so the warm/cold ratio measures the cache, not the
    # socket overhead.
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    grids = ([16, 16, 32],) if quick else ([16, 16, 32], [16, 32, 32])
    return [
        {"stencil": s, "grid": list(g), "cache_scale": SCALE}
        for s in stencils
        for g in grids
    ]


def _percentiles_ms(samples: list[float]) -> dict:
    ordered = sorted(samples)

    def pct(q: float) -> float:
        idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
        return round(ordered[idx] * 1e3, 3)

    return {"p50_ms": pct(0.50), "p95_ms": pct(0.95), "p99_ms": pct(0.99)}


def bench_throughput(quick: bool) -> dict:
    """Cold (pool) vs. warm (response cache) request rates."""
    payloads = _payloads(quick)
    warm_passes = 10 if quick else 25
    latencies: list[float] = []
    with BackgroundServer(_cfg()) as bg:
        client = bg.client

        t0 = time.perf_counter()
        for p in payloads:
            client.tune(**p)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(warm_passes):
            for p in payloads:
                t1 = time.perf_counter()
                client.tune(**p)
                latencies.append(time.perf_counter() - t1)
        warm_s = time.perf_counter() - t0

        snap = bg.metrics_snapshot()

    n_warm = warm_passes * len(payloads)
    cold_rps = len(payloads) / cold_s
    warm_rps = n_warm / warm_s
    endpoint = snap["endpoints"]["/tune"]
    return {
        "distinct_payloads": len(payloads),
        "warm_requests": n_warm,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cold_rps": round(cold_rps, 1),
        "warm_rps": round(warm_rps, 1),
        "warm_over_cold": round(warm_rps / cold_rps, 1),
        "client_latency": _percentiles_ms(latencies),
        "server_latency": endpoint["latency"],
        "outcomes": endpoint["outcomes"],
        "response_cache_hit_rate": snap["tiers"]["response"]["hit_rate"],
        # One hit ratio per store tier (None = never consulted), read
        # from the unified repro.store ledger the server exposes.
        "tier_hit_rates": {
            name: row["hit_rate"] for name, row in snap["tiers"].items()
        },
        # Which traffic-predictor path served the fresh tune work.  At
        # the benchmark's cache_scale the LC fast path honestly
        # declines (scaled caches break its preconditions), so this
        # records sim_served work — the gate only checks it is present.
        "predictor": snap["predictor"],
    }


def bench_load_shed(quick: bool) -> dict:
    """Flood a queue_limit=1 server; count 429s, verify it survives."""
    n_requests = 16 if quick else 32
    payloads = [
        {"stencil": "3d7pt", "grid": [8 + 2 * (i % 8), 16, 32 + 16 * (i // 8)],
         "cache_scale": SCALE}
        for i in range(n_requests)
    ]
    for attempt in range(3):
        with BackgroundServer(_cfg(workers=1, queue_limit=1)) as bg:
            client = ServiceClient(port=bg.port, retries=0)

            def fire(p):
                try:
                    client.request("POST", "/predict", p)
                    return 200
                except ServiceError as err:
                    return err.status

            with ThreadPoolExecutor(max_workers=n_requests) as pool:
                statuses = list(pool.map(fire, payloads))
            healthy = bg.client.healthz()["http_status"] == 200
            snap = bg.metrics_snapshot()
        shed = statuses.count(429)
        if shed > 0:  # overlap achieved; otherwise retry the flood
            break
    return {
        "requests": n_requests,
        "ok": statuses.count(200),
        "shed": shed,
        "healthy_after": healthy,
        "attempts": attempt + 1,
        "metrics_shed": snap["endpoints"]["/predict"]["outcomes"]["shed"],
    }


def bench_approx(quick: bool) -> dict:
    """Approximate serving: warm exact supports, probe nearby grids.

    The near-match tier must serve every nearby probe approximately
    (with an honest confidence) and decline the far probes — so the
    approximate-serve rate over the probe set is deterministic.
    """
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    supports = ([16, 16, 32], [16, 16, 48])
    near_grids = ([16, 16, 36], [16, 16, 40], [16, 16, 44])
    far_grid = [16, 16, 256]  # confidence 1 - 208/256 ≈ 0.19: declines
    with BackgroundServer(
        _cfg(approx_enabled=True, approx_confidence=0.6)
    ) as bg:
        client = bg.client
        # "exact": true while warming: without it the second support
        # grid would itself be served approximately off the first and
        # never enter the support set.
        for s in stencils:
            for g in supports:
                client.predict(
                    stencil=s, grid=list(g), cache_scale=SCALE, exact=True
                )
        served_approx = 0
        confidences: list[float] = []
        probes = 0
        for s in stencils:
            for g in near_grids + (far_grid,):
                env = client.predict(
                    stencil=s, grid=list(g), cache_scale=SCALE
                )
                probes += 1
                if env["served"] == "approximate":
                    served_approx += 1
                    confidences.append(env["confidence"])
        snap = bg.metrics_snapshot()
    approx_tier = snap["tiers"]["approx"]
    return {
        "supports": len(stencils) * len(supports),
        "probes": probes,
        "approximate_served": served_approx,
        "approx_serve_rate": round(served_approx / probes, 4),
        "min_confidence": round(min(confidences), 4) if confidences else None,
        "max_confidence": round(max(confidences), 4) if confidences else None,
        "tier": {
            k: approx_tier[k]
            for k in ("hits", "misses", "puts", "evictions", "hit_rate")
        },
    }


def run(quick: bool = True) -> dict:
    throughput = bench_throughput(quick)
    load_shed = bench_load_shed(quick)
    approx = bench_approx(quick)
    return {
        "quick": quick,
        "throughput": throughput,
        "load_shed": load_shed,
        "approx": approx,
    }


def to_artifact(result: dict, timestamp: str) -> dict:
    """Fold one :func:`run` record into the standard artifact schema."""
    from artifact import make_artifact

    throughput = result["throughput"]
    return make_artifact(
        name="service",
        config={"quick": result["quick"], "cache_scale": SCALE},
        metrics={
            "warm_over_cold": throughput["warm_over_cold"],
            "cold_rps": throughput["cold_rps"],
            "warm_rps": throughput["warm_rps"],
            "warm_response_hit_rate": throughput["response_cache_hit_rate"],
            "approx_serve_rate": result["approx"]["approx_serve_rate"],
            "shed": result["load_shed"]["shed"],
            "healthy_after": result["load_shed"]["healthy_after"],
            "detail": {
                "throughput": throughput,
                "load_shed": result["load_shed"],
                "approx": result["approx"],
            },
        },
        timestamp=timestamp,
    )


def smoke() -> int:
    """``python -m repro serve`` subprocess: predict, metrics, drain."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", "0", "--workers", "2", "--executor", "thread"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
        if not match:
            print(f"no address in banner: {banner!r}", file=sys.stderr)
            return 1
        client = ServiceClient(port=int(match.group(1)))
        assert client.healthz()["status"] == "ok"
        result = client.predict(
            stencil="3d7pt", grid=[16, 16, 32], cache_scale=SCALE
        )
        assert result["result"]["mlups"] > 0
        metrics = client.metrics()
        assert metrics["endpoints"]["/predict"]["requests"] == 1
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=30)
        if proc.returncode != 0 or "drained" not in out:
            print(f"unclean drain (rc={proc.returncode}):\n{out}",
                  file=sys.stderr)
            return 1
        print("service smoke ok: healthz -> predict -> metrics -> drain")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", default=None, help="also write JSON here")
    parser.add_argument(
        "--artifact", default=None,
        help="write a standardized BENCH artifact record here",
    )
    parser.add_argument(
        "--timestamp", default=None,
        help="ISO timestamp recorded in the artifact (default: now)",
    )
    parser.add_argument(
        "--artifact-dir", default=None,
        help="accumulate a timestamped BENCH artifact into this "
        "directory (trajectory input for benchmarks/trend.py)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the serve-subprocess smoke instead of the benchmark",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return smoke()
    result = run(quick=args.quick)
    text = json.dumps(result, indent=2)
    print(text)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(text + "\n")
    if args.artifact or args.artifact_dir:
        from artifact import utc_now, write_artifact, write_artifact_dir

        stamp = args.timestamp or utc_now()
        record = to_artifact(result, stamp)
        if args.artifact:
            write_artifact(args.artifact, record)
        if args.artifact_dir:
            write_artifact_dir(args.artifact_dir, record)
    ratio = result["throughput"]["warm_over_cold"]
    shed = result["load_shed"]["shed"]
    approx_rate = result["approx"]["approx_serve_rate"]
    print(
        f"# warm/cold throughput {ratio:.1f}x, "
        f"{shed} requests shed with 429, "
        f"approx_serve_rate={approx_rate}, "
        f"healthy_after={result['load_shed']['healthy_after']}",
        file=sys.stderr,
    )
    if ratio < 10:
        print("FAIL: warm throughput below 10x cold", file=sys.stderr)
        return 1
    if shed == 0 or not result["load_shed"]["healthy_after"]:
        print("FAIL: load shedding not observed cleanly", file=sys.stderr)
        return 1
    if approx_rate <= 0:
        print("FAIL: near-match tier served no approximations",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark T2: regenerate the stencil-suite table."""

from repro.experiments import exp_t2_stencils


def test_t2_stencils(record):
    result = record(exp_t2_stencils.run)
    assert len(result["rows"]) >= 8

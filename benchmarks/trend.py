"""Fold a directory of BENCH artifacts into per-metric trajectories.

Usage::

    python benchmarks/trend.py ARTIFACT_DIR [--name service]
        [--metric warm_rps --metric warm_over_cold] [--json]

Both bench drivers accumulate timestamped artifacts with
``--artifact-dir`` (see ``benchmarks/artifact.write_artifact_dir``);
CI uploads the same files as workflow artifacts.  This tool reads every
``BENCH_*.json`` in the directory, orders runs by timestamp, and prints
one trajectory table per benchmark name: each row is a run (timestamp,
commit, config), each metric column carries the value plus its delta
vs the previous run of the *same* benchmark — so a soak across commits
reads as a story, not a pile of JSON.

Quick and full runs of one benchmark measure different case sets, so
they are tracked as separate trajectories (the ``variant`` column).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from artifact import SCHEMA_KEYS

__all__ = ["collect", "trajectories", "render"]


def collect(directory: str | pathlib.Path) -> list[dict]:
    """Load every parseable ``BENCH_*.json`` under ``directory``.

    Unparseable or non-conforming files are skipped loudly (a warning
    per file on stderr) — a soak directory must never die to one
    truncated write.
    """
    artifacts: list[dict] = []
    directory = pathlib.Path(directory)
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
            missing = [key for key in SCHEMA_KEYS if key not in data]
            if missing:
                raise ValueError(f"missing schema keys: {missing}")
        except (OSError, ValueError) as exc:
            print(f"trend: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        artifacts.append(data)
    return artifacts


def _variant(artifact: dict) -> str:
    return "quick" if artifact["config"].get("quick") else "full"


def trajectories(
    artifacts: list[dict],
    name: str | None = None,
    metrics: list[str] | None = None,
) -> dict[str, list[dict]]:
    """Group artifacts into per-benchmark trajectories with deltas.

    Returns ``{"<name>/<variant>": [row, ...]}`` where each row is
    ``{"timestamp", "git_rev", "metrics": {metric: {"value", "delta"}}}``
    ordered by timestamp; ``delta`` is ``value - previous_value`` for
    numeric metrics (``None`` on the first run and non-numeric values).
    """
    groups: dict[str, list[dict]] = {}
    for artifact in artifacts:
        if name is not None and artifact["name"] != name:
            continue
        key = f"{artifact['name']}/{_variant(artifact)}"
        groups.setdefault(key, []).append(artifact)
    out: dict[str, list[dict]] = {}
    for key, runs in sorted(groups.items()):
        runs.sort(key=lambda a: a["timestamp"])
        names: list[str] = metrics or sorted(
            {m for run in runs for m in run["metrics"]}
        )
        rows: list[dict] = []
        previous: dict[str, float] = {}
        for run in runs:
            row_metrics: dict[str, dict] = {}
            for metric in names:
                value = run["metrics"].get(metric)
                delta = None
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    last = previous.get(metric)
                    if last is not None:
                        delta = value - last
                    previous[metric] = value
                row_metrics[metric] = {"value": value, "delta": delta}
            rows.append(
                {
                    "timestamp": run["timestamp"],
                    "git_rev": run["git_rev"],
                    "metrics": row_metrics,
                }
            )
        out[key] = rows
    return out


def _cell(entry: dict) -> str:
    value, delta = entry["value"], entry["delta"]
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    if delta is not None:
        text += f" ({delta:+.3g})"
    return text


def render(trajectory: dict[str, list[dict]]) -> str:
    """Human-readable trajectory tables, one per benchmark/variant."""
    blocks: list[str] = []
    for key, rows in trajectory.items():
        if not rows:
            continue
        metric_names = list(rows[0]["metrics"])
        header = ["timestamp", "commit", *metric_names]
        table = [header]
        for row in rows:
            table.append(
                [
                    row["timestamp"],
                    row["git_rev"],
                    *(_cell(row["metrics"][m]) for m in metric_names),
                ]
            )
        widths = [
            max(len(line[col]) for line in table)
            for col in range(len(header))
        ]
        lines = [f"== {key} ({len(rows)} run(s)) =="]
        for index, line in enumerate(table):
            lines.append(
                "  ".join(
                    cell.ljust(width) for cell, width in zip(line, widths)
                ).rstrip()
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifact_dir", help="directory of accumulated BENCH_*.json files"
    )
    parser.add_argument(
        "--name", default=None,
        help="only this benchmark (default: every name found)",
    )
    parser.add_argument(
        "--metric", action="append", default=None, metavar="NAME",
        help="only these metric columns (repeatable; default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the trajectory as JSON"
    )
    args = parser.parse_args(argv)
    artifacts = collect(args.artifact_dir)
    if not artifacts:
        print(f"trend: no BENCH_*.json artifacts in {args.artifact_dir}",
              file=sys.stderr)
        return 1
    trajectory = trajectories(artifacts, name=args.name, metrics=args.metric)
    if not trajectory:
        print(f"trend: no artifacts named {args.name!r}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(trajectory, indent=2))
        return 0
    print(render(trajectory))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark F4: wavefront temporal blocking gains."""

from repro.experiments import exp_f4_temporal


def test_f4_temporal(record):
    result = record(exp_f4_temporal.run, keys=("best_speedup",))
    assert result["best_speedup"]["3d7pt"] > 1.1

"""Circuit breaker, degraded mode and client Retry-After tests.

The live-server tests run a thread-executor :class:`BackgroundServer`
so injected fault plans (process-global state) are visible to the job
threads, and drive the breaker with the ``service.tune`` fault point —
the exact failure mode the breaker exists for: a backend that keeps
blowing up fresh jobs.
"""

from __future__ import annotations

import http.server
import threading
import time

import pytest

from repro import faults
from repro.service.background import BackgroundServer
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.jobs import JOBS, normalize_tune, tune_job

PAYLOAD = {"stencil": "3d7pt", "grid": [16, 16, 32]}


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


def _config(**overrides) -> ServiceConfig:
    defaults = dict(port=0, executor="thread", workers=2)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


# ----------------------------------------------------------------------
# The breaker state machine (fake clock, no HTTP)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        br = CircuitBreaker("t", failure_threshold=3, recovery_s=10.0)
        for _ in range(2):
            br.record_failure()
        assert br.state == CLOSED and br.allow()
        br.record_failure()
        assert br.state == OPEN and not br.allow()

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker("t", failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == CLOSED  # never two *consecutive* failures

    def test_half_open_single_probe_then_close(self):
        now = [0.0]
        br = CircuitBreaker(
            "t", failure_threshold=1, recovery_s=5.0, clock=lambda: now[0]
        )
        br.record_failure()
        assert not br.allow()
        assert br.retry_after_s() == pytest.approx(5.0)
        now[0] = 6.0
        assert br.allow()  # the probe
        assert br.state == HALF_OPEN
        assert not br.allow()  # concurrent request during the probe
        br.record_success()
        assert br.state == CLOSED and br.allow()

    def test_half_open_failure_reopens(self):
        now = [0.0]
        br = CircuitBreaker(
            "t", failure_threshold=1, recovery_s=5.0, clock=lambda: now[0]
        )
        br.record_failure()
        now[0] = 6.0
        assert br.allow()
        br.record_failure()
        assert br.state == OPEN
        assert not br.allow()  # a fresh recovery window started
        assert br.snapshot()["times_opened"] == 2

    def test_release_probe_allows_next_probe(self):
        now = [0.0]
        br = CircuitBreaker(
            "t", failure_threshold=1, recovery_s=1.0, clock=lambda: now[0]
        )
        br.record_failure()
        now[0] = 2.0
        assert br.allow()
        assert not br.allow()
        br.release_probe()  # the probe coalesced / was shed
        assert br.allow()

    def test_force_open_and_reset(self):
        br = CircuitBreaker("t")
        br.force_open()
        assert br.state == OPEN and not br.allow()
        br.reset()
        assert br.state == CLOSED and br.allow()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("t", recovery_s=-1.0)


# ----------------------------------------------------------------------
# Breaker-open degraded service
# ----------------------------------------------------------------------
class TestDegradedService:
    def test_tune_degrades_after_breaker_opens(self):
        cfg = _config(breaker_threshold=2, breaker_recovery_s=300.0)
        with faults.injected("service.tune:every=1"):
            with BackgroundServer(cfg) as bg:
                for _ in range(2):
                    with pytest.raises(ServiceError) as err:
                        bg.client.request("POST", "/tune", PAYLOAD, retries=0)
                    assert err.value.status == 500
                env = bg.client.request("POST", "/tune", PAYLOAD, retries=0)
                assert env["served"] == "degraded"
                assert env["degraded"] is True
                result = env["result"]
                assert result["tuner"] == "ecm"
                assert result["recovery"]["degraded"] is True
                assert result["variants_run"] == 0  # purely analytic

                health = bg.client.healthz()
                assert health["breakers"]["/tune"] == "open"
                assert health["breakers"]["/predict"] == "closed"

                metrics = bg.client.metrics()
                tune_stats = metrics["endpoints"]["/tune"]
                assert tune_stats["outcomes"]["degraded"] == 1
                assert tune_stats["outcomes"]["failed"] == 2
                assert metrics["breakers"]["/tune"]["state"] == "open"
                assert metrics["breakers"]["/tune"]["times_opened"] == 1
                assert metrics["faults"]["fired"]["service.tune"] >= 2

    def test_degraded_responses_are_not_cached(self):
        cfg = _config(breaker_threshold=1, breaker_recovery_s=300.0)
        with BackgroundServer(cfg) as bg:
            with faults.injected("service.tune:every=1"):
                with pytest.raises(ServiceError):
                    bg.client.request("POST", "/tune", PAYLOAD, retries=0)
                degraded = bg.client.request("POST", "/tune", PAYLOAD, retries=0)
                assert degraded["served"] == "degraded"
            # Injection off and breaker forced shut: the same request
            # must execute fresh (a cached degraded answer would be
            # served from the LRU instead).
            bg.service.breakers["/tune"].reset()
            env = bg.client.request("POST", "/tune", PAYLOAD, retries=0)
            assert env["served"] == "fresh"
            assert "degraded" not in env

    def test_partial_search_results_are_not_cached(self):
        """A degraded result from the *normal* path (retries exhausted
        on some variants, breaker closed) is served to its requester
        but never pinned in the response LRU: the next identical
        request recomputes cleanly, and the clean answer is cached."""
        # A grid no other test tunes: the shared traffic memo must not
        # be pre-warmed (or warm for others) by this degraded search.
        payload = {"stencil": "3d7pt", "grid": [16, 16, 48],
                   "tuner": "exhaustive"}
        with BackgroundServer(_config()) as bg:
            # First eval call + both its retries fail: exactly one job
            # is lost, the tune completes degraded.
            with faults.injected("tuner.eval:every=1:count=3"):
                env = bg.client.request("POST", "/tune", payload, retries=0)
            assert env["served"] == "fresh"
            assert env["result"]["recovery"]["degraded"] is True
            # Injection off: identical request must re-execute (a
            # cached degraded answer would come from the LRU)...
            env2 = bg.client.request("POST", "/tune", payload, retries=0)
            assert env2["served"] == "fresh"
            assert env2["result"]["recovery"]["degraded"] is False
            # ...and the clean result is the one that gets cached.
            env3 = bg.client.request("POST", "/tune", payload, retries=0)
            assert env3["served"] == "response-cache"
            assert env3["result"]["recovery"]["degraded"] is False

    def test_breaker_open_without_degraded_mode_returns_503(self):
        cfg = _config(
            breaker_threshold=1,
            breaker_recovery_s=300.0,
            degraded_mode=False,
        )
        with BackgroundServer(cfg) as bg:
            with faults.injected("service.tune:every=1"):
                with pytest.raises(ServiceError):
                    bg.client.request("POST", "/tune", PAYLOAD, retries=0)
            with pytest.raises(ServiceError) as err:
                bg.client.request("POST", "/tune", PAYLOAD, retries=0)
            assert err.value.status == 503
            assert err.value.body["breaker"]["state"] == "open"

    def test_half_open_probe_recovers_service(self):
        cfg = _config(breaker_threshold=1, breaker_recovery_s=0.2)
        with BackgroundServer(cfg) as bg:
            with faults.injected("service.tune:every=1"):
                with pytest.raises(ServiceError):
                    bg.client.request("POST", "/tune", PAYLOAD, retries=0)
            assert bg.service.breakers["/tune"].state == "open"
            time.sleep(0.25)
            # Injection is off: the half-open probe succeeds and the
            # breaker closes; the answer is a real fresh result.
            env = bg.client.request("POST", "/tune", PAYLOAD, retries=0)
            assert env["served"] == "fresh"
            assert bg.service.breakers["/tune"].state == "closed"

    def test_tune_jobs_receive_server_deadline(self, monkeypatch):
        seen: list = []
        original = JOBS["/tune"]

        def capture(payload: dict) -> dict:
            seen.append(payload.get("deadline"))
            return tune_job(payload)

        monkeypatch.setitem(JOBS, "/tune", (normalize_tune, capture))
        cfg = _config(request_timeout_s=90.0)
        with BackgroundServer(cfg) as bg:
            before = time.time()
            bg.client.request("POST", "/tune", PAYLOAD, retries=0)
        monkeypatch.setitem(JOBS, "/tune", original)
        assert len(seen) == 1
        # The injected deadline is (arrival + request_timeout_s).
        assert seen[0] == pytest.approx(before + 90.0, abs=5.0)


# ----------------------------------------------------------------------
# Client Retry-After handling
# ----------------------------------------------------------------------
class _ScriptedHandler(http.server.BaseHTTPRequestHandler):
    """Serves a scripted list of (status, headers, body) responses."""

    script: list = []
    hits: list = []

    def do_POST(self):  # noqa: N802  (stdlib naming)
        self.rfile.read(int(self.headers.get("Content-Length", 0)))
        type(self).hits.append(time.monotonic())
        status, headers, body = (
            type(self).script.pop(0)
            if type(self).script
            else (200, {}, b"{}")
        )
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # keep test output quiet
        pass


@pytest.fixture()
def stub_server():
    handler = type(
        "Handler", (_ScriptedHandler,), {"script": [], "hits": []}
    )
    server = http.server.HTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1], handler
    finally:
        server.shutdown()
        thread.join(timeout=5.0)


class TestClientRetryAfter:
    def test_retry_after_overrides_backoff(self, stub_server):
        port, handler = stub_server
        handler.script[:] = [
            (429, {"Retry-After": "0"}, b'{"error": "overloaded"}'),
            (200, {}, b'{"ok": true}'),
        ]
        # Exponential backoff would sleep 30 s; Retry-After: 0 must win.
        client = ServiceClient(port=port, retries=1, backoff_s=30.0)
        t0 = time.monotonic()
        assert client.request("POST", "/tune", {}) == {"ok": True}
        assert time.monotonic() - t0 < 5.0
        assert len(handler.hits) == 2

    def test_retry_after_capped_at_timeout(self):
        client = ServiceClient(timeout_s=0.5, backoff_s=0.1)
        assert client._retry_delay_s(0, {"retry-after": "9999"}) == 0.5

    def test_malformed_retry_after_falls_back_to_backoff(self):
        client = ServiceClient(backoff_s=0.1, backoff_factor=2.0, jitter=False)
        delay = client._retry_delay_s(
            2, {"retry-after": "Wed, 21 Oct 2026 07:28:00 GMT"}
        )
        assert delay == pytest.approx(0.1 * 2.0**2)

    def test_missing_header_uses_backoff(self):
        client = ServiceClient(backoff_s=0.2, backoff_factor=2.0, jitter=False)
        assert client._retry_delay_s(1, {}) == pytest.approx(0.4)
        assert client._retry_delay_s(1, None) == pytest.approx(0.4)

    def test_negative_retry_after_clamped_to_zero(self):
        client = ServiceClient(backoff_s=0.1)
        assert client._retry_delay_s(0, {"retry-after": "-3"}) == 0.0

    def test_non_retryable_status_raises_immediately(self, stub_server):
        port, handler = stub_server
        handler.script[:] = [(500, {}, b'{"error": "boom"}')]
        client = ServiceClient(port=port, retries=3, backoff_s=0.01)
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/tune", {})
        assert err.value.status == 500
        assert len(handler.hits) == 1

"""Hierarchy semantics: fill-through, write-back chains, victim L3."""

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy
from repro.machine import CacheLevel, CoreModel, Machine


def tiny_machine(victim_l3: bool = False) -> Machine:
    caches = [
        CacheLevel("L1", 4 * 64, 64, 2, 64.0),
        CacheLevel("L2", 16 * 64, 64, 4, 32.0),
    ]
    if victim_l3:
        caches.append(
            CacheLevel("L3", 32 * 64, 64, 4, 16.0, victim=True)
        )
    return Machine(
        name="tiny",
        isa="AVX2",
        freq_ghz=2.0,
        cores=2,
        cores_per_llc=2,
        core=CoreModel(32, 2, 1, 1, 2, 1),
        caches=tuple(caches),
        mem_bw_gbs=20.0,
        mem_bw_core_gbs=10.0,
    )


class TestInclusive:
    def test_cold_miss_counts_all_boundaries(self):
        h = CacheHierarchy(tiny_machine())
        h.access(0, write=False)
        assert h.loads == [1, 1]

    def test_l1_hit_counts_nothing(self):
        h = CacheHierarchy(tiny_machine())
        h.access(0, write=False)
        h.access(0, write=False)
        assert h.loads == [1, 1]

    def test_l2_hit_counts_inner_boundary_only(self):
        h = CacheHierarchy(tiny_machine())
        # Fill lines 0..7 (L1 holds 8 lines); line 0 falls out of L1.
        for line in range(9):
            h.access(line, write=False)
        loads_before = list(h.loads)
        h.access(0, write=False)
        assert h.loads[0] == loads_before[0] + 1
        assert h.loads[1] == loads_before[1]  # still in L2

    def test_write_allocate(self):
        h = CacheHierarchy(tiny_machine())
        h.access(0, write=True)
        assert h.loads == [1, 1]  # store miss pulls the line in

    def test_dirty_writeback_reaches_memory(self):
        h = CacheHierarchy(tiny_machine())
        n_l2 = 16
        for line in range(n_l2 + 4):
            h.access(line, write=True)
        assert h.writebacks[1] > 0  # dirty lines left L2 toward memory

    def test_streaming_traffic_equals_lines(self):
        h = CacheHierarchy(tiny_machine())
        lines = np.arange(1000, dtype=np.int64)
        h.access_many(lines, np.zeros(1000, dtype=bool))
        assert h.loads == [1000, 1000]


class TestVictim:
    def test_memory_fill_bypasses_l3(self):
        h = CacheHierarchy(tiny_machine(victim_l3=True))
        h.access(0, write=False)
        assert h.loads == [1, 1, 1]
        assert h.levels[2].resident_lines() == 0  # not installed on fill

    def test_l2_eviction_installs_into_l3(self):
        h = CacheHierarchy(tiny_machine(victim_l3=True))
        for line in range(20):  # exceed L2's 16 lines
            h.access(line, write=False)
        assert h.levels[2].resident_lines() > 0
        assert h.writebacks[1] > 0  # victim installs counted as L2->L3

    def test_victim_hit_removes_line(self):
        h = CacheHierarchy(tiny_machine(victim_l3=True))
        for line in range(20):
            h.access(line, write=False)
        # Find a line resident in L3 and re-access it: the hit must be
        # exclusive, i.e. the line leaves L3 (though the L2 eviction the
        # refill causes may install a *different* line there).
        victim_line = next(
            line for line in range(20) if h.levels[2].contains(line)
        )
        h.access(victim_line, write=False)
        assert not h.levels[2].contains(victim_line)
        assert h.levels[0].contains(victim_line)

    def test_victim_must_be_last(self):
        caches = (
            CacheLevel("L1", 4 * 64, 64, 2, 64.0, victim=True),
            CacheLevel("L2", 16 * 64, 64, 4, 32.0),
        )
        m = Machine(
            "bad", "AVX2", 2.0, 2, 2, CoreModel(32, 2, 1, 1, 2, 1), caches
        )
        with pytest.raises(ValueError):
            CacheHierarchy(m)


class TestReport:
    def test_bytes_per_lup(self):
        h = CacheHierarchy(tiny_machine())
        lines = np.arange(100, dtype=np.int64)
        h.access_many(lines, np.zeros(100, dtype=bool))
        rep = h.report(lups=800)
        assert rep.bytes_per_lup(1) == pytest.approx(100 * 64 / 800)
        assert rep.boundaries == ("L1-L2", "L2-Mem")

    def test_bytes_per_lup_requires_lups(self):
        h = CacheHierarchy(tiny_machine())
        rep = h.report()
        with pytest.raises(ValueError):
            rep.bytes_per_lup(0)

    def test_reset_counters_keeps_contents(self):
        h = CacheHierarchy(tiny_machine())
        h.access(0, write=False)
        h.reset_counters()
        assert h.loads == [0, 0]
        h.access(0, write=False)
        assert h.loads == [0, 0]  # warm hit, no new traffic

"""LRU cache semantics, including a property test against a reference."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.cachesim import SetAssocCache
from repro.machine import CacheLevel


def small_cache(assoc=2, sets=4) -> SetAssocCache:
    level = CacheLevel("T", sets * assoc * 64, 64, assoc, 32.0)
    return SetAssocCache(level)


class TestBasics:
    def test_miss_then_hit(self):
        c = small_cache()
        assert not c.lookup(5)
        c.insert(5)
        assert c.lookup(5)
        assert c.hits == 1 and c.misses == 1

    def test_eviction_is_lru(self):
        c = small_cache(assoc=2, sets=1)
        c.insert(0)
        c.insert(1)
        c.lookup(0)  # 1 is now LRU
        victim = c.insert(2)
        assert victim == (1, False)

    def test_dirty_propagates_on_eviction(self):
        c = small_cache(assoc=1, sets=1)
        c.insert(0, dirty=True)
        victim = c.insert(1)
        assert victim == (0, True)

    def test_mark_dirty_requires_residency(self):
        c = small_cache()
        with pytest.raises(KeyError):
            c.mark_dirty(9)

    def test_reinsert_merges_dirty(self):
        c = small_cache(assoc=2, sets=1)
        c.insert(0, dirty=True)
        c.insert(0, dirty=False)
        c.insert(1)
        victim = c.insert(2)
        assert victim == (0, True)

    def test_remove(self):
        c = small_cache()
        c.insert(3, dirty=True)
        assert c.remove(3) is True
        assert c.remove(3) is None

    def test_flush_counts_dirty(self):
        c = small_cache()
        c.insert(1, dirty=True)
        c.insert(2)
        assert c.flush() == 1
        assert c.resident_lines() == 0

    def test_sets_partition_lines(self):
        c = small_cache(assoc=1, sets=4)
        # Lines 0..3 map to distinct sets: no evictions.
        for line in range(4):
            assert c.insert(line) is None
        assert c.resident_lines() == 4


# ----------------------------------------------------------------------
# Property: the simulator matches a straightforward reference LRU model.
# ----------------------------------------------------------------------
class _RefLRU:
    """Reference set-associative LRU implemented independently."""

    def __init__(self, assoc: int, n_sets: int):
        self.assoc = assoc
        self.n_sets = n_sets
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, line: int) -> bool:
        s = self.sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[line] = True
        return False


@settings(max_examples=60, deadline=None)
@given(
    accesses=st.lists(st.integers(0, 30), min_size=1, max_size=200),
    assoc=st.sampled_from([1, 2, 4]),
    sets=st.sampled_from([1, 2, 4]),
)
def test_hit_miss_sequence_matches_reference(accesses, assoc, sets):
    sim = small_cache(assoc=assoc, sets=sets)
    ref = _RefLRU(assoc, sets)
    for line in accesses:
        ref_hit = ref.access(line)
        sim_hit = sim.lookup(line)
        if not sim_hit:
            sim.insert(line)
        assert sim_hit == ref_hit

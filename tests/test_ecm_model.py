"""ECM composition, multicore scaling and roofline tests."""

import pytest

from repro.codegen import KernelPlan
from repro.ecm import predict, roofline_predict, saturation_point, scaling_curve
from repro.stencil import get_stencil

SHAPE = (128, 128, 128)


class TestSingleCore:
    def test_composition_rule(self, clx):
        pred = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        assert pred.t_ecm == max(pred.t_ol, pred.t_nol + sum(pred.t_data))
        assert pred.mlups > 0
        assert len(pred.t_data) == clx.n_levels

    def test_memory_bound_stencil_dominated_by_data(self, clx):
        pred = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        assert pred.t_nol + sum(pred.t_data) > pred.t_ol

    def test_notation_string(self, clx):
        pred = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        s = pred.notation()
        assert "∥" in s and "cy/CL" in s

    def test_higher_radius_costs_more_cycles(self, clx):
        p1 = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        p4 = predict(get_stencil("3d25pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        assert p4.t_ecm > p1.t_ecm

    def test_blocking_helps_long_range(self, clx):
        # Grid large enough that unblocked planes exceed even the L3
        # share; only then does spatial blocking pay (at 128^3 the L3
        # already holds the planes and blocking would just add halo).
        spec = get_stencil("3dlong_r4")
        big = (256, 256, 256)
        full = predict(spec, big, KernelPlan(block=big), clx)
        blocked = predict(spec, big, KernelPlan(block=(16, 16, 256)), clx)
        assert blocked.t_ecm < full.t_ecm

    def test_capacity_factor_monotone(self, clx):
        spec = get_stencil("3d13pt")
        generous = predict(
            spec, SHAPE, KernelPlan(block=SHAPE), clx, capacity_factor=1.0
        )
        derated = predict(
            spec, SHAPE, KernelPlan(block=SHAPE), clx, capacity_factor=0.1
        )
        assert derated.t_ecm >= generous.t_ecm

    def test_runtime_consistency(self, clx):
        pred = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        ns = pred.runtime_per_lup_ns
        assert ns == pytest.approx(1e3 / pred.mlups, rel=1e-9)


class TestMulticore:
    def test_scaling_saturates(self, clx):
        pred = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        curve = scaling_curve(pred, clx.mem_bw_gbs, clx.cores)
        mlups = [p.mlups for p in curve]
        assert mlups == sorted(mlups)  # monotone
        assert curve[-1].saturated
        assert curve[0].mlups == pytest.approx(pred.mlups)

    def test_saturation_point_positive(self, clx):
        pred = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        n = saturation_point(pred, clx.mem_bw_gbs)
        assert 1.0 < n < clx.cores * 2

    def test_bad_core_count(self, clx):
        pred = predict(get_stencil("3d7pt"), SHAPE, KernelPlan(block=SHAPE), clx)
        with pytest.raises(ValueError):
            scaling_curve(pred, clx.mem_bw_gbs, 0)


class TestRoofline:
    def test_memory_bound_classification(self, clx):
        r = roofline_predict(get_stencil("3d7pt"), clx, cores=clx.cores)
        assert r.memory_bound
        assert r.mlups == r.bandwidth_mlups

    def test_single_core_not_bandwidth_starved(self, clx):
        r1 = roofline_predict(get_stencil("3d25pt"), clx, cores=1)
        assert r1.mlups > 0

    def test_roofline_at_least_ecm(self, clx):
        # Roofline ignores in-cache transfer costs, so it must never be
        # more pessimistic than ECM for a full-machine run.
        spec = get_stencil("3d7pt")
        pred = predict(spec, SHAPE, KernelPlan(block=SHAPE), clx)
        curve = scaling_curve(pred, clx.mem_bw_gbs, clx.cores)
        roof = roofline_predict(spec, clx, cores=clx.cores)
        assert roof.mlups >= curve[-1].mlups * 0.99

    def test_rejects_bad_cores(self, clx):
        with pytest.raises(ValueError):
            roofline_predict(get_stencil("3d7pt"), clx, cores=0)

"""Unit tests for the telemetry layer: mergeable histograms, the SLO
burn-rate engine, the flight recorder, and Prometheus exposition.

The live end-to-end drills (burn drill against a running server, fabric
histogram fan-in) live in ``test_service_telemetry.py``; this module
pins the math and the serialization contracts with a fake clock and
hypothesis-driven sample streams.
"""

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import (
    DEFAULT_SLO_CONFIG,
    FlightRecorder,
    LatencyHistogram,
    SloEngine,
    load_slo_config,
    parse_prometheus,
    render_prometheus,
)
from repro.telemetry.histogram import (
    MAX_BOUND_S,
    MIN_BOUND_S,
    N_BUCKETS,
    QUANTILE_REL_ERROR,
)
from repro.telemetry.slo import WindowCounter, _window_label


# ----------------------------------------------------------------------
# Histogram: layout + recording
# ----------------------------------------------------------------------
class TestHistogramBasics:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.quantile(0.5) is None
        assert h.percentiles() == {
            "p50_ms": None, "p95_ms": None, "p99_ms": None,
        }

    def test_bucket_index_edges(self):
        # At or below the lower bound -> underflow (-1).
        assert LatencyHistogram.bucket_index(MIN_BOUND_S) == -1
        assert LatencyHistogram.bucket_index(0.0) == -1
        assert LatencyHistogram.bucket_index(-1.0) == -1
        # Above the upper bound -> overflow (N_BUCKETS).
        assert LatencyHistogram.bucket_index(MAX_BOUND_S * 2) == N_BUCKETS
        # In-range samples land in [0, N_BUCKETS).
        for s in (1.1e-5, 1e-3, 0.02, 1.0, 999.0):
            idx = LatencyHistogram.bucket_index(s)
            assert 0 <= idx < N_BUCKETS
            # The sample sits inside its bucket's bounds.
            assert s <= LatencyHistogram.bucket_upper_s(idx)

    def test_bucket_bounds_monotone(self):
        uppers = [
            LatencyHistogram.bucket_upper_s(i) for i in range(N_BUCKETS)
        ]
        assert uppers == sorted(uppers)
        assert uppers[-1] >= MAX_BOUND_S

    def test_count_and_sum_exact(self):
        h = LatencyHistogram()
        samples = [1e-7, 1e-4, 0.005, 0.3, 2.0, 5000.0]
        for s in samples:
            h.record(s)
        assert h.count == len(samples)
        assert h.sum_s == pytest.approx(sum(samples))

    def test_quantile_rejects_out_of_range(self):
        h = LatencyHistogram()
        h.record(0.01)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_clamps_at_range_edges(self):
        h = LatencyHistogram()
        h.record(1e-9)  # underflow
        h.record(1e6)  # overflow
        assert h.quantile(0.0) == MIN_BOUND_S
        assert h.quantile(1.0) == MAX_BOUND_S


# ----------------------------------------------------------------------
# Histogram: the two documented properties (hypothesis)
# ----------------------------------------------------------------------
latency_samples = st.lists(
    st.floats(min_value=2e-5, max_value=900.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200,
)


@settings(max_examples=60, deadline=None)
@given(shards=st.lists(latency_samples, min_size=1, max_size=5))
def test_merge_identical_to_pooled(shards):
    """merge(N shard histograms) == histogram(pooled stream), exactly."""
    pooled = LatencyHistogram()
    parts = []
    for samples in shards:
        part = LatencyHistogram()
        for s in samples:
            part.record(s)
            pooled.record(s)
        parts.append(part)
    merged = LatencyHistogram.merged(p.to_dict() for p in parts)
    assert merged.count == pooled.count
    assert merged.nonzero() == pooled.nonzero()
    assert merged.sum_s == pytest.approx(pooled.sum_s)
    # And the readout is therefore identical too.
    assert merged.percentiles() == pooled.percentiles()


@settings(max_examples=60, deadline=None)
@given(
    samples=latency_samples,
    q=st.sampled_from([0.0, 0.5, 0.9, 0.95, 0.99, 1.0]),
)
def test_quantile_within_documented_bound(samples, q):
    """Reported quantile within QUANTILE_REL_ERROR of the true sample
    quantile (same rank convention as LatencyReservoir)."""
    h = LatencyHistogram()
    for s in samples:
        h.record(s)
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    true = ordered[rank]
    got = h.quantile(q)
    assert got is not None
    assert abs(got - true) <= QUANTILE_REL_ERROR * true + 1e-12


@settings(max_examples=40, deadline=None)
@given(samples=latency_samples)
def test_serialization_roundtrip(samples):
    h = LatencyHistogram()
    for s in samples:
        h.record(s)
    data = json.loads(json.dumps(h.to_dict()))  # through real JSON
    back = LatencyHistogram.from_dict(data)
    assert back.nonzero() == h.nonzero()
    assert back.count == h.count
    assert back.sum_s == pytest.approx(h.sum_s)


class TestHistogramSerializationGuards:
    def test_layout_mismatch_rejected(self):
        data = LatencyHistogram().to_dict()
        data["layout"] = "log2x4@0.001:10"
        with pytest.raises(ValueError, match="layout mismatch"):
            LatencyHistogram.from_dict(data)

    def test_count_mismatch_rejected(self):
        h = LatencyHistogram()
        h.record(0.01)
        data = h.to_dict()
        data["count"] = 99
        with pytest.raises(ValueError, match="count"):
            LatencyHistogram.from_dict(data)

    def test_bucket_index_out_of_range_rejected(self):
        data = LatencyHistogram().to_dict()
        data["buckets"] = {str(N_BUCKETS + 5): 1}
        data["count"] = 1
        with pytest.raises(ValueError, match="out of range"):
            LatencyHistogram.from_dict(data)


# ----------------------------------------------------------------------
# WindowCounter
# ----------------------------------------------------------------------
class TestWindowCounter:
    def test_counts_inside_window(self):
        w = WindowCounter(60.0)
        w.add(0.0, good=3, bad=1)
        w.add(30.0, good=2)
        assert w.totals(59.0) == (5, 1)

    def test_expiry(self):
        w = WindowCounter(60.0)
        w.add(0.0, bad=10)
        # After more than a full window the old slot has retired.
        assert w.totals(62.0) == (0, 0)

    def test_partial_expiry(self):
        # The ring is accurate to one slot: a slot retires when its
        # index is reused, so data at t=0 lives until t >= 70 here.
        w = WindowCounter(60.0, slots=6)  # 10s resolution
        w.add(0.0, bad=6)
        w.add(55.0, good=4)
        assert w.totals(65.0) == (4, 6)  # within the slop slot
        assert w.totals(72.0) == (4, 0)  # t=0 slot retired

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowCounter(0.0)


def test_window_labels():
    assert _window_label(60.0) == "1m"
    assert _window_label(300.0) == "5m"
    assert _window_label(21600.0) == "6h"
    assert _window_label(2.5) == "2.5s"


# ----------------------------------------------------------------------
# SLO engine with a fake clock
# ----------------------------------------------------------------------
FAST_CONFIG = {
    "windows": {"page": [10.0, 30.0], "warn": [60.0, 120.0]},
    "burn": {"page": 14.4, "warn": 6.0},
    "objectives": [
        {"name": "availability", "type": "availability", "target": 0.999},
        {
            "name": "latency-p95", "type": "latency",
            "quantile": 0.95, "threshold_ms": 100.0,
        },
        {"name": "shed-rate", "type": "shed_rate", "ceiling": 0.05},
        {
            "name": "hit-rate", "type": "hit_rate",
            "tier": "response", "floor": 0.10,
        },
    ],
}


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t


def make_engine(config=FAST_CONFIG):
    clock = FakeClock()
    return SloEngine(config, now_fn=clock), clock


class TestSloEngine:
    def test_all_ok_when_idle(self):
        engine, _ = make_engine()
        doc = engine.snapshot()
        assert doc["enabled"] is True
        assert doc["alerts"] == []
        assert all(o["state"] == "ok" for o in doc["objectives"])

    def test_availability_burn_pages_and_recovers(self):
        engine, clock = make_engine()
        # 50% failures for 35s: burn = 0.5 / 0.001 = 500 >> 14.4 in
        # both page windows (10s and 30s).
        for _ in range(40):
            engine.observe("/predict", "ok", 0.01)
            engine.observe("/predict", "failed", 0.01)
            clock.t += 0.5
        doc = engine.snapshot()
        states = {o["name"]: o["state"] for o in doc["objectives"]}
        assert states["availability"] == "page"
        alerts = {a["objective"]: a for a in doc["alerts"]}
        assert alerts["availability"]["severity"] == "page"
        # Latency and shed objectives are unaffected.
        assert states["latency-p95"] == "ok"
        assert states["shed-rate"] == "ok"
        # Recovery: good traffic for one page window clears the page;
        # once the warn windows expire too, the objective reads ok.
        for _ in range(80):
            engine.observe("/predict", "ok", 0.01)
            clock.t += 0.5
        states = {
            o["name"]: o["state"]
            for o in engine.snapshot()["objectives"]
        }
        assert states["availability"] in ("ok", "warn")  # page cleared
        clock.t += 121.0
        engine.observe("/predict", "ok", 0.01)
        states = {
            o["name"]: o["state"]
            for o in engine.snapshot()["objectives"]
        }
        assert states["availability"] == "ok"

    def test_latency_threshold_burn(self):
        engine, clock = make_engine()
        # Every request over threshold: bad_fraction 1.0, budget 0.05,
        # burn 20 > 14.4.
        for _ in range(100):
            engine.observe("/tune", "ok", 0.5)  # 500ms > 100ms
            clock.t += 0.4
        states = {
            o["name"]: o["state"]
            for o in engine.snapshot()["objectives"]
        }
        assert states["latency-p95"] == "page"
        # Every outcome above was "ok", so availability stays clean —
        # slow-but-successful burns latency budget only.
        assert states["availability"] == "ok"

    def test_latency_excludes_sheds(self):
        engine, clock = make_engine()
        for _ in range(100):
            engine.observe("/tune", "shed", 0.0)
            clock.t += 0.4
        states = {
            o["name"]: o["state"]
            for o in engine.snapshot()["objectives"]
        }
        # Sheds never feed the latency objective...
        assert states["latency-p95"] == "ok"
        # ...but a 100% shed rate blows through the 5% ceiling.
        assert states["shed-rate"] == "page"

    def test_hit_rate_uses_override_threshold(self):
        engine, clock = make_engine()
        ledger = {"response": {"hits": 0, "misses": 0}}
        engine.set_tier_source(lambda: {
            k: dict(v) for k, v in ledger.items()
        })
        # Miss-heavy traffic: hit rate 0 < floor 0.10 -> burn 1.11,
        # which fires only because hit_rate defaults its thresholds to
        # 1.0 (the global 14.4 is unreachable with a 0.9 budget).
        for _ in range(200):
            ledger["response"]["misses"] += 1
            engine.observe("/predict", "ok", 0.001)
            clock.t += 0.4
        states = {
            o["name"]: o["state"]
            for o in engine.snapshot()["objectives"]
        }
        assert states["hit-rate"] == "page"
        # Healthy hit rate (way above the floor) clears it.
        clock.t += 200.0
        for _ in range(200):
            ledger["response"]["hits"] += 1
            engine.observe("/predict", "ok", 0.001)
            clock.t += 0.4
        states = {
            o["name"]: o["state"]
            for o in engine.snapshot()["objectives"]
        }
        assert states["hit-rate"] == "ok"

    def test_tier_source_failure_is_swallowed(self):
        engine, clock = make_engine()

        def broken():
            raise RuntimeError("ledger gone")

        engine.set_tier_source(broken)
        engine.observe("/predict", "ok", 0.001)  # must not raise
        assert engine.alerts() == []

    def test_metrics_rows_shape(self):
        engine, clock = make_engine()
        engine.observe("/predict", "ok", 0.001)
        rows = engine.metrics_rows()
        assert set(rows) == {
            "availability", "latency-p95", "shed-rate", "hit-rate",
        }
        for row in rows.values():
            assert row["state"] in ("ok", "warn", "page")
            assert set(row["burn"]) == {"10s", "30s", "1m", "2m"}

    def test_endpoint_scoping(self):
        config = dict(
            FAST_CONFIG,
            objectives=[{
                "name": "tune-availability", "type": "availability",
                "target": 0.999, "endpoint": "/tune",
            }],
        )
        engine, clock = make_engine(config)
        for _ in range(100):
            engine.observe("/predict", "failed", 0.01)  # out of scope
            clock.t += 0.4
        assert engine.alerts() == []
        for _ in range(100):
            engine.observe("/tune", "failed", 0.01)
            clock.t += 0.4
        assert [a["objective"] for a in engine.alerts()] == [
            "tune-availability"
        ]


# ----------------------------------------------------------------------
# Config loading
# ----------------------------------------------------------------------
class TestSloConfig:
    def test_defaults(self):
        config = load_slo_config(None)
        names = [o["name"] for o in config["objectives"]]
        assert names == [
            "availability", "latency-p95", "response-hit-rate",
            "shed-rate",
        ]

    def test_inline_json_merges_over_defaults(self):
        config = load_slo_config(
            '{"burn": {"page": 10.0}, "objectives":'
            ' [{"name": "a", "type": "availability", "target": 0.99}]}'
        )
        assert config["burn"]["page"] == 10.0
        assert config["burn"]["warn"] == 6.0  # default retained
        assert len(config["objectives"]) == 1

    def test_file_source(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(DEFAULT_SLO_CONFIG))
        config = load_slo_config(str(path))
        assert len(config["objectives"]) == 4

    def test_missing_file_is_loud(self):
        with pytest.raises(ValueError, match="not found"):
            load_slo_config("/nonexistent/slo.json")

    def test_bad_json_is_loud(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            load_slo_config("{broken")

    @pytest.mark.parametrize("objectives, message", [
        ([], "non-empty"),
        ([{"name": "x", "type": "nope"}], "type must be one of"),
        ([{"name": "x", "type": "latency"}], "missing"),
        ([{"type": "availability", "target": 0.9}], "string name"),
        (
            [
                {"name": "x", "type": "availability", "target": 0.9},
                {"name": "x", "type": "shed_rate", "ceiling": 0.1},
            ],
            "duplicate",
        ),
    ])
    def test_objective_validation(self, objectives, message):
        with pytest.raises(ValueError, match=message):
            load_slo_config(json.dumps({"objectives": objectives}))

    def test_degenerate_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            SloEngine({
                "objectives": [{
                    "name": "x", "type": "availability", "target": 1.0,
                }],
            })

    def test_bad_burn_override_rejected(self):
        with pytest.raises(ValueError, match="burn override"):
            SloEngine({
                "objectives": [{
                    "name": "x", "type": "availability",
                    "target": 0.99, "burn": {"page": -1.0},
                }],
            })


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_bounds_and_bookkeeping(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record(endpoint="/predict", outcome="ok", latency_ms=i)
        snap = rec.snapshot()
        assert snap == {
            "capacity": 4, "held": 4, "recorded": 10, "dropped": 6,
        }
        tail = rec.tail(n=10)
        assert [e["latency_ms"] for e in tail] == [9, 8, 7, 6]
        # seq is monotone and survives ring wrap.
        assert [e["seq"] for e in tail] == [10, 9, 8, 7]

    def test_filters(self):
        rec = FlightRecorder(capacity=16)
        rec.record(endpoint="/predict", outcome="ok", latency_ms=1.0)
        rec.record(endpoint="/tune", outcome="failed", latency_ms=900.0)
        rec.record(endpoint="/tune", outcome="ok", latency_ms=5.0)
        assert [
            e["endpoint"] for e in rec.tail(endpoint="/tune")
        ] == ["/tune", "/tune"]
        assert [
            e["outcome"] for e in rec.tail(outcome="failed")
        ] == ["failed"]
        assert [
            e["latency_ms"] for e in rec.tail(min_latency_ms=100.0)
        ] == [900.0]

    def test_zero_capacity_is_inert(self):
        rec = FlightRecorder(capacity=0)
        rec.record(endpoint="/predict", outcome="ok")
        assert rec.tail() == []
        assert rec.snapshot()["recorded"] == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=-1)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def sample_snapshot():
    hist = LatencyHistogram()
    for s in (0.001, 0.002, 0.01, 0.5):
        hist.record(s)
    return {
        "endpoints": {
            "/predict": {
                "outcomes": {"ok": 3, "failed": 1},
                "latency_histogram": hist.to_dict(),
            },
        },
        "tiers": {
            "response": {
                "hits": 5, "misses": 2, "puts": 7, "evictions": 0,
                "size": 7, "hit_rate": 5 / 7,
            },
            # Never consulted: hit_rate None must be OMITTED.
            "approx": {
                "hits": 0, "misses": 0, "puts": 0, "evictions": 0,
                "size": 0, "hit_rate": None,
            },
        },
        "predictor": {
            "lc_served": 2, "sim_served": 1, "lc_validation_mismatch": 0,
        },
        "stages": {"tune": {"total_s": 1.25, "calls": 3}},
        "queue": {"depth": 1, "shed": 4},
        "queues": {"cheap": {"depth": 1}, "expensive": {"depth": 0}},
        "uptime_s": 12.5,
        "draining": False,
        "slo": {
            "availability": {
                "state": "page", "budget": 0.001,
                "burn": {"1m": 500.0, "5m": 480.0},
            },
        },
    }


class TestPrometheus:
    def test_render_parses_strictly(self):
        text = render_prometheus(sample_snapshot())
        families = parse_prometheus(text)
        assert families["repro_requests_total"] == 2
        # 4 samples over distinct buckets + (+Inf) + _sum + _count.
        assert families["repro_request_latency_seconds"] >= 6
        assert families["repro_tier_hits_total"] == 2
        assert families["repro_slo_burn_rate"] == 2
        assert families["repro_slo_alert"] == 1

    def test_none_hit_rate_omitted(self):
        text = render_prometheus(sample_snapshot())
        assert 'repro_tier_hit_rate{tier="response"}' in text
        assert 'repro_tier_hit_rate{tier="approx"}' not in text

    def test_histogram_buckets_cumulative(self):
        text = render_prometheus(sample_snapshot())
        buckets = [
            line for line in text.splitlines()
            if line.startswith("repro_request_latency_seconds_bucket")
        ]
        values = [float(line.rsplit(" ", 1)[1]) for line in buckets]
        assert values == sorted(values)
        assert buckets[-1].split(" ")[0].endswith('le="+Inf"}')
        assert values[-1] == 4.0
        assert "repro_request_latency_seconds_count" in text

    def test_label_escaping(self):
        snap = {
            "endpoints": {
                'p"q\\r': {"outcomes": {"ok": 1}},
            },
        }
        text = render_prometheus(snap)
        parse_prometheus(text)  # must stay parseable
        assert '\\"' in text and "\\\\" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == "\n"
        assert parse_prometheus(render_prometheus({})) == {}

    def test_alert_severity_encoding(self):
        text = render_prometheus(sample_snapshot())
        assert 'repro_slo_alert{objective="availability"} 2' in text

    @pytest.mark.parametrize("bad", [
        "not a metric line at all {",
        "# BOGUS comment kind",
        'family_never_declared{x="y"} 1',
        "# TYPE ok gauge\nok notanumber",
        '# TYPE ok gauge\nok{bad label} 1',
    ])
    def test_parser_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_prometheus(bad)

    def test_inf_value_accepted(self):
        text = "# TYPE x gauge\nx +Inf\n"
        assert parse_prometheus(text) == {"x": 1}

"""Live-server drills of the store stack: approximate serving + cost
routing.

These hit a real :class:`BackgroundServer` over HTTP, mirroring the
soak-test harness: the near-match tier must serve nearby grids with an
honest confidence, decline below threshold, honor ``"exact": true``
verbatim, and never leak an approximate answer into any exact tier;
cost-aware admission must shed a saturated expensive queue without
touching the cheap one.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.service.jobs as jobs
from repro.service.background import BackgroundServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig

SCALE = 1 / 32  # shrink caches so exact simulation stays fast

BASE = {"stencil": "3d7pt", "grid": [16, 16, 32], "cache_scale": SCALE}
#: |28-32|/32 = 0.125 off on the worst axis → confidence 0.875.
NEAR = dict(BASE, grid=[16, 16, 28])
#: |128-32|/128 = 0.75 off → confidence 0.25, below every threshold here.
FAR = dict(BASE, grid=[16, 16, 128])


def _cfg(**kwargs) -> ServiceConfig:
    defaults = dict(
        port=0,
        executor="thread",
        workers=4,
        queue_limit=256,
        request_timeout_s=120.0,
        drain_timeout_s=30.0,
    )
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


def _approx_cfg(**kwargs) -> ServiceConfig:
    return _cfg(approx_enabled=True, approx_confidence=0.6, **kwargs)


class TestApproximateServing:
    def test_nearby_grid_served_approximate(self):
        with BackgroundServer(_approx_cfg()) as bg:
            client = bg.client
            warm = client.predict(**BASE)
            assert warm["served"] == "fresh"
            env = client.predict(**NEAR)
            snap = bg.metrics_snapshot()

        assert env["served"] == "approximate"
        assert env["approximate"] is True
        assert isinstance(env["confidence"], float)
        assert 0.0 < env["confidence"] <= 1.0
        result = env["result"]
        assert result["approximate"] is True
        assert result["confidence"] == env["confidence"]
        assert result["grid"] == [16, 16, 28]
        assert snap["tiers"]["approx"]["hits"] == 1
        assert snap["endpoints"]["/predict"]["outcomes"]["approximate"] == 1
        assert snap["approx"] == {"enabled": True, "min_confidence": 0.6}

    def test_exact_flag_never_touches_approx_tier(self):
        with BackgroundServer(_approx_cfg()) as bg:
            client = bg.client
            # Warm with exact too: a plain warm request would itself
            # consult the (empty) approx tier and record a miss.
            client.predict(exact=True, **BASE)
            env = client.predict(exact=True, **NEAR)
            snap = bg.metrics_snapshot()

        assert env["served"] == "fresh"
        assert "approximate" not in env
        assert "approximate" not in env["result"]
        approx = snap["tiers"]["approx"]
        # Never consulted: no hit AND no miss (puts are the exact
        # observations feeding the support set — those are fine).
        assert approx["hits"] == 0 and approx["misses"] == 0
        assert approx["puts"] >= 1

    def test_below_confidence_falls_back_to_exact(self):
        with BackgroundServer(_approx_cfg()) as bg:
            client = bg.client
            client.predict(**BASE)
            env = client.predict(**FAR)
            snap = bg.metrics_snapshot()

        assert env["served"] == "fresh"
        assert "approximate" not in env
        assert "approximate" not in env["result"]
        assert snap["tiers"]["approx"]["misses"] >= 1
        assert snap["tiers"]["approx"]["hits"] == 0

    def test_approximate_never_enters_exact_tiers(self):
        with BackgroundServer(_approx_cfg()) as bg:
            client = bg.client
            client.predict(**BASE)
            # Served approximately twice: were the first answer cached
            # into the response tier, the repeat would come back as
            # "cache".
            assert client.predict(**NEAR)["served"] == "approximate"
            assert client.predict(**NEAR)["served"] == "approximate"
            # Forcing exact computes fresh and caches the real answer…
            exact_env = client.predict(exact=True, **NEAR)
            assert exact_env["served"] == "fresh"
            # …which then shadows the approximate path (response cache
            # is consulted first, and it only ever holds exact answers).
            cached_env = client.predict(**NEAR)

        assert cached_env["served"] == "response-cache"
        assert "approximate" not in cached_env["result"]
        assert (
            cached_env["result"]["mlups"] == exact_env["result"]["mlups"]
        )

    def test_disabled_by_default(self):
        with BackgroundServer(_cfg()) as bg:
            client = bg.client
            client.predict(**BASE)
            env = client.predict(**NEAR)
            snap = bg.metrics_snapshot()

        assert env["served"] == "fresh"
        approx = snap["tiers"]["approx"]
        assert all(approx[k] == 0 for k in ("hits", "misses", "puts"))
        assert snap["approx"]["enabled"] is False

    def test_exact_must_be_boolean(self):
        with BackgroundServer(_approx_cfg()) as bg:
            client = ServiceClient(port=bg.port, retries=0)
            with pytest.raises(ServiceError) as err:
                client.request(
                    "POST", "/predict", dict(BASE, exact="yes")
                )
        assert err.value.status == 400


class TestCostRouting:
    def test_queue_schema_in_metrics(self):
        cfg = _cfg(
            cost_routing=True,
            cost_threshold_s=0.5,
            cheap_queue_limit=64,
            expensive_queue_limit=2,
            cheap_timeout_s=10.0,
            expensive_timeout_s=300.0,
            expensive_workers=1,
        )
        with BackgroundServer(cfg) as bg:
            body = bg.client.metrics()
        queues = body["queues"]
        assert set(queues) == {"cheap", "expensive"}
        for row in queues.values():
            assert {"pending", "depth", "limit", "shed", "deadline_s",
                    "workers"} <= set(row)
        assert queues["cheap"]["limit"] == 64
        assert queues["cheap"]["deadline_s"] == 10.0
        assert queues["expensive"]["limit"] == 2
        assert queues["expensive"]["deadline_s"] == 300.0
        assert queues["expensive"]["workers"] == 1

    def test_routing_off_keeps_legacy_limits(self):
        with BackgroundServer(_cfg()) as bg:
            queues = bg.metrics_snapshot()["queues"]
        for row in queues.values():
            assert row["limit"] == 256
            assert row["deadline_s"] == 120.0

    def test_expensive_saturation_spares_cheap(self, monkeypatch):
        release = threading.Event()
        real_tune = jobs.tune_job

        def gated_tune(payload):
            release.wait(timeout=30)
            return real_tune(payload)

        monkeypatch.setitem(
            jobs.JOBS, "/tune", (jobs.normalize_tune, gated_tune)
        )
        cfg = _cfg(
            cost_routing=True,
            cost_threshold_s=1e-6,
            expensive_queue_limit=1,
            expensive_workers=1,
        )
        tunes = [
            {"stencil": "3d7pt", "grid": [16, 16, 32], "machine": machine,
             "tuner": "greedy", "cache_scale": SCALE}
            for machine in ("clx", "rome")
        ]
        try:
            with BackgroundServer(cfg) as bg:
                raw = ServiceClient(port=bg.port, retries=0)
                with ThreadPoolExecutor(max_workers=1) as pool:
                    first = pool.submit(
                        raw.request, "POST", "/tune", tunes[0]
                    )
                    # Wait until the first tune is parked on the
                    # expensive queue, so the shed below is
                    # deterministic.
                    deadline = time.monotonic() + 15
                    while (
                        bg.service.dispatcher.queue_snapshot()["expensive"][
                            "pending"
                        ] < 1
                    ):
                        if time.monotonic() > deadline:
                            pytest.fail("tune never reached the queue")
                        time.sleep(0.005)
                    # A second expensive job sheds at its own limit…
                    with pytest.raises(ServiceError) as err:
                        raw.request("POST", "/tune", tunes[1])
                    assert err.value.status == 429
                    # …while the cheap class still serves immediately.
                    env = raw.request(
                        "POST", "/predict",
                        {"stencil": "3d7pt", "grid": [8, 16, 32],
                         "cache_scale": SCALE},
                    )
                    assert env["served"] == "fresh"
                    release.set()
                    first.result(timeout=60)
                snap = bg.metrics_snapshot()
        finally:
            release.set()

        queues = snap["queues"]
        assert queues["expensive"]["shed"] == 1
        assert queues["cheap"]["shed"] == 0
        outcomes = snap["endpoints"]["/tune"]["outcomes"]
        assert outcomes["shed"] == 1

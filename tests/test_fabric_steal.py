"""Work-stealing job ledger + the shard-death drill.

The drill is the fabric's load-bearing guarantee: SIGKILL (here via a
deterministic ``mode=exit`` fault) a shard mid-``/tune`` and the job
must finish on a survivor, resumed from the dead owner's checkpoint,
with a winner bit-identical to a serial single-process run.
"""

import os
import time

import pytest

from repro.autotune.jobs import JobLedger, _pid_alive
from repro.engine import shard_key
from repro.fabric import BackgroundFabric, FabricConfig, HashRing
from repro.service.background import BackgroundServer
from repro.service.config import ServiceConfig
from repro.service.jobs import normalize_tune, request_key
from repro.util import crashsafe


class TestPidAlive:
    def test_self_is_alive(self):
        assert _pid_alive(os.getpid())

    def test_nonsense_pids(self):
        assert not _pid_alive(0)
        assert not _pid_alive(-5)

    def test_dead_pid(self):
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)  # reaped: fully gone
        assert not _pid_alive(pid)

    def test_zombie_is_not_alive(self):
        # A SIGKILLed shard is a zombie until its parent reaps it; its
        # jobs must be adoptable in that window (the process will never
        # run again), so the liveness probe must see through zombies.
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        deadline = time.time() + 5.0
        while time.time() < deadline and _pid_alive(pid):
            time.sleep(0.01)
        try:
            assert not _pid_alive(pid)
        finally:
            os.waitpid(pid, 0)


class TestJobLedger:
    def test_enqueue_and_read(self, tmp_path):
        ledger = JobLedger(tmp_path)
        ledger.enqueue("k1", "/tune", {"stencil": "3d7pt"})
        job = ledger.job("k1")
        assert job["endpoint"] == "/tune"
        assert job["payload"] == {"stencil": "3d7pt"}

    def test_enqueue_is_idempotent(self, tmp_path):
        ledger = JobLedger(tmp_path)
        ledger.enqueue("k1", "/tune", {"a": 1})
        ledger.enqueue("k1", "/tune", {"a": 999})  # same key: kept as-is
        assert ledger.job("k1")["payload"] == {"a": 1}

    def test_claim_then_live_peer_blocks(self, tmp_path):
        ledger = JobLedger(tmp_path)
        assert ledger.claim("k1", "me", ttl_s=60)
        # Same pid (alive), different owner name: not adoptable.
        assert not ledger.claim("k1", "rival", ttl_s=60)
        # Re-claim by the holder extends.
        assert ledger.claim("k1", "me", ttl_s=60)

    def test_expired_lease_is_stolen(self, tmp_path):
        ledger = JobLedger(tmp_path)
        assert ledger.claim("k1", "slow", ttl_s=0.01)
        time.sleep(0.05)
        assert ledger.claim("k1", "thief", ttl_s=60)

    def test_dead_pid_lease_is_stolen_immediately(self, tmp_path):
        ledger = JobLedger(tmp_path)
        crashsafe.dump_envelope(
            ledger.lease_path("k1"),
            {
                "schema": 1,
                "owner": "ghost",
                "pid": 2**22 - 1,  # beyond any default pid_max
                "expires": time.time() + 3600,
            },
        )
        assert ledger.claim("k1", "adopter", ttl_s=60)

    def test_malformed_lease_is_adoptable(self, tmp_path):
        ledger = JobLedger(tmp_path)
        crashsafe.dump_envelope(
            ledger.lease_path("k1"),
            {"schema": 1, "owner": "x", "pid": "NaN", "expires": "later"},
        )
        assert ledger.claim("k1", "adopter", ttl_s=60)

    def test_complete_publishes_and_drops_lease(self, tmp_path):
        ledger = JobLedger(tmp_path)
        ledger.enqueue("k1", "/tune", {})
        ledger.claim("k1", "me", ttl_s=60)
        ledger.complete("k1", "me", {"answer": 42})
        assert ledger.result("k1") == {"answer": 42}
        assert ledger.result_owner("k1") == "me"
        assert ledger.lease("k1") is None
        assert ledger.pending() == []

    def test_adoptable_scan(self, tmp_path):
        ledger = JobLedger(tmp_path)
        ledger.enqueue("free", "/tune", {"n": 1})
        ledger.enqueue("held", "/tune", {"n": 2})
        ledger.claim("held", "worker", ttl_s=60)  # live: not adoptable
        ledger.enqueue("done", "/tune", {"n": 3})
        ledger.complete("done", "worker", {"ok": True})
        keys = [job["key"] for job in ledger.adoptable()]
        assert keys == ["free"]

    def test_corrupt_result_is_quarantined(self, tmp_path):
        ledger = JobLedger(tmp_path)
        ledger.result_path("k1").write_text("garbage")
        assert ledger.result("k1") is None
        assert not ledger.result_path("k1").exists()


DRILL_PAYLOAD = {
    "stencil": "3d7pt",
    "grid": [32, 32, 48],
    "machine": "clx",
    "tuner": "exhaustive",
}


@pytest.mark.slow
class TestShardDeathDrill:
    def test_killed_shards_tune_is_adopted_bit_identically(self, tmp_path):
        # Compute the owner in advance from a local ring — the same
        # deterministic route the router will take — and arm ONLY that
        # shard with a mid-sweep process kill (fires after enough
        # evaluations for at least one checkpoint flush of 4 jobs).
        owner = HashRing(["0", "1", "2"]).route(
            shard_key("/tune", DRILL_PAYLOAD)
        )
        config = FabricConfig(
            fabric_dir=str(tmp_path),
            port=0,
            shards=3,
            executor="thread",
            workers=1,
            probe_interval_s=0.2,
            steal_interval_s=0.2,
            restart_shards=False,  # adoption, not restart, must resolve it
            shard_faults=((int(owner), "tuner.eval:nth=6:mode=exit"),),
        )
        with BackgroundFabric(config) as fabric:
            result = fabric.client.tune(**DRILL_PAYLOAD)
            envelope = result["result"]
            # The dead owner really died (fault exit status)...
            dead = fabric.supervisor.shards[int(owner)]
            assert not dead.alive and dead.exitcode == 70
            # ...the ledger shows a different pid published the result...
            ledger = JobLedger(tmp_path / "jobs")
            key = request_key("/tune", normalize_tune(DRILL_PAYLOAD))
            publisher = ledger.result_owner(key)
            assert publisher is not None
            assert publisher != f"shard-pid-{dead.pid}"
            # ...resumed from the checkpoint, not recomputed from zero...
            assert envelope["recovery"]["resumed_jobs"] >= 1
            assert not envelope["recovery"]["degraded"]
            # ...and the fabric reports the loss.
            health = fabric.client.healthz()
            assert health["status"] == "degraded"
            assert health["shards"][owner]["up"] is False

        # Bit-identical winner vs a serial single-process run.
        with BackgroundServer(
            ServiceConfig(port=0, executor="thread", workers=1)
        ) as bg:
            serial = bg.client.tune(**DRILL_PAYLOAD)["result"]
        assert envelope["best_plan"] == serial["best_plan"]
        assert envelope["best_mlups"] == serial["best_mlups"]
        assert (
            envelope["variants_examined"] == serial["variants_examined"]
        )

"""Fabric integration: bring-up, routing, byte-identity with the
single-process service, metric fan-in, and loss-of-shard behavior."""

import http.client
import json

import pytest

from repro.engine import shard_key
from repro.fabric import BackgroundFabric, FabricConfig, HashRing
from repro.service.background import BackgroundServer
from repro.service.config import ServiceConfig

PREDICT = {"stencil": "3d7pt", "grid": [32, 32, 48]}
RANK = {"method": "radau_iia", "grid": [16, 16, 32], "validate": False}
TUNE = {"stencil": "heat3d", "grid": [24, 24, 32], "tuner": "ecm"}


def raw_request(host, port, method, path, payload=None):
    """One request with access to status, headers and raw body bytes."""
    conn = http.client.HTTPConnection(host, port, timeout=60.0)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/json"} if body else {},
        )
        resp = conn.getresponse()
        return (
            resp.status,
            resp.read(),
            {k.lower(): v for k, v in resp.getheaders()},
        )
    finally:
        conn.close()


@pytest.fixture(scope="module")
def fabric(tmp_path_factory):
    config = FabricConfig(
        fabric_dir=str(tmp_path_factory.mktemp("fabric")),
        port=0,
        shards=3,
        executor="thread",
        workers=1,
        probe_interval_s=0.2,
        steal_interval_s=0.2,
        restart_shards=False,
    )
    with BackgroundFabric(config) as fab:
        yield fab


@pytest.fixture(scope="module")
def single():
    config = ServiceConfig(port=0, executor="thread", workers=1)
    with BackgroundServer(config) as bg:
        yield bg


@pytest.mark.slow
class TestBringUp:
    def test_healthz_reports_all_shards_up(self, fabric):
        health = fabric.client.healthz()
        assert health["http_status"] == 200
        assert health["status"] == "ok"
        assert sorted(health["shards"]) == ["0", "1", "2"]
        assert all(info["up"] for info in health["shards"].values())
        assert health["ring"]["members"] == ["0", "1", "2"]

    def test_unknown_route_404(self, fabric):
        status, body, _ = raw_request(
            fabric.config.host, fabric.port, "GET", "/nope"
        )
        assert status == 404
        assert json.loads(body) == {"error": "no route /nope"}

    def test_get_on_api_path_is_shards_405(self, fabric):
        status, body, headers = raw_request(
            fabric.config.host, fabric.port, "GET", "/predict"
        )
        assert status == 405
        assert "x-repro-shard" in headers  # a shard rendered it


@pytest.mark.slow
class TestByteIdentity:
    """The fabric must answer byte-identically to one process (the
    router adds only the X-Repro-Shard header)."""

    def test_predict_bytes(self, fabric, single):
        f_status, f_body, f_headers = raw_request(
            fabric.config.host, fabric.port, "POST", "/predict", PREDICT
        )
        s_status, s_body, _ = raw_request(
            single.config.host, single.port, "POST", "/predict", PREDICT
        )
        assert (f_status, f_body) == (s_status, s_body)
        assert f_headers["x-repro-shard"] in ("0", "1", "2")

    def test_rank_bytes_outside_timing_fields(self, fabric, single):
        # rank results carry wall-clock stage timings; everything else
        # must match byte-for-byte (compared via canonical re-dump).
        f_status, f_body, _ = raw_request(
            fabric.config.host, fabric.port, "POST", "/rank", RANK
        )
        s_status, s_body, _ = raw_request(
            single.config.host, single.port, "POST", "/rank", RANK
        )
        assert f_status == s_status == 200
        f_doc, s_doc = json.loads(f_body), json.loads(s_body)
        for doc in (f_doc, s_doc):
            for field in ("predict_seconds", "measure_seconds"):
                doc["result"].pop(field, None)
        assert json.dumps(f_doc, sort_keys=True) == json.dumps(
            s_doc, sort_keys=True
        )

    def test_tune_winner_identity(self, fabric, single):
        fab = fabric.client.tune(**TUNE)["result"]
        ser = single.client.tune(**TUNE)["result"]
        assert fab["best_plan"] == ser["best_plan"]
        assert fab["best_mlups"] == ser["best_mlups"]
        assert fab["variants_examined"] == ser["variants_examined"]

    def test_bad_payload_400_bytes(self, fabric, single):
        bad = {"stencil": "no-such-stencil"}
        f_status, f_body, _ = raw_request(
            fabric.config.host, fabric.port, "POST", "/predict", bad
        )
        s_status, s_body, _ = raw_request(
            single.config.host, single.port, "POST", "/predict", bad
        )
        assert f_status == s_status == 400
        assert f_body == s_body


@pytest.mark.slow
class TestRoutingStickiness:
    def test_identical_requests_stick_to_one_shard(self, fabric):
        payload = {"stencil": "3d25pt", "grid": [16, 16, 32]}
        seen = set()
        for _ in range(4):
            _, _, headers = raw_request(
                fabric.config.host, fabric.port, "POST", "/predict", payload
            )
            seen.add(headers["x-repro-shard"])
        assert len(seen) == 1

    def test_second_hit_serves_from_response_cache(self, fabric):
        payload = {"stencil": "3d13pt", "grid": [16, 16, 32]}
        first = fabric.client.predict(**payload)
        second = fabric.client.predict(**payload)
        assert first["served"] == "fresh"
        assert second["served"] == "response-cache"
        assert first["result"] == second["result"]

    def test_router_agrees_with_local_ring(self, fabric):
        # Any client can precompute where a request lands.
        ring = HashRing(["0", "1", "2"])
        payload = {"stencil": "3d7pt", "grid": [20, 20, 24]}
        expected = ring.route(shard_key("/predict", payload))
        _, _, headers = raw_request(
            fabric.config.host, fabric.port, "POST", "/predict", payload
        )
        assert headers["x-repro-shard"] == expected


@pytest.mark.slow
class TestMetricsFanIn:
    def test_shard_dimension_and_aggregate(self, fabric):
        fabric.client.predict(**PREDICT)
        metrics = fabric.client.metrics()
        assert set(metrics) == {"fabric", "shards", "aggregate"}
        assert metrics["fabric"]["ring"]["members"]
        for member, snapshot in metrics["shards"].items():
            assert snapshot["shard"] == int(member)  # the new dimension
        agg = metrics["aggregate"]
        assert agg["shards_reporting"] == len(metrics["shards"])
        # The aggregate is the sum of the per-shard endpoint counters.
        total = sum(
            stats.get("requests", 0)
            for snap in metrics["shards"].values()
            for stats in snap.get("endpoints", {}).values()
        )
        assert agg["requests"] == total >= 1

    def test_tier_ledger_arithmetic(self, fabric):
        fabric.client.predict(**PREDICT)
        metrics = fabric.client.metrics()
        tiers = metrics["aggregate"]["tiers"]
        # Every aggregate tier counter is exactly the sum of the shard
        # snapshots — the ledger shape is uniform, so fan-in is plain
        # addition, never estimation.
        for name, ledger in tiers.items():
            for field in ("hits", "misses", "puts", "evictions"):
                shard_sum = sum(
                    snap.get("tiers", {}).get(name, {}).get(field, 0)
                    for snap in metrics["shards"].values()
                )
                assert ledger[field] == shard_sum, (name, field)
        # The response tier saw the predict above on some shard.
        response = tiers["response"]
        assert response["hits"] + response["misses"] >= 1
        assert response["hit_rate"] is not None
        # An untouched tier reports hit_rate None, not 0.0: nobody ever
        # looked, which is a different state from missing every time.
        untouched = [
            name for name, ledger in tiers.items()
            if ledger["hits"] + ledger["misses"] == 0
        ]
        assert untouched, "expected at least one untouched tier"
        for name in untouched:
            assert tiers[name]["hit_rate"] is None, name

    def test_queue_classes_aggregate(self, fabric):
        metrics = fabric.client.metrics()
        queues = metrics["aggregate"]["queues"]
        assert set(queues) == {"cheap", "expensive"}
        for row in queues.values():
            for field in ("pending", "depth", "limit", "shed", "workers"):
                assert isinstance(row[field], int)
            assert row["deadline_s"] > 0


@pytest.mark.slow
class TestShardLoss:
    """Killing a shard degrades health but never availability: its
    keys reroute deterministically to ring successors.  (Runs last in
    the module: the shared fabric loses a member here.)"""

    def test_kill_then_keys_reroute(self, fabric):
        ring = HashRing(["0", "1", "2"])
        payload = {"stencil": "3d7pt", "grid": [40, 40, 40]}
        key = shard_key("/predict", payload)
        victim = ring.route(key)
        successor = ring.route_order(key, limit=2)[1]

        fabric.kill_shard(int(victim))
        status, body, headers = raw_request(
            fabric.config.host, fabric.port, "POST", "/predict", payload
        )
        assert status == 200
        assert headers["x-repro-shard"] == successor
        assert json.loads(body)["result"]["stencil"]

        health = fabric.client.healthz()
        assert health["http_status"] == 200
        assert health["status"] == "degraded"
        assert health["shards"][victim]["up"] is False
        metrics = fabric.client.metrics()
        assert victim in metrics["fabric"]["down"]
        assert metrics["fabric"]["router"]["rerouted"] >= 1

"""Tests for grids, layouts and the shared address space."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.grid import Grid, GridSet, Layout
from repro.stencil import get_stencil


class TestLayout:
    def test_strides_row_major(self):
        lay = Layout((4, 5, 6))
        assert lay.strides == (30, 6, 1)

    def test_element_addr(self):
        lay = Layout((4, 5, 6), dtype_bytes=8, base_addr=1000)
        assert lay.element_addr((0, 0, 0)) == 1000
        assert lay.element_addr((1, 2, 3)) == 1000 + (30 + 12 + 3) * 8

    def test_row_addresses(self):
        lay = Layout((2, 8))
        addrs = lay.row_addresses((1,), 2, 5)
        assert list(addrs) == [(8 + 2) * 8, (8 + 3) * 8, (8 + 4) * 8]

    def test_row_addresses_empty(self):
        lay = Layout((2, 8))
        assert len(lay.row_addresses((0,), 5, 5)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Layout((0, 4))
        with pytest.raises(ValueError):
            Layout((4,), dtype_bytes=2)
        with pytest.raises(ValueError):
            Layout((4,), base_addr=-8)

    @given(
        shape=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
        idx_frac=st.tuples(st.floats(0, 0.99), st.floats(0, 0.99), st.floats(0, 0.99)),
    )
    def test_addresses_unique_and_in_range(self, shape, idx_frac):
        lay = Layout(shape)
        idx = tuple(int(f * s) for f, s in zip(idx_frac, shape))
        addr = lay.element_addr(idx)
        assert 0 <= addr < lay.size_bytes
        # Bijectivity: reconstruct the index from the address.
        linear = addr // 8
        rec = []
        for stride in lay.strides:
            rec.append(linear // stride)
            linear %= stride
        assert tuple(rec) == idx


class TestGrid:
    def test_interior_view_writes_through(self):
        g = Grid("u", (4, 4), halo=2)
        g.interior[...] = 7.0
        assert g.data[2:6, 2:6].min() == 7.0
        assert g.data[0, 0] == 0.0

    def test_shifted_reads_halo(self):
        g = Grid("u", (3, 3), halo=1)
        g.data[...] = np.arange(25).reshape(5, 5)
        shifted = g.shifted((-1, 0))
        assert shifted[0, 0] == g.data[0, 1]

    def test_shifted_rejects_overflow(self):
        g = Grid("u", (3, 3), halo=1)
        with pytest.raises(ValueError):
            g.shifted((2, 0))

    def test_name_validation(self):
        with pytest.raises(ValueError):
            Grid("2bad", (3,), halo=0)


class TestGridSet:
    def test_grids_created_for_spec(self):
        spec = get_stencil("3dvarcoef")
        gs = GridSet(spec, (4, 4, 8))
        assert set(gs.names) == set(spec.grids)
        assert gs.output.name == spec.output

    def test_page_aligned_disjoint_addresses(self):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (4, 4, 8))
        grids = sorted(gs, key=lambda g: g.layout.base_addr)
        for a, b in zip(grids, grids[1:]):
            assert b.layout.base_addr % GridSet.PAGE == 0
            assert b.layout.base_addr >= a.layout.base_addr + a.footprint_bytes

    def test_randomize_deterministic(self):
        spec = get_stencil("3d7pt")
        g1 = GridSet(spec, (4, 4, 8))
        g2 = GridSet(spec, (4, 4, 8))
        g1.randomize(3)
        g2.randomize(3)
        assert np.array_equal(g1["u"].data, g2["u"].data)

    def test_swap_in_out(self):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (4, 4, 8))
        gs.randomize(1)
        before = gs["u"].data.copy()
        gs.swap_in_out()
        assert np.array_equal(gs["u_new"].data, before)

    def test_rank_mismatch(self):
        spec = get_stencil("3d7pt")
        with pytest.raises(ValueError):
            GridSet(spec, (4, 4))

"""Tests for experiment-suite shared helpers."""

import pytest

from repro.experiments import common


class TestCommon:
    def test_machines_are_scaled(self):
        for m in common.machines():
            assert "0.03125" in m.name  # scaled by CACHE_SCALE

    def test_geomean(self):
        assert common.geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert common.geomean([3.0]) == 3.0

    def test_geomean_validation(self):
        with pytest.raises(ValueError):
            common.geomean([])
        with pytest.raises(ValueError):
            common.geomean([1.0, -2.0])

    def test_grids_ordered_by_size(self):
        import math

        sizes = [
            math.prod(g)
            for g in (common.GRID_SMALL, common.GRID_MEDIUM, common.GRID_LARGE)
        ]
        assert sizes == sorted(sizes)

    def test_scaled_caches_preserve_ratio(self):
        from repro.machine import cascade_lake_sp

        full = cascade_lake_sp()
        scaled = common.clx()
        ratio = (
            scaled.level("L2").size_bytes / full.level("L2").size_bytes
        )
        assert ratio == pytest.approx(common.CACHE_SCALE, rel=0.01)

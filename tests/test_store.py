"""Unit tests of the unified ``repro.store`` tier substrate.

Covers the ledger shape (hit_rate honestly None while untouched), the
two building-block tiers, the stack's promotion/admission semantics,
the database/checkpoint adapters, and the near-match approximate tier's
confidence + interpolation contract.
"""

import threading

import pytest

from repro.autotune.checkpoint import JsonCheckpoint
from repro.offsite.database import TuningDatabase, TuningKey, TuningRecord
from repro.store import (
    CheckpointTier,
    DatabaseTier,
    DiskJsonTier,
    LruTier,
    NearMatchTier,
    TierStack,
    grid_confidence,
)
from repro.store.tier import TierLedger


class TestTierLedger:
    def test_counts_and_snapshot(self):
        ledger = TierLedger()
        assert ledger.hit_rate is None  # untouched ≠ 0.0
        ledger.record_hit()
        ledger.record_miss(3)
        ledger.record_put(2)
        ledger.record_eviction()
        snap = ledger.snapshot()
        assert snap == {
            "hits": 1, "misses": 3, "puts": 2, "evictions": 1,
            "hit_rate": 0.25,
        }

    def test_reset(self):
        ledger = TierLedger()
        ledger.record_hit()
        ledger.reset()
        assert ledger.snapshot()["hits"] == 0
        assert ledger.hit_rate is None


class TestLruTier:
    def test_hit_miss_and_eviction_accounting(self):
        tier = LruTier("t", capacity=2)
        assert tier.get("a") is None
        tier.put("a", 1)
        tier.put("b", 2)
        assert tier.get("a") == 1  # refreshes recency
        tier.put("c", 3)  # evicts b (LRU)
        assert tier.get("b") is None
        assert tier.get("a") == 1
        snap = tier.stats()
        assert snap["hits"] == 2 and snap["misses"] == 2
        assert snap["puts"] == 3 and snap["evictions"] == 1
        assert snap["size"] == 2

    def test_zero_capacity_stores_nothing(self):
        tier = LruTier("t", capacity=0)
        tier.put("a", 1)
        assert len(tier) == 0 and tier.stats()["puts"] == 0

    def test_peek_bypasses_ledger_and_recency(self):
        tier = LruTier("t")
        tier.put("a", 1)
        assert tier.peek("a") == 1 and tier.peek("b") is None
        snap = tier.stats()
        assert snap["hits"] == 0 and snap["misses"] == 0


class TestDiskJsonTier:
    def test_roundtrip_and_missing(self, tmp_path):
        tier = DiskJsonTier("d", tmp_path)
        assert tier.get("k") is None
        tier.put("k", {"x": 1})
        assert tier.get("k") == {"x": 1}
        assert len(tier) == 1
        snap = tier.stats()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["puts"] == 1

    def test_corrupt_file_quarantined(self, tmp_path):
        tier = DiskJsonTier("d", tmp_path)
        tier.path_for("bad").write_text("{ not json")
        assert tier.get("bad") is None
        assert not tier.path_for("bad").exists()
        assert list(tmp_path.glob("bad.json.corrupt.*"))

    def test_validator_failure_quarantines(self, tmp_path):
        def validator(rec):
            if "required" not in rec:
                raise ValueError("bad record")

        tier = DiskJsonTier("d", tmp_path, validator=validator)
        tier.put("k", {"other": 1})
        assert tier.get("k") is None
        assert not tier.path_for("k").exists()


class TestTierStack:
    def test_promotion_counts_per_tier(self, tmp_path):
        mem = LruTier("mem")
        disk = DiskJsonTier("disk", tmp_path)
        stack = TierStack([mem, disk])
        stack.put("k", {"v": 1})
        # Fresh memory: hit in mem, disk untouched by the lookup.
        assert stack.get("k") == {"v": 1}
        # Drop memory; the next get is a mem miss + disk hit + promote.
        mem.clear()
        assert stack.get("k") == {"v": 1}
        assert mem.ledger.misses == 1 and disk.ledger.hits == 1
        # Promoted: served from memory again.
        assert stack.get("k") == {"v": 1}
        assert mem.ledger.hits == 2

    def test_admission_predicate_gates_puts(self):
        a = LruTier("a")
        b = LruTier("b")
        stack = TierStack(
            [a, b], admit={"a": lambda key, value: value.get("clean", False)}
        )
        stack.put("x", {"clean": False})
        assert a.peek("x") is None and b.peek("x") is not None
        stack.put("y", {"clean": True})
        assert a.peek("y") is not None

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TierStack([LruTier("t"), LruTier("t")])
        with pytest.raises(ValueError):
            TierStack([])

    def test_stats_shape(self, tmp_path):
        stack = TierStack([LruTier("mem"), DiskJsonTier("disk", tmp_path)])
        stats = stack.stats()
        assert set(stats) == {"mem", "disk"}
        for row in stats.values():
            assert {"hits", "misses", "puts", "evictions", "hit_rate",
                    "size"} <= set(row)


def _record(grid=(8, 8, 16)) -> TuningRecord:
    return TuningRecord(
        key=TuningKey("pirk", "heat", "clx", tuple(grid)),
        best_variant="v0",
        block=(4, 4, 8),
        predicted_s_per_step=1e-3,
        ranking=["v0", "v1"],
    )


class TestAdapters:
    def test_database_tier_ledgers_lookups(self):
        tier = DatabaseTier(TuningDatabase())
        record = _record()
        assert tier.get(record.key) is None
        tier.put(record)
        assert tier.get(record.key) is record
        assert tier.lookup(record.key) is record
        snap = tier.stats()
        assert snap["hits"] == 2 and snap["misses"] == 1
        assert snap["puts"] == 1 and snap["size"] == 1

    def test_checkpoint_tier(self, tmp_path):
        cp = JsonCheckpoint(tmp_path / "cp.json", "fp", interval=100)
        tier = CheckpointTier(cp)
        assert tier.get("job") is None
        tier.put("job", {"cycles": 2.5})
        assert tier.get("job") == {"cycles": 2.5}
        tier.close()  # flushes
        resumed = JsonCheckpoint(tmp_path / "cp.json", "fp")
        assert resumed.get_raw("job") == {"cycles": 2.5}
        snap = tier.stats()
        assert snap["hits"] == 1 and snap["misses"] == 1


def _predict_result(grid, mlups=100.0) -> dict:
    return {
        "stencil": "3d7pt",
        "grid": list(grid),
        "mlups": mlups,
        "cycles_per_lup": 1e4 / mlups,
        "notes": "exact",
    }


def _normalized(grid) -> dict:
    return {
        "stencil": "3d7pt",
        "grid": list(grid),
        "machine": "clx",
        "block": None,
        "cache_scale": 1.0,
        "capacity_factor": 1.0,
    }


class TestGridConfidence:
    def test_identity_and_bounds(self):
        assert grid_confidence((8, 8, 8), (8, 8, 8)) == 1.0
        assert grid_confidence((8, 8), (8, 8, 8)) == 0.0  # rank mismatch
        # Worst axis wins: doubling one axis halves confidence.
        assert grid_confidence((8, 8, 16), (8, 8, 8)) == pytest.approx(0.5)
        assert grid_confidence((9, 8, 8), (8, 8, 8)) > 0.85


class TestNearMatchTier:
    def test_exact_grid_reserve_confidence_one(self):
        tier = NearMatchTier()
        tier.observe("/predict", _normalized((8, 8, 8)),
                     _predict_result((8, 8, 8)))
        served = tier.lookup("/predict", _normalized((8, 8, 8)), 0.9)
        assert served is not None
        result, confidence = served
        assert confidence == 1.0
        assert result["approximate"] is True
        assert result["confidence"] == 1.0
        assert tier.ledger.hits == 1

    def test_interpolates_between_supports(self):
        tier = NearMatchTier()
        tier.observe("/predict", _normalized((8, 8, 8)),
                     _predict_result((8, 8, 8), mlups=100.0))
        tier.observe("/predict", _normalized((8, 8, 16)),
                     _predict_result((8, 8, 16), mlups=200.0))
        served = tier.lookup("/predict", _normalized((8, 8, 12)), 0.5)
        assert served is not None
        result, confidence = served
        # Interpolated strictly between the two supports, grid rewritten.
        assert 100.0 < result["mlups"] < 200.0
        assert result["grid"] == [8, 8, 12]
        assert 0.0 < confidence < 1.0
        # Non-whitelisted fields copy from the nearest support.
        assert result["notes"] == "exact"

    def test_below_threshold_declines(self):
        tier = NearMatchTier()
        tier.observe("/predict", _normalized((8, 8, 8)),
                     _predict_result((8, 8, 8)))
        assert tier.lookup("/predict", _normalized((8, 8, 64)), 0.9) is None
        assert tier.ledger.misses == 1

    def test_different_family_never_served(self):
        tier = NearMatchTier()
        tier.observe("/predict", _normalized((8, 8, 8)),
                     _predict_result((8, 8, 8)))
        other = dict(_normalized((8, 8, 8)), machine="rome")
        assert tier.lookup("/predict", other, 0.1) is None

    def test_refuses_approximate_support(self):
        tier = NearMatchTier()
        poisoned = dict(_predict_result((8, 8, 8)), approximate=True)
        tier.observe("/predict", _normalized((8, 8, 8)), poisoned)
        assert len(tier) == 0

    def test_capacity_evicts_lru_family(self):
        tier = NearMatchTier(capacity=2)
        for machine in ("clx", "rome", "tx2"):
            norm = dict(_normalized((8, 8, 8)), machine=machine)
            tier.observe("/predict", norm, _predict_result((8, 8, 8)))
        assert len(tier) <= 2
        assert tier.ledger.evictions >= 1

    def test_stored_support_does_not_alias_response(self):
        tier = NearMatchTier()
        result = _predict_result((8, 8, 8))
        tier.observe("/predict", _normalized((8, 8, 8)), result)
        result["mlups"] = -1.0  # caller mutates its response afterwards
        served = tier.lookup("/predict", _normalized((8, 8, 8)), 0.9)
        assert served[0]["mlups"] == 100.0

    def test_threadsafe_observe_lookup(self):
        tier = NearMatchTier(capacity=64)
        errors = []

        def hammer(machine):
            try:
                norm = dict(_normalized((8, 8, 8)), machine=machine)
                for _ in range(50):
                    tier.observe(
                        "/predict", norm, _predict_result((8, 8, 8))
                    )
                    tier.lookup("/predict", norm, 0.5)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(f"m{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

"""The live brownout drill: sustained overload -> ladder -> recovery.

One thread-executor server with ONE worker, the full overload stack
armed (SLO engine, adaptive limits, brownout ladder), and jobs slowed
to known costs so the drill is deterministic in *shape*:

1. **Unloaded**: measure the predict goodput of two client threads.
2. **Overload**: four tune threads saturate the single worker (every
   tune holds it ~120ms), predict latency blows through the SLO's
   threshold, the burn pages, and the ladder walks down the stages.
3. **Brownout**: once the ladder reaches ``predict-analytic`` the
   predicts are served degraded off the analytic model — goodput under
   sustained ~2x overload must stay >= 70% of unloaded.  One more
   stage and the tunes are refused (503 + Retry-After) while predicts
   keep flowing: heavy work sheds first.
4. **Recovery**: load stops, the burn subsides, and the ladder walks
   all the way back to ``normal`` — no restart — with the whole
   episode ledgered on /healthz, /slo and the flight recorder.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.service.jobs as jobs
from repro.service.background import BackgroundServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig

from tests.test_overload import _request_with_headers

#: Tight windows + a low burn threshold so a saturated worker pages
#: within a second or two of real time instead of an hour.  The page
#: threshold is a *bad fraction* of 5% (budget 0.05 x burn 1.0): fast
#: degraded predicts cannot dilute the slow tunes below it, so the
#: ladder holds its brownout stages for as long as the overload lasts.
DRILL_SLO = {
    "windows": {"page": [0.5, 1.0], "warn": [1.5, 3.0]},
    "burn": {"page": 1.0, "warn": 0.75},
    "objectives": [
        {"name": "availability", "type": "availability", "target": 0.999},
        {
            "name": "latency-p95",
            "type": "latency",
            "quantile": 0.95,
            "threshold_ms": 40.0,
        },
    ],
}

TUNE_SLEEP_S = 0.12     # one tune holds the single worker this long
PREDICT_SLEEP_S = 0.025  # unloaded predicts stay under the threshold


def _drill_config() -> ServiceConfig:
    return ServiceConfig(
        port=0,
        executor="thread",
        workers=1,
        queue_limit=64,
        request_timeout_s=30.0,
        slo_enabled=True,
        slo_config=json.dumps(DRILL_SLO),
        adaptive_limits=True,
        adaptive_target_ms=1000.0,
        brownout=True,
        # Escalation must hold LONGER than the widest page window (1s)
        # so stage 3 clears the alert before a stage-4 full shed fires.
        brownout_escalate_s=2.0,
        brownout_recover_s=0.7,
        flight_recorder=256,
    )


def _measure_predict_goodput(
    port: int, duration_s: float, start_index: int
) -> tuple[int, float]:
    """Fire unique predicts from two threads; count 200s per second."""
    counter = {"ok": 0}
    lock = threading.Lock()
    stop_at = time.monotonic() + duration_s

    def worker(thread_id: int) -> None:
        client = ServiceClient(port=port, retries=0, timeout_s=30.0)
        k = 0
        while time.monotonic() < stop_at:
            k += 1
            grid = [
                16 + 2 * ((start_index + k) % 40),
                16 + 4 * thread_id,
                32,
            ]
            try:
                client.predict(stencil="3d7pt", grid=grid)
            except (ServiceError, OSError):
                continue
            with lock:
                counter["ok"] += 1

    t0 = time.monotonic()
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=duration_s + 30.0)
    elapsed = time.monotonic() - t0
    return counter["ok"], counter["ok"] / elapsed


@pytest.fixture()
def slowed_jobs(monkeypatch):
    """Pin job costs: tunes saturate, unloaded predicts stay healthy."""

    def slow_tune(payload):
        time.sleep(TUNE_SLEEP_S)
        return {"ok": True, "grid": payload.get("grid")}

    def slow_predict(payload):
        time.sleep(PREDICT_SLEEP_S)
        return {"ok": True, "grid": payload.get("grid")}

    monkeypatch.setitem(
        jobs.JOBS, "/tune", (jobs.normalize_tune, slow_tune)
    )
    monkeypatch.setitem(
        jobs.JOBS, "/predict", (jobs.normalize_predict, slow_predict)
    )


class TestBrownoutDrill:
    def test_overload_brownout_and_full_recovery(self, slowed_jobs):
        with BackgroundServer(_drill_config()) as bg:
            client = bg.client

            # -- phase 1: unloaded goodput ------------------------------
            _, rate_unloaded = _measure_predict_goodput(
                bg.port, duration_s=1.0, start_index=0
            )
            assert rate_unloaded > 0
            health = client.healthz()
            assert health["brownout"]["stage"] == 0

            # -- phase 2: sustained overload ----------------------------
            stop_load = threading.Event()
            tune_results: list[tuple[int, dict, bytes]] = []
            tune_lock = threading.Lock()

            def tune_storm(thread_id: int) -> None:
                k = 0
                while not stop_load.is_set():
                    k += 1
                    payload = {
                        "stencil": "3d7pt",
                        "grid": [8 + thread_id, 16 + (k % 50), 32],
                    }
                    try:
                        status, raw, headers = _request_with_headers(
                            "127.0.0.1", bg.port, "POST", "/tune",
                            payload, {},
                        )
                    except OSError:
                        continue
                    with tune_lock:
                        tune_results.append((status, headers, raw))

            storm = [
                threading.Thread(target=tune_storm, args=(i,))
                for i in range(4)
            ]
            for t in storm:
                t.start()

            try:
                # The burn pages and the ladder walks to the analytic
                # stage; /healthz polls also advance the ladder.
                max_stage = 0
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    stage = client.healthz()["brownout"]["stage"]
                    max_stage = max(max_stage, stage)
                    if max_stage >= 2:
                        break
                    time.sleep(0.05)
                assert max_stage >= 2, (
                    "ladder never reached predict-analytic under "
                    "sustained overload"
                )

                # -- phase 3: goodput while browned out ---------------
                ok, rate_loaded = _measure_predict_goodput(
                    bg.port, duration_s=2.0, start_index=1000
                )
                assert ok > 0
                assert rate_loaded >= 0.7 * rate_unloaded, (
                    f"predict goodput collapsed under overload: "
                    f"{rate_loaded:.1f}/s loaded vs "
                    f"{rate_unloaded:.1f}/s unloaded"
                )

                # Heavy work sheds first: wait for a browned-out tune.
                deadline = time.monotonic() + 30.0
                shed_tune = None
                while shed_tune is None and time.monotonic() < deadline:
                    with tune_lock:
                        for status, headers, raw in tune_results:
                            if status == 503:
                                body = json.loads(raw)
                                if body.get("error") == "brownout":
                                    shed_tune = (status, headers, body)
                                    break
                    time.sleep(0.05)
                assert shed_tune is not None, (
                    "tunes were never shed while predicts kept flowing"
                )
                _, headers, body = shed_tune
                assert body["endpoint"] == "/tune"
                assert body["stage"] in ("shed-heavy", "full-shed")
                assert "retry-after" in headers

                # Predicts served during the brownout carry the marker.
                envelope = client.predict(
                    stencil="3d7pt", grid=[62, 62, 94]
                )
                if "brownout" in envelope:
                    assert envelope["degraded"] is True
            finally:
                stop_load.set()
                for t in storm:
                    t.join(timeout=30.0)

            # -- phase 4: full recovery, no restart -------------------
            deadline = time.monotonic() + 30.0
            stage = None
            while time.monotonic() < deadline:
                stage = client.healthz()["brownout"]["stage"]
                if stage == 0:
                    break
                time.sleep(0.1)
            assert stage == 0, f"ladder stuck at stage {stage}"

            # The whole episode is ledgered on every surface.
            health = client.healthz()
            transitions = health["brownout"]["transitions"]
            directions = [t["direction"] for t in transitions]
            assert directions.count("escalate") >= 3  # reached stage 3
            assert directions.count("recover") == directions.count(
                "escalate"
            )
            assert transitions[-1]["direction"] == "recover"
            assert transitions[-1]["to"] == "normal"
            assert transitions[0]["alerts"]  # driven by named alerts

            slo_doc = client.slo()
            assert slo_doc["brownout"]["stage"] == 0
            assert slo_doc["brownout"]["escalations"] >= 3
            assert (
                slo_doc["brownout"]["escalations"]
                == slo_doc["brownout"]["recoveries"]
            )

            # The flight recorder holds the (recent) transitions too.
            # Older ones may have been evicted by the drill's request
            # volume, but the final recoveries are the freshest entries.
            recorder = client.debug_requests(n=256, endpoint="@brownout")
            ledgered = recorder["requests"]
            assert ledgered, "no @brownout entries in the flight recorder"
            for entry in ledgered:
                assert entry["outcome"] in ("escalate", "recover")
                assert "stage_from" in entry and "stage_to" in entry
                assert "alerts" in entry
            # ``tail`` returns newest first: the final step to normal.
            assert ledgered[0]["outcome"] == "recover"
            assert ledgered[0]["stage_to"] == "normal"

            # And the service is genuinely whole again: a fresh predict
            # is served exact, not degraded.
            envelope = client.predict(stencil="3d7pt", grid=[70, 70, 96])
            assert "degraded" not in envelope
            assert "brownout" not in envelope
            assert envelope["served"] == "fresh"

"""Grid-native PIRK solver tests (the Offsite-YaskSite integration)."""

import numpy as np
import pytest

from repro.codegen import KernelPlan
from repro.ode import (
    GridPirkSolver,
    HeatND,
    PIRK,
    Wave1D,
    convergence_order,
    integrate,
    lobatto_iiic,
    radau_iia,
    rk4,
)


class TestGridPirk:
    def test_step_matches_vector_pirk(self):
        ivp = HeatND(3, 10, t_end=0.001)
        tab = radau_iia(3)
        vec = PIRK(tab, 2)
        grid = GridPirkSolver(ivp, tab, 2)
        h = 1e-5
        ref = vec.step(ivp.rhs, 0.0, ivp.y0, h)
        got = grid.step(None, 0.0, ivp.y0, h)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-15)

    def test_step_matches_with_blocked_plan(self):
        ivp = HeatND(3, 12, t_end=0.001)
        tab = lobatto_iiic(3)
        vec = PIRK(tab, 3)
        grid = GridPirkSolver(
            ivp, tab, 3, plan=KernelPlan(block=(4, 4, 12))
        )
        h = 2e-5
        ref = vec.step(ivp.rhs, 0.0, ivp.y0, h)
        got = grid.step(None, 0.0, ivp.y0, h)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-15)

    def test_2d_heat(self):
        ivp = HeatND(2, 16, t_end=0.001)
        tab = radau_iia(2)
        grid = GridPirkSolver(ivp, tab, 2)
        y = integrate(grid, ivp, 25)
        assert ivp.error(ivp.t_end, y) < 1e-6

    def test_integration_converges(self):
        ivp = HeatND(3, 8, t_end=0.001)
        grid = GridPirkSolver(ivp, radau_iia(3), 3)
        y = integrate(grid, ivp, 20)
        assert ivp.error(ivp.t_end, y) < 1e-9

    def test_order_property(self):
        solver = GridPirkSolver(HeatND(2, 8), radau_iia(4), 2)
        assert solver.order == 3
        assert "GridPIRK" in solver.name

    def test_rejects_non_stencil_ivp(self):
        with pytest.raises(ValueError):
            GridPirkSolver(Wave1D(16), radau_iia(2), 2)

    def test_rejects_explicit_tableau(self):
        with pytest.raises(ValueError):
            GridPirkSolver(HeatND(2, 8), rk4(), 2)

    def test_rejects_zero_correctors(self):
        with pytest.raises(ValueError):
            GridPirkSolver(HeatND(2, 8), radau_iia(2), 0)

"""Unit tests for the deterministic fault-injection substrate."""

from __future__ import annotations

import pytest

from repro import faults, obs
from repro.faults import FaultInjected, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def _clean_plan():
    """Every test starts and ends with injection off."""
    faults.clear()
    yield
    faults.clear()


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
def test_parse_minimal_spec():
    spec = FaultSpec.parse("memo.read")
    assert spec.point == "memo.read"
    assert spec.mode == "error"
    assert spec.probability is None and spec.nth is None


def test_parse_full_spec():
    spec = FaultSpec.parse("tuner.worker:nth=2:count=1:mode=exit:seed=9")
    assert spec == FaultSpec(
        "tuner.worker", nth=2, count=1, mode="exit", seed=9
    )


def test_parse_probability_aliases():
    assert FaultSpec.parse("x:p=0.25").probability == 0.25
    assert FaultSpec.parse("x:probability=0.25").probability == 0.25


@pytest.mark.parametrize(
    "text",
    [
        "",  # no point name
        "x:nth",  # missing =value
        "x:nth=zero",  # non-integer
        "x:p=1.5",  # out of range
        "x:mode=explode",  # unknown mode
        "x:frobnicate=1",  # unknown key
        "x:nth=0",  # must be >= 1
    ],
)
def test_parse_rejects_bad_specs(text):
    with pytest.raises(ValueError):
        FaultSpec.parse(text)


def test_plan_parse_multiple_clauses():
    plan = FaultPlan.parse("a.b:nth=1 ; c.d:every=2:mode=oserror")
    points = {s.point: s for s in plan.specs()}
    assert set(points) == {"a.b", "c.d"}
    assert points["c.d"].mode == "oserror"


# ----------------------------------------------------------------------
# Trigger semantics
# ----------------------------------------------------------------------
def test_nth_fires_exactly_once():
    plan = FaultPlan([FaultSpec("pt", nth=3)])
    fired = [plan.should_fire("pt") is not None for _ in range(6)]
    assert fired == [False, False, True, False, False, False]


def test_every_fires_periodically():
    plan = FaultPlan([FaultSpec("pt", every=2)])
    fired = [plan.should_fire("pt") is not None for _ in range(6)]
    assert fired == [False, True, False, True, False, True]


def test_count_caps_firings():
    plan = FaultPlan([FaultSpec("pt", every=1, count=2)])
    fired = [plan.should_fire("pt") is not None for _ in range(5)]
    assert fired == [True, True, False, False, False]
    assert plan.counters() == {"pt": 2}


def test_probability_is_deterministic_per_seed():
    def run(seed):
        plan = FaultPlan([FaultSpec("pt", probability=0.5, seed=seed)])
        return [plan.should_fire("pt") is not None for _ in range(50)]

    assert run(7) == run(7)  # replayable
    assert any(run(7)) and not all(run(7))  # actually probabilistic
    assert run(7) != run(8)  # seed matters


def test_unarmed_point_never_fires():
    plan = FaultPlan([FaultSpec("armed")])
    assert plan.should_fire("other") is None


# ----------------------------------------------------------------------
# Process-wide check()/install()
# ----------------------------------------------------------------------
def test_check_noop_without_plan():
    faults.check("anything")  # must not raise


def test_check_raises_fault_injected():
    with faults.injected("pt:nth=1"):
        with pytest.raises(FaultInjected) as err:
            faults.check("pt")
        assert err.value.point == "pt"
        faults.check("pt")  # nth=1 already consumed


def test_check_oserror_mode():
    with faults.injected("pt:mode=oserror"):
        with pytest.raises(OSError):
            faults.check("pt")


def test_injected_restores_previous_plan():
    faults.install("outer:nth=99")
    with faults.injected("inner:nth=1"):
        assert {s.point for s in faults.active_specs()} == {"inner"}
    assert {s.point for s in faults.active_specs()} == {"outer"}


def test_install_from_env(monkeypatch):
    monkeypatch.setenv(faults.ENV_FLAG, "env.pt:every=1:mode=oserror")
    plan = faults.install_from_env()
    assert plan is not None
    with pytest.raises(OSError):
        faults.check("env.pt")
    monkeypatch.delenv(faults.ENV_FLAG)
    assert faults.install_from_env() is None


def test_firing_ledger_accumulates():
    faults.reset_counters()
    with faults.injected("pt:every=1:count=2"):
        for _ in range(3):
            try:
                faults.check("pt")
            except FaultInjected:
                pass
    assert faults.counters()["pt"] == 2
    faults.reset_counters()
    assert faults.counters() == {}


def test_firing_lands_on_innermost_span():
    trace = obs.start_trace("chaos")
    try:
        with obs.span("inner"):
            with faults.injected("pt:nth=1"):
                with pytest.raises(FaultInjected):
                    faults.check("pt")
    finally:
        root = trace.finish()
    inner = root.to_dict()["children"][0]
    assert inner["name"] == "inner"
    assert inner["counters"]["fault.pt"] == 1

"""Integration tests: every experiment runs (quick mode) and its result
has the shape the paper's claims require.  These are the reproduction's
acceptance tests.
"""

import pytest

from repro.experiments import (
    exp_f1_ecm_validation,
    exp_f2_block_sweep,
    exp_f3_scaling,
    exp_f4_temporal,
    exp_f5_offsite_ranking,
    exp_f6_ode_speedup,
    exp_f7_ablation_lc,
    exp_t1_machines,
    exp_t2_stencils,
    exp_t3_tuning_cost,
    exp_t4_codegen_cost,
)


class TestTables:
    def test_t1_machines(self):
        result = exp_t1_machines.run()
        assert len(result["rows"]) >= 8
        assert result["machines"] == ["CascadeLakeSP", "Rome"]

    def test_t2_stencils(self):
        rows = exp_t2_stencils.run()["rows"]
        assert len(rows) >= 8
        ai = {r["name"]: r["AI (F/B)"] for r in rows}
        assert ai["s3d25pt"] > ai["s3d7pt"]  # radius raises intensity


class TestF1Validation:
    def test_model_accuracy(self):
        result = exp_f1_ecm_validation.run(quick=True)
        # Paper claim: predictions "reliable and accurate".
        assert result["mean_abs_err_pct"] < 25.0
        assert result["max_abs_err_pct"] < 50.0


class TestF2BlockSweep:
    def test_analytic_pick_near_optimum(self):
        result = exp_f2_block_sweep.run(quick=True)
        assert result["max_gap_pct"] < 10.0


class TestF3Scaling:
    def test_scaling_shape(self):
        result = exp_f3_scaling.run(quick=True)
        rows = [r for r in result["rows"] if r["machine"].startswith("Cascade")]
        # Aggregate performance must grow with cores.
        mlups = [r["meas MLUP/s"] for r in rows]
        assert mlups == sorted(mlups)
        # Saturation predicted within the socket.
        knees = result["saturation_cores"]
        assert all(1 < v < 64 for v in knees.values())


class TestF4Temporal:
    def test_memory_bound_stencil_gains(self):
        result = exp_f4_temporal.run(quick=True)
        assert result["best_speedup"]["3d7pt"] > 1.1
        # Traffic must shrink monotonically with wavefront depth.
        rows = [r for r in result["rows"] if r["stencil"] == "3d7pt"]
        traffic = [r["mem B/LUP"] for r in rows]
        assert traffic == sorted(traffic, reverse=True)


class TestT3TuningCost:
    def test_cost_hierarchy(self):
        result = exp_t3_tuning_cost.run(quick=True)
        by_tuner = {r["tuner"]: r for r in result["rows"]}
        assert by_tuner["ecm"]["run"] <= 1
        assert by_tuner["exhaustive"]["run"] > 5
        # Quality within 15% of exhaustive.
        for q in result["quality_vs_exhaustive"].values():
            assert q["ecm"] > 0.85


class TestF5Ranking:
    def test_ranking_reliability(self):
        result = exp_f5_offsite_ranking.run(quick=True)
        assert all(t >= 0.3 for t in result["kendall_taus"])
        assert result["mean_abs_err_pct"] < 30.0


class TestF6Speedup:
    def test_tuned_beats_naive(self):
        result = exp_f6_ode_speedup.run(quick=True)
        assert result["geomean_speedup"] > 1.1
        assert all(s > 0.95 for s in result["speedups"])


class TestT4CodegenCost:
    def test_codegen_cheap(self):
        rows = exp_t4_codegen_cost.run(quick=True)["rows"]
        for r in rows:
            assert r["codegen all (s)"] < 5.0
            assert r["ECM runs"] == 0


class TestF7Ablation:
    def test_layer_conditions_matter(self):
        result = exp_f7_ablation_lc.run(quick=True)
        assert (
            result["mean_abs_err_nolc_pct"]
            > 2 * result["mean_abs_err_full_pct"]
        )


class TestF8InCoreDetail:
    def test_both_models_accurate(self):
        from repro.experiments import exp_f8_incore_detail

        result = exp_f8_incore_detail.run(quick=True)
        assert result["mean_abs_err_simple_pct"] < 30.0
        assert result["mean_abs_err_detailed_pct"] < 30.0


class TestF9Overlap:
    def test_serial_fits_substrate(self):
        from repro.experiments import exp_f9_overlap

        result = exp_f9_overlap.run(quick=True)
        assert (
            result["mean_abs_err_serial_pct"]
            <= result["mean_abs_err_overlap_pct"]
        )


class TestF10Database:
    def test_deployment_quality(self):
        from repro.experiments import exp_f10_database

        result = exp_f10_database.run(quick=True)
        assert result["deployed_vs_oracle"] < 1.15
        assert result["deployed_vs_naive"] > 1.1
        assert result["db_size"] == 2


class TestF11Distributed:
    def test_scaling_shapes(self):
        from repro.experiments import exp_f11_distributed

        result = exp_f11_distributed.run(quick=True)
        assert result["weak_efficiency_min"] > 0.85
        assert result["strong_monotone_decay"]

"""Convergence-order tests for explicit RK and PIRK steppers."""

import numpy as np
import pytest

from repro.ode import (
    ExplicitRK,
    PIRK,
    Wave1D,
    bogacki_shampine,
    convergence_order,
    euler,
    heun,
    integrate,
    lobatto_iiic,
    radau_iia,
    rk4,
)

IVP = Wave1D(48, t_end=0.2)


class TestExplicitRK:
    @pytest.mark.parametrize(
        "factory,expected",
        [(euler, 1), (heun, 2), (bogacki_shampine, 3), (rk4, 4)],
    )
    def test_convergence_order(self, factory, expected):
        stepper = ExplicitRK(factory())
        measured = convergence_order(stepper, IVP, base_steps=24)
        assert measured == pytest.approx(expected, abs=0.35)

    def test_rejects_implicit_tableau(self):
        with pytest.raises(ValueError):
            ExplicitRK(radau_iia(2))

    def test_integrate_reduces_error_with_steps(self):
        stepper = ExplicitRK(rk4())
        coarse = IVP.error(IVP.t_end, integrate(stepper, IVP, 30))
        fine = IVP.error(IVP.t_end, integrate(stepper, IVP, 60))
        assert fine < coarse

    def test_integrate_validates_steps(self):
        with pytest.raises(ValueError):
            integrate(ExplicitRK(rk4()), IVP, 0)


class TestPIRK:
    @pytest.mark.parametrize("m,expected", [(1, 2), (2, 3), (3, 4)])
    def test_order_grows_with_correctors(self, m, expected):
        stepper = PIRK(radau_iia(4), m)
        assert stepper.order == expected
        measured = convergence_order(stepper, IVP, base_steps=24)
        assert measured == pytest.approx(expected, abs=0.4)

    def test_order_capped_by_base_method(self):
        stepper = PIRK(radau_iia(2), 10)  # base order 3
        assert stepper.order == 3

    def test_lobatto_base(self):
        stepper = PIRK(lobatto_iiic(3), 2)
        measured = convergence_order(stepper, IVP, base_steps=24)
        assert measured == pytest.approx(3, abs=0.4)

    def test_rejects_explicit_base(self):
        with pytest.raises(ValueError):
            PIRK(rk4(), 2)

    def test_rejects_zero_correctors(self):
        with pytest.raises(ValueError):
            PIRK(radau_iia(2), 0)

    def test_rhs_evals_accounting(self):
        stepper = PIRK(radau_iia(4), 3)
        assert stepper.rhs_evals_per_step() == 4 * 4

    def test_step_preserves_shape(self):
        stepper = PIRK(radau_iia(3), 2)
        y = IVP.y0.copy()
        out = stepper.step(IVP.rhs, 0.0, y, 1e-4)
        assert out.shape == y.shape
        assert np.all(np.isfinite(out))

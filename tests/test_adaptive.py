"""Adaptive embedded-RK integrator tests."""

import numpy as np
import pytest

from repro.ode import AdaptiveRK, Brusselator2D, HeatND, Wave1D, bs32, dp54


class TestPairs:
    @pytest.mark.parametrize("factory", [bs32, dp54])
    def test_pair_consistency(self, factory):
        pair = factory()
        # Both weight vectors are quadrature rules: sum to 1.
        assert np.sum(pair.b_high) == pytest.approx(1.0, abs=1e-12)
        assert np.sum(pair.b_low) == pytest.approx(1.0, abs=1e-12)
        # Row sums equal c (consistency).
        np.testing.assert_allclose(pair.a.sum(axis=1), pair.c, atol=1e-12)

    def test_fsal_structure(self):
        pair = dp54()
        # FSAL: last row of A equals b_high (minus last entry).
        np.testing.assert_allclose(pair.a[-1, :-1], pair.b_high[:-1], atol=1e-12)


class TestIntegration:
    def test_meets_tolerance_on_wave(self):
        ivp = Wave1D(32, t_end=0.3)
        solver = AdaptiveRK(dp54(), rtol=1e-8, atol=1e-10)
        res = solver.integrate(ivp)
        assert res.t == pytest.approx(ivp.t_end)
        assert ivp.error(res.t, res.y) < 1e-5
        assert res.steps_accepted > 0

    def test_tighter_tolerance_means_more_steps(self):
        ivp = Wave1D(32, t_end=0.3)
        loose = AdaptiveRK(dp54(), rtol=1e-4, atol=1e-6).integrate(ivp)
        tight = AdaptiveRK(dp54(), rtol=1e-9, atol=1e-11).integrate(ivp)
        assert tight.steps_accepted > loose.steps_accepted

    def test_bs32_on_heat(self):
        ivp = HeatND(2, 10, t_end=0.005)
        res = AdaptiveRK(bs32(), rtol=1e-7, atol=1e-10).integrate(ivp)
        assert ivp.error(res.t, res.y) < 1e-5

    def test_stiff_problem_forces_small_steps(self):
        # Heat with fine grid is stiff: the controller must reject /
        # shrink rather than blow up.
        ivp = HeatND(1, 128, t_end=0.002)
        res = AdaptiveRK(dp54(), rtol=1e-5, atol=1e-8).integrate(ivp)
        assert np.all(np.isfinite(res.y))
        # The stability limit (h ~ 2.8/lambda_max ~ 4e-5) forces many
        # more steps than the accuracy of the smooth decay would need.
        assert res.steps_total > 15
        assert res.steps_rejected >= 1

    def test_brusselator_runs(self):
        ivp = Brusselator2D(12, t_end=0.05)
        res = AdaptiveRK(dp54(), rtol=1e-5, atol=1e-8).integrate(ivp)
        assert np.all(np.isfinite(res.y))

    def test_rhs_eval_accounting(self):
        ivp = Wave1D(16, t_end=0.1)
        res = AdaptiveRK(bs32()).integrate(ivp)
        assert res.rhs_evals == res.steps_total * bs32().stages

    def test_max_steps_guard(self):
        ivp = HeatND(1, 256, t_end=1.0)  # very stiff, long horizon
        solver = AdaptiveRK(bs32(), rtol=1e-10, atol=1e-13)
        with pytest.raises(RuntimeError):
            solver.integrate(ivp, max_steps=50)

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRK(bs32(), rtol=0.0)

"""CLI tests (argument parsing and command output)."""

import pytest

from repro.cli import EXPERIMENTS, _parse_shape, build_parser, main


class TestParsing:
    def test_parse_shape(self):
        assert _parse_shape("48x48x64") == (48, 48, 64)
        assert _parse_shape("8X8") == (8, 8)

    def test_parse_shape_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shape("forty")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shape("0x8")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_stencil_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "5dmagic"])

    def test_experiment_ids_complete(self):
        assert set(EXPERIMENTS) == {
            "t1", "t2", "t3", "t4", "f1", "f2", "f3", "f4", "f5", "f6", "f7",
            "f8", "f9", "f10", "f11",
        }


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "s3d7pt" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "CascadeLakeSP" in out and "Rome" in out

    def test_predict(self, capsys):
        code = main(
            ["predict", "3d7pt", "--grid", "16x16x32",
             "--cache-scale", "0.03125"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MLUP/s" in out and "cy/CL" in out

    def test_predict_explicit_block(self, capsys):
        code = main(
            ["predict", "3d7pt", "--grid", "16x16x32",
             "--block", "8x8x32", "--machine", "rome"]
        )
        assert code == 0
        assert "Rome" in capsys.readouterr().out

    def test_tune_ecm(self, capsys):
        code = main(
            ["tune", "3d7pt", "--grid", "16x16x32", "--tuner", "ecm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "variants run     : 1" in out

    def test_experiment_t2(self, capsys):
        assert main(["experiment", "t2"]) == 0
        assert "Stencil suite" in capsys.readouterr().out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out
        assert "repro.experiments.exp_f5_offsite_ranking" in out

    def test_experiment_without_id_errors(self, capsys):
        assert main(["experiment"]) == 2
        assert "error" in capsys.readouterr().err


class TestJsonOutput:
    """``--json`` emits the same serializer dicts the service uses."""

    def test_suite_json(self, capsys):
        import json

        assert main(["suite", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        assert any("3d7pt" in str(row) for row in rows)

    def test_machines_json(self, capsys):
        import json

        assert main(["machines", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert all({"CascadeLakeSP", "Rome"} <= set(row) for row in rows)
        assert rows[0]["characteristic"] == "Microarchitecture"

    def test_predict_json_matches_service_serializer(self, capsys):
        import json

        from repro.service.jobs import normalize_predict, predict_job

        argv = ["predict", "3d7pt", "--grid", "16x16x32",
                "--cache-scale", "0.03125"]
        assert main(argv + ["--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        expected = predict_job(normalize_predict(
            {"stencil": "3d7pt", "grid": [16, 16, 32],
             "cache_scale": 1 / 32}
        ))
        assert out == expected

    def test_tune_json(self, capsys):
        import json

        assert main(
            ["tune", "3d7pt", "--grid", "16x16x32", "--tuner", "ecm",
             "--json"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["tuner"] == "ecm" and out["variants_run"] == 1
        assert out["best_mlups"] > 0
        assert out["stencil"] == "3d7pt" and out["grid"] == [16, 16, 32]


class TestRankCommand:
    def test_rank_human_output(self, capsys):
        assert main(
            ["rank", "--grid", "8x8x16", "--no-validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "method  : PIRK[" in out
        assert "ivp     : grid8x8x16" in out
        assert "Variant ranking" in out
        assert "best    :" in out
        assert "tau" not in out  # no validation, no tau line

    def test_rank_validated_prints_tau(self, capsys):
        assert main(["rank", "--grid", "8x8x16"]) == 0
        out = capsys.readouterr().out
        assert "meas ms/step" in out
        assert "tau     :" in out and "top1_hit" in out

    def test_rank_json_matches_service_serializer(self, capsys):
        import json

        from repro.cachesim.memo import default_traffic_cache
        from repro.service.jobs import normalize_rank, rank_job

        argv = ["rank", "--grid", "8x8x16", "--no-validate", "--json"]
        default_traffic_cache().clear()
        assert main(argv) == 0
        out = json.loads(capsys.readouterr().out)
        default_traffic_cache().clear()
        expected = rank_job(normalize_rank(
            {"grid": [8, 8, 16], "validate": False}
        ))
        # predict_seconds is wall clock; drop it on both sides.
        volatile = ("predict_seconds", "measure_seconds")
        strip = lambda d: {k: v for k, v in d.items() if k not in volatile}
        assert strip(out) == strip(expected)
        assert list(out) == list(expected)

    def test_rank_bad_block_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rank", "--block", "huge"])


class TestTraceFlag:
    def test_predict_trace_renders_span_tree_to_stderr(self, capsys):
        argv = ["predict", "3d7pt", "--grid", "16x16x32", "--trace"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "perf    :" in captured.out  # stdout unchanged
        err = captured.err
        assert "cli:predict" in err
        for name in ("engine.predict", "engine.yasksite",
                     "blocking.select", "ecm.predict"):
            assert name in err
        assert "ms" in err

    def test_predict_trace_json_emits_trace_to_stderr(self, capsys):
        import json

        argv = ["predict", "3d7pt", "--grid", "16x16x32",
                "--trace", "--json"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        result = json.loads(captured.out)
        assert result["grid"] == [16, 16, 32]
        trace = json.loads(captured.err)
        assert trace["name"] == "cli:predict"
        names = {c["name"] for c in trace["children"]}
        assert "engine.predict" in names

    def test_tune_trace_names_tuner_and_cachesim(self, capsys):
        argv = ["tune", "3d7pt", "--grid", "16x16x32",
                "--tuner", "greedy", "--trace"]
        assert main(argv) == 0
        err = capsys.readouterr().err
        for name in ("cli:tune", "engine.tune", "tuner.greedy",
                     "tuner.evaluate", "cachesim.sweep"):
            assert name in err

    def test_trace_off_keeps_stderr_silent(self, capsys):
        assert main(["predict", "3d7pt", "--grid", "16x16x32"]) == 0
        assert capsys.readouterr().err == ""


class TestExperimentJson:
    def test_experiment_json_is_run_dict(self, capsys):
        import json

        assert main(["experiment", "t1", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert "rows" in out


class TestErrorPath:
    def test_request_error_exits_2(self, capsys):
        # Grid/block rank mismatch passes argparse but fails engine
        # validation; main() maps RequestError onto exit code 2.
        argv = ["predict", "3d7pt", "--grid", "16x16", "--block", "8x8x8"]
        assert main(argv) == 2
        assert "error:" in capsys.readouterr().err

"""CLI tests (argument parsing and command output)."""

import pytest

from repro.cli import EXPERIMENTS, _parse_shape, build_parser, main


class TestParsing:
    def test_parse_shape(self):
        assert _parse_shape("48x48x64") == (48, 48, 64)
        assert _parse_shape("8X8") == (8, 8)

    def test_parse_shape_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shape("forty")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_shape("0x8")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_stencil_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "5dmagic"])

    def test_experiment_ids_complete(self):
        assert set(EXPERIMENTS) == {
            "t1", "t2", "t3", "t4", "f1", "f2", "f3", "f4", "f5", "f6", "f7",
            "f8", "f9", "f10", "f11",
        }


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "s3d7pt" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "CascadeLakeSP" in out and "Rome" in out

    def test_predict(self, capsys):
        code = main(
            ["predict", "3d7pt", "--grid", "16x16x32",
             "--cache-scale", "0.03125"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MLUP/s" in out and "cy/CL" in out

    def test_predict_explicit_block(self, capsys):
        code = main(
            ["predict", "3d7pt", "--grid", "16x16x32",
             "--block", "8x8x32", "--machine", "rome"]
        )
        assert code == 0
        assert "Rome" in capsys.readouterr().out

    def test_tune_ecm(self, capsys):
        code = main(
            ["tune", "3d7pt", "--grid", "16x16x32", "--tuner", "ecm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "variants run     : 1" in out

    def test_experiment_t2(self, capsys):
        assert main(["experiment", "t2"]) == 0
        assert "Stencil suite" in capsys.readouterr().out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out
        assert "repro.experiments.exp_f5_offsite_ranking" in out

    def test_experiment_without_id_errors(self, capsys):
        assert main(["experiment"]) == 2
        assert "error" in capsys.readouterr().err


class TestJsonOutput:
    """``--json`` emits the same serializer dicts the service uses."""

    def test_suite_json(self, capsys):
        import json

        assert main(["suite", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        assert any("3d7pt" in str(row) for row in rows)

    def test_machines_json(self, capsys):
        import json

        assert main(["machines", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert all({"CascadeLakeSP", "Rome"} <= set(row) for row in rows)
        assert rows[0]["characteristic"] == "Microarchitecture"

    def test_predict_json_matches_service_serializer(self, capsys):
        import json

        from repro.service.jobs import normalize_predict, predict_job

        argv = ["predict", "3d7pt", "--grid", "16x16x32",
                "--cache-scale", "0.03125"]
        assert main(argv + ["--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        expected = predict_job(normalize_predict(
            {"stencil": "3d7pt", "grid": [16, 16, 32],
             "cache_scale": 1 / 32}
        ))
        assert out == expected

    def test_tune_json(self, capsys):
        import json

        assert main(
            ["tune", "3d7pt", "--grid", "16x16x32", "--tuner", "ecm",
             "--json"]
        ) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["tuner"] == "ecm" and out["variants_run"] == 1
        assert out["best_mlups"] > 0
        assert out["stencil"] == "3d7pt" and out["grid"] == [16, 16, 32]

"""End-to-end tests of the YaskSite facade."""

import numpy as np
import pytest

from repro import KernelPlan, YaskSite, get_stencil
from repro.grid import GridSet

SHAPE = (24, 24, 32)


@pytest.fixture(scope="module")
def ys():
    return YaskSite("clx", cache_scale=1 / 32)


class TestFacade:
    def test_construct_from_name_or_object(self):
        from repro.machine import rome

        assert YaskSite("rome").machine.name == "Rome"
        assert YaskSite(rome()).machine.name == "Rome"
        with pytest.raises(KeyError):
            YaskSite("z80")

    def test_compile_uses_analytic_plan(self, ys):
        spec = get_stencil("3d7pt")
        kernel = ys.compile(spec, SHAPE)
        choice = ys.select_block(spec, SHAPE)
        assert kernel.plan.block == choice.plan.block

    def test_compiled_kernel_correct(self, ys):
        spec = get_stencil("3d7pt")
        kernel = ys.compile(spec, SHAPE)
        grids = GridSet(spec, SHAPE)
        grids.randomize(1)
        ref = kernel.reference_sweep(grids)
        kernel.run(grids)
        np.testing.assert_allclose(grids.output.interior, ref, rtol=1e-13)

    def test_predict_measure_agree(self, ys):
        spec = get_stencil("3d7pt")
        plan = KernelPlan(block=SHAPE)
        pred = ys.predict(spec, SHAPE, plan)
        meas = ys.measure(spec, SHAPE, plan)
        assert pred.mlups == pytest.approx(meas.mlups, rel=0.35)

    def test_tune_dispatch(self, ys):
        spec = get_stencil("3d7pt")
        res = ys.tune(spec, (16, 16, 32), tuner="ecm")
        assert res.tuner == "ecm"
        with pytest.raises(KeyError):
            ys.tune(spec, SHAPE, tuner="annealing")

    def test_scaling_paths(self, ys):
        spec = get_stencil("3d7pt")
        plan = KernelPlan(block=SHAPE)
        pred = ys.predicted_scaling(spec, SHAPE, plan, max_cores=4)
        meas = ys.measured_scaling(spec, SHAPE, plan, [1, 2])
        assert len(pred) == 4
        assert len(meas) == 2
        assert meas[1].mlups > meas[0].mlups


class TestCompileText:
    def test_text_definition_compiles_and_runs(self, ys):
        import numpy as np

        kernel = ys.compile_text(
            "out[0,0,0] = 0.5*u[0,0,0] + k*(u[0,0,1] + u[0,0,-1])",
            shape=(8, 8, 16),
            params={"k": 0.25},
        )
        grids = GridSet(kernel.spec, (8, 8, 16))
        grids.randomize(3)
        ref = kernel.reference_sweep(grids)
        kernel.run(grids)
        np.testing.assert_allclose(grids.output.interior, ref, rtol=1e-13)

    def test_bad_text_raises(self, ys):
        from repro.stencil.parser import StencilParseError

        with pytest.raises(StencilParseError):
            ys.compile_text("out[0] = ", shape=(8,))

"""Extra GridSet / Grid behaviours used by the simulation substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid import Grid, GridSet
from repro.stencil import get_stencil, variable_coefficient_star


class TestGridExtra:
    def test_extra_halo_allocates_more_padding(self):
        spec = get_stencil("3d7pt")
        normal = GridSet(spec, (4, 4, 8))
        wide = GridSet(spec, (4, 4, 8), extra_halo=2)
        assert wide["u"].halo == normal["u"].halo + 2
        assert wide["u"].padded_shape[0] == normal["u"].padded_shape[0] + 4

    def test_total_bytes_counts_all_grids(self):
        spec = variable_coefficient_star(3, 1)
        gs = GridSet(spec, (4, 4, 8))
        assert gs.total_bytes == sum(g.footprint_bytes for g in gs)
        assert len(gs) == len(spec.grids)

    def test_dtype_float32(self):
        g = Grid("u", (4, 4), halo=1, dtype_bytes=4)
        assert g.data.dtype == np.float32
        assert g.layout.dtype_bytes == 4

    def test_halo_negative_rejected(self):
        with pytest.raises(ValueError):
            Grid("u", (4, 4), halo=-1)


@settings(max_examples=25, deadline=None)
@given(
    nz=st.integers(1, 6),
    ny=st.integers(1, 6),
    nx=st.integers(1, 12),
    halo=st.integers(0, 3),
)
def test_shifted_views_share_memory(nz, ny, nx, halo):
    g = Grid("u", (nz, ny, nx), halo=halo)
    g.data[...] = np.arange(g.data.size, dtype=float).reshape(g.padded_shape)
    zero = g.shifted((0, 0, 0))
    np.testing.assert_array_equal(zero, g.interior)
    # Views alias the backing array: a write shows through.
    g.interior[0, 0, 0] = -1.0
    assert zero[0, 0, 0] == -1.0


@settings(max_examples=25, deadline=None)
@given(
    off=st.tuples(
        st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2)
    )
)
def test_shifted_offset_semantics(off):
    g = Grid("u", (5, 5, 5), halo=2)
    g.data[...] = np.arange(g.data.size, dtype=float).reshape(g.padded_shape)
    view = g.shifted(off)
    # Element (i,j,k) of the view is padded element (i+2+oz, j+2+oy, k+2+ox).
    assert view[0, 0, 0] == g.data[2 + off[0], 2 + off[1], 2 + off[2]]

"""Boundary-condition tests."""

import numpy as np
import pytest

from repro.codegen import KernelPlan, compile_kernel
from repro.grid import Grid, GridSet
from repro.grid.boundary import Dirichlet, Neumann, Periodic, time_loop_with_bc
from repro.stencil import get_stencil


def make_grid(halo=2, shape=(4, 5)) -> Grid:
    g = Grid("u", shape, halo)
    g.fill_random(np.random.default_rng(1))
    return g


class TestDirichlet:
    def test_halo_set_to_value(self):
        g = make_grid()
        interior_before = g.interior.copy()
        Dirichlet(3.5).apply(g)
        assert np.all(g.data[0, :] == 3.5)
        assert np.all(g.data[:, -1] == 3.5)
        np.testing.assert_array_equal(g.interior, interior_before)

    def test_zero_halo_noop(self):
        g = Grid("u", (4, 4), halo=0)
        Dirichlet().apply(g)  # must not raise


class TestNeumann:
    def test_mirror_property(self):
        g = make_grid(halo=2, shape=(6, 6))
        Neumann().apply(g)
        data = g.data
        h = 2
        # Halo plane k mirrors interior plane (2h-1-k) on the low side.
        np.testing.assert_array_equal(data[1, :], data[2, :])
        np.testing.assert_array_equal(data[0, :], data[3, :])
        np.testing.assert_array_equal(data[-1, :], data[-4, :])

    def test_constant_field_fixed_point(self):
        g = Grid("u", (5, 5), halo=1)
        g.data[...] = 7.0
        Neumann().apply(g)
        assert np.all(g.data == 7.0)


class TestPeriodic:
    def test_wraparound(self):
        g = make_grid(halo=1, shape=(4, 4))
        Periodic().apply(g)
        data = g.data
        np.testing.assert_array_equal(data[0, 1:-1], data[-2, 1:-1])
        np.testing.assert_array_equal(data[-1, 1:-1], data[1, 1:-1])
        np.testing.assert_array_equal(data[1:-1, 0], data[1:-1, -2])

    def test_periodic_sweep_matches_roll_reference(self):
        # A radius-1 star sweep with periodic BC equals the np.roll form.
        spec = get_stencil("2d5pt")
        shape = (8, 12)
        gs = GridSet(spec, shape)
        gs.randomize(5)
        kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
        Periodic().apply(gs["u"])
        kernel.run(gs)
        u = gs["u"].interior
        expected = (
            0.25 * u
            + 0.1375 * (np.roll(u, -1, 0) + np.roll(u, 1, 0))
            + 0.1375 * (np.roll(u, -1, 1) + np.roll(u, 1, 1))
        )
        np.testing.assert_allclose(gs.output.interior, expected, rtol=1e-12)


class TestTimeLoop:
    def test_dirichlet_heat_decays(self):
        spec = get_stencil("heat2d")
        shape = (16, 16)
        gs = GridSet(spec, shape)
        gs["u"].interior[...] = 1.0
        kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
        time_loop_with_bc(kernel, gs, Dirichlet(0.0), steps=50)
        # Heat leaks out through the cold walls: mean drops, stays positive.
        mean = gs["u"].interior.mean()
        assert 0.0 < mean < 1.0

    def test_periodic_heat_conserves_mass(self):
        spec = get_stencil("heat2d")
        shape = (12, 12)
        gs = GridSet(spec, shape)
        gs.randomize(3)
        total_before = gs["u"].interior.sum()
        kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
        time_loop_with_bc(kernel, gs, Periodic(), steps=20)
        total_after = gs["u"].interior.sum()
        assert total_after == pytest.approx(total_before, rel=1e-10)

    def test_negative_steps_rejected(self):
        spec = get_stencil("heat2d")
        gs = GridSet(spec, (8, 8))
        kernel = compile_kernel(spec, (8, 8), KernelPlan(block=(8, 8)))
        with pytest.raises(ValueError):
            time_loop_with_bc(kernel, gs, Dirichlet(), steps=-1)

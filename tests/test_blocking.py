"""Spatial block selection and temporal (wavefront) blocking tests."""

import numpy as np
import pytest

from repro.blocking import (
    WavefrontPlan,
    analytic_block_selection,
    block_sweep_table,
    measure_wavefront,
    run_wavefront,
)
from repro.blocking.temporal import predict_wavefront_memtraffic
from repro.codegen import KernelPlan, compile_kernel
from repro.grid import GridSet
from repro.machine import cascade_lake_sp, generic_avx2
from repro.stencil import get_stencil, star
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


class TestSpatialSelection:
    def test_selection_returns_candidate(self):
        spec = get_stencil("3d7pt")
        m = cascade_lake_sp().scaled_caches(1 / 32)
        choice = analytic_block_selection(spec, (48, 48, 64), m)
        assert choice.candidates_examined > 5
        assert choice.plan.block[-1] == 64  # x never blocked

    def test_large_grid_gets_blocked(self):
        # Planes far beyond cache: the model must prefer y-blocking.
        spec = star(3, 4)
        m = cascade_lake_sp()
        choice = analytic_block_selection(spec, (256, 256, 256), m)
        assert choice.plan.block[1] < 256

    def test_selection_never_worse_than_naive(self):
        from repro.ecm import predict

        spec = get_stencil("3d7pt")
        m = cascade_lake_sp()
        shape = (32, 32, 32)
        choice = analytic_block_selection(spec, shape, m)
        naive = predict(spec, shape, KernelPlan(block=shape), m)
        assert choice.prediction.t_ecm <= naive.t_ecm

    def test_sweep_table_rows(self):
        spec = get_stencil("3d7pt")
        m = generic_avx2()
        rows = block_sweep_table(spec, (32, 32, 64), m)
        assert len(rows) >= 9
        assert all("pred MLUP/s" in r for r in rows)


class TestWavefrontCorrectness:
    @pytest.mark.parametrize("wt,slab", [(1, 8), (2, 8), (3, 5), (4, 8), (5, 24)])
    def test_matches_plain_timestepping(self, wt, slab):
        spec = get_stencil("3d7pt")
        shape = (24, 10, 16)
        ref_grids = GridSet(spec, shape)
        ref_grids.randomize(3)
        kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
        kernel.run_timesteps(ref_grids, wt)
        expected = ref_grids["u"].interior.copy()

        wf_grids = GridSet(spec, shape)
        wf_grids.randomize(3)
        plan = WavefrontPlan(spatial=KernelPlan(block=shape), wt=wt, slab=slab)
        final = run_wavefront(spec, wf_grids, plan)
        np.testing.assert_allclose(
            wf_grids[final].interior, expected, rtol=1e-12
        )

    def test_radius2_stencil(self):
        spec = get_stencil("3d13pt")
        shape = (20, 8, 16)
        ref = GridSet(spec, shape)
        ref.randomize(9)
        kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
        kernel.run_timesteps(ref, 3)
        expected = ref["u_new"].interior.copy()  # odd steps end in u_new? no:
        expected = ref["u"].interior.copy()

        wf = GridSet(spec, shape)
        wf.randomize(9)
        plan = WavefrontPlan(spatial=KernelPlan(block=shape), wt=3, slab=7)
        final = run_wavefront(spec, wf, plan)
        np.testing.assert_allclose(wf[final].interior, expected, rtol=1e-12)

    def test_heat_with_params(self):
        spec = get_stencil("heat3d")
        shape = (16, 8, 16)
        ref = GridSet(spec, shape)
        ref.randomize(4)
        kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
        kernel.run_timesteps(ref, 2, params={"a": 0.05})
        expected = ref["u"].interior.copy()

        wf = GridSet(spec, shape)
        wf.randomize(4)
        plan = WavefrontPlan(spatial=KernelPlan(block=shape), wt=2, slab=4)
        final = run_wavefront(spec, wf, plan, params={"a": 0.05})
        np.testing.assert_allclose(wf[final].interior, expected, rtol=1e-12)

    def test_rejects_in_place_stencil(self):
        u = E.access("u")
        spec = StencilSpec("gs", "u", u(0, 0, 1) + u(0, 0, -1))
        gs = GridSet(spec, (8, 8, 8))
        plan = WavefrontPlan(spatial=KernelPlan(block=(8, 8, 8)), wt=2, slab=4)
        with pytest.raises(ValueError):
            run_wavefront(spec, gs, plan)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            WavefrontPlan(spatial=KernelPlan(block=(8, 8, 8)), wt=0, slab=4)
        with pytest.raises(ValueError):
            WavefrontPlan(spatial=KernelPlan(block=(8, 8, 8)), wt=2, slab=0)


class TestWavefrontTraffic:
    def test_traffic_reduction_when_slab_fits(self, generic):
        spec = get_stencil("3d7pt")
        shape = (64, 4, 32)
        gs = GridSet(spec, shape)
        from repro.cachesim import measure_sweep

        base = measure_sweep(spec, gs, KernelPlan(block=shape), generic)
        wf = measure_wavefront(
            spec, gs,
            WavefrontPlan(spatial=KernelPlan(block=shape), wt=4, slab=8),
            generic,
        )
        last = len(base.loads) - 1
        assert wf.bytes_per_lup(last) < base.bytes_per_lup(last) * 0.75

    def test_no_gain_when_slab_too_big(self, generic):
        spec = get_stencil("3d7pt")
        shape = (64, 4, 32)
        gs = GridSet(spec, shape)
        from repro.cachesim import measure_sweep

        base = measure_sweep(spec, gs, KernelPlan(block=shape), generic)
        wf = measure_wavefront(
            spec, gs,
            WavefrontPlan(spatial=KernelPlan(block=shape), wt=4, slab=32),
            generic,
        )
        last = len(base.loads) - 1
        assert wf.bytes_per_lup(last) > base.bytes_per_lup(last) * 0.85

    def test_prediction_formula(self):
        spec = get_stencil("3d7pt")
        plan = WavefrontPlan(spatial=KernelPlan(block=(8, 8, 8)), wt=4, slab=8)
        pred = predict_wavefront_memtraffic(spec, plan, 24.0)
        assert pred == pytest.approx(24.0 / 4 * 1.5)

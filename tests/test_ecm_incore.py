"""In-core ECM model tests."""

import pytest

from repro.ecm import incore_model
from repro.grid.folding import Fold
from repro.stencil import get_stencil, star


class TestInCore:
    def test_units_per_cacheline(self, clx):
        spec = get_stencil("3d7pt")
        s = incore_model(spec, clx)
        # AVX-512 doubles: 8 lanes -> one vector per 64-byte line.
        assert s.vectors_per_line == 1.0

    def test_avx2_needs_two_vectors(self, rome_machine):
        spec = get_stencil("3d7pt")
        s = incore_model(spec, rome_machine)
        assert s.vectors_per_line == 2.0

    def test_load_counts_match_accesses(self, clx):
        spec = get_stencil("3d25pt")
        s = incore_model(spec, clx)
        assert s.loads == 25
        assert s.stores == 1

    def test_fma_contraction(self, clx):
        spec = get_stencil("3d7pt")
        s = incore_model(spec, clx)
        assert s.fma_ops > 0
        # fused + leftovers must add back to the raw counts.
        assert s.fma_ops + s.add_ops + s.mul_ops <= spec.flops

    def test_tnol_scales_with_radius(self, clx):
        t1 = incore_model(get_stencil("3d7pt"), clx).t_nol
        t4 = incore_model(get_stencil("3d25pt"), clx).t_nol
        assert t4 > t1

    def test_avx2_slower_than_avx512(self, clx, rome_machine):
        spec = get_stencil("3d7pt")
        assert (
            incore_model(spec, rome_machine).t_nol
            > incore_model(spec, clx).t_nol
        )

    def test_explicit_fold_validation(self, clx):
        spec = get_stencil("3d7pt")
        with pytest.raises(ValueError):
            incore_model(spec, clx, fold=Fold((1, 1, 4)))  # 4 != 8 lanes

    def test_folded_vs_inline_shuffles(self, clx):
        spec = star(3, 4)
        inline = incore_model(spec, clx, fold=Fold((1, 1, 8)))
        folded = incore_model(spec, clx, fold=Fold((2, 2, 2)))
        # Multi-dim folding reduces the neighbour-gathering overhead for
        # long-range stencils.
        assert folded.t_ol < inline.t_ol

    def test_t_core_is_max(self, clx):
        s = incore_model(get_stencil("3d7pt"), clx)
        assert s.t_core == max(s.t_ol, s.t_nol)

"""End-to-end integration tests across the whole pipeline.

Each test exercises a path a downstream user would take, combining at
least three subsystems — the repository-level acceptance suite on top
of the per-module tests.
"""

import numpy as np
import pytest

from repro import YaskSite, get_stencil
from repro.codegen import KernelPlan
from repro.grid import Dirichlet, GridSet, time_loop_with_bc
from repro.machine import cascade_lake_sp, machine_from_dict, machine_to_dict
from repro.ode import (
    GridPirkSolver,
    HeatND,
    PIRK,
    integrate,
    radau_iia,
)
from repro.offsite import OffsiteTuner, TuningDatabase
from repro.stencil import parse_stencil


class TestTextToTunedKernel:
    """Text DSL -> analytic tuning -> compilation -> simulation."""

    def test_full_path(self):
        text = (
            "u_new[0,0,0] = u[0,0,0] + a*(u[1,0,0]+u[-1,0,0]+u[0,1,0]"
            "+u[0,-1,0]+u[0,0,1]+u[0,0,-1] - 6.0*u[0,0,0])"
        )
        spec = parse_stencil(text, name="parsed_heat", params={"a": 0.1})
        ys = YaskSite("clx", cache_scale=1 / 32)
        shape = (24, 24, 32)
        choice = ys.select_block(spec, shape)
        kernel = ys.compile(spec, shape, plan=choice.plan)
        grids = GridSet(spec, shape)
        grids.randomize(1)
        ref = kernel.reference_sweep(grids)
        kernel.run(grids)
        np.testing.assert_allclose(grids.output.interior, ref, rtol=1e-13)
        meas = ys.measure(spec, shape, choice.plan)
        assert choice.mlups == pytest.approx(meas.mlups, rel=0.45)


class TestCustomMachineToTuning:
    """JSON machine -> block choice differs from the original."""

    def test_cache_size_changes_prediction(self):
        base = cascade_lake_sp().scaled_caches(1 / 32)
        data = machine_to_dict(base)
        data["name"] = "TinyCache"
        for cache in data["caches"]:
            cache["size_bytes"] = max(
                cache["assoc"] * cache["line_bytes"],
                cache["size_bytes"] // 8,
            )
        tiny = machine_from_dict(data)
        spec = get_stencil("3dlong_r4")
        shape = (48, 48, 64)
        choice_base = YaskSite(base).select_block(spec, shape)
        choice_tiny = YaskSite(tiny).select_block(spec, shape)
        # Shrinking every cache 8x must cost predicted performance,
        # and the tuned choice must never be worse than naive.
        assert choice_tiny.mlups < choice_base.mlups
        from repro.ecm import predict

        naive = predict(spec, shape, KernelPlan(block=shape), tiny)
        assert choice_tiny.prediction.t_ecm <= naive.t_ecm + 1e-9


class TestPdeSolveWithTunedKernels:
    """Offsite choice -> grid PIRK solver -> correct PDE solution."""

    def test_heat3d_end_to_end(self):
        machine = cascade_lake_sp().scaled_caches(1 / 32)
        ivp = HeatND(3, 12, t_end=0.001)
        method = PIRK(radau_iia(3), 2)
        # Offline: rank variants, store, pick blocks.
        report = OffsiteTuner(machine, block="auto").tune(
            method, ivp.grid_shape, validate=False, ivp_name="heat3d"
        )
        db = TuningDatabase()
        db.record_report(report, ivp.grid_shape, block=ivp.grid_shape)
        assert report.best_predicted().variant in (
            "split", "fused_lc", "scatter", "gather"
        )
        # Online: solve with compiled stencil kernels.
        solver = GridPirkSolver(ivp, method.tableau, method.m)
        y = integrate(solver, ivp, 25)
        assert ivp.error(ivp.t_end, y) < 1e-8


class TestBcTimeLoopThroughFacade:
    """Compiled kernel + boundary conditions + time stepping."""

    def test_dirichlet_decay_matches_reference_loop(self):
        spec = get_stencil("heat2d")
        shape = (16, 16)
        ys = YaskSite("generic")
        kernel = ys.compile(spec, shape, plan=KernelPlan(block=shape))

        gs_a = GridSet(spec, shape)
        gs_b = GridSet(spec, shape)
        for gs in (gs_a, gs_b):
            gs["u"].interior[...] = 1.0
        # Path A: BC-aware loop.  Path B: manual loop (halos are already
        # zero, so results must agree exactly).
        time_loop_with_bc(kernel, gs_a, Dirichlet(0.0), steps=10)
        for _ in range(10):
            kernel.run(gs_b)
            gs_b.swap_in_out()
        np.testing.assert_allclose(
            gs_a["u"].interior, gs_b["u"].interior, rtol=1e-13
        )

"""Autotuner tests: correctness of search and the cost ledger."""

import pytest

from repro.autotune import EcmGuidedTuner, ExhaustiveTuner, GreedyLineSearchTuner
from repro.grid import GridSet
from repro.machine import cascade_lake_sp
from repro.stencil import get_stencil

SHAPE = (24, 24, 32)


@pytest.fixture(scope="module")
def setting():
    machine = cascade_lake_sp().scaled_caches(1 / 32)
    spec = get_stencil("3d7pt")
    grids = GridSet(spec, SHAPE)
    return spec, grids, machine


class TestExhaustive:
    def test_runs_every_candidate(self, setting):
        spec, grids, machine = setting
        res = ExhaustiveTuner().tune(spec, grids, machine, seed=1)
        assert res.variants_run == res.variants_examined
        assert res.variants_run >= 9
        assert res.simulated_run_seconds > 0
        assert len(res.trace) == res.variants_run

    def test_best_is_max_of_trace(self, setting):
        spec, grids, machine = setting
        res = ExhaustiveTuner().tune(spec, grids, machine, seed=1)
        assert res.best_mlups == pytest.approx(max(m for _, m in res.trace))


class TestGreedy:
    def test_cheaper_than_exhaustive(self, setting):
        spec, grids, machine = setting
        greedy = GreedyLineSearchTuner().tune(spec, grids, machine, seed=1)
        exhaustive = ExhaustiveTuner().tune(spec, grids, machine, seed=1)
        assert greedy.variants_run <= exhaustive.variants_run


class TestEcmGuided:
    def test_zero_runs_without_validation(self, setting):
        spec, grids, machine = setting
        res = EcmGuidedTuner(validate=False).tune(spec, grids, machine)
        assert res.variants_run == 0
        assert res.simulated_run_seconds == 0.0
        assert res.variants_examined >= 9

    def test_single_run_with_validation(self, setting):
        spec, grids, machine = setting
        res = EcmGuidedTuner(validate=True).tune(spec, grids, machine)
        assert res.variants_run == 1

    def test_quality_close_to_exhaustive(self, setting):
        spec, grids, machine = setting
        ecm = EcmGuidedTuner(validate=True).tune(spec, grids, machine, seed=2)
        exhaustive = ExhaustiveTuner().tune(spec, grids, machine, seed=2)
        # The analytic pick must be within 15% of the empirical best.
        assert ecm.best_mlups >= 0.85 * exhaustive.best_mlups


class TestParallelWorkers:
    """workers=N must reproduce the serial tuning outcome exactly."""

    def test_exhaustive_parallel_matches_serial(self, setting):
        spec, grids, machine = setting
        serial = ExhaustiveTuner().tune(spec, grids, machine, seed=3)
        par = ExhaustiveTuner(workers=2).tune(spec, grids, machine, seed=3)
        assert par.best_plan == serial.best_plan
        assert par.best_mlups == pytest.approx(serial.best_mlups, abs=0)
        assert par.trace == serial.trace
        assert par.workers == 2 and serial.workers == 1

    def test_greedy_parallel_matches_serial(self, setting):
        spec, grids, machine = setting
        serial = GreedyLineSearchTuner().tune(spec, grids, machine, seed=4)
        par = GreedyLineSearchTuner(workers=2).tune(spec, grids, machine, seed=4)
        assert par.best_plan == serial.best_plan
        assert par.best_mlups == pytest.approx(serial.best_mlups, abs=0)
        assert par.trace == serial.trace

    def test_cache_counters_accumulate(self, setting):
        spec, grids, machine = setting
        res = ExhaustiveTuner().tune(spec, grids, machine, seed=5)
        # Every variant consults the traffic cache exactly once.
        assert res.traffic_cache_hits + res.traffic_cache_misses == res.variants_run
        again = ExhaustiveTuner().tune(spec, grids, machine, seed=5)
        # A second identical run in the same process hits on every lookup.
        assert again.traffic_cache_hits == again.variants_run

"""Butcher tableau tests: known coefficients and order conditions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ode.tableau import (
    Tableau,
    bogacki_shampine,
    euler,
    heun,
    lobatto_iiic,
    radau_iia,
    rk4,
)


class TestExplicit:
    def test_euler(self):
        t = euler()
        assert t.stages == 1 and t.explicit
        assert t.quadrature_order() >= 1

    @pytest.mark.parametrize(
        "factory,order", [(heun, 2), (rk4, 4), (bogacki_shampine, 3)]
    )
    def test_consistency(self, factory, order):
        t = factory()
        assert t.order == order
        assert t.row_sums_consistent()
        assert t.quadrature_order() >= min(order, t.stages)

    def test_explicit_flag_checks_structure(self):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ValueError):
            Tableau("bad", a, np.array([0.5, 0.5]), np.array([0.0, 1.0]),
                    order=1, explicit=True)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Tableau("bad", np.zeros((2, 3)), np.zeros(2), np.zeros(2), order=1)


class TestRadauIIA:
    def test_two_stage_known_coefficients(self):
        t = radau_iia(2)
        np.testing.assert_allclose(
            t.a, [[5 / 12, -1 / 12], [3 / 4, 1 / 4]], atol=1e-12
        )
        np.testing.assert_allclose(t.c, [1 / 3, 1.0], atol=1e-12)

    @pytest.mark.parametrize("s", [2, 3, 4, 5])
    def test_order_conditions(self, s):
        t = radau_iia(s)
        assert t.quadrature_order() >= 2 * s - 1
        assert t.row_sums_consistent()
        assert t.c[-1] == pytest.approx(1.0)

    def test_stiffly_accurate(self):
        t = radau_iia(4)
        np.testing.assert_allclose(t.a[-1], t.b, atol=1e-12)

    def test_one_stage_is_implicit_euler(self):
        t = radau_iia(1)
        assert t.a[0, 0] == 1.0


class TestLobattoIIIC:
    def test_two_stage_known_coefficients(self):
        t = lobatto_iiic(2)
        np.testing.assert_allclose(
            t.a, [[0.5, -0.5], [0.5, 0.5]], atol=1e-12
        )

    @pytest.mark.parametrize("s", [2, 3, 4, 5])
    def test_order_conditions(self, s):
        t = lobatto_iiic(s)
        assert t.quadrature_order() >= 2 * s - 2
        assert t.row_sums_consistent()
        assert t.c[0] == pytest.approx(0.0, abs=1e-12)
        assert t.c[-1] == pytest.approx(1.0)

    def test_first_column_constant(self):
        t = lobatto_iiic(4)
        np.testing.assert_allclose(t.a[:, 0], np.full(4, t.b[0]), atol=1e-12)

    def test_rejects_single_stage(self):
        with pytest.raises(ValueError):
            lobatto_iiic(1)


@given(s=st.integers(2, 5))
def test_collocation_c_simplifying_condition(s):
    """Radau IIA satisfies C(s): sum_j a_ij c_j^(k-1) = c_i^k / k."""
    t = radau_iia(s)
    for k in range(1, s + 1):
        lhs = t.a @ (t.c ** (k - 1))
        np.testing.assert_allclose(lhs, t.c**k / k, atol=1e-9)


class TestGaussLegendre:
    def test_one_stage_is_implicit_midpoint(self):
        from repro.ode.tableau import gauss_legendre

        t = gauss_legendre(1)
        np.testing.assert_allclose(t.a, [[0.5]], atol=1e-12)
        np.testing.assert_allclose(t.b, [1.0], atol=1e-12)

    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_order_conditions(self, s):
        from repro.ode.tableau import gauss_legendre

        t = gauss_legendre(s)
        assert t.quadrature_order() >= 2 * s
        assert t.row_sums_consistent()
        # Nodes strictly interior and symmetric about 1/2.
        assert 0 < t.c[0] and t.c[-1] < 1
        np.testing.assert_allclose(t.c + t.c[::-1], np.ones(s), atol=1e-9)


class TestRadauIA:
    def test_two_stage_known_coefficients(self):
        from repro.ode.tableau import radau_ia

        t = radau_ia(2)
        np.testing.assert_allclose(
            t.a, [[1 / 4, -1 / 4], [1 / 4, 5 / 12]], atol=1e-10
        )
        np.testing.assert_allclose(t.b, [1 / 4, 3 / 4], atol=1e-10)

    @pytest.mark.parametrize("s", [2, 3, 4])
    def test_order_conditions(self, s):
        from repro.ode.tableau import radau_ia

        t = radau_ia(s)
        assert t.quadrature_order() >= 2 * s - 1
        assert t.c[0] == pytest.approx(0.0, abs=1e-10)

    def test_d_condition_holds(self):
        from repro.ode.tableau import radau_ia

        t = radau_ia(3)
        s = t.stages
        for k in range(1, s + 1):
            for j in range(s):
                lhs = sum(
                    t.b[i] * t.c[i] ** (k - 1) * t.a[i, j] for i in range(s)
                )
                rhs = t.b[j] / k * (1 - t.c[j] ** k)
                assert lhs == pytest.approx(rhs, abs=1e-9)


class TestLobattoIIIA:
    @pytest.mark.parametrize("s", [2, 3, 5])
    def test_order_and_endpoints(self, s):
        from repro.ode.tableau import lobatto_iiia

        t = lobatto_iiia(s)
        assert t.quadrature_order() >= 2 * s - 2
        assert t.c[0] == pytest.approx(0.0, abs=1e-10)
        assert t.c[-1] == pytest.approx(1.0)
        # First row of a IIIA tableau is all zeros (explicit first stage).
        np.testing.assert_allclose(t.a[0], np.zeros(s), atol=1e-9)

    def test_two_stage_is_trapezoidal(self):
        from repro.ode.tableau import lobatto_iiia

        t = lobatto_iiia(2)
        np.testing.assert_allclose(
            t.a, [[0.0, 0.0], [0.5, 0.5]], atol=1e-10
        )


class TestPirkOnOtherBases:
    def test_gauss_base_convergence(self):
        from repro.ode import PIRK, Wave1D, convergence_order, gauss_legendre

        method = PIRK(gauss_legendre(3), 2)  # order min(6, 3) = 3
        ivp = Wave1D(48, t_end=0.2)
        measured = convergence_order(method, ivp, base_steps=20)
        assert measured == pytest.approx(3, abs=0.4)

"""Benchmark tooling: the perf gate's missing-baseline behavior and
the BENCH-artifact trend folding."""

import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

import artifact  # noqa: E402
import perf_gate  # noqa: E402
import trend  # noqa: E402


def make(name="service", quick=True, metrics=None, timestamp="t0"):
    return {
        "name": name,
        "config": {"quick": quick},
        "metrics": metrics or {},
        "timestamp": timestamp,
        "git_rev": "abc1234",
    }


FULL_SERVICE_METRICS = {
    "warm_over_cold": 20.0,
    "warm_response_hit_rate": 0.9,
    "shed": 2,
    "healthy_after": True,
    "approx_serve_rate": 0.5,
}


# ----------------------------------------------------------------------
# perf gate
# ----------------------------------------------------------------------
class TestPerfGateMissing:
    def test_clean_pass(self):
        base = make(metrics=FULL_SERVICE_METRICS)
        cur = make(metrics=FULL_SERVICE_METRICS)
        failures, warnings = perf_gate.gate(base, cur, tolerance=0.5)
        assert failures == [] and warnings == []

    def test_missing_baseline_metric_warns_and_uses_floor(self):
        base = make(metrics={"warm_over_cold": 20.0})
        cur = make(metrics=FULL_SERVICE_METRICS)
        failures, warnings = perf_gate.gate(base, cur, tolerance=0.5)
        assert failures == []
        assert len(warnings) == 1
        assert "warm_response_hit_rate" in warnings[0]
        assert "absolute floor" in warnings[0]

    def test_missing_baseline_metric_floor_still_binds(self):
        # The hole downgrades the relative gate, not the absolute one:
        # a current value below the floor fails even in warn mode.
        base = make(metrics={"warm_over_cold": 20.0})
        cur = make(metrics={
            **FULL_SERVICE_METRICS, "warm_response_hit_rate": 0.1,
        })
        failures, warnings = perf_gate.gate(base, cur, tolerance=0.5)
        assert any("warm_response_hit_rate" in f for f in failures)
        assert len(warnings) == 1

    def test_missing_fail_mode(self):
        base = make(metrics={"warm_over_cold": 20.0})
        cur = make(metrics=FULL_SERVICE_METRICS)
        failures, warnings = perf_gate.gate(
            base, cur, tolerance=0.5, missing="fail"
        )
        assert any("warm_response_hit_rate" in f for f in failures)
        assert warnings == []

    def test_missing_guard_target_warns(self):
        metrics = dict(FULL_SERVICE_METRICS)
        del metrics["approx_serve_rate"]
        base = make(metrics=FULL_SERVICE_METRICS)
        cur = make(metrics=metrics)
        failures, warnings = perf_gate.gate(base, cur, tolerance=0.5)
        assert failures == []
        assert any("approx_serve_rate" in w for w in warnings)
        failures, _ = perf_gate.gate(
            base, cur, tolerance=0.5, missing="fail"
        )
        assert any("approx_serve_rate" in f for f in failures)

    def test_uncomparable_guard_value_fails_not_crashes(self):
        base = make(metrics=FULL_SERVICE_METRICS)
        cur = make(metrics={**FULL_SERVICE_METRICS, "shed": None})
        failures, _ = perf_gate.gate(base, cur, tolerance=0.5)
        assert any("shed" in f and "guard failed" in f for f in failures)

    def test_bad_missing_mode_rejected(self):
        with pytest.raises(ValueError):
            perf_gate.gate(make(), make(), 0.5, missing="ignore")

    def test_main_warn_exits_zero(self, tmp_path, capsys):
        bp, cp = tmp_path / "b.json", tmp_path / "c.json"
        artifact.write_artifact(
            bp, make(metrics={"warm_over_cold": 20.0})
        )
        artifact.write_artifact(cp, make(metrics=FULL_SERVICE_METRICS))
        assert perf_gate.main([str(bp), str(cp)]) == 0
        captured = capsys.readouterr()
        assert "PERF GATE WARN" in captured.err
        assert "warning(s) above" in captured.out
        assert perf_gate.main(
            [str(bp), str(cp), "--missing", "fail"]
        ) == 1


# ----------------------------------------------------------------------
# committed baselines carry the full gated metric set
# ----------------------------------------------------------------------
@pytest.mark.parametrize("path", sorted(
    (BENCHMARKS / "baselines").glob("BENCH_*.json")
))
def test_committed_baselines_have_no_holes(path):
    """The warn path exists for transition windows — the baselines in
    the repo must never need it."""
    record = artifact.load_artifact(path)
    name = record["name"]
    expected = set(perf_gate.RATIO_RULES.get(name, {}))
    expected |= set(perf_gate.GUARDS.get(name, {}))
    missing = sorted(expected - set(record["metrics"]))
    assert missing == [], f"{path.name} missing gated metrics {missing}"


# ----------------------------------------------------------------------
# trend folding
# ----------------------------------------------------------------------
class TestTrend:
    def write(self, directory, *records):
        for record in records:
            artifact.write_artifact_dir(directory, record)

    def test_trajectory_orders_and_deltas(self, tmp_path):
        self.write(
            tmp_path,
            make(metrics={"warm_rps": 110.0}, timestamp="2026-01-02"),
            make(metrics={"warm_rps": 100.0}, timestamp="2026-01-01"),
            make(metrics={"warm_rps": 140.0}, timestamp="2026-01-03"),
        )
        rows = trend.trajectories(trend.collect(tmp_path))["service/quick"]
        values = [r["metrics"]["warm_rps"]["value"] for r in rows]
        deltas = [r["metrics"]["warm_rps"]["delta"] for r in rows]
        assert values == [100.0, 110.0, 140.0]
        assert deltas == [None, 10.0, 30.0]

    def test_variants_are_separate_trajectories(self, tmp_path):
        self.write(
            tmp_path,
            make(quick=True, metrics={"m": 1.0}, timestamp="t1"),
            make(quick=False, metrics={"m": 9.0}, timestamp="t1"),
        )
        groups = trend.trajectories(trend.collect(tmp_path))
        assert set(groups) == {"service/quick", "service/full"}

    def test_bad_file_skipped_loudly(self, tmp_path, capsys):
        self.write(tmp_path, make(metrics={"m": 1.0}))
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        (tmp_path / "BENCH_holes.json").write_text(
            json.dumps({"name": "x"})
        )
        artifacts = trend.collect(tmp_path)
        assert len(artifacts) == 1
        err = capsys.readouterr().err
        assert "BENCH_broken.json" in err
        assert "BENCH_holes.json" in err

    def test_artifact_dir_filenames_collide_free(self, tmp_path):
        p1 = artifact.write_artifact_dir(
            tmp_path, make(timestamp="2026-01-01T00:00:00Z")
        )
        p2 = artifact.write_artifact_dir(
            tmp_path, make(timestamp="2026-01-02T00:00:00Z")
        )
        assert p1 != p2
        assert p1.name.startswith("BENCH_service_quick_")
        assert artifact.load_artifact(p1)["name"] == "service"
        # Same timestamp and rev, different variant: still no clobber.
        p3 = artifact.write_artifact_dir(
            tmp_path,
            make(quick=False, timestamp="2026-01-01T00:00:00Z"),
        )
        assert p3 not in (p1, p2)
        assert len(trend.collect(tmp_path)) == 3

    def test_main_table_and_json(self, tmp_path, capsys):
        self.write(
            tmp_path,
            make(metrics={"warm_rps": 100.0}, timestamp="t1"),
            make(metrics={"warm_rps": 130.0}, timestamp="t2"),
        )
        assert trend.main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "service/quick" in out and "(+30)" in out
        assert trend.main([str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "service/quick" in doc

    def test_main_empty_dir_fails(self, tmp_path, capsys):
        assert trend.main([str(tmp_path)]) == 1
        assert "no BENCH_" in capsys.readouterr().err

"""Unit tests for repro.machine."""

import pytest

from repro.machine import (
    CacheLevel,
    CoreModel,
    Machine,
    WritePolicy,
    cascade_lake_sp,
    generic_avx2,
    get_machine,
    rome,
)


class TestCacheLevel:
    def test_basic_properties(self):
        c = CacheLevel("L1", 32 * 1024, 64, 8, 64.0)
        assert c.n_lines == 512
        assert c.n_sets == 64
        assert c.cycles_per_line() == 1.0

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 1000, 64, 8, 64.0)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 32 * 1024, 64, 7, 64.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 32 * 1024, 64, 8, 0.0)

    def test_scaled_preserves_assoc_and_line(self):
        c = CacheLevel("L2", 1024 * 1024, 64, 16, 32.0)
        half = c.scaled(0.5)
        assert half.assoc == 16
        assert half.line_bytes == 64
        assert half.size_bytes == 512 * 1024
        assert half.n_lines % half.assoc == 0

    def test_scaled_never_below_one_set(self):
        c = CacheLevel("L1", 4 * 1024, 64, 4, 32.0)
        tiny = c.scaled(1e-6)
        assert tiny.n_lines >= tiny.assoc

    def test_write_policy_enum(self):
        c = CacheLevel("L1", 4096, 64, 4, 32.0,
                       write_policy=WritePolicy.WRITE_THROUGH)
        assert c.write_policy is WritePolicy.WRITE_THROUGH


class TestCoreModel:
    def test_simd_lanes(self):
        core = CoreModel(64, 2, 2, 2, 2, 1)
        assert core.simd_lanes(8) == 8
        assert core.simd_lanes(4) == 16

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            CoreModel(64, 0, 2, 2, 2, 1)


class TestMachine:
    def test_presets_valid(self):
        for m in (cascade_lake_sp(), rome(), generic_avx2()):
            assert m.n_levels >= 2
            assert m.line_bytes == 64
            assert m.freq_ghz > 0

    def test_level_lookup(self, clx):
        assert clx.level("L2").size_bytes == 1024 * 1024
        with pytest.raises(KeyError):
            clx.level("L9")

    def test_cache_ordering_enforced(self):
        small = CacheLevel("L1", 32 * 1024, 64, 8, 64.0)
        big = CacheLevel("L2", 16 * 1024, 64, 8, 32.0)
        core = CoreModel(32, 2, 2, 2, 2, 1)
        with pytest.raises(ValueError):
            Machine("bad", "AVX2", 2.0, 4, 4, core, (small, big))

    def test_mem_cycles_per_line_single_vs_many(self, clx):
        one = clx.mem_cycles_per_line(1)
        many = clx.mem_cycles_per_line(clx.cores)
        assert many > one  # contention slows each core down

    def test_mem_cycles_rejects_zero_cores(self, clx):
        with pytest.raises(ValueError):
            clx.mem_cycles_per_line(0)

    def test_scaled_caches(self, clx):
        half = clx.scaled_caches(0.5)
        assert half.level("L2").size_bytes == clx.level("L2").size_bytes // 2
        # Non-cache parameters untouched.
        assert half.freq_ghz == clx.freq_ghz
        assert half.mem_bw_gbs == clx.mem_bw_gbs

    def test_rome_victim_l3(self, rome_machine):
        assert rome_machine.level("L3").victim

    def test_summary_rows_cover_caches(self, clx):
        rows = dict(clx.summary_rows())
        assert "L1 (per core share)" in rows
        assert "Memory BW (GB/s)" in rows

    def test_get_machine_presets(self):
        assert get_machine("clx").name == "CascadeLakeSP"
        assert get_machine("ROME").name == "Rome"
        with pytest.raises(KeyError):
            get_machine("m1-max")

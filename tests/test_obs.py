"""Tests for the repro.obs span-tracing module."""

from __future__ import annotations

import time

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_ambient_tracing(monkeypatch):
    """Pin the ambient flag off; ambient tests re-enable it explicitly.

    The flag is read from ``REPRO_TRACE`` once at import, so tests flip
    the cached attribute rather than the environment.
    """
    monkeypatch.setattr(obs, "_AMBIENT", False)


def test_span_is_noop_without_trace():
    handle = obs.span("anything")
    assert handle is obs._NULL_HANDLE
    with handle as sp:
        sp.add(x=1)
        sp.set(k="v")
    assert not obs.tracing_active()


def test_trace_records_nested_spans():
    trace = obs.start_trace("root")
    assert obs.tracing_active()
    with obs.span("outer") as outer:
        outer.add(items=2)
        with obs.span("inner"):
            time.sleep(0.001)
    root = trace.finish()
    assert not obs.tracing_active()
    assert root.name == "root"
    assert [c.name for c in root.children] == ["outer"]
    outer_span = root.children[0]
    assert outer_span.counters == {"items": 2}
    assert [c.name for c in outer_span.children] == ["inner"]
    inner = outer_span.children[0]
    assert inner.duration_s > 0
    assert outer_span.duration_s >= inner.duration_s
    assert root.duration_s >= outer_span.duration_s


def test_counters_accumulate_and_attrs_overwrite():
    trace = obs.start_trace("t")
    with obs.span("s") as sp:
        sp.add(hits=1)
        sp.add(hits=2, misses=1)
        sp.set(engine="scalar")
        sp.set(engine="vector")
    root = trace.finish()
    span = root.children[0]
    assert span.counters == {"hits": 3, "misses": 1}
    assert span.attrs == {"engine": "vector"}


def test_to_dict_aggregates_same_named_siblings():
    trace = obs.start_trace("t")
    for _ in range(3):
        with obs.span("repeat") as sp:
            sp.add(n=1)
    with obs.span("other"):
        pass
    root = trace.finish()
    entry = root.to_dict(aggregate=True)
    names = [c["name"] for c in entry["children"]]
    assert names == ["repeat", "other"]
    repeat = entry["children"][0]
    assert repeat["count"] == 3
    assert repeat["counters"] == {"n": 3}
    # Without aggregation every sibling survives individually.
    flat = root.to_dict(aggregate=False)
    assert [c["name"] for c in flat["children"]] == [
        "repeat", "repeat", "repeat", "other",
    ]


def test_self_seconds_and_coverage():
    trace = obs.start_trace("t")
    with obs.span("parent"):
        with obs.span("child"):
            time.sleep(0.002)
    root = trace.finish()
    parent = root.children[0]
    assert parent.self_seconds() == pytest.approx(
        parent.duration_s - parent.children[0].duration_s
    )
    assert 0.0 <= obs.coverage(parent) <= 1.0
    assert obs.coverage(parent) > 0.5  # nearly all time is in the child


def test_span_exception_still_closes():
    trace = obs.start_trace("t")
    with pytest.raises(RuntimeError):
        with obs.span("boom"):
            raise RuntimeError("x")
    root = trace.finish()
    assert root.children[0].name == "boom"
    assert root.children[0].duration_s >= 0
    assert not obs.tracing_active()


def test_ambient_env_trace(monkeypatch):
    monkeypatch.setattr(obs, "_AMBIENT", True)
    assert not obs.tracing_active()
    with obs.span("ambient-root") as sp:
        assert obs.tracing_active()
        sp.add(n=1)
        with obs.span("child"):
            pass
    assert not obs.tracing_active()
    assert obs.last_trace is not None
    assert obs.last_trace.name == "ambient-root"
    assert obs.last_trace.counters == {"n": 1}
    assert [c.name for c in obs.last_trace.children] == ["child"]


def test_ambient_env_flag_parsing(monkeypatch):
    for value, enabled in (("0", False), ("", False),
                           ("1", True), ("yes", True)):
        monkeypatch.setenv(obs.ENV_FLAG, value)
        assert obs._env_enabled() is enabled
    monkeypatch.delenv(obs.ENV_FLAG)
    assert obs._env_enabled() is False
    # The cached switch governs span(): off means the shared no-op.
    assert obs.span("x") is obs._NULL_HANDLE


def test_render_trace_tree():
    trace = obs.start_trace("root")
    with obs.span("stage") as sp:
        sp.add(jobs=4)
        sp.set(engine="vector")
        with obs.span("leaf"):
            pass
    root = trace.finish()
    text = obs.render_trace(root)
    lines = text.splitlines()
    assert "root" in lines[0]
    assert any("stage" in line and "jobs=4" in line for line in lines)
    assert any("engine=vector" in line for line in lines)
    assert any("leaf" in line for line in lines)
    assert all("ms" in line for line in lines)


def test_walk_yields_depth_first():
    trace = obs.start_trace("r")
    with obs.span("a"):
        with obs.span("b"):
            pass
    with obs.span("c"):
        pass
    root = trace.finish()
    assert [s.name for s in root.walk()] == ["r", "a", "b", "c"]

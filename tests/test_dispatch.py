"""Layer-condition fast path: exactness property + service identity.

The dispatch layer (:mod:`repro.cachesim.dispatch`) may serve a sweep's
traffic report analytically instead of replaying it — but only when the
layer-condition analysis certifies exactness.  These tests pin the
contract down:

* wherever ``analyze_lc`` claims ``exact``, the synthesized report is
  **bit-identical** to the replay (swept across the stencil library and
  every machine preset),
* declines are honest (the suite contains both exact serves and
  declines, each with a reason),
* ``predictor="lc"`` raises on declined configurations instead of
  silently approximating, and a forced-lc *tune* fails fast (the
  declined variants would otherwise silently degrade the search and
  move the winner),
* the admitted tune predictors (``auto``/``simulate``) never enter the
  service's cache identity — requests differing only in predictor
  coalesce onto one cache entry with identical scientific content —
  while ``lc`` is rejected at normalization so it can never poison the
  shared entry.
"""

import pytest

from repro.cachesim import TrafficCache, measure_sweep
from repro.cachesim.dispatch import (
    PREDICTORS,
    PredictorError,
    analyze_lc,
    predictor_counters,
)
from repro.cachesim.stream import canonical_sweep_plan
from repro.codegen.plan import KernelPlan, candidate_plans
from repro.engine.requests import RequestError, TuneRequest
from repro.grid.grid import GridSet
from repro.machine.presets import PRESETS, get_machine
from repro.stencil.library import STENCIL_SUITE, get_stencil

#: Grids with clear layer-condition margins on the full-size presets.
#: Smaller grids land in the "window fits but eviction is not certain"
#: ambiguous zone, where the analysis (correctly) declines everything.
GRID_BY_DIM = {2: (2048, 256), 3: (48, 48, 128)}

MACHINES = tuple(sorted(PRESETS))


def _grid_for(spec):
    return GRID_BY_DIM[spec.dim]


class TestLcExactness:
    """analyze_lc.exact ==> report identical to the replay."""

    @pytest.mark.parametrize("machine_name", MACHINES)
    @pytest.mark.parametrize("name", STENCIL_SUITE)
    def test_exact_claims_match_replay(self, name, machine_name):
        spec = get_stencil(name)
        machine = get_machine(machine_name)
        shape = _grid_for(spec)
        grids = GridSet(spec, shape)
        plan = KernelPlan(block=shape)  # the canonical unblocked plan
        analysis = analyze_lc(spec, grids, plan, machine)
        if not analysis.exact:
            assert analysis.reason  # declines must say why
            pytest.skip(f"honest decline: {analysis.reason}")
        replay = measure_sweep(
            spec, grids, plan, machine,
            traffic_cache=None, predictor="simulate",
        )
        assert analysis.report.as_dict() == replay.as_dict()
        assert analysis.report.loads == replay.loads
        assert analysis.report.writebacks == replay.writebacks
        assert analysis.report.accesses == replay.accesses

    def test_suite_has_both_serves_and_declines(self):
        """The property above must not be vacuous: the library sweep
        contains exact serves AND honest declines on clx."""
        machine = get_machine("clx")
        outcomes = {"exact": 0, "declined": 0}
        for name in STENCIL_SUITE:
            spec = get_stencil(name)
            shape = _grid_for(spec)
            plan = KernelPlan(block=shape)
            analysis = analyze_lc(spec, GridSet(spec, shape), plan, machine)
            outcomes["exact" if analysis.exact else "declined"] += 1
        assert outcomes["exact"] >= 3, outcomes
        assert outcomes["declined"] >= 1, outcomes

    def test_blocked_plans_decline(self):
        """Middle-axis-blocked 3D plans are replay territory."""
        spec = get_stencil("3d7pt")
        shape = (32, 32, 96)
        plan = KernelPlan(block=(32, 8, 96))
        analysis = analyze_lc(spec, GridSet(spec, shape), plan, get_machine("clx"))
        assert not analysis.exact
        assert "blocked" in analysis.reason

    def test_order_equivalent_plans_share_the_canonical_form(self):
        """Every clipped full-x plan with unblocked middle axes collapses
        to the unblocked plan; genuinely blocked plans do not."""
        spec = get_stencil("heat2d")
        shape = (2048, 256)
        for plan in candidate_plans(spec, shape, get_machine("clx")):
            canon = canonical_sweep_plan(shape, plan.clipped(shape))
            if tuple(plan.clipped(shape).block) == shape:
                assert tuple(canon.block) == shape
        blocked = KernelPlan(block=(16, 8, 96)).clipped((32, 32, 96))
        assert tuple(canonical_sweep_plan((32, 32, 96), blocked).block) != (
            32, 32, 96,
        )


class TestPredictorModes:
    def test_lc_mode_raises_on_declined_config(self):
        spec = get_stencil("3d7pt")
        shape = (32, 32, 96)
        grids = GridSet(spec, shape)
        plan = KernelPlan(block=(32, 8, 96))  # blocked -> declined
        with pytest.raises(PredictorError):
            measure_sweep(
                spec, grids, plan, get_machine("clx"),
                traffic_cache=None, predictor="lc",
            )

    def test_invalid_predictor_rejected(self):
        spec = get_stencil("heat2d")
        grids = GridSet(spec, (64, 128))
        with pytest.raises(ValueError):
            measure_sweep(
                spec, grids, KernelPlan(block=(64, 128)),
                get_machine("clx"), predictor="oracle",
            )

    def test_forced_lc_tune_fails_fast(self):
        """A forced-lc tuner raises on the first declined variant
        instead of silently returning a degraded partial winner."""
        from repro.autotune.search import ExhaustiveTuner

        spec = get_stencil("3d7pt")
        grids = GridSet(spec, (16, 16, 32))
        with pytest.raises(PredictorError):
            ExhaustiveTuner(predictor="lc").tune(
                spec, grids, get_machine("clx")
            )

    def test_forced_lc_decline_is_not_retried(self):
        """The deterministic PredictorError must bypass the generic
        retry path: zero retries burnt, nothing ledgered as failed."""
        from repro.autotune.search import EvalLedger, _serial_fill

        spec = get_stencil("3d7pt")
        grids = GridSet(spec, (16, 16, 32))
        jobs = [(KernelPlan(block=(16, 4, 32)), 0)]  # blocked -> declined
        ledger = EvalLedger()
        results = [None]
        with pytest.raises(PredictorError):
            _serial_fill(
                spec, grids, get_machine("clx"), jobs, {0}, {}, None,
                2, results, ledger, None, predictor="lc",
            )
        assert ledger.retried_jobs == 0
        assert ledger.failed_jobs == []

    def test_counters_track_served_paths(self):
        spec = get_stencil("heat2d")
        shape = (2048, 256)
        grids = GridSet(spec, shape)
        plan = KernelPlan(block=shape)
        machine = get_machine("clx")
        counters = predictor_counters()
        base = counters.snapshot()
        measure_sweep(
            spec, grids, plan, machine,
            traffic_cache=None, predictor="auto",
        )
        after_lc = counters.snapshot()
        assert after_lc["lc_served"] == base["lc_served"] + 1
        measure_sweep(
            spec, grids, plan, machine,
            traffic_cache=None, predictor="simulate",
        )
        after_sim = counters.snapshot()
        assert after_sim["sim_served"] == after_lc["sim_served"] + 1
        assert after_sim["lc_validation_mismatch"] == base[
            "lc_validation_mismatch"
        ]

    def test_validation_mode_cross_checks(self, monkeypatch):
        """REPRO_LC_VALIDATE=1 replays behind every LC serve; a clean
        sweep records zero mismatches."""
        monkeypatch.setenv("REPRO_LC_VALIDATE", "1")
        spec = get_stencil("heat2d")
        shape = (2048, 256)
        grids = GridSet(spec, shape)
        counters = predictor_counters()
        base = counters.snapshot()
        measure_sweep(
            spec, grids, KernelPlan(block=shape), get_machine("clx"),
            traffic_cache=None, predictor="auto",
        )
        snap = counters.snapshot()
        assert snap["lc_served"] == base["lc_served"] + 1
        assert snap["lc_validation_mismatch"] == base[
            "lc_validation_mismatch"
        ]

    def test_predictor_outside_memo_identity(self):
        """LC-served and replayed reports share one memo entry."""
        spec = get_stencil("heat2d")
        shape = (2048, 256)
        grids = GridSet(spec, shape)
        plan = KernelPlan(block=shape)
        machine = get_machine("clx")
        cache = TrafficCache()
        lc = measure_sweep(
            spec, grids, plan, machine,
            traffic_cache=cache, predictor="auto",
        )
        assert cache.misses == 1
        sim = measure_sweep(
            spec, grids, plan, machine,
            traffic_cache=cache, predictor="simulate",
        )
        assert cache.hits == 1  # served from the LC-filled memo entry
        assert lc.as_dict() == sim.as_dict()


class TestRequestIdentity:
    """``predictor`` is run accounting, not request identity."""

    def test_predictor_validated_then_excluded_from_payload(self):
        req = TuneRequest.from_payload(
            {"stencil": "3d7pt", "predictor": "simulate"}
        )
        assert req.predictor == "simulate"
        assert "predictor" not in req.to_payload()

    def test_default_is_auto(self):
        req = TuneRequest.from_payload({"stencil": "3d7pt"})
        assert req.predictor == "auto"

    def test_invalid_predictor_rejected(self):
        with pytest.raises(RequestError):
            TuneRequest.from_payload(
                {"stencil": "3d7pt", "predictor": "oracle"}
            )

    def test_simulate_and_auto_accepted(self):
        for predictor in ("auto", "simulate"):
            assert predictor in PREDICTORS
            req = TuneRequest.from_payload(
                {"stencil": "3d7pt", "predictor": predictor}
            )
            assert req.predictor == predictor

    def test_lc_rejected_for_tune(self):
        """predictor='lc' would deterministically degrade the sweep
        (blocked variants are always declined) and, excluded from the
        identity, poison the shared response cache — reject it."""
        with pytest.raises(RequestError, match="lc"):
            TuneRequest.from_payload(
                {"stencil": "3d7pt", "predictor": "lc"}
            )


class TestServiceIdentity:
    """Live server: predictor stays outside the response-cache key."""

    def test_cross_predictor_requests_share_one_cache_entry(self):
        from repro.service.background import BackgroundServer
        from repro.service.client import ServiceError
        from repro.service.config import ServiceConfig

        base = {
            "stencil": "3d7pt", "grid": [16, 16, 32],
            "tuner": "exhaustive", "cache_scale": 1 / 32,
        }
        cfg = ServiceConfig(port=0, executor="thread", workers=2)
        with BackgroundServer(cfg) as bg:
            first = bg.client.tune(**base, predictor="simulate")
            assert first["served"] == "fresh"
            second = bg.client.tune(**base, predictor="auto")
            assert second["served"] == "response-cache"
            # Identical scientific content: one entry served both.
            assert second["result"]["best_plan"] == (
                first["result"]["best_plan"]
            )
            assert second["result"]["best_mlups"] == (
                first["result"]["best_mlups"]
            )
            # /metrics exposes the predictor ledger.
            snap = bg.metrics_snapshot()
            predictor = snap["predictor"]
            assert set(predictor) >= {
                "lc_served", "sim_served", "lc_validation_mismatch",
                "lc_fraction",
            }
            assert predictor["sim_served"] >= 1  # scaled caches decline
            assert predictor["lc_validation_mismatch"] == 0
            # Invalid predictor is a 400 at normalization.
            with pytest.raises(ServiceError) as err:
                bg.client.request(
                    "POST", "/tune", {**base, "predictor": "oracle"},
                )
            assert err.value.status == 400
            # So is a forced-lc tune: it could only fail or degrade,
            # and the degraded winner must never enter the shared
            # predictor-free cache entry.
            with pytest.raises(ServiceError) as err:
                bg.client.request(
                    "POST", "/tune", {**base, "predictor": "lc"},
                )
            assert err.value.status == 400
            assert bg.client.healthz()["status"] == "ok"

"""Overload-resilience unit + property tests.

Covers the pieces of :mod:`repro.service.overload` in isolation (fake
clocks, scripted alert sensors), the client-side retry hygiene (full
jitter, retry budget, deadline stamping), the dispatcher's queue-sweep
invariant under multi-threaded load, the router's Retry-After hints on
shard failure, and — critically — that every new knob is inert by
default: with the flags off, the service's responses stay
byte-identical to the pre-overload-control service.

The live brownout drill (sustained 2x overload -> ladder -> recovery)
lives in ``tests/test_overload_drill.py``.
"""

from __future__ import annotations

import asyncio
import http.client
import http.server
import json
import socket
import threading
import time

import pytest

from repro.fabric.config import FabricConfig
from repro.fabric.router import FabricRouter
from repro.service.background import BackgroundServer
from repro.service.batching import CoalescingDispatcher, DeadlineSwept, Overloaded
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.overload import (
    BROWNOUT_STAGES,
    DEADLINE_HEADER,
    AdaptiveLimiter,
    BrownoutLadder,
    ClassLatencyTracker,
    deadline_from_headers,
    format_deadline_ms,
)
from repro.telemetry import parse_prometheus

from tests.test_fabric import raw_request

PREDICT = {"stencil": "3d7pt", "grid": [32, 32, 48]}


def _request_with_headers(host, port, method, path, payload, extra_headers):
    """One request with caller-controlled headers; returns
    ``(status, raw_body, response_headers)``."""
    conn = http.client.HTTPConnection(host, port, timeout=60.0)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = dict(extra_headers)
        if body is not None:
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        return (
            resp.status,
            resp.read(),
            {k.lower(): v for k, v in resp.getheaders()},
        )
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Deadline header helpers
# ----------------------------------------------------------------------
class TestDeadlineHeader:
    def test_roundtrip_reanchors_against_local_clock(self):
        headers = {DEADLINE_HEADER.lower(): format_deadline_ms(1.5)}
        deadline = deadline_from_headers(headers, now=100.0)
        assert deadline == pytest.approx(101.5, abs=0.002)

    def test_absent_header_means_no_deadline(self):
        assert deadline_from_headers(None) is None
        assert deadline_from_headers({}) is None
        assert deadline_from_headers({"content-type": "json"}) is None

    @pytest.mark.parametrize("raw", ["garbage", "", "nan", "inf", "-inf"])
    def test_malformed_budget_degrades_to_no_deadline(self, raw):
        assert deadline_from_headers({DEADLINE_HEADER.lower(): raw}) is None

    def test_negative_budget_is_already_expired(self):
        deadline = deadline_from_headers(
            {DEADLINE_HEADER.lower(): "-250"}, now=100.0
        )
        assert deadline == pytest.approx(99.75)

    def test_format_floors_at_one_millisecond(self):
        assert format_deadline_ms(0.0) == "1"
        assert format_deadline_ms(0.0001) == "1"
        assert format_deadline_ms(2.5) == "2500"


class TestClassLatencyTracker:
    def test_no_p95_until_enough_samples(self):
        tracker = ClassLatencyTracker()
        for value in (0.1, 0.2, 0.3):
            tracker.record(value)
            assert tracker.p95() is None
        tracker.record(0.4)
        assert tracker.p95() == pytest.approx(0.4)

    def test_p95_tracks_the_tail_over_the_window(self):
        tracker = ClassLatencyTracker(window=20)
        for _ in range(18):
            tracker.record(0.01)
        tracker.record(5.0)
        tracker.record(5.0)
        assert tracker.p95() == pytest.approx(5.0)
        # The slow samples eventually fall out of the window.
        for _ in range(20):
            tracker.record(0.01)
        assert tracker.p95() == pytest.approx(0.01)


# ----------------------------------------------------------------------
# AIMD adaptive limiter (fake clock)
# ----------------------------------------------------------------------
class TestAdaptiveLimiter:
    def _limiter(self, **kwargs):
        now = [0.0]
        defaults = dict(
            ceiling=16, target_s=0.1, cooldown_s=1.0, now_fn=lambda: now[0]
        )
        defaults.update(kwargs)
        return AdaptiveLimiter(**defaults), now

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLimiter(ceiling=0, target_s=1.0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(ceiling=4, target_s=0.0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(ceiling=4, target_s=1.0, shrink=1.0)

    def test_starts_at_ceiling_and_healthy_traffic_stays_there(self):
        limiter, _ = self._limiter()
        assert limiter.limit == 16
        for _ in range(100):
            limiter.record(0.01)
        assert limiter.limit == 16
        assert limiter.shrinks == 0

    def test_breach_cuts_multiplicatively(self):
        limiter, _ = self._limiter()
        for _ in range(4):
            limiter.record(0.5)  # p95 well above the 0.1s target
        assert limiter.limit == 8
        assert limiter.shrinks == 1

    def test_cooldown_limits_cuts_to_one_per_period(self):
        limiter, now = self._limiter()
        for _ in range(4):
            limiter.record(0.5)
        assert limiter.limit == 8
        # Still inside the cooldown: more slow completions, no new cut.
        for _ in range(8):
            limiter.record(0.5)
        assert limiter.limit == 8 and limiter.shrinks == 1
        now[0] = 1.5  # past the cooldown
        for _ in range(4):
            limiter.record(0.5)
        assert limiter.limit == 4 and limiter.shrinks == 2

    def test_floor_is_never_undercut(self):
        limiter, now = self._limiter(ceiling=4, floor=1)
        for step in range(10):
            now[0] = float(step * 2)
            for _ in range(4):
                limiter.record(9.9)
        assert limiter.limit == 1

    def test_recovers_additively_after_latency_heals(self):
        limiter, now = self._limiter()
        for _ in range(4):
            limiter.record(0.5)
        assert limiter.limit == 8
        now[0] = 10.0
        for _ in range(200):
            limiter.record(0.01)
        assert limiter.limit == 16  # back at the ceiling, gradually
        assert limiter.grows > 0

    def test_snapshot_shape(self):
        limiter, _ = self._limiter()
        snap = limiter.snapshot()
        assert snap == {
            "limit": 16,
            "ceiling": 16,
            "floor": 1,
            "target_ms": 100.0,
            "shrinks": 0,
            "grows": 0,
        }


# ----------------------------------------------------------------------
# Brownout ladder (fake clock, scripted alert sensor)
# ----------------------------------------------------------------------
def _alert(objective="latency-p95", severity="page", type_="latency"):
    return {"objective": objective, "severity": severity, "type": type_}


class TestBrownoutLadder:
    def _ladder(self, alerts, **kwargs):
        now = [0.0]
        defaults = dict(
            escalate_hold_s=2.0,
            recover_hold_s=5.0,
            eval_interval_s=0.0,
            now_fn=lambda: now[0],
        )
        defaults.update(kwargs)
        return BrownoutLadder(alerts, **defaults), now

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutLadder(lambda: [], escalate_hold_s=0.0)
        with pytest.raises(ValueError):
            BrownoutLadder(lambda: [], max_stage=0)
        with pytest.raises(ValueError):
            BrownoutLadder(lambda: [], max_stage=len(BROWNOUT_STAGES))

    def test_escalates_only_after_sustained_burn(self):
        ladder, now = self._ladder(lambda: [_alert()])
        assert ladder.evaluate() == 0  # first sighting starts the hold
        now[0] = 1.9
        assert ladder.evaluate() == 0  # not sustained long enough yet
        now[0] = 2.1
        assert ladder.evaluate() == 1
        assert ladder.state == "approx-wide"
        # The next step needs its own full hold period.
        now[0] = 2.2
        assert ladder.evaluate() == 1
        now[0] = 4.3
        assert ladder.evaluate() == 2
        assert ladder.state == "predict-analytic"

    def test_blip_resets_the_escalation_hold(self):
        firing = [True]
        ladder, now = self._ladder(lambda: [_alert()] if firing[0] else [])
        ladder.evaluate()
        now[0] = 1.5
        firing[0] = False
        ladder.evaluate()  # calm: the burn streak resets
        firing[0] = True
        now[0] = 3.0
        assert ladder.evaluate() == 0  # 1.5s of *new* burn < the hold
        now[0] = 5.1
        assert ladder.evaluate() == 1

    def test_recovers_stage_by_stage_after_sustained_calm(self):
        firing = [True]
        ladder, now = self._ladder(lambda: [_alert()] if firing[0] else [])
        for t in (0.0, 2.1, 4.2):
            now[0] = t
            ladder.evaluate()
        assert ladder.stage == 2
        firing[0] = False
        now[0] = 5.0
        assert ladder.evaluate() == 2  # calm streak starts
        now[0] = 9.9
        assert ladder.evaluate() == 2
        now[0] = 10.1
        assert ladder.evaluate() == 1
        now[0] = 15.2
        assert ladder.evaluate() == 0
        assert ladder.state == "normal"
        assert ladder.escalations == 2 and ladder.recoveries == 2

    def test_max_stage_caps_the_descent(self):
        ladder, now = self._ladder(lambda: [_alert()], max_stage=2)
        for step in range(1, 10):
            now[0] = step * 2.1
            ladder.evaluate()
        assert ladder.stage == 2

    def test_shed_rate_alerts_are_ignored(self):
        ladder, now = self._ladder(
            lambda: [_alert(objective="shed-rate", type_="shed_rate")]
        )
        for step in range(5):
            now[0] = step * 2.1
            ladder.evaluate()
        assert ladder.stage == 0  # the actuator must not sense itself

    def test_warn_severity_does_not_escalate(self):
        ladder, now = self._ladder(lambda: [_alert(severity="warn")])
        for step in range(5):
            now[0] = step * 2.1
            ladder.evaluate()
        assert ladder.stage == 0

    def test_broken_sensor_reads_as_calm(self):
        def boom():
            raise RuntimeError("slo engine exploded")

        ladder, now = self._ladder(boom)
        for step in range(5):
            now[0] = step * 2.1
            ladder.evaluate()
        assert ladder.stage == 0

    def test_evaluation_is_rate_limited(self):
        calls = []
        ladder, now = self._ladder(
            lambda: calls.append(1) or [], eval_interval_s=1.0
        )
        ladder.evaluate()
        now[0] = 0.5
        ladder.evaluate()  # inside the interval: sensor not consulted
        assert len(calls) == 1
        now[0] = 1.5
        ladder.evaluate()
        assert len(calls) == 2

    def test_transitions_are_ledgered_and_observed(self):
        seen = []
        firing = [True]
        ladder, now = self._ladder(
            lambda: [_alert()] if firing[0] else [],
            on_transition=seen.append,
        )
        now[0] = 0.0
        ladder.evaluate()
        now[0] = 2.1
        ladder.evaluate()
        firing[0] = False
        now[0] = 3.0
        ladder.evaluate()
        now[0] = 8.1
        ladder.evaluate()
        entries = list(ladder.transitions)
        assert [e["direction"] for e in entries] == ["escalate", "recover"]
        assert entries[0]["from"] == "normal"
        assert entries[0]["to"] == "approx-wide"
        assert entries[0]["alerts"] == ["latency-p95"]
        assert entries[1]["to"] == "normal"
        assert seen == entries
        snap = ladder.snapshot()
        assert snap["stage"] == 0
        assert snap["stages"] == list(BROWNOUT_STAGES)
        assert snap["escalations"] == 1 and snap["recoveries"] == 1

    def test_observer_failure_does_not_affect_control(self):
        def bad_observer(entry):
            raise RuntimeError("recorder full")

        ladder, now = self._ladder(
            lambda: [_alert()], on_transition=bad_observer
        )
        now[0] = 0.0
        ladder.evaluate()
        now[0] = 2.1
        assert ladder.evaluate() == 1  # transition happened regardless


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestOverloadConfig:
    def test_brownout_requires_slo_engine(self):
        with pytest.raises(ValueError, match="slo"):
            ServiceConfig(port=0, brownout=True, slo_enabled=False)

    def test_adaptive_target_must_be_positive(self):
        with pytest.raises(ValueError):
            ServiceConfig(port=0, adaptive_target_ms=0.0)

    def test_brownout_confidence_bounds(self):
        for bad in (0.0, 1.5, -0.1):
            with pytest.raises(ValueError):
                ServiceConfig(
                    port=0,
                    slo_enabled=True,
                    brownout=True,
                    brownout_approx_confidence=bad,
                )

    def test_hold_times_must_be_positive(self):
        with pytest.raises(ValueError):
            ServiceConfig(
                port=0, slo_enabled=True, brownout=True,
                brownout_escalate_s=0.0,
            )

    def test_class_adaptive_targets(self):
        config = ServiceConfig(
            port=0,
            adaptive_target_ms=200.0,
            cost_routing=True,
            expensive_timeout_s=60.0,
        )
        assert config.class_adaptive_target_s("cheap") == pytest.approx(0.2)
        # Expensive work gets at least half its own deadline as target.
        assert config.class_adaptive_target_s("expensive") == pytest.approx(
            30.0
        )

    def test_fabric_config_carries_the_knobs_to_shards(self, tmp_path):
        from repro.fabric.proc import shard_service_config

        config = FabricConfig(
            fabric_dir=str(tmp_path),
            shards=1,
            adaptive_limits=True,
            adaptive_target_ms=123.0,
            brownout=True,
            slo_enabled=True,
            brownout_escalate_s=1.0,
            brownout_recover_s=2.0,
            brownout_approx_confidence=0.25,
        )
        shard = shard_service_config(config, 0)
        assert shard.adaptive_limits is True
        assert shard.adaptive_target_ms == 123.0
        assert shard.brownout is True
        assert shard.brownout_escalate_s == 1.0
        assert shard.brownout_recover_s == 2.0
        assert shard.brownout_approx_confidence == 0.25


# ----------------------------------------------------------------------
# Client: full jitter, retry budget, deadline stamping
# ----------------------------------------------------------------------
class _RecordingHandler(http.server.BaseHTTPRequestHandler):
    """Scripted responses + a record of every request's headers."""

    script: list = []
    seen: list = []

    def _serve(self):
        length = int(self.headers.get("Content-Length", 0))
        if length:
            self.rfile.read(length)
        type(self).seen.append({k.lower(): v for k, v in self.headers.items()})
        status, headers, body = (
            type(self).script.pop(0)
            if type(self).script
            else (200, {}, b"{}")
        )
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = _serve

    def log_message(self, *args):
        pass


@pytest.fixture()
def recording_server():
    handler = type(
        "Handler", (_RecordingHandler,), {"script": [], "seen": []}
    )
    server = http.server.HTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1], handler
    finally:
        server.shutdown()
        thread.join(timeout=5.0)


class TestClientJitter:
    def test_jitter_stays_within_the_scheduled_delay(self):
        client = ServiceClient(backoff_s=0.1, backoff_factor=2.0)
        for attempt in range(5):
            scheduled = 0.1 * 2.0**attempt
            for _ in range(50):
                delay = client._retry_delay_s(attempt, None)
                assert 0.0 <= delay <= scheduled

    def test_seeded_jitter_is_reproducible(self):
        a = ServiceClient(backoff_s=0.1, jitter_seed=42)
        b = ServiceClient(backoff_s=0.1, jitter_seed=42)
        seq_a = [a._retry_delay_s(k, None) for k in range(8)]
        seq_b = [b._retry_delay_s(k, None) for k in range(8)]
        assert seq_a == seq_b
        c = ServiceClient(backoff_s=0.1, jitter_seed=43)
        assert [c._retry_delay_s(k, None) for k in range(8)] != seq_a

    def test_jitter_spreads_the_schedule(self):
        client = ServiceClient(backoff_s=1.0, jitter_seed=7)
        delays = {client._retry_delay_s(0, None) for _ in range(20)}
        assert len(delays) > 10  # genuinely random, not quantized

    def test_retry_after_is_never_jittered(self):
        client = ServiceClient(backoff_s=30.0, jitter_seed=1)
        for _ in range(10):
            assert client._retry_delay_s(0, {"retry-after": "2"}) == 2.0


class TestClientRetryBudget:
    def test_sustained_storm_drains_the_bucket(self, recording_server):
        port, handler = recording_server
        body = b'{"error": "overloaded"}'
        handler.script[:] = [(429, {"Retry-After": "0"}, body)] * 100
        client = ServiceClient(
            port=port, retries=100, backoff_s=0.0, retry_budget=0.1
        )
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/tune", {})
        assert err.value.status == 429
        # The full bucket (10 tokens) + the first deposit bound the
        # retries far below the configured 100.
        assert len(handler.seen) <= 12
        assert client.retries_denied >= 1

    def test_budget_refills_across_requests(self, recording_server):
        port, handler = recording_server
        client = ServiceClient(
            port=port, retries=5, backoff_s=0.0, retry_budget=1.0
        )
        body = b'{"error": "overloaded"}'
        for _ in range(3):
            handler.script[:] = [
                (429, {"Retry-After": "0"}, body),
                (200, {}, b'{"ok": true}'),
            ]
            assert client.request("POST", "/tune", {}) == {"ok": True}
        assert client.retries_denied == 0

    def test_budget_none_disables_the_bucket(self, recording_server):
        port, handler = recording_server
        body = b'{"error": "overloaded"}'
        handler.script[:] = [(429, {"Retry-After": "0"}, body)] * 21
        client = ServiceClient(
            port=port, retries=20, backoff_s=0.0, retry_budget=None
        )
        with pytest.raises(ServiceError):
            client.request("POST", "/tune", {})
        assert len(handler.seen) == 21  # every configured retry ran
        assert client.retries_denied == 0


class TestClientDeadline:
    def test_no_deadline_sends_no_header(self, recording_server):
        port, handler = recording_server
        handler.script[:] = [(200, {}, b'{"ok": true}')]
        ServiceClient(port=port).request("POST", "/predict", PREDICT)
        assert DEADLINE_HEADER.lower() not in handler.seen[0]

    def test_deadline_header_carries_remaining_budget(self, recording_server):
        port, handler = recording_server
        handler.script[:] = [(200, {}, b'{"ok": true}')]
        ServiceClient(port=port, deadline_s=2.0).request(
            "POST", "/predict", PREDICT
        )
        budget_ms = float(handler.seen[0][DEADLINE_HEADER.lower()])
        assert 0 < budget_ms <= 2000

    def test_retries_restamp_a_shrinking_budget(self, recording_server):
        port, handler = recording_server
        body = b'{"error": "overloaded"}'
        handler.script[:] = [
            (429, {"Retry-After": "0.05"}, body),
            (200, {}, b'{"ok": true}'),
        ]
        client = ServiceClient(port=port, deadline_s=5.0, retries=2)
        client.request("POST", "/predict", PREDICT)
        first = float(handler.seen[0][DEADLINE_HEADER.lower()])
        second = float(handler.seen[1][DEADLINE_HEADER.lower()])
        assert second < first  # the retry saw less budget

    def test_exhausted_budget_fails_fast_without_sending(self):
        # Port 1 is unreachable; with a spent budget the client must
        # raise 504 before ever touching the network.
        client = ServiceClient(port=1, deadline_s=0.0)
        t0 = time.monotonic()
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/predict", PREDICT)
        assert err.value.status == 504
        assert err.value.body == {"error": "client deadline exceeded"}
        assert time.monotonic() - t0 < 1.0

    def test_sleep_never_overshoots_the_deadline(self, recording_server):
        port, handler = recording_server
        body = b'{"error": "overloaded"}'
        # The server demands a 30s wait; the caller only has ~0.3s.
        handler.script[:] = [(429, {"Retry-After": "30"}, body)] * 5
        client = ServiceClient(
            port=port, deadline_s=0.3, retries=5, timeout_s=60.0
        )
        t0 = time.monotonic()
        with pytest.raises(ServiceError) as err:
            client.request("POST", "/predict", PREDICT)
        assert err.value.status == 504
        assert time.monotonic() - t0 < 2.0


# ----------------------------------------------------------------------
# Dispatcher queue sweep: the property test
# ----------------------------------------------------------------------
class _LoopThread:
    """An asyncio loop on a daemon thread (the dispatcher's home)."""

    def __init__(self):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()

    def run(self, coro, timeout=60.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout=timeout
        )

    def close(self):
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


class TestDispatcherSweep:
    def test_swept_queue_never_executes_an_expired_job(self):
        """8 threads fire jobs with mixed deadlines; the invariant
        ``admitted == executed + swept`` must hold after the drain and
        no job whose deadline had already passed may ever execute."""
        config = ServiceConfig(
            port=0, executor="thread", workers=2, queue_limit=512
        )
        loops = _LoopThread()
        executed: list[int] = []
        executed_lock = threading.Lock()

        def job(payload):
            time.sleep(payload["sleep_s"])
            with executed_lock:
                executed.append(payload["index"])
            return {"index": payload["index"]}

        n_threads, per_thread = 8, 25

        async def submit(index: int):
            # A third of the jobs carry an already-expired deadline, a
            # third a tight-but-live one, a third none at all.
            kind = index % 3
            if kind == 0:
                deadline = time.time() - 1.0  # expired before admission
            elif kind == 1:
                deadline = time.time() + 0.2  # may expire in the queue
            else:
                deadline = None
            payload = {"index": index, "sleep_s": 0.005}
            try:
                served, task = dispatcher.dispatch(
                    f"job-{index}",
                    job,
                    payload,
                    job_class="cheap",
                    deadline_epoch=deadline,
                )
            except Overloaded:
                return index, "shed"
            try:
                await asyncio.shield(task)
                return index, "executed"
            except DeadlineSwept:
                return index, "swept"

        async def make_dispatcher():
            return CoalescingDispatcher(config)

        dispatcher = loops.run(make_dispatcher())
        outcomes: dict[int, str] = {}
        outcomes_lock = threading.Lock()

        def worker(thread_id: int):
            for k in range(per_thread):
                index = thread_id * per_thread + k
                idx, outcome = loops.run(submit(index))
                with outcomes_lock:
                    outcomes[idx] = outcome

        try:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)

            async def drain():
                await dispatcher.drain(timeout=30.0)
                return dispatcher.overload_snapshot()

            snap = loops.run(drain())
        finally:
            dispatcher.shutdown()
            loops.close()

        total = n_threads * per_thread
        assert len(outcomes) == total
        counts = snap["classes"]["cheap"]
        shed = sum(1 for o in outcomes.values() if o == "shed")
        # Sweep ledger: every admission is accounted for exactly once.
        assert counts["admitted"] == total - shed
        assert counts["admitted"] == counts["executed"] + counts["swept"]
        # The hard property: an expired-at-submit job NEVER executes.
        expired_at_submit = {
            i for i in range(total) if i % 3 == 0 and outcomes[i] != "shed"
        }
        assert expired_at_submit, "property test lost its subject"
        assert not (expired_at_submit & set(executed))
        for index in expired_at_submit:
            assert outcomes[index] == "swept"
        # Sanity: plenty of live work actually ran.
        assert counts["executed"] == len(executed) > 0
        assert counts["swept"] >= len(expired_at_submit)

    def test_deadline_free_dispatch_has_no_guard_overhead(self):
        config = ServiceConfig(port=0, executor="thread", workers=2)
        loops = _LoopThread()

        async def run_one():
            dispatcher = CoalescingDispatcher(config)
            served, task = dispatcher.dispatch(
                "k", lambda p: {"ok": True}, {}, job_class="cheap"
            )
            result = await asyncio.shield(task)
            snap = dispatcher.overload_snapshot()
            dispatcher.shutdown()
            return served, result, snap

        try:
            served, result, snap = loops.run(run_one())
        finally:
            loops.close()
        assert (served, result) == ("fresh", {"ok": True})
        row = snap["classes"]["cheap"]
        assert row["admitted"] == row["executed"] == 1
        assert row["swept"] == 0
        assert "adaptive" not in row  # limiter off by default


# ----------------------------------------------------------------------
# Router Retry-After hints
# ----------------------------------------------------------------------
class _RouterThread:
    """A FabricRouter on a daemon loop thread, no shard processes."""

    def __init__(self, config: FabricConfig, ports: dict[int, int]):
        self.router = FabricRouter(config, ports, supervisor=None)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()
        self.port = None

        def runner():
            asyncio.set_event_loop(self.loop)

            async def start():
                self.port = await self.router.start()
                started.set()

            self.loop.run_until_complete(start())
            self.loop.run_forever()

        self.thread = threading.Thread(target=runner, daemon=True)
        self.thread.start()
        assert started.wait(timeout=15.0)

    def close(self):
        async def stop():
            await self.router.stop()

        asyncio.run_coroutine_threadsafe(stop(), self.loop).result(
            timeout=15.0
        )
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.loop.close()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestRouterRetryAfter:
    def test_retry_after_derives_from_the_probe_backoff(self, tmp_path):
        config = FabricConfig(
            fabric_dir=str(tmp_path), shards=2,
            probe_interval_s=1.5, probe_timeout_s=2.0,
        )
        router = FabricRouter(config, {}, supervisor=None)
        # ceil(1.5 + 2.0) = 4: one probe cycle must have completed
        # before a retry can possibly find a restarted shard.
        assert router._restart_retry_after_s() == 4

    def test_unroutable_request_carries_retry_after(self, tmp_path):
        config = FabricConfig(
            fabric_dir=str(tmp_path), shards=2,
            probe_interval_s=0.2, probe_timeout_s=0.3,
        )
        # Both shards point at closed ports: every forward is refused.
        ports = {0: _free_port(), 1: _free_port()}
        hosted = _RouterThread(config, ports)
        try:
            status, body, headers = raw_request(
                "127.0.0.1", hosted.port, "POST", "/predict", PREDICT
            )
        finally:
            hosted.close()
        assert status == 503
        assert json.loads(body)["error"] == "no live shard"
        expected = max(
            1,
            int(config.probe_interval_s + config.probe_timeout_s + 0.999),
        )
        assert headers["retry-after"] == str(expected)

    def test_deadline_expired_at_router_is_504(self, tmp_path):
        config = FabricConfig(
            fabric_dir=str(tmp_path), shards=1,
            probe_interval_s=0.2, probe_timeout_s=0.3,
        )
        ports = {0: _free_port()}
        hosted = _RouterThread(config, ports)
        try:
            # A budget that expired before the request even arrived:
            # the router must answer 504 itself, never forward.
            status, raw, _ = _request_with_headers(
                "127.0.0.1", hosted.port, "POST", "/predict", PREDICT,
                {DEADLINE_HEADER: "-1000"},
            )
        finally:
            hosted.close()
        assert status == 504
        assert json.loads(raw)["error"] == "deadline expired"


# ----------------------------------------------------------------------
# Byte identity: every knob off == the pre-overload-control service
# ----------------------------------------------------------------------
def _cfg(**kwargs) -> ServiceConfig:
    defaults = dict(port=0, executor="thread", workers=2)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


class TestByteIdentityWithFlagsOff:
    def test_default_surfaces_show_no_overload_keys(self):
        with BackgroundServer(_cfg()) as bg:
            envelope = bg.client.predict(**PREDICT)
            assert set(envelope) == {"endpoint", "served", "result"}
            health = bg.client.healthz()
            assert "brownout" not in health
            assert bg.client.slo() == {"enabled": False}
            metrics = bg.client.metrics()
            assert "overload" not in metrics
            for row in metrics["queues"].values():
                assert "adaptive_limit" not in row

    def test_deadline_header_alone_changes_nothing(self):
        with BackgroundServer(_cfg()) as bg:
            # Warm the response cache, then compare two *cache-served*
            # responses so both bodies are fully deterministic.
            raw_request("127.0.0.1", bg.port, "POST", "/predict", PREDICT)
            status_a, body_a, _ = raw_request(
                "127.0.0.1", bg.port, "POST", "/predict", PREDICT
            )
            # Same request with a generous deadline header attached.
            status_b, body_b, _ = _request_with_headers(
                "127.0.0.1", bg.port, "POST", "/predict", PREDICT,
                {DEADLINE_HEADER: "60000"},
            )
            assert (status_a, body_a) == (status_b, body_b)
            assert json.loads(body_a)["served"] == "response-cache"
            metrics = bg.client.metrics()
            assert "overload" not in metrics

    def test_adaptive_limits_surface_when_enabled(self):
        with BackgroundServer(_cfg(adaptive_limits=True)) as bg:
            bg.client.predict(**PREDICT)
            metrics = bg.client.metrics()
            assert "overload" in metrics
            cheap = metrics["overload"]["classes"]["cheap"]
            assert cheap["admitted"] >= 1
            assert cheap["admitted"] == cheap["executed"] + cheap["swept"]
            assert cheap["adaptive"]["ceiling"] >= 1
            for row in metrics["queues"].values():
                assert "adaptive_limit" in row
            status, body, _ = raw_request(
                "127.0.0.1", bg.port, "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            families = parse_prometheus(body.decode())
            assert "repro_class_adaptive_limit" in families
            assert "repro_class_admitted_total" in families
            assert "repro_class_swept_total" in families

    def test_tight_deadline_is_rejected_with_429(self, monkeypatch):
        import repro.service.jobs as jobs

        real_predict = jobs.predict_job

        def slow_predict(payload):
            time.sleep(0.05)
            return real_predict(payload)

        monkeypatch.setitem(
            jobs.JOBS, "/predict", (jobs.normalize_predict, slow_predict)
        )
        with BackgroundServer(_cfg(workers=1)) as bg:
            # Warm the p95 tracker: every completion takes >= 50ms.
            for i in range(5):
                bg.client.predict(
                    stencil="3d7pt", grid=[16 + 2 * i, 16, 32]
                )
            # A 1ms budget can never cover the observed ~50ms p95: the
            # server must refuse fast instead of queueing a doomed job.
            status, raw, headers = _request_with_headers(
                "127.0.0.1", bg.port, "POST", "/predict",
                {"stencil": "3d7pt", "grid": [40, 40, 56]},
                {DEADLINE_HEADER: "1"},
            )
            assert status == 429
            body = json.loads(raw)
            assert body["error"] == "deadline too tight"
            assert body["queue_class"] == "cheap"
            assert body["observed_p95_ms"] >= 50.0
            assert "retry-after" in headers
            # The refusal is a shed, not a failure, in the ledger.
            outcomes = bg.client.metrics()["endpoints"]["/predict"][
                "outcomes"
            ]
            assert outcomes["shed"] == 1
            assert outcomes["failed"] == 0

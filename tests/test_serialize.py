"""Machine JSON serialization round-trip tests."""

import pytest

from repro.machine import (
    cascade_lake_sp,
    generic_avx2,
    load_machine,
    machine_from_dict,
    machine_to_dict,
    rome,
    save_machine,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [cascade_lake_sp, rome, generic_avx2]
    )
    def test_dict_round_trip(self, factory):
        original = factory()
        rebuilt = machine_from_dict(machine_to_dict(original))
        assert rebuilt == original

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "clx.json"
        save_machine(cascade_lake_sp(), path)
        rebuilt = load_machine(path)
        assert rebuilt == cascade_lake_sp()

    def test_victim_flag_survives(self):
        rebuilt = machine_from_dict(machine_to_dict(rome()))
        assert rebuilt.level("L3").victim

    def test_missing_field_rejected(self):
        data = machine_to_dict(generic_avx2())
        del data["freq_ghz"]
        with pytest.raises(ValueError):
            machine_from_dict(data)

    def test_cache_defaults_filled(self):
        data = machine_to_dict(generic_avx2())
        for cache in data["caches"]:
            del cache["victim"]
            del cache["shared_by"]
        rebuilt = machine_from_dict(data)
        assert rebuilt.caches[0].shared_by == 1

    def test_custom_machine_usable(self):
        # A user-defined machine built from JSON drives the model.
        from repro.codegen import KernelPlan
        from repro.ecm import predict
        from repro.stencil import get_stencil

        data = machine_to_dict(generic_avx2())
        data["name"] = "MyCPU"
        data["freq_ghz"] = 3.0
        machine = machine_from_dict(data)
        pred = predict(
            get_stencil("3d7pt"), (32, 32, 32),
            KernelPlan(block=(32, 32, 32)), machine,
        )
        assert pred.machine_name == "MyCPU"
        assert pred.mlups > 0

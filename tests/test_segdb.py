"""Segmented multi-process tuning database: merge precedence,
refresh, compaction, schema versioning, corruption handling."""

from repro.offsite.database import TuningKey, TuningRecord
from repro.util import crashsafe
from repro.util.segdb import (
    BASE_SEGMENT,
    SEGMENT_SCHEMA,
    SegmentedTuningDatabase,
)


def record(grid=(16, 16, 32), variant="A", pred=1.0):
    return TuningRecord(
        key=TuningKey("radau_iia", "heat3d", "clx", tuple(grid)),
        best_variant=variant,
        block=(8, 8, 32),
        predicted_s_per_step=pred,
        ranking=[variant],
    )


def open_shard(root, shard):
    # refresh_interval_s=0: every miss re-scans, so tests never sleep.
    return SegmentedTuningDatabase(root, shard, refresh_interval_s=0.0)


class TestSingleShard:
    def test_put_save_reload(self, tmp_path):
        db = open_shard(tmp_path, 0)
        db.put(record())
        db.save()
        assert (tmp_path / "segment-0.json").exists()
        again = open_shard(tmp_path, 0)
        assert again.get(record().key).best_variant == "A"

    def test_save_writes_only_own_segment(self, tmp_path):
        a = open_shard(tmp_path, 0)
        a.put(record(variant="A"))
        a.save()
        b = open_shard(tmp_path, 1)
        b.put(record(grid=(24, 24, 32), variant="B"))
        b.save()
        # Shard 1's segment contains only shard 1's record.
        payload = crashsafe.load_envelope(tmp_path / "segment-1.json")
        assert payload["shard"] == "1"
        assert len(payload["records"]) == 1
        assert payload["records"][0]["best_variant"] == "B"


class TestCrossShardVisibility:
    def test_peer_records_appear_after_refresh(self, tmp_path):
        writer = open_shard(tmp_path, 0)
        reader = open_shard(tmp_path, 1)
        assert reader.get(record().key) is None
        writer.put(record())
        writer.save()
        # The miss triggers a re-scan (interval 0) that merges peer 0.
        assert reader.get(record().key).best_variant == "A"

    def test_own_unsaved_puts_win_over_peer_segments(self, tmp_path):
        peer = open_shard(tmp_path, 0)
        peer.put(record(variant="PEER"))
        peer.save()
        mine = open_shard(tmp_path, 1)
        mine.put(record(variant="MINE"))  # unsaved
        mine.refresh(force=True)
        assert mine.get(record().key).best_variant == "MINE"

    def test_lookup_refreshes(self, tmp_path):
        writer = open_shard(tmp_path, 0)
        writer.put(record())
        writer.save()
        reader = open_shard(tmp_path, 1)
        hit = reader.lookup(
            TuningKey("radau_iia", "heat3d", "clx", (17, 17, 33))
        )
        # Nearest-grid fallback over the freshly merged peer segment.
        assert hit is not None and hit.key.grid == (16, 16, 32)


class TestCompaction:
    def test_compact_merges_and_removes(self, tmp_path):
        for shard in range(3):
            db = open_shard(tmp_path, shard)
            db.put(record(grid=(16 + shard, 16, 32), variant=f"V{shard}"))
            db.save()
        report = SegmentedTuningDatabase.compact(tmp_path)
        assert report["records"] == 3
        assert report["segments_removed"] == 3
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [BASE_SEGMENT]
        merged = open_shard(tmp_path, 0)
        assert len(merged) == 3

    def test_shard_segment_shadows_stale_base(self, tmp_path):
        db = open_shard(tmp_path, 0)
        db.put(record(variant="OLD"))
        db.save()
        SegmentedTuningDatabase.compact(tmp_path)
        db2 = open_shard(tmp_path, 0)
        db2.put(record(variant="NEW"))
        db2.save()
        fresh = open_shard(tmp_path, 1)
        assert fresh.get(record().key).best_variant == "NEW"

    def test_compact_empty_dir(self, tmp_path):
        report = SegmentedTuningDatabase.compact(tmp_path / "nowhere")
        assert report["records"] == 0


class TestSchemaVersioning:
    def test_newer_schema_is_skipped_not_quarantined(self, tmp_path):
        crashsafe.dump_envelope(
            tmp_path / "segment-9.json",
            {"schema": SEGMENT_SCHEMA + 1, "shard": "9", "records": []},
        )
        db = open_shard(tmp_path, 0)
        assert db.skipped_segments() == ["segment-9.json"]
        assert (tmp_path / "segment-9.json").exists()  # never destroyed

    def test_compact_never_unlinks_newer_schema(self, tmp_path):
        crashsafe.dump_envelope(
            tmp_path / "segment-9.json",
            {"schema": SEGMENT_SCHEMA + 1, "shard": "9", "records": []},
        )
        report = SegmentedTuningDatabase.compact(tmp_path)
        assert report["segments_skipped"] == ["segment-9.json"]
        assert (tmp_path / "segment-9.json").exists()

    def test_legacy_record_list_loads_as_schema_zero(self, tmp_path):
        crashsafe.dump_envelope(
            tmp_path / "segment-old.json", [record().to_json()]
        )
        db = open_shard(tmp_path, 0)
        assert db.get(record().key) is not None


class TestCorruption:
    def test_corrupt_segment_is_quarantined(self, tmp_path):
        (tmp_path / "segment-0.json").write_text("{definitely not json")
        db = open_shard(tmp_path, 1)
        assert len(db) == 0
        assert not (tmp_path / "segment-0.json").exists()
        assert list(tmp_path.glob("*.corrupt*"))

    def test_one_bad_record_does_not_drop_the_segment(self, tmp_path):
        crashsafe.dump_envelope(
            tmp_path / "segment-0.json",
            {
                "schema": SEGMENT_SCHEMA,
                "shard": "0",
                "records": [{"nope": 1}, record().to_json()],
            },
        )
        db = open_shard(tmp_path, 1)
        assert len(db) == 1


class TestRefreshRateLimit:
    def test_interval_suppresses_rescan(self, tmp_path):
        db = SegmentedTuningDatabase(tmp_path, 0, refresh_interval_s=3600)
        peer = open_shard(tmp_path, 1)
        peer.put(record())
        peer.save()
        # Within the interval the miss stays a miss...
        assert db.get(record().key) is None
        # ...but a forced refresh sees it.
        db.refresh(force=True)
        assert db.get(record().key) is not None

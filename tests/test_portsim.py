"""Port-level in-core scheduler tests."""

import pytest

from repro.ecm.incore import incore_model
from repro.ecm.portsim import (
    detailed_incore,
    lower_spec,
    schedule,
)
from repro.machine import cascade_lake_sp, rome
from repro.stencil import get_stencil, star
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


class TestLowering:
    def test_loads_deduplicated(self):
        spec = get_stencil("3d7pt")
        instructions = lower_spec(spec)
        loads = [i for i in instructions if i.kind == "load"]
        assert len(loads) == 7  # one per distinct offset

    def test_single_store(self):
        instructions = lower_spec(get_stencil("3d27pt"))
        assert sum(1 for i in instructions if i.kind == "store") == 1

    def test_fma_contraction_happens(self):
        instructions = lower_spec(get_stencil("3d7pt"))
        kinds = {i.kind for i in instructions}
        assert "fma" in kinds

    def test_store_depends_on_root(self):
        instructions = lower_spec(get_stencil("3d7pt"))
        store = next(i for i in instructions if i.kind == "store")
        assert store.deps  # not a dangling store

    def test_division_lowered(self):
        u = E.access("u")
        spec = StencilSpec("divs", "out", u(0,) / u(1,))
        instructions = lower_spec(spec)
        assert any(i.kind == "div" for i in instructions)

    def test_dependencies_precede_uses(self):
        instructions = lower_spec(get_stencil("3dvarcoef"))
        for inst in instructions:
            assert all(d < inst.index for d in inst.deps)


class TestScheduling:
    def test_throughput_at_least_port_pressure(self, clx):
        spec = get_stencil("3d25pt")
        instructions = lower_spec(spec)
        sched = schedule(instructions, clx)
        n_loads = sum(1 for i in instructions if i.kind == "load")
        assert sched.throughput_cycles >= n_loads / clx.core.load_ports

    def test_latency_at_least_throughput(self, clx):
        sched = schedule(lower_spec(get_stencil("3d7pt")), clx)
        assert sched.latency_cycles >= sched.throughput_cycles

    def test_more_ports_never_slower(self, clx, rome_machine):
        # Same port counts here, but narrower SIMD on Rome shows up in
        # detailed_incore, not schedule; schedule itself is per-vector.
        spec = get_stencil("3d7pt")
        s_clx = schedule(lower_spec(spec), clx)
        s_rome = schedule(lower_spec(spec), rome_machine)
        assert s_clx.throughput_cycles == pytest.approx(
            s_rome.throughput_cycles
        )

    def test_bound_classification(self, clx):
        sched = schedule(lower_spec(get_stencil("3d7pt")), clx)
        assert sched.bound() in ("latency", "throughput")

    def test_div_occupies_port_long(self, clx):
        u = E.access("u")
        spec = StencilSpec("divs", "out", u(0,) / u(1,))
        sched = schedule(lower_spec(spec), clx)
        fp_busy = max(
            v for p, v in sched.port_cycles.items() if p.startswith("fp")
        )
        assert fp_busy >= 8.0


class TestDetailedInCore:
    def test_same_units_as_simple_model(self, clx):
        spec = get_stencil("3d7pt")
        simple = incore_model(spec, clx)
        detailed = detailed_incore(spec, clx)
        # Same ballpark (both count the same loads/stores/FMAs).
        assert detailed.t_nol == pytest.approx(simple.t_nol, rel=0.5)
        assert detailed.t_ol > 0

    def test_radius_monotone(self, clx):
        t1 = detailed_incore(get_stencil("3d7pt"), clx).t_nol
        t4 = detailed_incore(get_stencil("3d25pt"), clx).t_nol
        assert t4 > t1

    def test_avx2_costs_double(self, clx, rome_machine):
        spec = get_stencil("3d7pt")
        d_clx = detailed_incore(spec, clx)
        d_rome = detailed_incore(spec, rome_machine)
        assert d_rome.t_nol == pytest.approx(2 * d_clx.t_nol, rel=1e-6)

    def test_cse_reduces_pressure(self, clx):
        # A stencil with a repeated subexpression must not pay twice.
        u = E.access("u")
        common = u(0, 0, 0) + u(0, 0, 1)
        spec_shared = StencilSpec("shared", "out", common * common)
        d = detailed_incore(spec_shared, clx)
        adds = sum(
            1 for i in d.schedule.instructions if i.kind in ("add", "fma")
        )
        assert adds == 1  # the shared add lowered once

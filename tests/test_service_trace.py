"""Live-server tests for per-request tracing and stage metrics.

A ``"trace": true`` field in a POST payload asks the service to run
that request under an :mod:`repro.obs` trace and attach the span tree
to the response envelope.  The flag must not change the *result* bytes
or the cache identity: a traced and an untraced request for the same
configuration share one cache entry, and a cache hit answers a traced
request with ``"trace": null`` (nothing executed, nothing to trace).
"""

import json

import pytest

from repro.service.background import BackgroundServer
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig

PREDICT = {"stencil": "3d7pt", "grid": [16, 16, 32]}
TUNE = {
    "stencil": "3d7pt",
    "grid": [16, 16, 32],
    "tuner": "greedy",
    "cache_scale": 1 / 32,
}


@pytest.fixture(scope="module")
def server():
    cfg = ServiceConfig(
        port=0, executor="thread", workers=2, queue_limit=64
    )
    bg = BackgroundServer(cfg).start()
    try:
        yield bg
    finally:
        bg.stop()


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port)


def _span_names(entry: dict) -> set[str]:
    names = {entry["name"]}
    for child in entry.get("children", ()):
        names |= _span_names(child)
    return names


class TestTracedRequests:
    def test_traced_predict_attaches_span_tree(self, client):
        resp = client.predict(**PREDICT, trace=True)
        assert resp["served"] == "fresh"
        trace = resp["trace"]
        assert trace["name"] == "request:/predict"
        names = _span_names(trace)
        assert {"engine.predict", "engine.yasksite",
                "blocking.select", "ecm.predict"} <= names
        assert trace["duration_s"] > 0

    def test_trace_flag_does_not_change_result_bytes(self, client):
        traced = client.predict(
            **{**PREDICT, "grid": [16, 16, 48]}, trace=True
        )
        untraced = client.predict(**{**PREDICT, "grid": [16, 16, 48]})
        assert json.dumps(traced["result"]) == json.dumps(
            untraced["result"]
        )
        assert "trace" not in untraced

    def test_traced_and_untraced_share_cache_identity(self, client):
        payload = {**PREDICT, "grid": [16, 32, 32]}
        first = client.predict(**payload, trace=True)
        assert first["served"] == "fresh"
        hit = client.predict(**payload)
        assert hit["served"] == "response-cache"
        assert json.dumps(hit["result"]) == json.dumps(first["result"])

    def test_cache_hit_answers_traced_request_with_null(self, client):
        payload = {**PREDICT, "grid": [32, 16, 32]}
        client.predict(**payload)
        resp = client.predict(**payload, trace=True)
        assert resp["served"] == "response-cache"
        assert resp["trace"] is None

    def test_traced_tune_names_tuner_stages(self, client):
        resp = client.tune(**TUNE, trace=True)
        assert resp["served"] == "fresh"
        names = _span_names(resp["trace"])
        assert {"engine.tune", "tuner.greedy", "tuner.evaluate",
                "cachesim.sweep"} <= names

    def test_traced_rank_names_offsite_stages(self, client):
        resp = client.rank(grid=[8, 8, 16], validate=False, trace=True)
        assert resp["served"] == "fresh"
        names = _span_names(resp["trace"])
        assert {"engine.rank", "offsite.predict"} <= names


class TestStageMetrics:
    def test_metrics_report_stage_timings(self, client):
        client.predict(**{**PREDICT, "grid": [48, 16, 32]}, trace=True)
        stages = client.metrics()["stages"]
        # Lifecycle stages are recorded for every request...
        for stage in ("normalize", "cache", "execute"):
            assert stages[stage]["count"] >= 1
            assert stages[stage]["total_s"] >= 0
            assert "mean_ms" in stages[stage]
        # ...and traced requests fold their span durations in by name.
        assert stages["engine.predict"]["count"] >= 1
        assert stages["engine.predict"]["total_s"] > 0


class TestProcessPoolTracing:
    def test_traced_tune_through_process_pool(self):
        """Worker-side traces survive the process boundary."""
        cfg = ServiceConfig(
            port=0, executor="process", workers=1, queue_limit=16
        )
        bg = BackgroundServer(cfg).start()
        try:
            client = ServiceClient(port=bg.port)
            resp = client.tune(**TUNE, trace=True)
            assert resp["served"] == "fresh"
            names = _span_names(resp["trace"])
            assert {"engine.tune", "tuner.greedy"} <= names
            assert resp["result"]["best_mlups"] > 0
        finally:
            bg.stop()

"""Distributed (multi-rank) model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dist import (
    NetworkModel,
    RankDecomposition,
    best_decomposition,
    predict_distributed,
)
from repro.dist.decompose import factorizations
from repro.machine import cascade_lake_sp
from repro.stencil import get_stencil


class TestDecomposition:
    def test_local_shape(self):
        d = RankDecomposition((64, 64, 64), (2, 2, 1))
        assert d.local_shape == (32, 32, 64)
        assert d.n_ranks == 4

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            RankDecomposition((64, 64, 64), (3, 1, 1))

    def test_neighbor_count(self):
        d = RankDecomposition((64, 64, 64), (2, 2, 1))
        assert d.neighbor_count() == 4  # two split axes, both directions

    def test_exchange_bytes(self):
        d = RankDecomposition((64, 64, 64), (2, 1, 1))
        # One split axis: 2 faces x radius planes of 32x64x64... local
        # is (32,64,64); face area = 64*64; 2 * r * face * 8 bytes.
        assert d.exchange_bytes_per_step(radius=1) == 2 * 1 * 64 * 64 * 8

    def test_surface_to_volume_shrinks_with_size(self):
        small = RankDecomposition((32, 32, 32), (2, 1, 1))
        big = RankDecomposition((128, 128, 128), (2, 1, 1))
        assert big.surface_to_volume(1) < small.surface_to_volume(1)

    def test_factorizations_complete(self):
        f = factorizations(8, 3)
        assert (2, 2, 2) in f and (8, 1, 1) in f and (1, 1, 8) in f
        assert all(a * b * c == 8 for a, b, c in f)

    def test_best_decomposition_minimises_halo(self):
        best = best_decomposition((64, 64, 64), 8, radius=1)
        volume = best.exchange_bytes_per_step(1)
        # No factorization does better in volume; slab splits (64k) lose.
        for ranks in ((8, 1, 1), (1, 8, 1), (1, 1, 8)):
            other = RankDecomposition((64, 64, 64), ranks)
            assert volume <= other.exchange_bytes_per_step(1)
        # Among the tied minimal-volume splits, fewest messages wins.
        assert best.neighbor_count() == 4

    def test_best_decomposition_impossible(self):
        with pytest.raises(ValueError):
            best_decomposition((7, 7, 7), 4, radius=1)


class TestNetwork:
    def test_message_time_monotone(self):
        net = NetworkModel()
        assert net.message_seconds(1 << 20) > net.message_seconds(1 << 10)

    def test_latency_floor(self):
        net = NetworkModel(latency_us=2.0)
        assert net.message_seconds(0) == pytest.approx(2e-6)

    def test_exchange_injection_limit(self):
        net = NetworkModel(bandwidth_gbs=100.0, injection_gbs=10.0)
        # Many messages: the injection limit binds.
        t = net.exchange_seconds(10**8, n_messages=6)
        assert t >= 10**8 / (10.0 * 1e9)

    def test_zero_messages(self):
        assert NetworkModel().exchange_seconds(0, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_gbs=0)
        with pytest.raises(ValueError):
            NetworkModel().message_seconds(-1)


class TestDistributedPrediction:
    def setup_method(self):
        self.machine = cascade_lake_sp()
        self.spec = get_stencil("3d7pt")

    def test_weak_scaling_efficiency_high(self):
        # Constant local size per rank: exchange stays proportionally
        # small for big local grids.
        pred = predict_distributed(
            self.spec, (256, 256, 256), 8, self.machine
        )
        assert pred.parallel_efficiency > 0.8

    def test_strong_scaling_efficiency_falls(self):
        shape = (128, 128, 128)
        eff = []
        for n in (1, 8, 64):
            pred = predict_distributed(self.spec, shape, n, self.machine)
            eff.append(pred.parallel_efficiency)
        assert eff[0] >= eff[1] >= eff[2]

    def test_total_mlups_grows_with_ranks(self):
        shape = (256, 256, 256)
        p1 = predict_distributed(self.spec, shape, 1, self.machine)
        p8 = predict_distributed(self.spec, shape, 8, self.machine)
        assert p8.total_mlups > 3 * p1.total_mlups

    def test_comm_fraction_complements_efficiency(self):
        pred = predict_distributed(self.spec, (128, 128, 128), 8, self.machine)
        assert pred.comm_fraction + pred.parallel_efficiency == pytest.approx(1.0)

    def test_explicit_decomposition_respected(self):
        d = RankDecomposition((128, 128, 128), (8, 1, 1))
        pred = predict_distributed(
            self.spec, (128, 128, 128), 8, self.machine, decomposition=d
        )
        assert pred.decomposition.ranks == (8, 1, 1)

    def test_mismatched_rank_count_rejected(self):
        d = RankDecomposition((128, 128, 128), (2, 1, 1))
        with pytest.raises(ValueError):
            predict_distributed(
                self.spec, (128, 128, 128), 8, self.machine, decomposition=d
            )


@settings(max_examples=40, deadline=None)
@given(
    n_ranks=st.sampled_from([1, 2, 4, 8, 16]),
    exp=st.integers(5, 7),
)
def test_slab_split_halo_invariant(n_ranks, exp):
    """1-d slab decompositions exchange exactly 2*r plane faces."""
    n = 2**exp
    if n % n_ranks:
        return
    d = RankDecomposition((n, n, n), (n_ranks, 1, 1))
    expected = 0 if n_ranks == 1 else 2 * n * n * 8
    assert d.exchange_bytes_per_step(radius=1) == expected

"""Consistent-hash ring: balance, minimal remapping, router/engine
shard-key agreement for every request type."""

import pytest

from repro.engine import RequestError, shard_key
from repro.fabric.ring import DEFAULT_VNODES, HashRing, stable_hash

KEYS = [f"key-{i}" for i in range(5000)]


class TestStableHash:
    def test_process_stable(self):
        # sha256-derived, so these values can never drift across runs
        # (Python's salted hash() must not be used for routing).
        assert stable_hash("") == int.from_bytes(
            bytes.fromhex("e3b0c44298fc1c14"), "big"
        )
        assert stable_hash("a") != stable_hash("b")

    def test_64_bit_range(self):
        for key in ("", "a", "key-123", "x" * 999):
            assert 0 <= stable_hash(key) < 2**64


class TestMembership:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().route("anything")

    def test_route_order_empty(self):
        assert HashRing().route_order("anything") == []

    def test_add_remove_roundtrip(self):
        ring = HashRing(["0", "1", "2"])
        assert len(ring) == 3 and "1" in ring
        ring.remove("1")
        assert len(ring) == 2 and "1" not in ring
        ring.add("1")
        assert ring.members == ["0", "1", "2"]

    def test_add_is_idempotent(self):
        ring = HashRing(["0"])
        points = ring.snapshot()["points"]
        ring.add("0")
        assert ring.snapshot()["points"] == points

    def test_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestRouting:
    def test_route_is_deterministic_across_instances(self):
        a = HashRing(["0", "1", "2"])
        b = HashRing(["2", "0", "1"])  # different insertion order
        for key in KEYS[:500]:
            assert a.route(key) == b.route(key)

    def test_route_order_starts_at_owner(self):
        ring = HashRing(["0", "1", "2"])
        for key in KEYS[:200]:
            order = ring.route_order(key)
            assert order[0] == ring.route(key)
            assert sorted(order) == ["0", "1", "2"]

    def test_route_order_limit(self):
        ring = HashRing(["0", "1", "2", "3"])
        assert len(ring.route_order("k", limit=2)) == 2

    def test_failover_matches_removal(self):
        # The 2nd member in route_order is exactly where the key lands
        # if its owner leaves — the router's reroute is consistent with
        # a membership change.
        ring = HashRing(["0", "1", "2"])
        for key in KEYS[:300]:
            first, second = ring.route_order(key, limit=2)
            shrunk = HashRing(["0", "1", "2"])
            shrunk.remove(first)
            assert shrunk.route(key) == second


class TestBalance:
    def test_share_bound(self):
        ring = HashRing(["0", "1", "2"], vnodes=DEFAULT_VNODES)
        counts = {m: 0 for m in ring.members}
        for key in KEYS:
            counts[ring.route(key)] += 1
        mean = len(KEYS) / len(counts)
        for member, count in counts.items():
            assert count > 0.5 * mean, (member, counts)
            assert count < 1.6 * mean, (member, counts)


class TestMinimalRemapping:
    def test_join_only_moves_to_the_new_member(self):
        before = HashRing(["0", "1", "2"])
        after = HashRing(["0", "1", "2", "3"])
        moved = 0
        for key in KEYS:
            src, dst = before.route(key), after.route(key)
            if src != dst:
                assert dst == "3"  # keys only ever move TO the joiner
                moved += 1
        # Expected share ~1/4; consistent hashing keeps it near that,
        # far below the ~3/4 a mod-N scheme would reshuffle.
        assert 0.10 * len(KEYS) < moved < 0.45 * len(KEYS)

    def test_leave_only_moves_the_leavers_keys(self):
        before = HashRing(["0", "1", "2"])
        after = HashRing(["0", "2"])
        for key in KEYS:
            src = before.route(key)
            if src != "1":
                assert after.route(key) == src  # survivors keep keys


VALID_PAYLOADS = [
    ("/predict", {"stencil": "3d7pt"}),
    ("/predict", {"stencil": "3d7pt", "grid": [32, 32, 32], "trace": True}),
    ("/tune", {"stencil": "3d7pt", "tuner": "ecm"}),
    (
        "/tune",
        {"stencil": "3d25pt", "grid": [24, 24, 32], "predictor": "simulate"},
    ),
    ("/rank", {"method": "radau_iia", "grid": [16, 16, 32]}),
    ("/rank", {"method": "lobatto_iiia", "validate": False, "seed": 3}),
]


class TestShardKeyAgreement:
    """The router and the engine must agree on what identifies a
    request — these pin the contract the fabric's cache locality
    rests on."""

    @pytest.mark.parametrize("endpoint,payload", VALID_PAYLOADS)
    def test_defaults_do_not_fork_routes(self, endpoint, payload):
        # Omitted fields normalize to defaults: an explicit default
        # must shard identically to an omitted one.
        from repro.service.jobs import JOBS

        normalizer, _ = JOBS[endpoint]
        explicit = normalizer(payload)
        assert shard_key(endpoint, payload) == shard_key(endpoint, explicit)

    @pytest.mark.parametrize("endpoint,payload", VALID_PAYLOADS)
    def test_execution_only_knobs_do_not_fork_routes(
        self, endpoint, payload
    ):
        # trace / predictor ride outside the canonical payload in the
        # service; the shard key must ignore them the same way, or a
        # traced request would land on a different shard than its
        # untraced twin and miss the response cache.
        base = shard_key(endpoint, payload)
        decorated = dict(payload)
        decorated["trace"] = True
        assert shard_key(endpoint, decorated) == base

    def test_rank_shards_by_database_identity(self):
        # validate=true/false and block policies that fold to the same
        # TuningKey must co-locate: the validating request warms the
        # record the non-validating one reads.
        a = shard_key(
            "/rank", {"method": "radau_iia", "grid": [16, 16, 32]}
        )
        b = shard_key(
            "/rank",
            {"method": "radau_iia", "grid": [16, 16, 32], "validate": False},
        )
        assert a == b

    def test_distinct_requests_get_distinct_keys(self):
        keys = {shard_key(e, p) for e, p in VALID_PAYLOADS}
        assert len(keys) == len(VALID_PAYLOADS)

    def test_endpoints_are_namespaced(self):
        # /tune and /predict of the same stencil must not collide.
        assert shard_key("/predict", {"stencil": "3d7pt"}) != shard_key(
            "/tune", {"stencil": "3d7pt"}
        )

    def test_unknown_endpoint_raises(self):
        with pytest.raises(RequestError):
            shard_key("/nope", {})

    def test_bad_payload_raises(self):
        with pytest.raises(RequestError):
            shard_key("/predict", {"stencil": "no-such-stencil"})

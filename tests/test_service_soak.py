"""Concurrency / soak tests: a live server under overlapping load.

The server runs on an ephemeral port with a thread pool (same process,
so results share the deterministic traffic memo with direct library
calls).  The soak fires 64+ overlapping mixed requests and asserts:

* every response equals the direct library call for its payload,
* identical in-flight requests coalesce onto one execution,
* the ``/metrics`` outcome ledgers add up exactly,
* admission control sheds with 429 without killing the server,
* SIGTERM drains a ``python -m repro serve`` subprocess cleanly.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

import repro.service.jobs as jobs
from repro.service.background import BackgroundServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig

#: Response fields that depend on wall time or cache warmth, not on the
#: configuration — excluded when comparing against direct library calls.
VOLATILE = ("predict_seconds", "measure_seconds", "traffic_cache")


def strip_volatile(result: dict) -> dict:
    return {k: v for k, v in result.items() if k not in VOLATILE}


def _cfg(**kwargs) -> ServiceConfig:
    defaults = dict(
        port=0,
        executor="thread",
        workers=4,
        queue_limit=256,
        request_timeout_s=120.0,
        drain_timeout_s=30.0,
    )
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


SCALE = 1 / 32  # shrink caches so exact simulation stays fast


def _workload() -> list[tuple[str, dict]]:
    """Distinct request payloads mixing all three POST endpoints."""
    work: list[tuple[str, dict]] = []
    for stencil in ("3d7pt", "3d27pt", "heat3d"):
        for grid in ([16, 16, 32], [8, 16, 32]):
            work.append(
                ("/predict", {"stencil": stencil, "grid": grid,
                              "cache_scale": SCALE})
            )
    for machine in ("clx", "rome"):
        work.append(
            ("/tune", {"stencil": "3d7pt", "grid": [16, 16, 32],
                       "machine": machine, "tuner": "ecm",
                       "cache_scale": SCALE})
        )
    for grid in ([8, 8, 16], [8, 16, 16]):
        work.append(
            ("/rank", {"grid": grid, "validate": False,
                       "cache_scale": SCALE})
        )
    return work


class TestSoak:
    def test_overlapping_mixed_requests(self):
        distinct = _workload()
        # Repeat the distinct set so ≥64 requests overlap, with many
        # duplicates to exercise coalescing and the response cache.
        requests = (distinct * 7)[:70]
        assert len(requests) >= 64

        expected = {}
        for endpoint, payload in distinct:
            normalizer, job = jobs.JOBS[endpoint]
            expected[jobs.request_key(endpoint, normalizer(payload))] = (
                strip_volatile(job(normalizer(payload)))
            )

        with BackgroundServer(_cfg()) as bg:
            client = bg.client

            def fire(item):
                endpoint, payload = item
                return item, client.request("POST", endpoint, payload)

            with ThreadPoolExecutor(max_workers=32) as pool:
                responses = list(pool.map(fire, requests))

            for (endpoint, payload), response in responses:
                normalizer, _ = jobs.JOBS[endpoint]
                key = jobs.request_key(endpoint, normalizer(payload))
                assert response["endpoint"] == endpoint
                assert strip_volatile(response["result"]) == expected[key], (
                    f"{endpoint} response diverged from direct library call"
                )

            snap = bg.metrics_snapshot()

        # Ledger invariants: outcomes partition the request totals.
        totals = 0
        fresh = 0
        for path, stats in snap["endpoints"].items():
            assert sum(stats["outcomes"].values()) == stats["requests"], path
            assert stats["outcomes"]["shed"] == 0
            assert stats["outcomes"]["failed"] == 0
            totals += stats["requests"]
            fresh += stats["outcomes"]["fresh"]
        assert totals == len(requests)
        # Each distinct payload executed exactly once; every duplicate
        # was deduplicated by the response cache or coalescing.
        assert fresh == len(distinct)
        dedup = sum(
            stats["outcomes"]["cache"] + stats["outcomes"]["coalesced"]
            for stats in snap["endpoints"].values()
        )
        assert dedup == len(requests) - len(distinct)
        # Tier ledgers are consistent with the outcomes.
        tiers = snap["tiers"]
        assert tiers["response"]["hits"] == sum(
            stats["outcomes"]["cache"]
            for stats in snap["endpoints"].values()
        )
        assert tiers["response"]["misses"] >= len(distinct)
        # Latency percentiles exist for every endpoint.
        for stats in snap["endpoints"].values():
            assert stats["latency"]["p50_ms"] is not None
            assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"]

    def test_coalescing_joins_identical_inflight_requests(self, monkeypatch):
        release = threading.Event()
        real_job = jobs.tune_job

        def gated_tune(payload):
            release.wait(timeout=30)
            return real_job(payload)

        monkeypatch.setitem(
            jobs.JOBS, "/tune", (jobs.normalize_tune, gated_tune)
        )
        payload = {"stencil": "3d7pt", "grid": [16, 16, 32],
                   "cache_scale": SCALE}
        n_clients = 8
        with BackgroundServer(_cfg(workers=2)) as bg:
            client = bg.client
            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                futures = [
                    pool.submit(client.request, "POST", "/tune", payload)
                    for _ in range(n_clients)
                ]
                # Wait until every request is parked on the server, so
                # the dedup assertion below is deterministic.
                deadline = time.monotonic() + 15
                while bg.service._active_requests < n_clients:
                    if time.monotonic() > deadline:
                        pytest.fail("requests never arrived at the server")
                    time.sleep(0.005)
                release.set()
                results = [f.result(timeout=60) for f in futures]
            snap = bg.metrics_snapshot()

        bodies = [json.dumps(r["result"], sort_keys=True) for r in results]
        assert len(set(bodies)) == 1  # everyone saw the same answer
        outcomes = snap["endpoints"]["/tune"]["outcomes"]
        assert outcomes["fresh"] == 1
        assert outcomes["coalesced"] == n_clients - 1

    def test_load_shedding_under_overload(self, monkeypatch):
        release = threading.Event()

        def gated_predict(payload):
            release.wait(timeout=30)
            return jobs.predict_job(payload)

        monkeypatch.setitem(
            jobs.JOBS, "/predict", (jobs.normalize_predict, gated_predict)
        )
        n_clients = 6
        with BackgroundServer(_cfg(workers=1, queue_limit=1)) as bg:
            shed_client = ServiceClient(
                port=bg.port, retries=0  # observe 429s instead of retrying
            )
            # Distinct payloads so nothing coalesces.
            payloads = [
                {"stencil": "3d7pt", "grid": [8 + 2 * i, 16, 32],
                 "cache_scale": SCALE}
                for i in range(n_clients)
            ]
            statuses = []

            def fire(p):
                try:
                    shed_client.request("POST", "/predict", p)
                    return 200
                except ServiceError as err:
                    return err.status

            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                futures = [pool.submit(fire, p) for p in payloads]
                deadline = time.monotonic() + 15
                # One admitted job + the shed responses all resolve.
                while sum(f.done() for f in futures) < n_clients - 1:
                    if time.monotonic() > deadline:
                        break
                    time.sleep(0.005)
                release.set()
                statuses = [f.result(timeout=60) for f in futures]
            # The server survived and still answers.
            assert bg.client.healthz()["http_status"] == 200
            snap = bg.metrics_snapshot()

        assert statuses.count(200) == 1
        assert statuses.count(429) == n_clients - 1
        outcomes = snap["endpoints"]["/predict"]["outcomes"]
        assert outcomes["shed"] == n_clients - 1
        assert outcomes["fresh"] == 1
        assert sum(outcomes.values()) == snap["endpoints"]["/predict"][
            "requests"
        ]

    def test_request_timeout_returns_504(self, monkeypatch):
        release = threading.Event()

        def stuck_predict(payload):
            release.wait(timeout=30)
            return jobs.predict_job(payload)

        monkeypatch.setitem(
            jobs.JOBS, "/predict", (jobs.normalize_predict, stuck_predict)
        )
        try:
            with BackgroundServer(_cfg(request_timeout_s=0.2)) as bg:
                client = ServiceClient(port=bg.port, retries=0)
                with pytest.raises(ServiceError) as err:
                    client.request(
                        "POST", "/predict",
                        {"stencil": "3d7pt", "cache_scale": SCALE},
                    )
                assert err.value.status == 504
                release.set()
                snap = bg.metrics_snapshot()
            assert snap["endpoints"]["/predict"]["outcomes"]["failed"] == 1
        finally:
            release.set()

    def test_rank_database_tier_survives_restart(self, tmp_path):
        db_path = str(tmp_path / "tuning_db.json")
        payload = {"grid": [8, 8, 16], "validate": False,
                   "cache_scale": SCALE}
        with BackgroundServer(_cfg(db_path=db_path)) as bg:
            first = bg.client.rank(**payload)
            assert first["served"] == "fresh"
        assert Path(db_path).is_file()

        # A fresh server has a cold response cache but a warm database.
        with BackgroundServer(_cfg(db_path=db_path)) as bg:
            second = bg.client.rank(**payload)
            assert second["served"] == "database"
            assert (
                second["result"]["best_variant"]
                == first["result"]["best_predicted"]["variant"]
            )
            assert second["result"]["ranking"] == first["result"]["ranking"]
            snap = bg.metrics_snapshot()
        assert snap["tiers"]["database"]["hits"] == 1
        assert snap["endpoints"]["/rank"]["outcomes"]["database"] == 1

    def test_store_ranking_failure_does_not_fail_request(self, monkeypatch):
        with BackgroundServer(_cfg()) as bg:
            def boom(normalized, result):
                raise RuntimeError("warm tier exploded")

            monkeypatch.setattr(bg.service, "_store_ranking", boom)
            out = bg.client.rank(
                grid=[8, 8, 16], validate=False, cache_scale=SCALE
            )
            assert out["served"] == "fresh"
            assert out["result"]["best_predicted"]["variant"]
            snap = bg.metrics_snapshot()
        assert snap["endpoints"]["/rank"]["outcomes"]["failed"] == 0

    def test_stalled_header_read_is_dropped(self):
        import socket

        with BackgroundServer(_cfg()) as bg:
            bg.service.read_timeout_s = 0.2
            with socket.create_connection(
                ("127.0.0.1", bg.port), timeout=10
            ) as sock:
                # Request line + a header fragment, then stall forever.
                sock.sendall(b"POST /predict HTTP/1.1\r\nContent-Le")
                sock.settimeout(10)
                assert sock.recv(1024) == b""  # server closed on us
            # The stalled connection did not wedge the server.
            assert bg.client.healthz()["status"] == "ok"

    def test_bad_requests_are_rejected_not_crashing(self):
        with BackgroundServer(_cfg()) as bg:
            client = ServiceClient(port=bg.port, retries=0)
            with pytest.raises(ServiceError) as err:
                client.request("POST", "/predict", {"stencil": "bogus"})
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                client.request("GET", "/nowhere")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.request("GET", "/predict")
            assert err.value.status == 405
            # Still healthy afterwards.
            assert bg.client.healthz()["status"] == "ok"


class TestServeSubprocess:
    def test_sigterm_drains_cleanly(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "2", "--executor", "thread",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"http://127\.0\.0\.1:(\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            client = ServiceClient(port=int(match.group(1)))
            assert client.healthz()["status"] == "ok"
            result = client.predict(
                stencil="3d7pt", grid=[16, 16, 32], cache_scale=SCALE
            )
            assert result["result"]["mlups"] > 0
            assert "/predict" in client.metrics()["endpoints"]
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert "drained" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

"""Unit tests for the service subsystem (no live server needed)."""

import json
import threading

import pytest

from repro.offsite.database import TuningDatabase, TuningKey, TuningRecord
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.jobs import (
    JobError,
    normalize_predict,
    normalize_rank,
    normalize_tune,
    predict_job,
    rank_db_key_parts,
    request_key,
)
from repro.service.metrics import (
    OUTCOMES,
    EndpointStats,
    LatencyReservoir,
    ServiceMetrics,
)
from repro.service.server import _LruCache


class TestConfig:
    def test_defaults_valid(self):
        cfg = ServiceConfig()
        assert cfg.workers > 0 and cfg.queue_limit > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"executor": "fork-bomb"},
            {"queue_limit": 0},
            {"request_timeout_s": 0},
            {"response_cache_size": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestNormalization:
    def test_predict_defaults(self):
        n = normalize_predict({"stencil": "3d7pt"})
        assert n["grid"] == [48, 48, 64]
        assert n["machine"] == "clx"
        assert n["block"] is None and n["cache_scale"] is None

    def test_machine_case_insensitive(self):
        n = normalize_predict({"stencil": "3d7pt", "machine": "ROME"})
        assert n["machine"] == "rome"

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # missing stencil
            {"stencil": "5dmagic"},
            {"stencil": "3d7pt", "grid": []},
            {"stencil": "3d7pt", "grid": [0, 8, 8]},
            {"stencil": "3d7pt", "grid": "16x16"},
            {"stencil": "3d7pt", "machine": "cray-1"},
            {"stencil": "3d7pt", "block": [8, 8]},  # rank mismatch
            {"stencil": "3d7pt", "cache_scale": -1},
        ],
    )
    def test_predict_rejects(self, payload):
        with pytest.raises(JobError):
            normalize_predict(payload)

    def test_tune_rejects_unknown_tuner(self):
        with pytest.raises(JobError):
            normalize_tune({"stencil": "3d7pt", "tuner": "simulated-annealing"})

    def test_rank_defaults_and_rejects(self):
        n = normalize_rank({})
        assert n["method"] == "radau_iia" and n["validate"] is True
        with pytest.raises(JobError):
            normalize_rank({"method": "magic"})
        with pytest.raises(JobError):
            normalize_rank({"stages": 0})
        with pytest.raises(JobError):
            normalize_rank({"validate": "yes"})

    def test_rank_db_key_parts(self):
        n = normalize_rank({"grid": [8, 8, 16], "validate": False})
        method, ivp, machine, grid = rank_db_key_parts(n)
        assert method == "radau_iia(4)m3"
        assert ivp == "grid8x8x16"
        assert machine == "clx" and grid == (8, 8, 16)

    def test_rank_db_key_distinguishes_tuning_parameters(self):
        base = normalize_rank({"grid": [8, 8, 16], "validate": False})
        overrides = [
            {"cache_scale": 1.0},
            {"cache_scale": None},
            {"block": [4, 4, 8]},
            {"block": "auto"},
            {"seed": 7},
        ]
        keys = {rank_db_key_parts(base)}
        for override in overrides:
            n = normalize_rank(
                {"grid": [8, 8, 16], "validate": False, **override}
            )
            keys.add(rank_db_key_parts(n))
        # Every non-default parameterization gets its own identity …
        assert len(keys) == len(overrides) + 1
        # … while explicitly spelling out the defaults does not.
        explicit = normalize_rank(
            {"grid": [8, 8, 16], "validate": False,
             "cache_scale": 1 / 32, "seed": 0}
        )
        assert rank_db_key_parts(explicit) == rank_db_key_parts(base)

    def test_request_key_is_canonical(self):
        a = normalize_predict({"stencil": "3d7pt", "machine": "clx"})
        b = normalize_predict({"machine": "CLX", "stencil": "3d7pt",
                               "grid": [48, 48, 64]})
        assert request_key("/predict", a) == request_key("/predict", b)
        c = normalize_predict({"stencil": "3d7pt", "machine": "rome"})
        assert request_key("/predict", a) != request_key("/predict", c)
        assert request_key("/predict", a) != request_key("/tune", a)


class TestPredictJob:
    def test_json_round_trip_and_determinism(self):
        n = normalize_predict(
            {"stencil": "3d7pt", "grid": [16, 16, 32], "cache_scale": 1 / 32}
        )
        out1 = predict_job(n)
        out2 = json.loads(json.dumps(predict_job(n)))
        assert out1 == out2
        assert out1["mlups"] > 0
        assert out1["plan"]["block"] == [16, 16, 32]


class TestLatencyReservoir:
    def test_percentiles(self):
        res = LatencyReservoir(capacity=100)
        for ms in range(1, 101):  # 1..100 ms
            res.record(ms / 1e3)
        pcts = res.percentiles()
        assert pcts["p50_ms"] == pytest.approx(50, abs=2)
        assert pcts["p95_ms"] == pytest.approx(95, abs=2)
        assert pcts["p99_ms"] == pytest.approx(99, abs=2)

    def test_empty(self):
        assert LatencyReservoir().percentiles()["p50_ms"] is None

    def test_bounded(self):
        res = LatencyReservoir(capacity=8)
        for _ in range(100):
            res.record(0.001)
        assert res.count == 100
        assert len(res._samples) == 8


class TestMetrics:
    def test_outcomes_partition(self):
        stats = EndpointStats()
        for outcome in OUTCOMES:
            stats.record(outcome, 0.001)
        snap = stats.snapshot()
        assert snap["requests"] == len(OUTCOMES)
        assert sum(snap["outcomes"].values()) == snap["requests"]

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ValueError):
            EndpointStats().record("lost", 0.0)

    def test_tier_hit_rate(self):
        m = ServiceMetrics()
        m.record_tier("response", hits=3, misses=1)
        snap = m.snapshot()
        assert snap["tiers"]["response"]["hit_rate"] == pytest.approx(0.75)
        assert snap["tiers"]["traffic"]["hit_rate"] is None


class TestLruCache:
    def test_evicts_least_recently_used(self):
        lru = _LruCache(capacity=2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        assert lru.get("a") == {"v": 1}  # refresh a
        lru.put("c", {"v": 3})  # evicts b
        assert lru.get("b") is None
        assert lru.get("a") == {"v": 1} and lru.get("c") == {"v": 3}

    def test_zero_capacity_stores_nothing(self):
        lru = _LruCache(capacity=0)
        lru.put("a", {"v": 1})
        assert lru.get("a") is None and len(lru) == 0


class TestClientRetry:
    def _flaky_server(self, fail_times: int, status: int = 503):
        """Tiny stdlib server: ``fail_times`` errors, then 200 JSON."""
        import http.server

        calls = {"n": 0}

        class Handler(http.server.BaseHTTPRequestHandler):
            def _reply(self):
                calls["n"] += 1
                if calls["n"] <= fail_times:
                    code, body = status, b'{"error": "transient"}'
                else:
                    code, body = 200, b'{"ok": true}'
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            do_GET = _reply
            do_POST = _reply

            def log_message(self, *args):
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, calls

    def test_retries_transient_then_succeeds(self):
        server, calls = self._flaky_server(fail_times=2)
        try:
            client = ServiceClient(
                port=server.server_address[1], retries=3, backoff_s=0.01
            )
            assert client.request("GET", "/anything") == {"ok": True}
            assert calls["n"] == 3
        finally:
            server.shutdown()

    def test_exhausted_retries_raise(self):
        server, calls = self._flaky_server(fail_times=100)
        try:
            client = ServiceClient(
                port=server.server_address[1], retries=2, backoff_s=0.01
            )
            with pytest.raises(ServiceError) as err:
                client.request("GET", "/anything")
            assert err.value.status == 503
            assert calls["n"] == 3  # first try + 2 retries
        finally:
            server.shutdown()

    def test_non_retryable_status_raises_immediately(self):
        server, calls = self._flaky_server(fail_times=100, status=404)
        try:
            client = ServiceClient(
                port=server.server_address[1], retries=5, backoff_s=0.01
            )
            with pytest.raises(ServiceError):
                client.request("GET", "/anything")
            assert calls["n"] == 1
        finally:
            server.shutdown()


class TestDatabaseAtomicity:
    def test_save_is_atomic_and_load_or_empty(self, tmp_path):
        db = TuningDatabase()
        db.put(
            TuningRecord(
                key=TuningKey("m", "ivp", "clx", (8, 8)),
                best_variant="split",
                block=(8, 8),
                predicted_s_per_step=1e-3,
            )
        )
        path = tmp_path / "sub" / "db.json"
        db.save(path)  # creates parent, no stray temp files
        assert [p.name for p in path.parent.iterdir()] == ["db.json"]
        again = TuningDatabase.load_or_empty(path)
        assert len(again) == 1
        empty = TuningDatabase.load_or_empty(tmp_path / "missing.json")
        assert len(empty) == 0

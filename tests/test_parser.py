"""Stencil text-DSL parser tests, including round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stencil import expr as E
from repro.stencil.parser import StencilParseError, parse_expr, parse_stencil


class TestExpressions:
    def test_number_formats(self):
        assert parse_expr("2") == E.Const(2.0)
        assert parse_expr("2.5") == E.Const(2.5)
        assert parse_expr(".5") == E.Const(0.5)
        assert parse_expr("1e-3") == E.Const(1e-3)

    def test_parameter(self):
        assert parse_expr("alpha") == E.Param("alpha")

    def test_grid_access(self):
        assert parse_expr("u[0,1,-2]") == E.GridAccess("u", (0, 1, -2))
        assert parse_expr("u[+1]") == E.GridAccess("u", (1,))

    def test_precedence(self):
        node = parse_expr("1 + 2 * 3")
        assert isinstance(node, E.BinOp) and node.op == "+"
        assert isinstance(node.rhs, E.BinOp) and node.rhs.op == "*"

    def test_left_associativity(self):
        node = parse_expr("1 - 2 - 3")
        assert node.op == "-"
        assert isinstance(node.lhs, E.BinOp) and node.lhs.op == "-"

    def test_parentheses(self):
        node = parse_expr("(1 + 2) * 3")
        assert node.op == "*"
        assert isinstance(node.lhs, E.BinOp) and node.lhs.op == "+"

    def test_unary_minus(self):
        node = parse_expr("-u[0]")
        assert node.op == "*"
        assert node.lhs == E.Const(-1.0)


class TestStencilAssignment:
    def test_full_stencil(self):
        spec = parse_stencil(
            "u_new[0,0] = 0.25*u[0,0] + a*(u[0,1] + u[0,-1])",
            params={"a": 0.1},
        )
        assert spec.output == "u_new"
        assert spec.dim == 2
        assert spec.radius == 1
        assert spec.reads == ("u",)

    def test_parsed_equals_builder(self):
        # The textual 2D 5-point star must behave like the built one.
        from repro.codegen import KernelPlan, compile_kernel
        from repro.grid import GridSet

        text = (
            "u_new[0,0] = 0.25*u[0,0]"
            " + 0.1375*(u[1,0] + u[-1,0])"
            " + 0.1375*(u[0,1] + u[0,-1])"
        )
        spec = parse_stencil(text, name="parsed5pt")
        shape = (10, 12)
        gs = GridSet(spec, shape)
        gs.randomize(4)
        kernel = compile_kernel(spec, shape, KernelPlan(block=shape))
        ref = kernel.reference_sweep(gs)
        kernel.run(gs)
        np.testing.assert_allclose(gs.output.interior, ref, rtol=1e-13)

        from repro.stencil import get_stencil

        built = get_stencil("2d5pt")
        assert spec.n_accesses == built.n_accesses
        assert spec.flops == built.flops


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "u[0,0] =",  # missing rhs
            "= u[0]",  # missing target
            "u_new[0] = u[0",  # unterminated bracket
            "u_new[0] = (u[0]",  # unterminated paren
            "u_new[0] = u[0] @ 2",  # bad char
            "u_new[1] = u[0]",  # nonzero output offset
            "u_new[0] = u[0.5]",  # fractional offset
            "u_new[0] = u[0] u[1]",  # trailing junk
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(StencilParseError):
            parse_stencil(text)

    def test_error_carries_position(self):
        try:
            parse_expr("1 + @")
        except StencilParseError as exc:
            assert exc.pos == 4
        else:
            pytest.fail("expected StencilParseError")


# ----------------------------------------------------------------------
# Property: printing an AST and re-parsing it round-trips.
# ----------------------------------------------------------------------
def exprs():
    leaf = st.one_of(
        st.builds(
            E.GridAccess,
            st.sampled_from(["u", "v"]),
            st.tuples(st.integers(-2, 2), st.integers(-2, 2)),
        ),
        st.builds(
            E.Const,
            st.floats(0.001, 4, allow_nan=False).map(lambda x: round(x, 4)),
        ),
        st.builds(E.Param, st.sampled_from(["a", "b"])),
    )
    return st.recursive(
        leaf,
        lambda ch: st.builds(
            E.BinOp, st.sampled_from(["+", "-", "*", "/"]), ch, ch
        ),
        max_leaves=10,
    )


@settings(max_examples=100, deadline=None)
@given(exprs())
def test_str_parse_round_trip(e):
    assert parse_expr(str(e)) == e

"""Worker-crash and fault-recovery tests for the supervised tuners.

Everything here drives the production recovery paths with the
deterministic fault substrate (:mod:`repro.faults`): in-worker
exceptions, whole-worker deaths (``mode=exit`` → ``BrokenProcessPool``),
parent-side pool faults, retry exhaustion, and deadline-expired sweeps.
The load-bearing invariant: whenever retries succeed, the winner is
*identical* to a clean serial run; when they don't, the result is a
well-ledgered partial instead of an exception that discards finished
measurements.
"""

from __future__ import annotations

import time

import pytest

from repro import faults
from repro.autotune import ExhaustiveTuner, GreedyLineSearchTuner
from repro.autotune.search import TunerError, _evaluate_variants
from repro.codegen.plan import candidate_plans
from repro.grid import GridSet
from repro.machine import cascade_lake_sp
from repro.stencil import get_stencil

SHAPE = (24, 24, 32)


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def setting():
    machine = cascade_lake_sp().scaled_caches(1 / 32)
    spec = get_stencil("3d7pt")
    grids = GridSet(spec, SHAPE)
    return spec, grids, machine


@pytest.fixture(scope="module")
def clean_serial(setting):
    spec, grids, machine = setting
    return ExhaustiveTuner().tune(spec, grids, machine, seed=1)


# ----------------------------------------------------------------------
# Serial-path recovery
# ----------------------------------------------------------------------
class TestSerialRecovery:
    def test_retry_succeeds_identical_winner(self, setting, clean_serial):
        spec, grids, machine = setting
        with faults.injected("tuner.eval:nth=3:count=1"):
            res = ExhaustiveTuner().tune(spec, grids, machine, seed=1)
        assert res.best_plan == clean_serial.best_plan
        assert res.best_mlups == pytest.approx(
            clean_serial.best_mlups, abs=0
        )
        assert res.trace == clean_serial.trace
        assert res.retried_jobs == 1
        assert not res.degraded and not res.failed_jobs

    def test_retries_exhausted_yields_partial_result(
        self, setting, clean_serial
    ):
        spec, grids, machine = setting
        # The first three eval calls fail: job 1's initial attempt and
        # both of its retries — retries exhausted on exactly one job.
        with faults.injected("tuner.eval:every=1:count=3"):
            res = ExhaustiveTuner().tune(spec, grids, machine, seed=1)
        assert res.degraded
        assert len(res.failed_jobs) == 1
        assert res.retried_jobs == 2  # DEFAULT_RETRIES
        assert res.variants_run == res.variants_examined - 1
        # The survivors' winner is the clean winner unless the clean
        # winner itself was the killed variant.
        surviving = dict(res.trace)
        clean_best_label = clean_serial.best_plan.describe()
        if clean_best_label in surviving:
            assert res.best_plan == clean_serial.best_plan

    def test_all_failures_raise_tuner_error(self, setting):
        spec, grids, machine = setting
        with faults.injected("tuner.eval:every=1"):
            with pytest.raises(TunerError):
                ExhaustiveTuner().tune(spec, grids, machine, seed=1)

    def test_greedy_axis_survives_total_failure(self, setting):
        spec, grids, machine = setting
        clean = GreedyLineSearchTuner().tune(spec, grids, machine, seed=4)
        with faults.injected("tuner.eval:nth=2:count=1"):
            res = GreedyLineSearchTuner().tune(spec, grids, machine, seed=4)
        assert res.best_plan == clean.best_plan
        assert res.retried_jobs == 1


# ----------------------------------------------------------------------
# Pool-path recovery
# ----------------------------------------------------------------------
class TestPoolRecovery:
    def test_worker_exception_retried(self, setting, clean_serial):
        spec, grids, machine = setting
        # Each worker arms a fresh plan: its 1st job fails once, then
        # all retries land cleanly.
        with faults.injected("tuner.worker:nth=1:count=1"):
            res = ExhaustiveTuner(workers=2).tune(
                spec, grids, machine, seed=1
            )
        assert res.best_plan == clean_serial.best_plan
        assert res.trace == clean_serial.trace
        assert res.retried_jobs >= 1
        assert not res.degraded

    def test_worker_death_requeues_and_matches_serial(
        self, setting, clean_serial
    ):
        spec, grids, machine = setting
        # Every worker process dies on its 2nd job (os._exit → the pool
        # breaks); requeue + restart must still complete the sweep with
        # the serial winner.
        with faults.injected("tuner.worker:nth=2:mode=exit"):
            res = ExhaustiveTuner(workers=2).tune(
                spec, grids, machine, seed=1
            )
        assert res.best_plan == clean_serial.best_plan
        assert res.best_mlups == pytest.approx(
            clean_serial.best_mlups, abs=0
        )
        assert res.trace == clean_serial.trace
        assert res.retried_jobs >= 1
        assert res.pool_restarts >= 1
        assert not res.degraded

    def test_simulated_pool_break_on_submit(self, setting, clean_serial):
        spec, grids, machine = setting
        with faults.injected("tuner.pool:nth=1:count=1"):
            res = ExhaustiveTuner(workers=2).tune(
                spec, grids, machine, seed=1
            )
        assert res.best_plan == clean_serial.best_plan
        assert res.trace == clean_serial.trace
        assert res.pool_restarts == 1

    def test_persistent_pool_break_falls_back_in_process(
        self, setting, clean_serial
    ):
        spec, grids, machine = setting
        with faults.injected("tuner.pool:every=1"):
            res = ExhaustiveTuner(workers=2).tune(
                spec, grids, machine, seed=1
            )
        assert res.in_process_fallback
        assert res.pool_restarts == 3  # initial + max_pool_restarts
        assert res.best_plan == clean_serial.best_plan
        assert res.trace == clean_serial.trace
        assert not res.degraded


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadline:
    def test_expired_deadline_still_gets_first_measurement(self, setting):
        spec, grids, machine = setting
        jobs = [
            (plan, 1 + i)
            for i, plan in enumerate(
                candidate_plans(spec, grids.interior_shape, machine)
            )
        ]
        results, ledger = _evaluate_variants(
            spec, grids, machine, jobs, deadline=time.time() - 10.0
        )
        # Progress guarantee: the first job ran despite the deadline
        # being in the past; the rest were skipped and ledgered.
        assert results[0] is not None
        assert all(r is None for r in results[1:])
        assert len(ledger.skipped_jobs) == len(jobs) - 1
        assert ledger.degraded

    def test_expired_deadline_tuner_result_is_ledgered(self, setting):
        spec, grids, machine = setting
        res = ExhaustiveTuner().tune(
            spec, grids, machine, seed=1, deadline=time.time() - 10.0
        )
        assert res.degraded
        assert res.variants_run == 1
        assert len(res.skipped_jobs) == res.variants_examined - 1

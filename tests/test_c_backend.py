"""C backend: structural checks on the emitted translation units."""

import re

import pytest

from repro.codegen import KernelPlan
from repro.codegen.c_backend import check_wellformed, emit_c
from repro.stencil import get_stencil


class TestEmittedC:
    def _emit(self, name="3d7pt", block=(8, 8, 16), shape=(16, 16, 16)):
        spec = get_stencil(name)
        return spec, emit_c(spec, shape, KernelPlan(block=block), halo=spec.radius)

    def test_wellformed(self):
        _, src = self._emit()
        check_wellformed(src)

    def test_idx_macro_strides(self):
        spec, src = self._emit(shape=(16, 16, 16))
        # Padded shape 18^3 -> strides 324, 18, 1.
        assert "* 324L" in src and "* 18L" in src and "* 1L" in src

    def test_block_loop_bounds(self):
        _, src = self._emit(block=(8, 8, 16))
        assert "bb0 += 8" in src
        assert re.search(r"for \(long i2 = bb2; i2 < e2; \+\+i2\)", src)

    def test_unit_stride_comment(self):
        _, src = self._emit()
        assert "/* unit stride */" in src

    def test_params_in_signature(self):
        spec = get_stencil("heat3d")
        src = emit_c(spec, (8, 8, 8), KernelPlan(block=(8, 8, 8)), halo=1)
        assert "double a" in src

    def test_2d_emission(self):
        spec = get_stencil("2d5pt")
        src = emit_c(spec, (8, 16), KernelPlan(block=(4, 16)), halo=1)
        check_wellformed(src)
        assert "IDX(_i0, _i1)" in src

    def test_loop_order_respected(self):
        spec = get_stencil("3d7pt")
        src = emit_c(
            spec, (16, 16, 16),
            KernelPlan(block=(8, 8, 16), loop_order=(2, 1, 0)),
            halo=1,
        )
        assert src.index("for (long bb2") < src.index("for (long bb0")

    def test_braces_balance_detector(self):
        with pytest.raises(ValueError):
            check_wellformed("int f( { )")

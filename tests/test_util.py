"""Table-formatting tests."""
import pytest


from repro.util import format_table


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="T").startswith("T")

    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 23, "b": "y"}]
        out = format_table(rows)
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_missing_cells(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        out = format_table(rows)
        assert "b" in out.splitlines()[0]

    def test_float_formatting(self):
        out = format_table([{"x": 3.14159265}])
        assert "3.142" in out

    def test_title(self):
        out = format_table([{"x": 1}], title="My table")
        assert out.splitlines()[0] == "My table"


class TestLinePlot:
    def _plot(self, **kw):
        from repro.util import line_plot

        return line_plot(
            {"a": ([1, 2, 3], [1.0, 4.0, 9.0])},
            width=20, height=6, **kw,
        )

    def test_basic_render(self):
        out = self._plot(title="squares")
        assert out.splitlines()[0] == "squares"
        assert "a=a" not in out  # legend format is mark=name
        assert "o=a" in out

    def test_axis_labels(self):
        out = self._plot(xlabel="n", ylabel="y")
        assert "n" in out and "y" in out

    def test_bounds_on_axis(self):
        out = self._plot()
        assert "9" in out and "1" in out

    def test_multiple_series_distinct_marks(self):
        from repro.util import line_plot

        out = line_plot(
            {"p": ([0, 1], [0, 1]), "q": ([0, 1], [1, 0])},
            width=10, height=5,
        )
        assert "o=p" in out and "x=q" in out

    def test_errors(self):
        from repro.util import line_plot

        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": ([1, 2], [1])})

    def test_constant_series_no_crash(self):
        from repro.util import line_plot

        out = line_plot({"c": ([1, 2, 3], [5, 5, 5])}, width=12, height=4)
        assert "o" in out

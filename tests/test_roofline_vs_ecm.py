"""Cross-model consistency: roofline, ECM and the simulator.

The three performance views must be ordered sensibly: roofline is the
loosest upper bound, ECM refines it with cache transfer costs, and the
simulator "measures" below or near the models.
"""

import pytest

from repro.codegen import KernelPlan
from repro.ecm import predict, roofline_predict, scaling_curve
from repro.grid import GridSet
from repro.machine import cascade_lake_sp
from repro.perf import simulate_kernel
from repro.stencil import STENCIL_SUITE, get_stencil

MACHINE = cascade_lake_sp().scaled_caches(1 / 32)
SHAPE = (24, 24, 32)


@pytest.mark.parametrize(
    "name", [n for n in STENCIL_SUITE if get_stencil(n).dim == 3]
)
def test_roofline_bounds_ecm_at_socket_scale(name):
    spec = get_stencil(name)
    pred = predict(spec, SHAPE, KernelPlan(block=SHAPE), MACHINE)
    curve = scaling_curve(pred, MACHINE.mem_bw_gbs, MACHINE.cores)
    roof = roofline_predict(spec, MACHINE, cores=MACHINE.cores)
    assert curve[-1].mlups <= roof.mlups * 1.01


@pytest.mark.parametrize("name", ["3d7pt", "3d27pt", "3dvarcoef"])
def test_simulator_within_factor_two_of_ecm(name):
    spec = get_stencil(name)
    grids = GridSet(spec, SHAPE)
    pred = predict(spec, SHAPE, KernelPlan(block=SHAPE), MACHINE)
    meas = simulate_kernel(spec, grids, KernelPlan(block=SHAPE), MACHINE, seed=1)
    ratio = pred.mlups / meas.mlups
    assert 0.5 < ratio < 2.0


def test_all_suite_stencils_have_finite_predictions():
    for name in STENCIL_SUITE:
        spec = get_stencil(name)
        shape = (24, 24, 32) if spec.dim == 3 else (48, 64)
        pred = predict(spec, shape, KernelPlan(block=shape), MACHINE)
        assert 0 < pred.mlups < 1e7

"""Live telemetry drills against running servers.

Three layers, per the observability PR's acceptance bar:

* **Byte identity** — with SLO disabled and no ``format=prometheus``,
  every pre-existing JSON surface carries exactly the keys it did
  before this layer landed (no ``slo``, no ``latency_histogram``, no
  ``alerts``).
* **Burn drill** — a tiny-threshold latency objective driven into
  fast-window burn on a live server: ``/slo`` shows the burning
  objective, ``/healthz`` carries the alert, ``/debug/requests``
  attributes the slow requests, and recovery clears the alert without
  a restart.
* **Fabric fan-in** — the router's aggregate ``/metrics`` quantiles
  come from merged shard histograms, checked against the pooled
  per-shard sample stream (read back from the flight recorders) within
  the layout's documented error bound.
"""

import json
import time

import pytest

from repro.fabric import BackgroundFabric, FabricConfig
from repro.service.background import BackgroundServer
from repro.service.client import ServiceError
from repro.service.config import ServiceConfig
from repro.telemetry import LatencyHistogram, parse_prometheus
from repro.telemetry.histogram import QUANTILE_REL_ERROR
from repro.telemetry.prom import CONTENT_TYPE

from tests.test_fabric import raw_request

PREDICT = {"stencil": "3d7pt", "grid": [32, 32, 48]}


# ----------------------------------------------------------------------
# Byte identity with telemetry disabled (the default)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def plain():
    config = ServiceConfig(port=0, executor="thread", workers=1)
    with BackgroundServer(config) as bg:
        bg.client.predict(**PREDICT)
        yield bg


class TestDisabledByteIdentity:
    def test_metrics_json_unchanged(self, plain):
        snap = plain.client.metrics()
        assert "slo" not in snap
        for row in snap["endpoints"].values():
            assert "latency_histogram" not in row
            assert set(row) == {"requests", "outcomes", "latency"}

    def test_healthz_has_no_alerts_key(self, plain):
        health = plain.client.healthz()
        assert "alerts" not in health

    def test_slo_endpoint_reports_disabled(self, plain):
        assert plain.client.slo() == {"enabled": False}

    def test_histograms_opt_in(self, plain):
        snap = plain.client.metrics(histograms=True)
        row = snap["endpoints"]["/predict"]
        hist = row["latency_histogram"]
        assert hist["count"] == row["requests"]
        assert sum(hist["buckets"].values()) == hist["count"]

    def test_flight_recorder_always_on(self, plain):
        doc = plain.client.debug_requests(endpoint="/predict")
        assert doc["capacity"] == 256
        assert doc["requests"]
        entry = doc["requests"][0]
        assert entry["endpoint"] == "/predict"
        assert entry["latency_ms"] > 0
        assert "stages_ms" in entry

    def test_prometheus_exposition(self, plain):
        status, body, headers = raw_request(
            "127.0.0.1", plain.port, "GET", "/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["content-type"] == CONTENT_TYPE
        families = parse_prometheus(body.decode())
        assert families["repro_requests_total"] >= 1
        assert "repro_request_latency_seconds" in families
        assert "repro_uptime_seconds" in families
        # No engine -> no SLO families, even in prometheus form.
        assert "repro_slo_burn_rate" not in families


# ----------------------------------------------------------------------
# Burn drill on a live server
# ----------------------------------------------------------------------
DRILL_SLO = {
    "windows": {"page": [0.5, 1.0], "warn": [1.5, 3.0]},
    "objectives": [
        {"name": "availability", "type": "availability", "target": 0.999},
        {
            # Impossible threshold: every served request breaches it,
            # so sustained traffic is a guaranteed fast-window burn.
            "name": "latency-p95", "type": "latency",
            "quantile": 0.95, "threshold_ms": 0.001,
        },
    ],
}


class TestBurnDrill:
    def test_burn_fires_and_recovers_without_restart(self):
        config = ServiceConfig(
            port=0, executor="thread", workers=1,
            slo_enabled=True, slo_config=json.dumps(DRILL_SLO),
        )
        with BackgroundServer(config) as bg:
            client = bg.client
            # Sustained traffic past the slowest window (3s): every
            # request breaches the 1µs threshold, and a few malformed
            # payloads burn availability alongside.
            deadline = time.monotonic() + 3.2
            failures = 0
            while time.monotonic() < deadline:
                client.predict(**PREDICT)
                try:
                    client.predict(stencil="no-such-stencil")
                except ServiceError as exc:
                    assert exc.status == 400
                    failures += 1
                time.sleep(0.02)
            assert failures > 0

            doc = client.slo()
            assert doc["enabled"] is True
            states = {o["name"]: o["state"] for o in doc["objectives"]}
            assert states["latency-p95"] == "page"
            assert states["availability"] == "page"
            burning = {
                a["objective"]: a for a in doc["alerts"]
            }
            assert burning["latency-p95"]["severity"] == "page"
            # Burn rates are reported per labeled window.
            assert set(burning["latency-p95"]["burn_rates"]) == {
                "0.5s", "1s", "1.5s", "3s",
            }

            # The same alerts ride on the health probe...
            health = client.healthz()
            assert {
                a["objective"] for a in health["alerts"]
            } == {"latency-p95", "availability"}
            # ...and compact burn gauges on /metrics.
            snap = client.metrics()
            assert snap["slo"]["latency-p95"]["state"] == "page"

            # Attribution: the flight recorder names the requests that
            # burned each budget.
            slow = client.debug_requests(
                n=10, endpoint="/predict", min_ms=0.001
            )
            assert slow["requests"]
            assert all(
                e["latency_ms"] >= 0.001 for e in slow["requests"]
            )
            failed = client.debug_requests(n=10, outcome="failed")
            assert failed["requests"]
            assert all(
                e["status"] == 400 for e in failed["requests"]
            )

            # Recovery without restart: traffic stops, the windows
            # drain, and every objective reads ok on the same process.
            time.sleep(3.5)
            doc = client.slo()
            assert doc["alerts"] == []
            assert all(
                o["state"] == "ok" for o in doc["objectives"]
            )
            assert client.healthz()["alerts"] == []

    def test_bad_slo_config_fails_startup(self):
        from repro.service.server import ReproService

        config = ServiceConfig(
            port=0, executor="thread", workers=1,
            slo_enabled=True,
            slo_config='{"objectives": [{"name": "x", "type": "bogus"}]}',
        )
        with pytest.raises(ValueError, match="type must be one of"):
            ReproService(config)


# ----------------------------------------------------------------------
# Fabric fan-in: merged histograms are the pooled truth
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFabricHistogramFanIn:
    @pytest.fixture(scope="class")
    def fabric(self, tmp_path_factory):
        config = FabricConfig(
            fabric_dir=str(tmp_path_factory.mktemp("fabric-telemetry")),
            port=0,
            shards=2,
            executor="thread",
            workers=1,
            probe_interval_s=0.2,
            steal_interval_s=0.2,
            restart_shards=False,
        )
        with BackgroundFabric(config) as fab:
            for i in range(20):
                fab.client.predict(
                    stencil="3d7pt", grid=[16 + i, 16 + i, 32]
                )
            yield fab

    def test_router_aggregate_equals_local_merge(self, fabric):
        doc = fabric.client.metrics(histograms=True)
        shard_hists = [
            shard["endpoints"]["/predict"]["latency_histogram"]
            for shard in doc["shards"].values()
            if "/predict" in shard.get("endpoints", {})
        ]
        # The payload spread lands traffic on both shards.
        assert len(shard_hists) == 2
        aggregate = doc["aggregate"]["endpoints"]["/predict"]
        merged = LatencyHistogram.merged(shard_hists)
        assert aggregate["latency_histogram"] == merged.to_dict()
        assert merged.count == sum(h["count"] for h in shard_hists) == 20
        # The aggregate quantiles are the merged histogram's readout —
        # true cross-shard percentiles, not an average of averages.
        assert aggregate["latency"] == merged.percentiles()

    def test_merged_quantiles_match_pooled_samples(self, fabric):
        doc = fabric.client.metrics(histograms=True)
        aggregate = doc["aggregate"]["endpoints"]["/predict"]
        # The pooled per-shard sample stream, read back from the
        # flight recorders through the router fan-in.
        tail = fabric.client.request(
            "GET", "/debug/requests?n=100&endpoint=/predict"
        )
        samples = sorted(
            e["latency_ms"] for e in tail["requests"]
        )
        assert len(samples) == 20
        for name, q in (("p50_ms", 0.5), ("p95_ms", 0.95)):
            rank = min(
                len(samples) - 1, max(0, round(q * (len(samples) - 1)))
            )
            true = samples[rank]
            got = aggregate["latency"][name]
            # Documented bucket error bound (plus the recorder's 1µs
            # rounding).
            assert abs(got - true) <= QUANTILE_REL_ERROR * true + 1e-3

    def test_router_slo_and_prometheus_surfaces(self, fabric):
        doc = fabric.client.request("GET", "/slo")
        assert doc["role"] == "router"
        assert doc["enabled"] is False  # shards run without --slo
        assert len(doc["shards"]) == 2
        status, body, headers = raw_request(
            "127.0.0.1", fabric.port, "GET",
            "/metrics?format=prometheus",
        )
        assert status == 200
        assert headers["content-type"] == CONTENT_TYPE
        families = parse_prometheus(body.decode())
        assert families["repro_requests_total"] >= 1
        assert "repro_request_latency_seconds" in families

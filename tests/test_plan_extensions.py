"""Tests for fold-aware / thread-aware plan enumeration and the ECM
overlap-composition option."""

import pytest

from repro.codegen import KernelPlan
from repro.codegen.plan import candidate_folds, candidate_plans
from repro.ecm import EcmComposition, predict
from repro.machine import cascade_lake_sp, rome
from repro.stencil import get_stencil

SHAPE = (64, 64, 64)


class TestCandidateFolds:
    def test_clx_gets_brick_fold(self):
        folds = candidate_folds(get_stencil("3d7pt"), cascade_lake_sp())
        shapes = {f.shape for f in folds}
        assert (1, 1, 8) in shapes
        assert (2, 2, 2) in shapes

    def test_rome_gets_4lane_folds(self):
        folds = candidate_folds(get_stencil("3d7pt"), rome())
        shapes = {f.shape for f in folds}
        assert (1, 1, 4) in shapes
        assert (1, 2, 2) in shapes

    def test_all_folds_pack_full_register(self):
        m = cascade_lake_sp()
        for fold in candidate_folds(get_stencil("3d7pt"), m):
            assert fold.points == m.core.simd_lanes(8)


class TestEnumeration:
    def test_include_folds_multiplies_space(self):
        spec = get_stencil("3d7pt")
        m = cascade_lake_sp()
        base = list(candidate_plans(spec, SHAPE, m))
        folded = list(candidate_plans(spec, SHAPE, m, include_folds=True))
        assert len(folded) == 2 * len(base)

    def test_thread_constraint_drops_big_blocks(self):
        spec = get_stencil("3d7pt")
        m = cascade_lake_sp()
        plans = list(candidate_plans(spec, SHAPE, m, threads=8))
        # Full-z blocks give one outer block: cannot feed 8 threads.
        assert all(-(-SHAPE[0] // p.block[0]) >= 8 for p in plans)
        assert plans  # space not empty

    def test_single_thread_keeps_full_block(self):
        spec = get_stencil("3d7pt")
        m = cascade_lake_sp()
        plans = list(candidate_plans(spec, SHAPE, m, threads=1))
        assert any(p.block == SHAPE for p in plans)


class TestComposition:
    def test_overlap_never_slower(self):
        spec = get_stencil("3d7pt")
        m = cascade_lake_sp()
        plan = KernelPlan(block=SHAPE)
        serial = predict(spec, SHAPE, plan, m)
        overlap = predict(
            spec, SHAPE, plan, m, composition=EcmComposition.OVERLAP
        )
        assert overlap.t_ecm <= serial.t_ecm
        assert overlap.mlups >= serial.mlups

    def test_overlap_equals_max_of_terms(self):
        spec = get_stencil("3d7pt")
        m = rome()
        plan = KernelPlan(block=SHAPE)
        pred = predict(
            spec, SHAPE, plan, m, composition=EcmComposition.OVERLAP
        )
        assert pred.t_ecm == pytest.approx(
            max(pred.t_ol, pred.t_nol, max(pred.t_data))
        )

    def test_default_is_serial(self):
        spec = get_stencil("3d7pt")
        pred = predict(spec, SHAPE, KernelPlan(block=SHAPE), cascade_lake_sp())
        assert pred.composition is EcmComposition.SERIAL

"""Unit and property tests for the stencil expression AST."""

import pytest
from hypothesis import given, strategies as st

from repro.stencil import expr as E


class TestConstruction:
    def test_operator_overloading(self):
        u = E.access("u")
        e = 2.0 * u(0, 0) + u(1, 0) - u(0, 1) / 4
        assert isinstance(e, E.BinOp)
        assert E.total_flops(e) == 4

    def test_neg_lowered_to_mul(self):
        e = -E.access("u")(0,)
        assert isinstance(e, E.BinOp)
        assert e.op == "*"

    def test_wrap_rejects_strings(self):
        with pytest.raises(TypeError):
            E.access("u")(0,) + "nope"  # type: ignore[operator]

    def test_grid_access_validation(self):
        with pytest.raises(ValueError):
            E.GridAccess("", (0,))
        with pytest.raises(TypeError):
            E.GridAccess("u", (0.5,))  # type: ignore[arg-type]

    def test_param_must_be_identifier(self):
        with pytest.raises(ValueError):
            E.Param("not valid")

    def test_binop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            E.BinOp("%", E.Const(1.0), E.Const(2.0))


class TestAnalyses:
    def test_count_flops_by_kind(self):
        u = E.access("u")
        e = u(0,) * 2.0 + u(1,) - u(-1,)
        counts = E.count_flops(e)
        assert counts == {"+": 1, "-": 1, "*": 1, "/": 0}

    def test_grid_offsets(self):
        u, c = E.access("u"), E.access("c")
        e = c(0, 0) * (u(0, 1) + u(0, -1))
        offs = E.grid_offsets(e)
        assert offs["u"] == {(0, 1), (0, -1)}
        assert offs["c"] == {(0, 0)}

    def test_grids_read_sorted(self):
        e = E.access("b")(0,) + E.access("a")(0,)
        assert E.grids_read(e) == ("a", "b")

    def test_radius(self):
        e = E.access("u")(0, -3) + E.access("u")(2, 0)
        assert E.radius(e) == 3

    def test_dimensionality_consistent(self):
        e = E.access("u")(0, 1) + E.access("v")(1, 0)
        assert E.dimensionality(e) == 2

    def test_dimensionality_mismatch_raises(self):
        e = E.access("u")(0,) + E.access("v")(0, 0)
        with pytest.raises(ValueError):
            E.dimensionality(e)

    def test_dimensionality_without_grids_raises(self):
        with pytest.raises(ValueError):
            E.dimensionality(E.Const(1.0))

    def test_params_used(self):
        e = E.Param("a") * E.access("u")(0,) + E.Param("b")
        assert E.params_used(e) == ("a", "b")


# ----------------------------------------------------------------------
# Property-based: random expression trees
# ----------------------------------------------------------------------
def exprs(dim: int = 2, max_radius: int = 3):
    leaf = st.one_of(
        st.builds(
            E.GridAccess,
            st.sampled_from(["u", "v"]),
            st.tuples(
                *[st.integers(-max_radius, max_radius) for _ in range(dim)]
            ),
        ),
        st.builds(E.Const, st.floats(-2, 2, allow_nan=False)),
    )
    return st.recursive(
        leaf,
        lambda children: st.builds(
            E.BinOp, st.sampled_from(["+", "-", "*"]), children, children
        ),
        max_leaves=12,
    )


@given(exprs())
def test_walk_visits_all_binops(e):
    n_nodes = sum(1 for _ in e.walk())
    n_binops = sum(1 for n in e.walk() if isinstance(n, E.BinOp))
    assert E.total_flops(e) == n_binops
    assert n_nodes == 2 * n_binops + (n_nodes - 2 * n_binops)


@given(exprs())
def test_radius_bounds_offsets(e):
    r = E.radius(e)
    for node in e.walk():
        if isinstance(node, E.GridAccess):
            assert all(abs(o) <= r for o in node.offsets)


@given(exprs())
def test_offsets_subset_of_reads(e):
    offs = E.grid_offsets(e)
    assert set(E.grids_read(e)) == set(offs)
    assert all(len(v) >= 1 for v in offs.values())

"""Checkpoint/resume tests: tuner sweeps and Offsite rankings.

The resume contract: a checkpointed rerun produces a result identical
to the uninterrupted run (content-addressed keys make wrong reuse
impossible), executes zero fresh variants when the checkpoint is
complete, and survives corrupted or foreign checkpoint files by
quarantining/ignoring them — never by crashing or silently reusing
stale data.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.autotune import ExhaustiveTuner, GreedyLineSearchTuner
from repro.autotune.checkpoint import TunerCheckpoint, tuner_fingerprint
from repro.grid import GridSet
from repro.machine import cascade_lake_sp
from repro.offsite.tuner import rank_variants
from repro.stencil import get_stencil
from repro.util import crashsafe

SHAPE = (24, 24, 32)


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def setting():
    machine = cascade_lake_sp().scaled_caches(1 / 32)
    spec = get_stencil("3d7pt")
    grids = GridSet(spec, SHAPE)
    return spec, grids, machine


class TestTunerCheckpoint:
    def test_full_resume_runs_nothing_fresh(self, setting, tmp_path):
        spec, grids, machine = setting
        path = tmp_path / "sweep.ckpt"
        first = ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        assert path.exists()
        assert first.resumed_jobs == 0

        second = ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        assert second.variants_run == 0
        assert second.resumed_jobs == second.variants_examined
        assert second.best_plan == first.best_plan
        assert second.best_mlups == pytest.approx(first.best_mlups, abs=0)
        assert second.trace == first.trace
        assert second.simulated_run_seconds == 0.0

    def test_partial_resume_after_crash(self, setting, tmp_path):
        spec, grids, machine = setting
        path = tmp_path / "sweep.ckpt"
        clean = ExhaustiveTuner().tune(spec, grids, machine, seed=1)

        # "Crash" the first attempt after a few completions: the
        # injected fault exhausts retries from job 4 onward, but the
        # completed measurements were checkpointed.
        with faults.injected("tuner.eval:every=1:seed=0"):
            with pytest.raises(Exception):
                ExhaustiveTuner(checkpoint=str(path)).tune(
                    spec, grids, machine, seed=1
                )

        cp = TunerCheckpoint(
            path, tuner_fingerprint("exhaustive", spec, grids, machine, 1)
        )
        done_before = len(cp)

        resumed = ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        assert resumed.resumed_jobs == done_before
        assert resumed.variants_run == (
            resumed.variants_examined - done_before
        )
        assert resumed.best_plan == clean.best_plan
        assert resumed.trace == clean.trace

    def test_corrupt_checkpoint_quarantined(self, setting, tmp_path):
        spec, grids, machine = setting
        path = tmp_path / "sweep.ckpt"
        path.write_text('{"v": 1, "sha256": "doctored", "payload": {}}')
        res = ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        assert res.resumed_jobs == 0
        assert res.variants_run == res.variants_examined
        quarantined = list(tmp_path.glob("*.corrupt.*"))
        assert len(quarantined) == 1

    def test_garbage_bytes_quarantined(self, setting, tmp_path):
        spec, grids, machine = setting
        path = tmp_path / "sweep.ckpt"
        path.write_bytes(b"\x00\xffnot json at all")
        res = ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        assert res.resumed_jobs == 0
        assert list(tmp_path.glob("*.corrupt.*"))

    def test_different_seed_never_reuses(self, setting, tmp_path):
        spec, grids, machine = setting
        path = tmp_path / "sweep.ckpt"
        ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        other = ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=2
        )
        # Fingerprint mismatch: the seed=2 sweep starts from nothing.
        assert other.resumed_jobs == 0
        assert other.variants_run == other.variants_examined

    def test_foreign_fingerprint_file_ignored_not_destroyed(
        self, setting, tmp_path
    ):
        spec, grids, machine = setting
        path = tmp_path / "sweep.ckpt"
        crashsafe.dump_envelope(
            path, {"fingerprint": "someone-elses-run", "entries": {"k": {}}}
        )
        res = ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        assert res.resumed_jobs == 0
        # The file was valid (just foreign), so it must not be
        # quarantined — only overwritten by this run's entries.
        assert not list(tmp_path.glob("*.corrupt.*"))
        payload = crashsafe.load_envelope(path)
        assert payload["fingerprint"] == tuner_fingerprint(
            "exhaustive", spec, grids, machine, 1
        )

    def test_greedy_full_resume(self, setting, tmp_path):
        spec, grids, machine = setting
        path = tmp_path / "greedy.ckpt"
        first = GreedyLineSearchTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=4
        )
        second = GreedyLineSearchTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=4
        )
        assert second.variants_run == 0
        assert second.resumed_jobs == second.variants_examined
        assert second.best_plan == first.best_plan
        assert second.trace == first.trace

    def test_checkpoint_file_is_checksummed_envelope(self, setting, tmp_path):
        spec, grids, machine = setting
        path = tmp_path / "sweep.ckpt"
        ExhaustiveTuner(checkpoint=str(path)).tune(
            spec, grids, machine, seed=1
        )
        raw = json.loads(path.read_text())
        assert raw["v"] == crashsafe.VERSION
        assert raw["sha256"] == crashsafe.checksum(raw["payload"])


class TestOffsiteCheckpoint:
    def test_rank_resume_skips_measurements(self, tmp_path):
        machine = cascade_lake_sp()
        path = tmp_path / "rank.ckpt"
        kwargs = dict(
            grid_shape=(8, 8, 16),
            cache_scale=1 / 32,
            validate=True,
            seed=0,
        )
        first = rank_variants(
            "radau_iia", 4, 3, machine=machine,
            checkpoint=str(path), **kwargs
        )
        assert first.resumed_variants == 0
        second = rank_variants(
            "radau_iia", 4, 3, machine=machine,
            checkpoint=str(path), **kwargs
        )
        assert second.resumed_variants == len(second.timings)
        assert [t.variant for t in second.timings] == [
            t.variant for t in first.timings
        ]
        assert [t.measured_s for t in second.timings] == [
            t.measured_s for t in first.timings
        ]

    def test_rank_seed_mismatch_remeasures(self, tmp_path):
        machine = cascade_lake_sp()
        path = tmp_path / "rank.ckpt"
        kwargs = dict(
            grid_shape=(8, 8, 16), cache_scale=1 / 32, validate=True
        )
        rank_variants(
            "radau_iia", 4, 3, machine=machine,
            checkpoint=str(path), seed=0, **kwargs
        )
        other = rank_variants(
            "radau_iia", 4, 3, machine=machine,
            checkpoint=str(path), seed=1, **kwargs
        )
        assert other.resumed_variants == 0

"""Tests for the repro.engine request/result/execution layer."""

from __future__ import annotations

import pytest

from repro import obs
from repro.engine import (
    Engine,
    PredictRequest,
    RankRequest,
    RequestError,
    TuneRequest,
    default_engine,
    set_default_engine,
)
from repro.machine.presets import cascade_lake_sp


# ----------------------------------------------------------------------
# Request normalization
# ----------------------------------------------------------------------
def test_predict_request_defaults():
    req = PredictRequest.from_payload({"stencil": "3d7pt"})
    assert req.grid == (48, 48, 64)
    assert req.machine == "clx"
    assert req.block is None
    assert req.cache_scale is None
    assert req.capacity_factor == 1.0
    assert req.to_payload() == {
        "stencil": "3d7pt",
        "grid": [48, 48, 64],
        "machine": "clx",
        "block": None,
        "cache_scale": None,
        "capacity_factor": 1.0,
    }


def test_predict_request_rejects_bad_payloads():
    with pytest.raises(RequestError):
        PredictRequest.from_payload({"stencil": "nope"})
    with pytest.raises(RequestError):
        PredictRequest.from_payload({"stencil": "3d7pt", "grid": [0, 4]})
    with pytest.raises(RequestError):
        PredictRequest.from_payload(
            {"stencil": "3d7pt", "machine": "cray-1"}
        )
    with pytest.raises(RequestError):
        PredictRequest.from_payload(
            {"stencil": "3d7pt", "block": [8, 8]}  # wrong rank for 3-d grid
        )
    with pytest.raises(RequestError):
        PredictRequest.from_payload({"stencil": "3d7pt", "cache_scale": -1})


def test_tune_request_excludes_workers_from_payload():
    req = TuneRequest.from_payload({"stencil": "3d7pt", "workers": 4})
    assert req.workers == 4
    assert "workers" not in req.to_payload()
    # Two requests differing only in workers normalize identically.
    other = TuneRequest.from_payload({"stencil": "3d7pt"})
    assert req.to_payload() == other.to_payload()


def test_tune_request_validates_tuner_and_workers():
    with pytest.raises(RequestError):
        TuneRequest.from_payload({"stencil": "3d7pt", "tuner": "magic"})
    with pytest.raises(RequestError):
        TuneRequest.from_payload({"stencil": "3d7pt", "workers": 0})
    with pytest.raises(RequestError):
        TuneRequest.from_payload({"stencil": "3d7pt", "seed": "x"})


def test_rank_request_db_key_parts_fold_deviations():
    base = RankRequest.from_payload({"grid": [8, 8, 16]})
    method, ivp, machine, grid = base.db_key_parts()
    assert method == "radau_iia(4)m3"
    assert ivp == "grid8x8x16"
    assert machine == "clx"
    assert grid == (8, 8, 16)

    deviant = RankRequest.from_payload(
        {
            "grid": [8, 8, 16],
            "cache_scale": 1.0,
            "block": "auto",
            "seed": 7,
        }
    )
    _, ivp, _, _ = deviant.db_key_parts()
    assert ivp == "grid8x8x16@cs1,bauto,s7"

    full = RankRequest.from_payload(
        {"grid": [8, 8, 16], "cache_scale": None}
    )
    _, ivp, _, _ = full.db_key_parts()
    assert ivp == "grid8x8x16@csfull"


def test_rank_request_block_policies():
    auto = RankRequest.from_payload({"block": "auto"})
    assert auto.block == "auto"
    explicit = RankRequest.from_payload({"block": [8, 8, 32]})
    assert explicit.block == (8, 8, 32)
    assert explicit.to_payload()["block"] == [8, 8, 32]
    with pytest.raises(RequestError):
        RankRequest.from_payload({"block": "weird"})
    with pytest.raises(RequestError):
        RankRequest.from_payload({"validate": "yes"})


def test_requests_are_frozen_and_hashable():
    a = PredictRequest.from_payload({"stencil": "3d7pt"})
    b = PredictRequest.from_payload({"stencil": "3d7pt"})
    assert a == b
    assert hash(a) == hash(b)
    with pytest.raises(AttributeError):
        a.machine = "rome"


# ----------------------------------------------------------------------
# Engine execution
# ----------------------------------------------------------------------
def test_engine_yasksite_cache_shares_instances():
    eng = Engine()
    a = eng.yasksite("clx", cache_scale=1 / 32)
    b = eng.yasksite("clx", cache_scale=1 / 32)
    assert a is b
    c = eng.yasksite("clx", cache_scale=1 / 16)
    assert c is not a
    d = eng.yasksite("clx", cache_scale=1 / 32, capacity_factor=0.5)
    assert d is not a


def test_engine_yasksite_machine_object_bypasses_cache():
    eng = Engine()
    machine = cascade_lake_sp()
    a = eng.yasksite(machine)
    b = eng.yasksite(machine)
    assert a is not b
    assert a.machine == machine


def test_default_engine_is_process_wide():
    set_default_engine(None)
    try:
        assert default_engine() is default_engine()
        custom = Engine()
        set_default_engine(custom)
        assert default_engine() is custom
    finally:
        set_default_engine(None)


def test_engine_predict_matches_direct_call():
    eng = Engine()
    req = PredictRequest.from_payload(
        {"stencil": "3d7pt", "grid": [16, 16, 32]}
    )
    res = eng.predict(req)
    assert res.stencil == "s3d7pt"
    assert res.grid == (16, 16, 32)
    assert res.mlups > 0
    assert res.plan.block  # analytic selection chose a plan

    ys = eng.yasksite("clx")
    from repro.stencil.library import get_stencil

    spec = get_stencil("3d7pt")
    plan = ys.select_block(spec, (16, 16, 32)).plan
    pred = ys.predict(spec, (16, 16, 32), plan)
    assert res.mlups == pred.mlups
    assert res.ecm_notation == pred.notation()


def test_engine_tune_and_rank_return_typed_results():
    eng = Engine()
    tune = eng.tune(
        TuneRequest.from_payload({"stencil": "3d7pt", "grid": [16, 16, 32]})
    )
    assert tune.tuner == "ecm"
    assert tune.best_mlups > 0
    assert tune.stencil == "3d7pt"
    assert tune.grid == (16, 16, 32)

    rank = eng.rank(
        RankRequest.from_payload({"grid": [8, 8, 16], "validate": False})
    )
    assert rank.ivp == "grid8x8x16"
    assert rank.best_variant in rank.ranking
    assert rank.ranking[0] == rank.best_variant
    assert all(t.measured_s is None for t in rank.timings)
    assert rank.kendall_tau is None


def test_engine_predict_trace_attribution():
    """A traced predict attributes ≥90% of its wall time to spans.

    The default grid keeps the run long enough that span bookkeeping
    and scheduler jitter stay well under the 10% slack.
    """
    eng = Engine()
    req = PredictRequest.from_payload(
        {"stencil": "3d7pt", "grid": [48, 48, 64]}
    )
    trace = obs.start_trace("request:/predict")
    eng.predict(req)
    root = trace.finish()
    names = {s.name for s in root.walk()}
    assert {"engine.predict", "engine.yasksite",
            "blocking.select", "ecm.predict"} <= names
    predict_span = root.children[0]
    assert predict_span.name == "engine.predict"
    assert obs.coverage(predict_span) >= 0.90


def test_engine_tune_trace_names_tuner_stages():
    eng = Engine()
    trace = obs.start_trace("request:/tune")
    eng.tune(
        TuneRequest.from_payload(
            {"stencil": "3d7pt", "grid": [16, 16, 32], "tuner": "greedy"}
        )
    )
    root = trace.finish()
    names = {s.name for s in root.walk()}
    assert {"engine.tune", "tuner.greedy", "tuner.evaluate",
            "perf.simulate", "cachesim.sweep"} <= names
    evaluate = [s for s in root.walk() if s.name == "tuner.evaluate"]
    assert sum(s.counters.get("jobs", 0) for s in evaluate) > 0
    sweeps = [s for s in root.walk() if s.name == "cachesim.sweep"]
    ledger = sum(
        s.counters.get("memo_hits", 0) + s.counters.get("memo_misses", 0)
        for s in sweeps
    )
    assert ledger > 0


def test_engine_rank_trace_names_offsite_stages():
    eng = Engine()
    trace = obs.start_trace("request:/rank")
    eng.rank(RankRequest.from_payload({"grid": [8, 8, 16]}))
    root = trace.finish()
    names = {s.name for s in root.walk()}
    assert {"engine.rank", "offsite.predict", "offsite.measure"} <= names

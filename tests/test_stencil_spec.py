"""Tests for StencilSpec, builders and the suite library."""

import pytest

from repro.stencil import (
    STENCIL_SUITE,
    StencilKind,
    box,
    get_stencil,
    heat,
    long_range,
    star,
    suite_table,
    variable_coefficient_star,
)
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


class TestBuilders:
    def test_star_point_counts(self):
        assert star(3, 1).n_accesses == 7
        assert star(3, 2).n_accesses == 13
        assert star(3, 4).n_accesses == 25
        assert star(2, 1).n_accesses == 5

    def test_box_point_counts(self):
        assert box(3, 1).n_accesses == 27
        assert box(2, 1).n_accesses == 9

    def test_kind_classification(self):
        assert star(3, 2).kind is StencilKind.STAR
        assert box(3, 1).kind is StencilKind.BOX
        assert heat(3).kind is StencilKind.STAR

    def test_radius(self):
        assert star(3, 4).radius == 4
        assert box(2, 1).radius == 1
        assert long_range(3, 4).radius == 4

    def test_heat_has_parameter_default(self):
        spec = heat(2)
        assert "a" in spec.params

    def test_varcoef_extra_grids(self):
        spec = variable_coefficient_star(3, 1)
        assert len(spec.reads) == 4  # u + 3 coefficient grids
        assert spec.kind is StencilKind.STAR  # judged on the main grid

    def test_builders_reject_bad_args(self):
        with pytest.raises(ValueError):
            star(0, 1)
        with pytest.raises(ValueError):
            box(3, 0)
        with pytest.raises(ValueError):
            long_range(3, 1)


class TestSpecDerived:
    def test_code_balance_jacobi(self):
        spec = star(3, 1)
        # 1 read stream + write + write-allocate = 24 B/LUP.
        assert spec.code_balance_bytes() == 24.0
        assert spec.code_balance_bytes(write_allocate=False) == 16.0

    def test_arithmetic_intensity_grows_with_radius(self):
        assert (
            star(3, 4).arithmetic_intensity()
            > star(3, 1).arithmetic_intensity()
        )

    def test_in_place_detection(self):
        u = E.access("u")
        spec = StencilSpec("gs", "u", u(0, 1) + u(0, -1))
        assert spec.in_place
        assert not star(2, 1).in_place

    def test_missing_param_default_raises(self):
        with pytest.raises(ValueError):
            StencilSpec("p", "out", E.Param("k") * E.access("u")(0,))

    def test_name_must_be_identifier(self):
        with pytest.raises(ValueError):
            StencilSpec("bad name", "out", E.access("u")(0,))

    def test_describe_keys(self):
        row = star(3, 1).describe()
        for key in ("name", "dim", "kind", "radius", "flops/LUP", "AI (F/B)"):
            assert key in row


class TestLibrary:
    def test_suite_complete(self):
        assert len(STENCIL_SUITE) >= 8
        for name in STENCIL_SUITE:
            spec = get_stencil(name)
            assert spec.flops > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_stencil("nope")

    def test_suite_table_rows(self):
        table = suite_table()
        assert len(table) == len(STENCIL_SUITE)
        names = [r["name"] for r in table]
        assert len(set(names)) == len(names)

"""FieldSet container tests."""

import numpy as np
import pytest

from repro.grid import FieldSet


class TestFieldSet:
    def test_construction_and_access(self):
        fs = FieldSet(("a", "b", "c"), (4, 6), halo=1)
        assert len(fs) == 3
        assert fs.names == ("a", "b", "c")
        assert "b" in fs and "z" not in fs
        assert fs["a"].interior_shape == (4, 6)

    def test_page_aligned_disjoint(self):
        fs = FieldSet(("a", "b"), (8, 8), halo=2)
        a, b = fs["a"], fs["b"]
        assert b.layout.base_addr % FieldSet.PAGE == 0
        assert b.layout.base_addr >= a.footprint_bytes

    def test_arrays_mapping(self):
        fs = FieldSet(("x", "y0"), (4, 4), halo=0)
        arrays = fs.arrays()
        assert set(arrays) == {"x", "y0"}
        arrays["x"][0, 0] = 5.0
        assert fs["x"].data[0, 0] == 5.0  # same buffer

    def test_randomize_deterministic(self):
        f1 = FieldSet(("a",), (4, 4), halo=1)
        f2 = FieldSet(("a",), (4, 4), halo=1)
        f1.randomize(9)
        f2.randomize(9)
        assert np.array_equal(f1["a"].data, f2["a"].data)

    def test_validation(self):
        with pytest.raises(ValueError):
            FieldSet((), (4, 4), halo=0)
        with pytest.raises(ValueError):
            FieldSet(("a", "a"), (4, 4), halo=0)

    def test_total_bytes(self):
        fs = FieldSet(("a", "b"), (4, 4), halo=1)
        assert fs.total_bytes == 2 * 6 * 6 * 8

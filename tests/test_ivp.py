"""IVP library tests: RHS consistency, exact solutions, stencil links."""

import numpy as np
import pytest

from repro.ode import (
    Cusp,
    ExplicitRK,
    HeatND,
    InverterChain,
    Wave1D,
    get_ivp,
    integrate,
    rk4,
)


def finite_diff_derivative(ivp, t, eps=1e-7):
    """d/dt of the exact solution via central differences."""
    return (ivp.exact(t + eps) - ivp.exact(t - eps)) / (2 * eps)


class TestHeat:
    @pytest.mark.parametrize("dim,n", [(1, 32), (2, 12), (3, 6)])
    def test_exact_solution_satisfies_ode(self, dim, n):
        ivp = HeatND(dim, n)
        t = 0.01
        y = ivp.exact(t)
        np.testing.assert_allclose(
            ivp.rhs(t, y), finite_diff_derivative(ivp, t), rtol=1e-5, atol=1e-7
        )

    def test_integration_converges_to_exact(self):
        ivp = HeatND(2, 12, t_end=0.002)
        y = integrate(ExplicitRK(rk4()), ivp, 50)
        assert ivp.error(ivp.t_end, y) < 1e-8

    def test_stencil_attached(self):
        ivp = HeatND(3, 8)
        assert ivp.stencil is not None
        assert ivp.stencil.radius == 1
        assert ivp.grid_shape == (8, 8, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatND(0, 8)
        with pytest.raises(ValueError):
            HeatND(2, 1)


class TestWave:
    def test_exact_solution_satisfies_ode(self):
        ivp = Wave1D(32)
        t = 0.03
        y = ivp.exact(t)
        np.testing.assert_allclose(
            ivp.rhs(t, y), finite_diff_derivative(ivp, t), rtol=1e-5, atol=1e-6
        )

    def test_energy_roughly_conserved(self):
        ivp = Wave1D(32, t_end=0.5)
        y = integrate(ExplicitRK(rk4()), ivp, 400)
        n = 32
        # Amplitude of u must stay bounded by the initial amplitude.
        assert np.max(np.abs(y[:n])) <= 1.01


class TestCusp:
    def test_rhs_finite_and_shaped(self):
        ivp = Cusp(24)
        dy = ivp.rhs(0.0, ivp.y0)
        assert dy.shape == ivp.y0.shape
        assert np.all(np.isfinite(dy))

    def test_integration_stays_finite(self):
        ivp = Cusp(24, t_end=1e-4)
        y = integrate(ExplicitRK(rk4()), ivp, 200)
        assert np.all(np.isfinite(y))

    def test_validation(self):
        with pytest.raises(ValueError):
            Cusp(2)


class TestInverterChain:
    def test_rhs_banded_coupling(self):
        ivp = InverterChain(16)
        y = ivp.y0.copy()
        base = ivp.rhs(7.0, y)
        # Perturbing node k changes only derivatives of k and k+1.
        y2 = y.copy()
        y2[4] += 0.1
        delta = ivp.rhs(7.0, y2) - base
        nonzero = np.nonzero(np.abs(delta) > 1e-12)[0]
        assert set(nonzero) <= {4, 5}

    def test_input_pulse_shape(self):
        ivp = InverterChain(8)
        # The pulse drives node 0 only through the rhs; just integrate.
        y = integrate(ExplicitRK(rk4()), ivp, 200, t_end=1.0)
        assert np.all(np.isfinite(y))

    def test_validation(self):
        with pytest.raises(ValueError):
            InverterChain(1)


class TestRegistry:
    def test_get_ivp(self):
        assert get_ivp("heat2d").name.startswith("Heat2D")
        assert get_ivp("wave1d", n=16).size == 32
        with pytest.raises(KeyError):
            get_ivp("unknown")

    def test_error_requires_exact(self):
        ivp = Cusp(24)
        with pytest.raises(ValueError):
            ivp.error(0.0, ivp.y0)

"""Generated-Python backend: source structure and compilation."""

import pytest

from repro.codegen import KernelPlan
from repro.codegen.python_backend import build_callable, emit_python
from repro.stencil import get_stencil


class TestEmittedSource:
    def test_block_loops_in_plan_order(self):
        spec = get_stencil("3d7pt")
        src = emit_python(
            spec, (16, 16, 32), KernelPlan(block=(8, 4, 32), loop_order=(1, 0, 2)),
            halo=1,
        )
        # Loop over axis 1 must appear before axis 0.
        assert src.index("for bb1") < src.index("for bb0")

    def test_params_bound(self):
        spec = get_stencil("heat3d")
        src = emit_python(spec, (8, 8, 8), KernelPlan(block=(8, 8, 8)), halo=1)
        assert 'p_a = params["a"]' in src

    def test_grids_bound(self):
        spec = get_stencil("3dvarcoef")
        src = emit_python(spec, (8, 8, 8), KernelPlan(block=(8, 8, 8)), halo=1)
        for grid in spec.grids:
            assert f'g_{grid} = arrays["{grid}"]' in src

    def test_docstring_mentions_plan(self):
        spec = get_stencil("3d7pt")
        src = emit_python(spec, (8, 8, 8), KernelPlan(block=(4, 4, 8)), halo=1)
        assert "b=4x4x8" in src

    def test_custom_function_name(self):
        spec = get_stencil("3d7pt")
        src = emit_python(
            spec, (8, 8, 8), KernelPlan(block=(8, 8, 8)), halo=1,
            func_name="my_sweep",
        )
        func = build_callable(src, "my_sweep")
        assert func.__name__ == "my_sweep"
        assert func.__source__ == src

    def test_wavefront_rejected(self):
        spec = get_stencil("3d7pt")
        with pytest.raises(ValueError):
            emit_python(
                spec, (8, 8, 8), KernelPlan(block=(8, 8, 8), wavefront=2),
                halo=1,
            )

    def test_halo_offsets_in_slices(self):
        spec = get_stencil("3d13pt")  # radius 2
        src = emit_python(spec, (8, 8, 8), KernelPlan(block=(8, 8, 8)), halo=2)
        # Offset +2 with halo 2 -> "+ 4"; offset -2 -> "+ 0".
        assert "i20 + 4:i21 + 4" in src
        assert "i20 + 0:i21 + 0" in src

    def test_source_is_valid_python(self):
        import ast

        spec = get_stencil("3d27pt")
        src = emit_python(spec, (8, 8, 8), KernelPlan(block=(4, 4, 8)), halo=1)
        ast.parse(src)  # must not raise

"""Offsite tests: kernels, variants, numerics, prediction, ranking."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import KernelPlan
from repro.machine import cascade_lake_sp
from repro.ode import HeatND, PIRK, lobatto_iiic, radau_iia
from repro.offsite import (
    CompositeKernel,
    OffsiteTuner,
    ReadStream,
    VariantGrids,
    WriteStream,
    execute_variant_step,
    measure_kernel,
    pirk_variants,
    predict_kernel,
)
from repro.offsite.tuner import kendall_tau


class TestCompositeKernel:
    def test_validation_rules(self):
        with pytest.raises(ValueError):
            CompositeKernel("k", (), (), 1.0)  # no writes
        with pytest.raises(ValueError):
            CompositeKernel(
                "k",
                (ReadStream("a"), ReadStream("a")),
                (WriteStream("out"),),
                1.0,
            )
        with pytest.raises(ValueError):
            # Read grid not marked also_read on its write stream.
            CompositeKernel(
                "k", (ReadStream("a"),), (WriteStream("a"),), 1.0
            )

    def test_min_memory_traffic(self):
        k = CompositeKernel(
            "k",
            (ReadStream("u", 1, 3), ReadStream("acc")),
            (WriteStream("acc", also_read=True), WriteStream("out")),
            10.0,
        )
        # reads: 2 streams; acc WB: 1; out: 2 -> 5 elements.
        assert k.min_memory_bytes_per_lup() == 40.0

    def test_star_access_counts(self):
        r = ReadStream("u", 2, 3)
        assert r.n_accesses() == 13
        assert r.n_rows() == 9
        assert r.n_groups() == 5
        assert ReadStream("y").n_accesses() == 1


class TestVariants:
    def test_four_variants(self):
        variants = pirk_variants(4)
        assert sorted(v.name for v in variants) == [
            "fused_lc", "gather", "scatter", "split",
        ]

    def test_sweep_counts(self):
        by_name = {v.name: v for v in pirk_variants(4)}
        assert by_name["split"].sweeps_per_iteration() == 8
        assert by_name["fused_lc"].sweeps_per_iteration() == 5
        assert by_name["scatter"].sweeps_per_iteration() == 4
        assert by_name["gather"].sweeps_per_iteration() == 4

    def test_gather_has_redundant_flops(self):
        by_name = {v.name: v for v in pirk_variants(4)}
        assert (
            by_name["gather"].flops_per_lup_iteration()
            > by_name["split"].flops_per_lup_iteration()
        )

    def test_min_traffic_ordering(self):
        # Fusing the linear combination must not increase minimum traffic.
        by_name = {v.name: v for v in pirk_variants(4)}
        assert (
            by_name["fused_lc"].min_memory_bytes_per_iteration()
            <= by_name["split"].min_memory_bytes_per_iteration()
        )


class TestVariantNumerics:
    @pytest.mark.parametrize("variant", ["split", "fused_lc", "scatter", "gather"])
    @pytest.mark.parametrize("tableau_factory", [lambda: radau_iia(3), lambda: lobatto_iiic(3)])
    def test_variants_match_pirk(self, variant, tableau_factory):
        tab = tableau_factory()
        ivp = HeatND(2, 10, t_end=0.001)
        method = PIRK(tab, 2)
        ref = method.step(ivp.rhs, 0.0, ivp.y0, 1e-5)
        got = execute_variant_step(variant, tab, 2, ivp.rhs, 0.0, ivp.y0, 1e-5)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-15)

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            execute_variant_step("nope", radau_iia(2), 1, lambda t, y: y, 0.0,
                                 np.zeros(3), 0.1)

    def test_zero_correctors_rejected(self):
        with pytest.raises(ValueError):
            execute_variant_step("split", radau_iia(2), 0, lambda t, y: y,
                                 0.0, np.zeros(3), 0.1)


class TestPredictMeasure:
    def setup_method(self):
        self.machine = cascade_lake_sp().scaled_caches(1 / 32)
        self.shape = (16, 16, 32)
        self.plan = KernelPlan(block=self.shape)

    def test_prediction_close_to_measurement(self):
        kernel = pirk_variants(4)[0].kernels[0][0]  # the rhs kernel
        pred = predict_kernel(kernel, self.shape, self.plan, self.machine)
        grids = VariantGrids(kernel.grids, self.shape, halo=1)
        cycles, _ = measure_kernel(kernel, grids, self.plan, self.machine)
        assert pred.cycles_per_lup == pytest.approx(cycles, rel=0.35)

    def test_more_streams_cost_more(self):
        variants = {v.name: v for v in pirk_variants(4)}
        lc = variants["split"].kernels[1][0]
        rhs = variants["split"].kernels[0][0]
        p_lc = predict_kernel(lc, self.shape, self.plan, self.machine)
        p_rhs = predict_kernel(rhs, self.shape, self.plan, self.machine)
        assert p_lc.mem_bytes_per_lup > p_rhs.mem_bytes_per_lup


class TestTuner:
    def test_ranking_report(self):
        machine = cascade_lake_sp().scaled_caches(1 / 32)
        method = PIRK(radau_iia(4), 3)
        report = OffsiteTuner(machine).tune(method, (16, 16, 32), validate=True)
        assert len(report.timings) == 4
        assert report.kendall_tau is not None
        assert report.kendall_tau > 0.3
        assert report.best_predicted().predicted_s > 0

    def test_validate_false_runs_nothing(self):
        machine = cascade_lake_sp().scaled_caches(1 / 32)
        method = PIRK(radau_iia(4), 2)
        report = OffsiteTuner(machine).tune(method, (12, 12, 16), validate=False)
        assert report.kendall_tau is None
        assert all(t.measured_s is None for t in report.timings)
        assert report.measure_seconds < 0.2


class TestKendallTau:
    def test_identical_orders(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed_orders(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_mismatched_items_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(["a"], ["b"])

    @settings(max_examples=30, deadline=None)
    @given(st.permutations(["a", "b", "c", "d", "e"]))
    def test_bounds(self, perm):
        tau = kendall_tau(list(perm), ["a", "b", "c", "d", "e"])
        assert -1.0 <= tau <= 1.0


class TestTwoDimensional:
    def test_2d_ranking_works(self):
        machine = cascade_lake_sp().scaled_caches(1 / 32)
        method = PIRK(radau_iia(3), 2)
        report = OffsiteTuner(machine).tune(
            method, (48, 64), dim=2, validate=True, seed=9
        )
        assert len(report.timings) == 4
        assert report.kendall_tau is not None
        assert report.kendall_tau >= 0.3

    def test_2d_composite_prediction(self):
        from repro.codegen import KernelPlan

        machine = cascade_lake_sp().scaled_caches(1 / 32)
        kernel = pirk_variants(3, dim=2)[0].kernels[0][0]
        pred = predict_kernel(
            kernel, (48, 64), KernelPlan(block=(48, 64)), machine, dim=2
        )
        assert pred.cycles_per_lup > 0


class TestSelectKernelBlock:
    def test_block_selection_for_stencil_kernel(self):
        from repro.offsite.composite import select_kernel_block

        machine = cascade_lake_sp().scaled_caches(1 / 32)
        kernel = pirk_variants(4)[3].kernels[0][0]  # gather: 4 stencil reads
        plan = select_kernel_block(kernel, (48, 48, 64), machine)
        # Heavy multi-stencil kernel on tiny caches: y must be blocked.
        assert plan.block[1] < 48
        assert plan.block[-1] == 64

    def test_streaming_kernel_prefers_full_blocks(self):
        from repro.offsite.composite import select_kernel_block
        from repro.offsite.kernels import CompositeKernel, ReadStream, WriteStream

        machine = cascade_lake_sp().scaled_caches(1 / 32)
        kernel = CompositeKernel(
            "axpy", (ReadStream("x"), ReadStream("y0")),
            (WriteStream("out"),), 2.0,
        )
        plan = select_kernel_block(kernel, (48, 48, 64), machine)
        # Pure streams have no reuse to protect: ties resolve to the
        # largest block volume.
        assert plan.block == (48, 48, 64)

"""Shared fixtures for the test suite."""

import pytest

from repro.machine.presets import cascade_lake_sp, generic_avx2, rome


@pytest.fixture
def generic():
    """Small fast machine for exact-simulation tests."""
    return generic_avx2()


@pytest.fixture
def clx():
    """Cascade Lake preset (full size)."""
    return cascade_lake_sp()


@pytest.fixture
def rome_machine():
    """Rome preset (full size)."""
    return rome()

"""Layer-condition traffic model tests."""

import pytest

from repro.codegen import KernelPlan
from repro.ecm import boundary_traffic, effective_capacity
from repro.machine import CacheLevel, CoreModel, Machine
from repro.machine.presets import cascade_lake_sp, rome
from repro.stencil import box, get_stencil, star, variable_coefficient_star


def machine_with_l1(l1_kib: int, l2_kib: int = 1024) -> Machine:
    return Machine(
        name="lc-test",
        isa="AVX2",
        freq_ghz=2.0,
        cores=4,
        cores_per_llc=4,
        core=CoreModel(32, 2, 1, 1, 2, 1),
        caches=(
            CacheLevel("L1", l1_kib * 1024, 64, 8, 64.0),
            CacheLevel("L2", l2_kib * 1024, 64, 16, 32.0),
        ),
    )


class TestRegimes:
    def test_huge_cache_reaches_plane_regime(self):
        spec = get_stencil("3d7pt")
        shape = (64, 64, 64)
        m = machine_with_l1(l1_kib=32 * 1024, l2_kib=64 * 1024)
        rep = boundary_traffic(spec, shape, KernelPlan(block=shape), m)
        assert rep.regimes == ("plane", "plane")
        # Plane regime: 1 read + 2 store elements per update.
        assert rep.elements_per_lup[0] == pytest.approx(3.0)

    def test_tiny_cache_hits_none_regime(self):
        spec = star(3, 4)
        shape = (64, 64, 64)
        m = machine_with_l1(l1_kib=4, l2_kib=16)
        rep = boundary_traffic(spec, shape, KernelPlan(block=shape), m)
        assert rep.regimes[0] == "none"
        # 4r+1 = 17 rows + 2 store elements.
        assert rep.elements_per_lup[0] == pytest.approx(19.0)

    def test_row_regime_counts_groups(self):
        spec = star(3, 2)  # 5 z-groups
        shape = (64, 64, 64)
        # Row working set: 12 rows x 64 x 8 = 6.1 KiB -> 16 KiB L1 is
        # row- but not plane-sufficient for 64x64 planes.
        m = machine_with_l1(l1_kib=16, l2_kib=16 * 1024)
        rep = boundary_traffic(spec, shape, KernelPlan(block=shape), m)
        assert rep.regimes[0] == "row"
        assert rep.elements_per_lup[0] == pytest.approx(5 + 2)

    def test_blocking_adds_halo_overhead_in_plane_regime(self):
        spec = get_stencil("3d7pt")
        shape = (64, 64, 64)
        m = machine_with_l1(l1_kib=32 * 1024, l2_kib=64 * 1024)
        full = boundary_traffic(spec, shape, KernelPlan(block=shape), m)
        blocked = boundary_traffic(
            spec, shape, KernelPlan(block=(8, 8, 64)), m
        )
        assert blocked.elements_per_lup[0] > full.elements_per_lup[0]
        # (1 + 2/8)^2 halo factor on the read stream.
        assert blocked.elements_per_lup[0] == pytest.approx(
            1.25 * 1.25 + 2.0
        )

    def test_no_reuse_flag(self):
        spec = get_stencil("3d7pt")
        shape = (32, 32, 32)
        m = machine_with_l1(l1_kib=32 * 1024, l2_kib=64 * 1024)
        rep = boundary_traffic(
            spec, shape, KernelPlan(block=shape), m, assume_no_reuse=True
        )
        assert all(r == "none" for r in rep.regimes)

    def test_multigrid_streams_counted(self):
        spec = variable_coefficient_star(3, 1)
        shape = (32, 32, 32)
        m = machine_with_l1(l1_kib=32 * 1024, l2_kib=64 * 1024)
        rep = boundary_traffic(spec, shape, KernelPlan(block=shape), m)
        # 4 read streams + 2 store elements in plane regime.
        assert rep.elements_per_lup[0] == pytest.approx(6.0)

    def test_box_rows_exceed_star_rows(self):
        shape = (64, 64, 64)
        m = machine_with_l1(l1_kib=4, l2_kib=16)
        star_rep = boundary_traffic(
            star(3, 1), shape, KernelPlan(block=shape), m
        )
        box_rep = boundary_traffic(
            box(3, 1), shape, KernelPlan(block=shape), m
        )
        assert box_rep.elements_per_lup[0] > star_rep.elements_per_lup[0]

    def test_smaller_cache_never_less_traffic(self):
        spec = get_stencil("3d13pt")
        shape = (64, 64, 64)
        plan = KernelPlan(block=shape)
        prev = None
        for l1 in (4, 16, 64, 1024):
            rep = boundary_traffic(spec, shape, plan, machine_with_l1(l1))
            if prev is not None:
                assert rep.elements_per_lup[0] <= prev
            prev = rep.elements_per_lup[0]


class TestEffectiveCapacity:
    def test_plain_level(self):
        m = cascade_lake_sp()
        assert effective_capacity(m, 1) == m.level("L2").size_bytes

    def test_victim_aggregates(self):
        m = rome()
        assert effective_capacity(m, 2) == (
            m.level("L3").size_bytes + m.level("L2").size_bytes
        )

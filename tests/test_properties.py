"""Cross-cutting property-based tests on model invariants.

These tie the subsystems together: whatever hypothesis throws at the
models, physical sanity must hold (monotonicity, conservation,
bounds).  They complement the per-module unit tests.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.cachesim import CacheHierarchy
from repro.codegen import KernelPlan, compile_kernel
from repro.ecm import boundary_traffic, predict
from repro.grid import GridSet
from repro.machine import CacheLevel, CoreModel, Machine, cascade_lake_sp
from repro.stencil import get_stencil, star


CLX = cascade_lake_sp()


# ----------------------------------------------------------------------
# ECM invariants
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    bz=st.sampled_from([4, 8, 16, 32, 64]),
    by=st.sampled_from([4, 8, 16, 32, 64]),
    radius=st.sampled_from([1, 2, 4]),
)
def test_ecm_times_positive_and_composed(bz, by, radius):
    spec = star(3, radius)
    shape = (64, 64, 64)
    pred = predict(spec, shape, KernelPlan(block=(bz, by, 64)), CLX)
    assert pred.t_ol > 0 and pred.t_nol > 0
    assert all(t >= 0 for t in pred.t_data)
    assert pred.t_ecm >= pred.t_ol
    assert pred.t_ecm >= pred.t_nol


@settings(max_examples=30, deadline=None)
@given(
    radius=st.sampled_from([1, 2, 4]),
    scale_exp=st.integers(0, 4),
)
def test_bigger_caches_never_more_traffic(radius, scale_exp):
    spec = star(3, radius)
    shape = (64, 64, 64)
    plan = KernelPlan(block=(16, 16, 64))
    small = boundary_traffic(spec, shape, plan, CLX.scaled_caches(1 / 16))
    big = boundary_traffic(
        spec, shape, plan, CLX.scaled_caches(2.0**scale_exp / 16)
    )
    for s_elems, b_elems in zip(
        small.elements_per_lup, big.elements_per_lup
    ):
        assert b_elems <= s_elems + 1e-12


@settings(max_examples=30, deadline=None)
@given(radius=st.sampled_from([1, 2, 3, 4]))
def test_traffic_bounded_by_regime_extremes(radius):
    spec = star(3, radius)
    shape = (64, 64, 64)
    plan = KernelPlan(block=shape)
    rep = boundary_traffic(spec, shape, plan, CLX)
    lower = 1.0 + 2.0  # one read stream + store WA/WB
    upper = (4 * radius + 1) + 2.0
    for elems in rep.elements_per_lup:
        assert lower - 1e-9 <= elems <= upper + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    freq=st.floats(1.0, 4.0),
    bw=st.floats(50.0, 400.0),
)
def test_prediction_scales_with_machine_knobs(freq, bw):
    import dataclasses

    spec = get_stencil("3d7pt")
    shape = (128, 128, 128)
    base = dataclasses.replace(CLX, freq_ghz=freq, mem_bw_gbs=bw)
    faster_mem = dataclasses.replace(
        CLX, freq_ghz=freq, mem_bw_gbs=bw, mem_bw_core_gbs=CLX.mem_bw_core_gbs * 2
    )
    p_base = predict(spec, shape, KernelPlan(block=shape), base)
    p_fast = predict(spec, shape, KernelPlan(block=shape), faster_mem)
    assert p_fast.mlups >= p_base.mlups - 1e-9


# ----------------------------------------------------------------------
# Cache-hierarchy invariants
# ----------------------------------------------------------------------
def _tiny_machine(l1_lines: int, l2_lines: int) -> Machine:
    return Machine(
        name="prop",
        isa="AVX2",
        freq_ghz=2.0,
        cores=2,
        cores_per_llc=2,
        core=CoreModel(32, 2, 1, 1, 2, 1),
        caches=(
            CacheLevel("L1", l1_lines * 64, 64, min(2, l1_lines), 64.0),
            CacheLevel("L2", l2_lines * 64, 64, min(4, l2_lines), 32.0),
        ),
    )


@settings(max_examples=50, deadline=None)
@given(
    lines=st.lists(st.integers(0, 40), min_size=1, max_size=300),
    writes_seed=st.integers(0, 2**16),
)
def test_hierarchy_traffic_conservation(lines, writes_seed):
    """Outer traffic never exceeds inner traffic; misses bound loads."""
    rng = np.random.default_rng(writes_seed)
    writes = rng.random(len(lines)) < 0.3
    machine = _tiny_machine(4, 16)
    h = CacheHierarchy(machine)
    h.access_many(np.array(lines, dtype=np.int64), writes)
    # Loads across the outer boundary can never exceed the inner one.
    assert h.loads[1] <= h.loads[0]
    # L1 loads equal L1 misses; every miss came from a real access.
    assert h.loads[0] == h.levels[0].misses
    assert h.levels[0].hits + h.levels[0].misses == len(lines)
    # Write-backs only happen if something was written.
    if not writes.any():
        assert sum(h.writebacks) == 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 6), min_size=1, max_size=100))
def test_hierarchy_small_footprint_fits(lines):
    """A working set within L1 capacity has only compulsory misses."""
    machine = _tiny_machine(8, 32)
    h = CacheHierarchy(machine)
    arr = np.array(lines, dtype=np.int64)
    h.access_many(arr, np.zeros(len(lines), dtype=bool))
    distinct = len(set(lines))
    assert h.levels[0].misses == distinct


# ----------------------------------------------------------------------
# Codegen invariant: all plans compute identical results
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    bz=st.integers(1, 10),
    by=st.integers(1, 9),
    order=st.sampled_from([None, (1, 0, 2), (2, 0, 1)]),
    seed=st.integers(0, 1000),
)
def test_any_plan_same_result(bz, by, order, seed):
    spec = get_stencil("3d7pt")
    shape = (10, 9, 12)
    gs_a = GridSet(spec, shape)
    gs_b = GridSet(spec, shape)
    gs_a.randomize(seed)
    gs_b.randomize(seed)
    k_ref = compile_kernel(spec, shape, KernelPlan(block=shape))
    k_blk = compile_kernel(
        spec, shape, KernelPlan(block=(bz, by, 12), loop_order=order)
    )
    k_ref.run(gs_a)
    k_blk.run(gs_b)
    np.testing.assert_allclose(
        gs_a.output.interior, gs_b.output.interior, rtol=1e-13
    )

"""Expression-optimizer tests, including equivalence property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.optimize import (
    LetBound,
    eliminate_common_subexpressions,
    evaluate,
    evaluate_let,
    fold_constants,
    optimize,
)
from repro.stencil import expr as E
from repro.stencil import get_stencil


class TestConstantFolding:
    def test_literal_arithmetic(self):
        e = E.Const(2.0) * E.Const(3.0) + E.Const(1.0)
        assert fold_constants(e) == E.Const(7.0)

    def test_mul_one_identity(self):
        u = E.access("u")(0,)
        assert fold_constants(E.Const(1.0) * u) == u
        assert fold_constants(u * 1.0) == u

    def test_add_zero_identity(self):
        u = E.access("u")(0,)
        assert fold_constants(u + 0.0) == u
        assert fold_constants(0.0 + u) == u
        assert fold_constants(u - 0.0) == u

    def test_mul_zero_annihilates(self):
        u = E.access("u")(0,)
        assert fold_constants(u * 0.0) == E.Const(0.0)

    def test_division_by_constant_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            fold_constants(E.Const(1.0) / E.Const(0.0))

    def test_nested_folding(self):
        u = E.access("u")(0,)
        e = (E.Const(2.0) * E.Const(0.5)) * u + (E.Const(3.0) - E.Const(3.0))
        assert fold_constants(e) == u


class TestCSE:
    def test_shared_subtree_extracted(self):
        u = E.access("u")
        common = u(0,) + u(1,)
        e = common * common
        let = eliminate_common_subexpressions(e)
        assert let.n_temps == 1
        # Post-CSE: 1 add (binding) + 1 mul (root) = 2 ops vs 3 before.
        assert let.flops() == 2
        assert E.total_flops(e) == 3

    def test_no_sharing_no_temps(self):
        u = E.access("u")
        e = u(0,) + u(1,)
        let = eliminate_common_subexpressions(e)
        assert let.n_temps == 0
        assert let.flops() == 1

    def test_nested_sharing(self):
        u = E.access("u")
        inner = u(0,) * 2.0
        mid = inner + u(1,)
        e = mid * mid + inner
        let = eliminate_common_subexpressions(e)
        assert let.n_temps == 2

    def test_report(self):
        u = E.access("u")
        common = u(0,) + u(1,)
        _, let, report = optimize(common * common + 0.0)
        assert report.flops_saved >= 1
        assert report.temps == 1


# ----------------------------------------------------------------------
# Property: optimisation preserves evaluation semantics.
# ----------------------------------------------------------------------
def exprs():
    leaf = st.one_of(
        st.builds(
            E.GridAccess,
            st.sampled_from(["u", "v"]),
            st.tuples(st.integers(-1, 1)),
        ),
        st.builds(E.Const, st.floats(-2, 2, allow_nan=False).map(
            lambda x: round(x, 3)
        )),
    )
    return st.recursive(
        leaf,
        lambda ch: st.builds(E.BinOp, st.sampled_from(["+", "-", "*"]), ch, ch),
        max_leaves=16,
    )


def _env():
    return {
        f"{g}@{(o,)}": 0.1 + 0.7 * i
        for i, (g, o) in enumerate(
            (g, o) for g in ("u", "v") for o in (-1, 0, 1)
        )
    }


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_fold_preserves_value(e):
    env = _env()
    assert evaluate(fold_constants(e), env) == pytest.approx(
        evaluate(e, env), rel=1e-12, abs=1e-12
    )


@settings(max_examples=120, deadline=None)
@given(exprs())
def test_cse_preserves_value(e):
    env = _env()
    let = eliminate_common_subexpressions(e)
    assert evaluate_let(let, env) == pytest.approx(
        evaluate(e, env), rel=1e-12, abs=1e-12
    )


@settings(max_examples=80, deadline=None)
@given(exprs())
def test_optimize_never_increases_flops(e):
    _, let, report = optimize(e)
    assert report.flops_after <= report.flops_before
    assert isinstance(let, LetBound)


def test_suite_stencils_unchanged_semantics():
    # Real stencils: folding must not alter flop-relevant structure
    # unexpectedly (they are built without dead terms).
    for name in ("3d7pt", "3d27pt", "heat3d"):
        spec = get_stencil(name)
        folded, let, report = optimize(spec.expr)
        assert report.flops_after <= report.flops_before

"""Stream generation: coverage, ordering, and traffic plausibility."""

import numpy as np
import pytest

from repro.cachesim import measure_sweep, stream_stats, sweep_stream
from repro.codegen import KernelPlan
from repro.grid import GridSet
from repro.machine import generic_avx2
from repro.stencil import get_stencil


class TestStreamShape:
    def test_batch_count_matches_rows(self):
        spec = get_stencil("3d7pt")
        shape = (8, 8, 16)
        gs = GridSet(spec, shape)
        stats = stream_stats(spec, gs, KernelPlan(block=shape))
        assert stats["batches"] == 8 * 8  # one batch per (z, y) row

    def test_blocking_multiplies_rows(self):
        spec = get_stencil("3d7pt")
        shape = (8, 8, 16)
        gs = GridSet(spec, shape)
        stats = stream_stats(spec, gs, KernelPlan(block=(4, 4, 16)))
        assert stats["batches"] == 8 * 8  # same rows, different order

    def test_store_lines_marked_write(self):
        spec = get_stencil("3d7pt")
        shape = (4, 4, 16)
        gs = GridSet(spec, shape)
        n_writes = 0
        out_layout = gs[spec.output].layout
        lo = out_layout.base_addr // 64
        hi = (out_layout.base_addr + out_layout.size_bytes) // 64
        for lines, writes in sweep_stream(spec, gs, KernelPlan(block=shape)):
            written = lines[writes]
            n_writes += len(written)
            assert np.all((written >= lo) & (written <= hi))
        assert n_writes > 0

    def test_z_range_restricts(self):
        spec = get_stencil("3d7pt")
        shape = (8, 4, 16)
        gs = GridSet(spec, shape)
        batches = list(sweep_stream(spec, gs, KernelPlan(block=shape), z_range=(2, 5)))
        assert len(batches) == 3 * 4

    def test_all_input_lines_touched(self):
        spec = get_stencil("3d7pt")
        shape = (6, 6, 16)
        gs = GridSet(spec, shape)
        touched = set()
        for lines, _ in sweep_stream(spec, gs, KernelPlan(block=shape)):
            touched.update(lines.tolist())
        # Every interior line of the input grid must appear.
        u = gs["u"]
        halo = u.halo
        for z in range(6):
            for y in range(6):
                addr = u.layout.element_addr((z + halo, y + halo, halo))
                assert addr // 64 in touched


class TestTrafficPlausibility:
    def test_memory_traffic_at_least_compulsory(self):
        spec = get_stencil("3d7pt")
        shape = (16, 16, 32)
        gs = GridSet(spec, shape)
        m = generic_avx2()
        rep = measure_sweep(spec, gs, KernelPlan(block=shape), m, warmup=False)
        mem_bytes = rep.total_lines(len(rep.loads) - 1) * 64
        # At least one read of u and one write(+WA) of u_new.
        lups = 16 * 16 * 32
        assert mem_bytes >= 2 * lups * 8 * 0.9

    def test_warm_traffic_is_steady_state(self):
        # A warm sweep must reproduce exactly (steady state) and stay
        # near the code balance: 24 B/LUP plus modest halo overhead.
        # (Cold runs *under*-count: the final dirty lines never flush.)
        spec = get_stencil("3d7pt")
        shape = (12, 12, 32)
        gs = GridSet(spec, shape)
        m = generic_avx2()
        warm1 = measure_sweep(spec, gs, KernelPlan(block=shape), m, warmup=True)
        warm2 = measure_sweep(spec, gs, KernelPlan(block=shape), m, warmup=True)
        assert warm1.memory_bytes() == warm2.memory_bytes()
        b_per_lup = warm1.bytes_per_lup(len(warm1.loads) - 1)
        assert 24.0 * 0.95 <= b_per_lup <= 24.0 * 1.6

    def test_blocking_reduces_traffic_for_tall_grids(self):
        # With planes larger than cache, y-blocking must cut L2 misses.
        spec = get_stencil("3d13pt")
        shape = (12, 48, 64)
        gs = GridSet(spec, shape)
        m = generic_avx2()
        unblocked = measure_sweep(spec, gs, KernelPlan(block=shape), m)
        blocked = measure_sweep(spec, gs, KernelPlan(block=(12, 8, 64)), m)
        assert blocked.memory_bytes() < unblocked.memory_bytes()

    def test_report_as_dict_keys(self):
        spec = get_stencil("3d7pt")
        shape = (8, 8, 16)
        gs = GridSet(spec, shape)
        rep = measure_sweep(spec, gs, KernelPlan(block=shape), generic_avx2())
        d = rep.as_dict()
        assert "L1-L2 lines" in d and "lups" in d

"""Performance simulator tests (single- and multicore)."""

import pytest

from repro.codegen import KernelPlan
from repro.grid import GridSet
from repro.perf import simulate_kernel, simulate_scaling
from repro.stencil import get_stencil

SHAPE = (16, 16, 32)


class TestSingleCore:
    def test_deterministic_with_seed(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, SHAPE)
        a = simulate_kernel(spec, gs, KernelPlan(block=SHAPE), generic, seed=1)
        b = simulate_kernel(spec, gs, KernelPlan(block=SHAPE), generic, seed=1)
        assert a.cycles_per_lup == b.cycles_per_lup

    def test_noise_varies_with_seed(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, SHAPE)
        a = simulate_kernel(spec, gs, KernelPlan(block=SHAPE), generic, seed=1)
        b = simulate_kernel(spec, gs, KernelPlan(block=SHAPE), generic, seed=2)
        assert a.cycles_per_lup != b.cycles_per_lup
        # ... but only slightly (2% sigma).
        assert abs(a.cycles_per_lup - b.cycles_per_lup) / a.cycles_per_lup < 0.2

    def test_mlups_and_runtime_consistent(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, SHAPE)
        m = simulate_kernel(spec, gs, KernelPlan(block=SHAPE), generic)
        lups = 16 * 16 * 32
        t = m.runtime_seconds(lups)
        assert t == pytest.approx(
            lups / (m.mlups * 1e6), rel=1e-9
        )

    def test_heavier_stencil_slower(self, generic):
        gs7 = GridSet(get_stencil("3d7pt"), SHAPE)
        gs27 = GridSet(get_stencil("3d27pt"), SHAPE)
        m7 = simulate_kernel(get_stencil("3d7pt"), gs7, KernelPlan(block=SHAPE), generic)
        m27 = simulate_kernel(get_stencil("3d27pt"), gs27, KernelPlan(block=SHAPE), generic)
        assert m27.cycles_per_lup > m7.cycles_per_lup


class TestScaling:
    def test_aggregate_performance_increases(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (16, 8, 32))
        meas = simulate_scaling(
            spec, gs, KernelPlan(block=(16, 8, 32)), generic, [1, 2, 4]
        )
        mlups = [m.mlups for m in meas]
        assert mlups[1] > mlups[0]
        assert mlups[2] > mlups[1]

    def test_scaling_sublinear_when_bandwidth_bound(self, generic):
        # Planes must exceed the caches even per-slab, otherwise the
        # decomposition creates a (real) superlinear cache windfall.
        spec = get_stencil("3d7pt")
        shape = (16, 32, 64)
        gs = GridSet(spec, shape)
        meas = simulate_scaling(
            spec, gs, KernelPlan(block=shape), generic, [1, 4]
        )
        # generic: socket 40 GB/s vs core 12 GB/s -> 4 cores contend.
        assert meas[1].mlups < 4.05 * meas[0].mlups

    def test_invalid_core_count(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, SHAPE)
        with pytest.raises(ValueError):
            simulate_scaling(spec, gs, KernelPlan(block=SHAPE), generic, [0])
        with pytest.raises(ValueError):
            simulate_scaling(
                spec, gs, KernelPlan(block=SHAPE), generic,
                [generic.cores + 1],
            )

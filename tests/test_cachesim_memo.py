"""Traffic memoization: determinism, key sensitivity, disk persistence."""

import pytest

from repro.cachesim import (
    TrafficCache,
    default_traffic_cache,
    measure_sweep,
    resolve_traffic_cache,
    set_default_traffic_cache,
    sweep_key,
)
from repro.codegen.plan import KernelPlan
from repro.grid import GridSet
from repro.machine import cascade_lake_sp, rome
from repro.perf.simulate import simulate_kernel
from repro.stencil import get_stencil

SHAPE = (16, 16, 32)


@pytest.fixture
def setting():
    machine = cascade_lake_sp().scaled_caches(1 / 16)
    spec = get_stencil("3d7pt")
    grids = GridSet(spec, SHAPE)
    plan = KernelPlan(block=(8, 8, 32))
    return spec, grids, plan, machine


class TestTrafficCache:
    def test_hit_returns_equal_fresh_report(self, setting):
        spec, grids, plan, machine = setting
        cache = TrafficCache()
        r1 = measure_sweep(spec, grids, plan, machine, traffic_cache=cache)
        r2 = measure_sweep(spec, grids, plan, machine, traffic_cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert r1.as_dict() == r2.as_dict()
        assert r1 is not r2  # fresh copy, safe to mutate

    def test_none_disables_memoization(self, setting):
        spec, grids, plan, machine = setting
        cache = TrafficCache()
        set_default_traffic_cache(cache)
        try:
            measure_sweep(spec, grids, plan, machine, traffic_cache=None)
        finally:
            set_default_traffic_cache(None)
        assert len(cache) == 0

    def test_default_resolution(self):
        set_default_traffic_cache(None)
        cache = default_traffic_cache()
        assert resolve_traffic_cache("default") is cache
        assert resolve_traffic_cache(None) is None
        own = TrafficCache()
        assert resolve_traffic_cache(own) is own
        with pytest.raises(TypeError):
            resolve_traffic_cache("yes please")
        set_default_traffic_cache(None)

    def test_disk_roundtrip(self, setting, tmp_path):
        spec, grids, plan, machine = setting
        c1 = TrafficCache(disk_dir=tmp_path)
        r1 = measure_sweep(spec, grids, plan, machine, traffic_cache=c1)
        # A brand-new cache over the same directory serves the hit.
        c2 = TrafficCache(disk_dir=tmp_path)
        r2 = measure_sweep(spec, grids, plan, machine, traffic_cache=c2)
        assert c2.hits == 1 and c2.misses == 0
        assert r1.as_dict() == r2.as_dict()


class TestKeySensitivity:
    def test_key_depends_on_inputs(self, setting):
        spec, grids, plan, machine = setting
        base = sweep_key(spec, grids, plan, machine, True)
        assert sweep_key(spec, grids, plan, machine, False) != base
        other_plan = KernelPlan(block=(4, 8, 32))
        assert sweep_key(spec, grids, other_plan, machine, True) != base
        other_machine = rome().scaled_caches(1 / 16)
        assert sweep_key(spec, grids, plan, other_machine, True) != base
        spec2 = get_stencil("3d27pt")
        grids2 = GridSet(spec2, SHAPE)
        assert sweep_key(spec2, grids2, plan, machine, True) != base

    def test_key_ignores_clipping_no_ops(self, setting):
        spec, grids, plan, machine = setting
        huge = KernelPlan(block=(999, 999, 999))
        whole = KernelPlan(block=SHAPE)
        assert sweep_key(spec, grids, huge, machine, True) == sweep_key(
            spec, grids, whole, machine, True
        )


class TestSimulateDeterminism:
    def test_same_seed_same_measurement(self, setting):
        spec, grids, plan, machine = setting
        cache = TrafficCache()
        m1 = simulate_kernel(
            spec, grids, plan, machine, seed=3, traffic_cache=cache
        )
        m2 = simulate_kernel(
            spec, grids, plan, machine, seed=3, traffic_cache=cache
        )
        assert m1.cycles_per_lup == m2.cycles_per_lup
        assert cache.hits >= 1

    def test_noise_applied_after_lookup(self, setting):
        spec, grids, plan, machine = setting
        cache = TrafficCache()
        m1 = simulate_kernel(
            spec, grids, plan, machine, seed=3, traffic_cache=cache
        )
        m2 = simulate_kernel(
            spec, grids, plan, machine, seed=4, traffic_cache=cache
        )
        assert m1.traffic.as_dict() == m2.traffic.as_dict()
        assert m1.cycles_per_lup != m2.cycles_per_lup

    def test_cached_equals_uncached(self, setting):
        spec, grids, plan, machine = setting
        cache = TrafficCache()
        simulate_kernel(spec, grids, plan, machine, seed=5, traffic_cache=cache)
        warm = simulate_kernel(
            spec, grids, plan, machine, seed=5, traffic_cache=cache
        )
        cold = simulate_kernel(
            spec, grids, plan, machine, seed=5, traffic_cache=None
        )
        assert warm.cycles_per_lup == cold.cycles_per_lup
        assert warm.traffic.as_dict() == cold.traffic.as_dict()


class TestConcurrentDiskPuts:
    def test_parallel_writers_publish_atomically(self, setting, tmp_path):
        """Racing puts over one disk dir: no stray temps, no torn JSON."""
        import json
        import threading

        spec, grids, plan, machine = setting
        source = TrafficCache()
        report = measure_sweep(
            spec, grids, plan, machine, traffic_cache=source
        )
        key = sweep_key(spec, grids, plan, machine, True)
        caches = [TrafficCache(disk_dir=tmp_path) for _ in range(8)]
        barrier = threading.Barrier(len(caches))

        def hammer(cache):
            barrier.wait()
            for i in range(25):
                cache.put(key, report)
                cache.put(f"{key}-{i % 5}", report)

        threads = [
            threading.Thread(target=hammer, args=(c,)) for c in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []
        for path in tmp_path.iterdir():
            json.loads(path.read_text())  # every published file is whole
        fresh = TrafficCache(disk_dir=tmp_path)
        assert fresh.get(key).as_dict() == report.as_dict()


class TestDiskCorruption:
    """Bad disk entries: quarantined and recomputed, never trusted."""

    def _entry_files(self, tmp_path):
        return [
            p for p in tmp_path.iterdir() if ".corrupt." not in p.name
        ]

    @pytest.mark.parametrize(
        "payload",
        [
            b"\x01\xffgarbage bytes",
            b'{"torn": ',
            b'{"v": 1, "sha256": "doctored", "payload": {}}',
            b'{"valid_json": "but not a traffic report"}',
        ],
    )
    def test_bad_entry_quarantined_and_recomputed(
        self, setting, tmp_path, payload
    ):
        spec, grids, plan, machine = setting
        c1 = TrafficCache(disk_dir=tmp_path)
        clean = measure_sweep(spec, grids, plan, machine, traffic_cache=c1)
        (entry,) = self._entry_files(tmp_path)
        entry.write_bytes(payload)

        c2 = TrafficCache(disk_dir=tmp_path)
        again = measure_sweep(spec, grids, plan, machine, traffic_cache=c2)
        assert c2.hits == 0 and c2.misses == 1  # corrupt file ≠ a hit
        assert again.as_dict() == clean.as_dict()
        quarantined = list(tmp_path.glob("*.corrupt.*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == payload
        # The recompute republished a good entry over the bad one.
        c3 = TrafficCache(disk_dir=tmp_path)
        measure_sweep(spec, grids, plan, machine, traffic_cache=c3)
        assert c3.hits == 1

    def test_injected_read_fault_is_miss_without_quarantine(
        self, setting, tmp_path
    ):
        from repro import faults

        spec, grids, plan, machine = setting
        c1 = TrafficCache(disk_dir=tmp_path)
        measure_sweep(spec, grids, plan, machine, traffic_cache=c1)

        c2 = TrafficCache(disk_dir=tmp_path)
        with faults.injected("memo.read:every=1:mode=oserror"):
            measure_sweep(spec, grids, plan, machine, traffic_cache=c2)
        assert c2.misses == 1
        # Flaky I/O is not corruption: the (fine) file must survive.
        assert not list(tmp_path.glob("*.corrupt.*"))
        c3 = TrafficCache(disk_dir=tmp_path)
        measure_sweep(spec, grids, plan, machine, traffic_cache=c3)
        assert c3.hits == 1

    def test_injected_write_fault_keeps_running(self, setting, tmp_path):
        from repro import faults

        spec, grids, plan, machine = setting
        c1 = TrafficCache(disk_dir=tmp_path)
        with faults.injected("memo.write:every=1:mode=oserror"):
            res = measure_sweep(
                spec, grids, plan, machine, traffic_cache=c1
            )
        assert res is not None  # persistence failure never fails the run
        assert not self._entry_files(tmp_path)

    def test_disk_entries_are_checksummed_envelopes(self, setting, tmp_path):
        import json

        from repro.util import crashsafe

        spec, grids, plan, machine = setting
        cache = TrafficCache(disk_dir=tmp_path)
        measure_sweep(spec, grids, plan, machine, traffic_cache=cache)
        (entry,) = self._entry_files(tmp_path)
        data = json.loads(entry.read_text())
        assert crashsafe.is_envelope(data)
        assert data["sha256"] == crashsafe.checksum(data["payload"])

    def test_legacy_plain_entry_still_served(self, setting, tmp_path):
        import json

        from repro.util import crashsafe

        spec, grids, plan, machine = setting
        cache = TrafficCache(disk_dir=tmp_path)
        measure_sweep(spec, grids, plan, machine, traffic_cache=cache)
        (entry,) = self._entry_files(tmp_path)
        data = json.loads(entry.read_text())
        entry.write_text(json.dumps(crashsafe.unwrap(data)))  # pre-envelope

        c2 = TrafficCache(disk_dir=tmp_path)
        measure_sweep(spec, grids, plan, machine, traffic_cache=c2)
        assert c2.hits == 1 and c2.misses == 0


class TestConcurrentAccess:
    def test_threaded_get_put_keeps_ledger_consistent(self, setting):
        """Regression: unsynchronized get/put used to race on the
        memory dict and drop ledger counts under thread-pool tuners."""
        import threading

        spec, grids, plan, machine = setting
        cache = TrafficCache()
        report = measure_sweep(
            spec, grids, plan, machine, traffic_cache=cache
        )
        cache.clear()

        n_threads, n_iters = 8, 50
        errors = []

        def hammer(tid):
            try:
                for i in range(n_iters):
                    key = f"k{tid}-{i}"
                    assert cache.get(key) is None  # guaranteed miss
                    cache.put(key, report)
                    got = cache.get(key)  # guaranteed hit
                    assert got is not None
                    assert got.as_dict() == report.as_dict()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        total = n_threads * n_iters
        # Every lookup counted exactly once: one miss + one hit per
        # iteration, nothing lost to racing increments.
        assert cache.hits == total
        assert cache.misses == total
        assert len(cache) == total
        mem_hits, mem_misses, disk_hits, disk_misses = cache.tier_counts()
        assert mem_hits == total and mem_misses == total
        assert disk_hits == 0 and disk_misses == 0

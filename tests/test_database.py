"""Tuning-database tests."""

import json

import pytest

from repro.machine import cascade_lake_sp
from repro.ode import PIRK, radau_iia
from repro.offsite import OffsiteTuner, TuningDatabase, TuningKey, TuningRecord


def make_record(grid=(16, 16, 32), machine="CLX") -> TuningRecord:
    return TuningRecord(
        key=TuningKey("PIRK[RadauIIA(7), m=3]", "heat3d", machine, grid),
        best_variant="fused_lc",
        block=(16, 8, 32),
        predicted_s_per_step=1.5e-3,
        ranking=["fused_lc", "scatter", "split", "gather"],
    )


class TestKey:
    def test_round_trip(self):
        key = TuningKey("m", "p", "clx", (16, 16, 32))
        assert TuningKey.from_str(key.to_str()) == key

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            TuningKey.from_str("just-a-string")


class TestDatabase:
    def test_put_get(self):
        db = TuningDatabase()
        rec = make_record()
        db.put(rec)
        assert db.get(rec.key) == rec
        assert len(db) == 1

    def test_put_replaces(self):
        db = TuningDatabase()
        rec = make_record()
        db.put(rec)
        rec2 = make_record()
        db.put(rec2)
        assert len(db) == 1

    def test_lookup_falls_back_to_closest_grid(self):
        db = TuningDatabase()
        db.put(make_record(grid=(16, 16, 32)))
        db.put(make_record(grid=(64, 64, 64)))
        hit = db.lookup(
            TuningKey("PIRK[RadauIIA(7), m=3]", "heat3d", "CLX", (20, 20, 32))
        )
        assert hit is not None
        assert hit.key.grid == (16, 16, 32)

    def test_lookup_respects_machine(self):
        db = TuningDatabase()
        db.put(make_record(machine="CLX"))
        miss = db.lookup(
            TuningKey("PIRK[RadauIIA(7), m=3]", "heat3d", "Rome", (16, 16, 32))
        )
        assert miss is None

    def test_json_round_trip(self, tmp_path):
        db = TuningDatabase()
        db.put(make_record())
        db.put(make_record(grid=(64, 64, 64)))
        path = tmp_path / "db.json"
        db.save(path)
        loaded = TuningDatabase.load(path)
        assert len(loaded) == 2
        assert loaded.get(make_record().key) == make_record()

    def test_record_report_integration(self):
        machine = cascade_lake_sp().scaled_caches(1 / 32)
        method = PIRK(radau_iia(4), 2)
        grid = (12, 12, 16)
        report = OffsiteTuner(machine).tune(method, grid, validate=False)
        db = TuningDatabase()
        rec = db.record_report(report, grid, block=grid)
        assert rec.best_variant in {"split", "fused_lc", "scatter", "gather"}
        assert len(rec.ranking) == 4
        assert db.lookup(rec.key) == rec


class TestCrashSafety:
    """load_or_empty must survive any bytes on disk (service warm tier)."""

    def test_save_writes_checksummed_envelope(self, tmp_path):
        from repro.util import crashsafe

        db = TuningDatabase()
        db.put(make_record())
        path = tmp_path / "db.json"
        db.save(path)
        data = json.loads(path.read_text())
        assert crashsafe.is_envelope(data)
        assert data["sha256"] == crashsafe.checksum(data["payload"])

    def test_legacy_plain_list_still_loads(self, tmp_path):
        db = TuningDatabase()
        db.put(make_record())
        path = tmp_path / "db.json"
        path.write_text(json.dumps([r.to_json() for r in db.records()]))
        loaded = TuningDatabase.load(path)
        assert len(loaded) == 1

    def test_load_or_empty_missing_file(self, tmp_path):
        db = TuningDatabase.load_or_empty(tmp_path / "nope.json")
        assert len(db) == 0

    @pytest.mark.parametrize(
        "payload",
        [
            b"\x00\xff\xfenot json",  # garbage bytes
            b'{"truncated": ',  # torn write
            b'"a bare string"',  # wrong JSON shape
            b'{"v": 1, "sha256": "doctored", "payload": []}',  # bad sum
            b'[{"not": "a record"}]',  # malformed record list
        ],
    )
    def test_load_or_empty_quarantines_bad_files(self, tmp_path, payload):
        path = tmp_path / "db.json"
        path.write_bytes(payload)
        db = TuningDatabase.load_or_empty(path)
        assert len(db) == 0
        assert not path.exists()  # renamed aside, not deleted
        quarantined = list(tmp_path.glob("db.json.corrupt.*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == payload  # evidence kept

    def test_save_load_round_trip_after_recovery(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_bytes(b"garbage")
        db = TuningDatabase.load_or_empty(path)
        db.put(make_record())
        db.save(path)
        assert len(TuningDatabase.load_or_empty(path)) == 1

"""Codegen correctness: every plan must compute the reference result."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import KernelPlan, compile_kernel
from repro.codegen.c_backend import check_wellformed
from repro.codegen.plan import candidate_plans, unblocked_plan
from repro.grid import GridSet
from repro.machine import generic_avx2
from repro.stencil import get_stencil

SHAPE = (12, 10, 16)


def _check_plan(spec_name: str, plan: KernelPlan, shape=SHAPE) -> None:
    spec = get_stencil(spec_name)
    gs = GridSet(spec, shape)
    gs.randomize(11)
    kernel = compile_kernel(spec, shape, plan)
    ref = kernel.reference_sweep(gs)
    kernel.run(gs)
    np.testing.assert_allclose(gs.output.interior, ref, rtol=1e-13)


class TestCorrectness:
    @pytest.mark.parametrize("name", ["3d7pt", "3d27pt", "3d25pt", "heat3d", "3dvarcoef"])
    def test_unblocked(self, name):
        _check_plan(name, unblocked_plan(SHAPE))

    @pytest.mark.parametrize("block", [(4, 4, 16), (8, 8, 16), (5, 3, 16), (12, 10, 7)])
    def test_blocked(self, block):
        _check_plan("3d7pt", KernelPlan(block=block))

    @pytest.mark.parametrize("order", [(0, 1, 2), (1, 0, 2), (2, 1, 0)])
    def test_loop_orders(self, order):
        _check_plan("3d27pt", KernelPlan(block=(4, 4, 8), loop_order=order))

    def test_2d(self):
        spec = get_stencil("2d5pt")
        shape = (20, 24)
        gs = GridSet(spec, shape)
        gs.randomize(2)
        kernel = compile_kernel(spec, shape, KernelPlan(block=(8, 24)))
        ref = kernel.reference_sweep(gs)
        kernel.run(gs)
        np.testing.assert_allclose(gs.output.interior, ref, rtol=1e-13)

    def test_param_override(self):
        spec = get_stencil("heat3d")
        gs = GridSet(spec, SHAPE)
        gs.randomize(5)
        kernel = compile_kernel(spec, SHAPE, unblocked_plan(SHAPE))
        ref = kernel.reference_sweep(gs, params={"a": 0.33})
        kernel.run(gs, params={"a": 0.33})
        np.testing.assert_allclose(gs.output.interior, ref, rtol=1e-13)

    def test_timestep_swapping(self):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, SHAPE)
        gs.randomize(7)
        kernel = compile_kernel(spec, SHAPE, unblocked_plan(SHAPE))
        before = gs["u"].interior.copy()
        kernel.run_timesteps(gs, 2)
        # Two sweeps + two swaps: result lives in "u" and must differ.
        assert not np.allclose(gs["u"].interior, before)

    @settings(max_examples=20, deadline=None)
    @given(
        bz=st.integers(1, 12),
        by=st.integers(1, 10),
        bx=st.integers(1, 16),
    )
    def test_random_blocks_property(self, bz, by, bx):
        _check_plan("3d7pt", KernelPlan(block=(bz, by, bx)))


class TestPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            KernelPlan(block=(0, 4, 4))
        with pytest.raises(ValueError):
            KernelPlan(block=(4, 4), loop_order=(0, 0))
        with pytest.raises(ValueError):
            KernelPlan(block=(4,), threads=0)
        with pytest.raises(ValueError):
            KernelPlan(block=(4,), wavefront=0)

    def test_clipped(self):
        plan = KernelPlan(block=(64, 64, 64)).clipped((16, 16, 16))
        assert plan.block == (16, 16, 16)

    def test_candidates_cover_full_grid(self):
        spec = get_stencil("3d7pt")
        m = generic_avx2()
        plans = list(candidate_plans(spec, (32, 32, 64), m))
        assert any(p.block == (32, 32, 64) for p in plans)
        # x axis never blocked.
        assert all(p.block[-1] == 64 for p in plans)

    def test_describe(self):
        label = KernelPlan(block=(8, 8, 64), wavefront=4).describe()
        assert "8x8x64" in label and "wf=4" in label


class TestArtifacts:
    def test_c_source_wellformed(self):
        spec = get_stencil("3d27pt")
        kernel = compile_kernel(spec, SHAPE, KernelPlan(block=(4, 4, 16)))
        check_wellformed(kernel.c_source)
        assert f"void {spec.name}_sweep" in kernel.c_source
        assert "restrict" in kernel.c_source

    def test_c_source_mentions_all_grids(self):
        spec = get_stencil("3dvarcoef")
        kernel = compile_kernel(spec, SHAPE, KernelPlan(block=SHAPE))
        for grid in spec.grids:
            assert f"double *restrict {grid}_data" in kernel.c_source

    def test_py_source_attached(self):
        spec = get_stencil("3d7pt")
        kernel = compile_kernel(spec, SHAPE, KernelPlan(block=SHAPE))
        assert "def kernel" in kernel.py_source

    def test_check_wellformed_catches_imbalance(self):
        with pytest.raises(ValueError):
            check_wellformed("void f() { if (x) { }")

    def test_wavefront_plan_rejected_by_sweep_backend(self):
        spec = get_stencil("3d7pt")
        with pytest.raises(ValueError):
            compile_kernel(spec, SHAPE, KernelPlan(block=SHAPE, wavefront=2))

    def test_rank_mismatch_rejected(self):
        spec = get_stencil("3d7pt")
        with pytest.raises(ValueError):
            compile_kernel(spec, (8, 8), KernelPlan(block=(8, 8)))

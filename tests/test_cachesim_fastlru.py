"""Vectorized replay engine: bit-identical to the scalar oracle."""

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy, measure_sweep, sweep_stream
from repro.codegen.plan import KernelPlan
from repro.grid import GridSet
from repro.machine import CacheLevel, CoreModel, Machine
from repro.machine.presets import cascade_lake_sp, rome
from repro.stencil import get_stencil


def small_machine(victim_l3: bool = False, assoc: int = 4) -> Machine:
    """Small but vector-eligible hierarchy (L1 has 32 sets)."""
    caches = [
        CacheLevel("L1", 32 * 2 * 64, 64, 2, 64.0),
        CacheLevel("L2", 64 * assoc * 64, 64, assoc, 32.0),
    ]
    if victim_l3:
        caches.append(
            CacheLevel("L3", 128 * assoc * 64, 64, assoc, 16.0, victim=True)
        )
    return Machine(
        name="small",
        isa="AVX2",
        freq_ghz=2.0,
        cores=2,
        cores_per_llc=2,
        core=CoreModel(32, 2, 1, 1, 2, 1),
        caches=tuple(caches),
        mem_bw_gbs=20.0,
        mem_bw_core_gbs=10.0,
    )


def replay(machine: Machine, engine: str, batches) -> CacheHierarchy:
    hier = CacheHierarchy(machine, engine=engine)
    for lines, writes in batches:
        hier.access_many(lines, writes)
    return hier


def random_batches(seed: int, n_batches: int = 20, span: int = 600):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_batches):
        n = int(rng.integers(1, 400))
        lines = rng.integers(0, span, size=n).astype(np.int64)
        writes = rng.random(n) < 0.3
        out.append((lines, writes))
    return out


def assert_same_state(a: CacheHierarchy, b: CacheHierarchy) -> None:
    assert a.loads == b.loads
    assert a.writebacks == b.writebacks
    for la, lb in zip(a.levels, b.levels):
        assert la.hits == lb.hits and la.misses == lb.misses
        assert la.lru_snapshot() == lb.lru_snapshot()


class TestEngineSelection:
    def test_auto_is_scalar_for_tiny_sets(self):
        caches = (CacheLevel("L1", 4 * 64, 64, 2, 64.0),)
        m = Machine(
            "t", "AVX2", 2.0, 1, 1, CoreModel(32, 2, 1, 1, 2, 1),
            caches, 20.0, 10.0,
        )
        assert CacheHierarchy(m).engine == "scalar"

    def test_auto_is_vector_for_real_presets(self):
        assert CacheHierarchy(cascade_lake_sp()).engine == "vector"
        assert CacheHierarchy(rome()).engine == "vector"

    def test_explicit_engines(self):
        m = small_machine()
        assert CacheHierarchy(m, engine="scalar").engine == "scalar"
        assert CacheHierarchy(m, engine="vector").engine == "vector"
        with pytest.raises(ValueError):
            CacheHierarchy(m, engine="simd")

    def test_single_level_victim_rejects_vector(self):
        caches = (CacheLevel("V", 32 * 2 * 64, 64, 2, 64.0, victim=True),)
        m = Machine(
            "v", "AVX2", 2.0, 1, 1, CoreModel(32, 2, 1, 1, 2, 1),
            caches, 20.0, 10.0,
        )
        assert CacheHierarchy(m).engine == "scalar"
        with pytest.raises(ValueError):
            CacheHierarchy(m, engine="vector")


class TestRandomStreamEquivalence:
    @pytest.mark.parametrize("victim", [False, True])
    @pytest.mark.parametrize("assoc", [1, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counters_and_state_match(self, victim, assoc, seed):
        m = small_machine(victim_l3=victim, assoc=assoc)
        batches = random_batches(seed)
        a = replay(m, "scalar", batches)
        b = replay(m, "vector", batches)
        assert_same_state(a, b)

    def test_single_element_batches(self):
        m = small_machine(victim_l3=True)
        batches = [(b[:1], w[:1]) for b, w in random_batches(7, 40)]
        assert_same_state(replay(m, "scalar", batches),
                          replay(m, "vector", batches))


class TestSweepEquivalence:
    @pytest.mark.parametrize("preset", [cascade_lake_sp, rome])
    @pytest.mark.parametrize("stencil", ["3d7pt", "3d25pt"])
    def test_reports_bit_identical(self, preset, stencil):
        machine = preset().scaled_caches(1 / 8)
        spec = get_stencil(stencil)
        grids = GridSet(spec, (20, 20, 40))
        plan = KernelPlan(block=(10, 10, 40))
        r_scalar = measure_sweep(
            spec, grids, plan, machine, engine="scalar", traffic_cache=None
        )
        r_vector = measure_sweep(
            spec, grids, plan, machine, engine="vector", traffic_cache=None
        )
        assert r_scalar.as_dict() == r_vector.as_dict()

    def test_2d_stencil_matches(self):
        machine = cascade_lake_sp().scaled_caches(1 / 8)
        spec = get_stencil("2d5pt")
        grids = GridSet(spec, (48, 96))
        plan = KernelPlan(block=(16, 96))
        r_scalar = measure_sweep(
            spec, grids, plan, machine, engine="scalar", traffic_cache=None
        )
        r_vector = measure_sweep(
            spec, grids, plan, machine, engine="vector", traffic_cache=None
        )
        assert r_scalar.as_dict() == r_vector.as_dict()


class TestBlockBatchStream:
    def test_block_batches_concatenate_row_batches(self):
        spec = get_stencil("3d7pt")
        grids = GridSet(spec, (12, 12, 24))
        plan = KernelPlan(block=(6, 6, 24))
        rows = list(sweep_stream(spec, grids, plan, batch="row"))
        blocks = list(sweep_stream(spec, grids, plan, batch="block"))
        assert len(blocks) < len(rows)
        row_lines = np.concatenate([l for l, _ in rows])
        row_writes = np.concatenate([w for _, w in rows])
        blk_lines = np.concatenate([l for l, _ in blocks])
        blk_writes = np.concatenate([w for _, w in blocks])
        np.testing.assert_array_equal(row_lines, blk_lines)
        np.testing.assert_array_equal(row_writes, blk_writes)

"""Multi-equation solution (stencil bundle) tests."""

import numpy as np
import pytest

from repro.codegen import KernelPlan, compile_solution
from repro.stencil import Solution, get_stencil, heat, rename_grids, star
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


def two_stage_heat() -> Solution:
    """tmp = heat(u); u_out = heat(tmp) — a linear chain."""
    s1 = rename_grids(heat(3), {"u_new": "tmp"}, name="stage1")
    s2 = rename_grids(heat(3), {"u": "tmp", "u_new": "u_out"}, name="stage2")
    return Solution("double_heat", [s2, s1])  # listed out of order


class TestRename:
    def test_rename_reads_and_output(self):
        spec = rename_grids(heat(2), {"u": "a", "u_new": "b"})
        assert spec.output == "b"
        assert spec.reads == ("a",)

    def test_partial_rename(self):
        spec = rename_grids(heat(2), {"u_new": "out2"})
        assert spec.output == "out2"
        assert spec.reads == ("u",)

    def test_collision_rejected(self):
        with pytest.raises(ValueError):
            rename_grids(heat(2), {"u_new": "u"})

    def test_params_preserved(self):
        spec = rename_grids(heat(2), {"u": "a"})
        assert spec.params == {"a": 0.1}


class TestSolutionStructure:
    def test_schedule_orders_dependencies(self):
        sol = two_stage_heat()
        names = [eq.name for eq in sol.schedule()]
        assert names == ["stage1", "stage2"]

    def test_fields_inputs_outputs(self):
        sol = two_stage_heat()
        assert sol.inputs == ("u",)
        assert set(sol.outputs) == {"tmp", "u_out"}
        assert set(sol.fields) == {"u", "tmp", "u_out"}

    def test_critical_path(self):
        sol = two_stage_heat()
        assert sol.critical_path_length() == 2

    def test_independent_equations_any_order(self):
        a = rename_grids(star(3, 1), {"u_new": "out_a"}, name="eq_a")
        b = rename_grids(star(3, 1), {"u_new": "out_b"}, name="eq_b")
        sol = Solution("pair", [a, b])
        assert sol.critical_path_length() == 1
        assert len(sol.schedule()) == 2

    def test_duplicate_output_rejected(self):
        a = rename_grids(star(3, 1), {}, name="eq_a")
        b = rename_grids(star(3, 1), {}, name="eq_b")
        with pytest.raises(ValueError):
            Solution("clash", [a, b])

    def test_cycle_rejected(self):
        u, v = E.access("u"), E.access("v")
        eq1 = StencilSpec("eq1", "v", u(0, 0, 0) * 2.0)
        eq2 = StencilSpec("eq2", "u", v(0, 0, 0) * 2.0)
        sol = Solution("loop", [eq1, eq2])
        with pytest.raises(ValueError):
            sol.schedule()

    def test_describe(self):
        row = two_stage_heat().describe()
        assert row["equations"] == 2
        assert row["critical path"] == 2


class TestCompiledSolution:
    def test_execution_matches_reference(self):
        sol = two_stage_heat()
        cs = compile_solution(sol, (10, 10, 12))
        run_fields = cs.allocate(seed=5)
        ref_fields = cs.allocate(seed=5)
        ref = cs.reference_run(ref_fields)
        cs.run(run_fields)
        for name, expected in ref.items():
            np.testing.assert_allclose(
                run_fields[name].interior, expected, rtol=1e-13
            )

    def test_blocked_plan_matches(self):
        sol = two_stage_heat()
        cs = compile_solution(sol, (12, 8, 16), KernelPlan(block=(4, 4, 16)))
        run_fields = cs.allocate(seed=2)
        ref_fields = cs.allocate(seed=2)
        ref = cs.reference_run(ref_fields)
        cs.run(run_fields)
        np.testing.assert_allclose(
            run_fields["u_out"].interior, ref["u_out"], rtol=1e-13
        )

    def test_mixed_radius_shares_halo(self):
        s1 = rename_grids(star(3, 2), {"u_new": "mid"}, name="wide")
        s2 = rename_grids(
            star(3, 1), {"u": "mid", "u_new": "out"}, name="narrow"
        )
        sol = Solution("mixed", [s1, s2])
        cs = compile_solution(sol, (10, 10, 12))
        assert cs.halo == 2
        fields = cs.allocate(seed=1)
        cs.run(fields)  # must not raise / read out of bounds

    def test_param_override(self):
        sol = two_stage_heat()
        cs = compile_solution(sol, (8, 8, 8))
        f1 = cs.allocate(seed=1)
        f2 = cs.allocate(seed=1)
        cs.run(f1, params={"a": 0.1})
        cs.run(f2, params={"a": 0.4})
        assert not np.allclose(f1["u_out"].interior, f2["u_out"].interior)

    def test_c_sources_per_equation(self):
        cs = compile_solution(two_stage_heat(), (8, 8, 8))
        assert set(cs.c_sources) == {"stage1", "stage2"}

    def test_empty_solution_rejected(self):
        with pytest.raises(ValueError):
            compile_solution(Solution("empty"), (8, 8, 8))

"""Round-trip tests for the canonical engine serializers.

Two families of guarantees:

* property-style round trips — every engine result dataclass survives
  ``from_dict(to_dict(x)) == x`` unchanged (the dataclasses are frozen,
  so equality is structural), across a randomized sample of field
  values;
* service parity — the service job functions produce bytes identical
  to serializing a direct engine call, modulo the documented volatile
  fields (wall-clock timings, process-global traffic-memo ledgers).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.cachesim.memo import default_traffic_cache
from repro.engine import (
    CacheLedger,
    Engine,
    PlanResult,
    PredictRequest,
    PredictResult,
    RankRequest,
    RankResult,
    RecoveryLedger,
    TuneRequest,
    TuneResult,
    VariantTimingResult,
)
from repro.service import jobs, serializers

#: Fields whose values depend on wall-clock time or on process-global
#: memo state, never on the request (the soak test strips the same set).
VOLATILE = ("predict_seconds", "measure_seconds", "traffic_cache")


# ----------------------------------------------------------------------
# Property-style round trips over randomized instances
# ----------------------------------------------------------------------
def _random_plan(rng: random.Random) -> PlanResult:
    order = rng.choice([None, ("z", "y", "x"), ("y", "x", "z")])
    return PlanResult(
        block=tuple(rng.choice([4, 8, 16, 32]) for _ in range(3)),
        loop_order=order,
        threads=rng.randint(1, 64),
        wavefront=rng.randint(0, 4),
        label=f"plan-{rng.randint(0, 999)}",
    )


def _random_predict(rng: random.Random) -> PredictResult:
    return PredictResult(
        stencil=rng.choice(["s3d7pt", "sheat3d", "s2d5pt"]),
        machine=rng.choice(["CascadeLakeSP", "Rome(x0.03125)"]),
        plan=_random_plan(rng),
        ecm_notation=f"{{{rng.random():.1f} || ...}}",
        t_ol_cycles=rng.random() * 10,
        t_nol_cycles=rng.random() * 10,
        t_data_cycles=tuple(rng.random() * 5 for _ in range(3)),
        t_ecm_cycles=rng.random() * 30,
        regimes=("L1", "L2", "L3", "MEM")[: rng.randint(1, 4)],
        cycles_per_lup=rng.random() * 4,
        mlups=rng.random() * 4000,
        mem_bytes_per_lup=rng.choice([8.0, 16.0, 24.0]),
        freq_ghz=rng.choice([2.2, 2.6, 3.5]),
        grid=tuple(rng.choice([16, 32, 48, 64]) for _ in range(3)),
    )


def _random_recovery(rng: random.Random) -> RecoveryLedger:
    if rng.random() < 0.5:
        return RecoveryLedger()  # the common, clean case
    failed = tuple(f"b{i}" for i in range(rng.randint(0, 2)))
    skipped = tuple(f"s{i}" for i in range(rng.randint(0, 2)))
    return RecoveryLedger(
        degraded=bool(failed or skipped),
        retried_jobs=rng.randint(0, 5),
        failed_jobs=failed,
        skipped_jobs=skipped,
        pool_restarts=rng.randint(0, 3),
        resumed_jobs=rng.randint(0, 9),
        in_process_fallback=rng.random() < 0.5,
    )


def _random_tune(rng: random.Random) -> TuneResult:
    return TuneResult(
        tuner=rng.choice(["ecm", "greedy", "exhaustive"]),
        best_plan=_random_plan(rng),
        best_mlups=rng.random() * 4000,
        variants_examined=rng.randint(1, 500),
        variants_run=rng.randint(1, 100),
        simulated_run_seconds=rng.random(),
        workers=rng.randint(1, 8),
        traffic_cache=CacheLedger(
            hits=rng.randint(0, 50), misses=rng.randint(0, 50)
        ),
        stencil="3d7pt",
        machine="clx",
        grid=(16, 16, 32),
        recovery=_random_recovery(rng),
    )


def _random_rank(rng: random.Random) -> RankResult:
    n = rng.randint(2, 6)
    timings = tuple(
        VariantTimingResult(
            variant=f"v{i}",
            predicted_s=rng.random(),
            measured_s=rng.choice([None, rng.random()]),
            error_pct=rng.choice([None, rng.random() * 20]),
            sweeps_per_step=rng.randint(1, 8),
            mem_bytes_per_lup=rng.random() * 30,
        )
        for i in range(n)
    )
    ranking = tuple(
        t.variant for t in sorted(timings, key=lambda t: t.predicted_s)
    )
    best = min(timings, key=lambda t: t.predicted_s)
    return RankResult(
        method="radau_iia(4)m3",
        ivp="grid8x8x16",
        machine="CascadeLakeSP(x0.03125)",
        timings=timings,
        ranking=ranking,
        best_variant=best.variant,
        best_predicted_s=best.predicted_s,
        kendall_tau=rng.choice([None, rng.random()]),
        top1_hit=rng.choice([None, True, False]),
        predict_seconds=rng.random(),
        measure_seconds=rng.choice([None, rng.random()]),
        traffic_cache=CacheLedger(hits=rng.randint(0, 9), misses=0),
        grid=(8, 8, 16),
    )


@pytest.mark.parametrize("seed", range(20))
def test_plan_result_round_trip(seed):
    plan = _random_plan(random.Random(seed))
    data = serializers.plan_result_to_dict(plan)
    assert serializers.plan_result_from_dict(data) == plan
    json.dumps(data)  # JSON-safe


@pytest.mark.parametrize("seed", range(20))
def test_predict_result_round_trip(seed):
    res = _random_predict(random.Random(seed))
    data = serializers.predict_result_to_dict(res)
    assert serializers.predict_result_from_dict(data) == res
    # A second trip through actual JSON text is also lossless.
    redata = json.loads(json.dumps(data))
    assert serializers.predict_result_from_dict(redata) == res


@pytest.mark.parametrize("seed", range(20))
def test_tune_result_round_trip(seed):
    res = _random_tune(random.Random(seed))
    data = serializers.tune_result_to_dict(res)
    assert serializers.tune_result_from_dict(data) == res
    redata = json.loads(json.dumps(data))
    assert serializers.tune_result_from_dict(redata) == res


@pytest.mark.parametrize("seed", range(20))
def test_rank_result_round_trip(seed):
    res = _random_rank(random.Random(seed))
    data = serializers.rank_result_to_dict(res)
    assert serializers.rank_result_from_dict(data) == res
    redata = json.loads(json.dumps(data))
    assert serializers.rank_result_from_dict(redata) == res


def test_real_engine_results_round_trip():
    eng = Engine()
    pred = eng.predict(
        PredictRequest.from_payload({"stencil": "3d7pt", "grid": [16, 16, 32]})
    )
    data = serializers.predict_result_to_dict(pred)
    assert serializers.predict_result_from_dict(data) == pred

    tune = eng.tune(
        TuneRequest.from_payload({"stencil": "3d7pt", "grid": [16, 16, 32]})
    )
    tdata = serializers.tune_result_to_dict(tune)
    assert serializers.tune_result_from_dict(tdata) == tune

    rank = eng.rank(RankRequest.from_payload({"grid": [8, 8, 16]}))
    rdata = serializers.rank_result_to_dict(rank)
    assert serializers.rank_result_from_dict(rdata) == rank


# ----------------------------------------------------------------------
# Service job outputs equal direct engine calls, bit for bit
# ----------------------------------------------------------------------
def _strip_volatile(data: dict) -> dict:
    return {k: v for k, v in data.items() if k not in VOLATILE}


def test_predict_job_equals_direct_engine_call():
    payload = {"stencil": "3d7pt", "grid": [16, 16, 32]}
    via_job = jobs.predict_job(jobs.normalize_predict(payload))
    direct = serializers.predict_result_to_dict(
        Engine().predict(PredictRequest.from_payload(payload))
    )
    assert json.dumps(via_job) == json.dumps(direct)


def test_tune_job_equals_direct_engine_call():
    payload = {"stencil": "3d7pt", "grid": [16, 16, 32]}
    # The traffic memo is process-global: clear it before each compared
    # run so both sides start from the same memo state.
    default_traffic_cache().clear()
    via_job = jobs.tune_job(jobs.normalize_tune(payload))
    default_traffic_cache().clear()
    direct = serializers.tune_result_to_dict(
        Engine().tune(TuneRequest.from_payload(payload))
    )
    assert json.dumps(via_job) == json.dumps(direct)


def test_rank_job_equals_direct_engine_call():
    payload = {"grid": [8, 8, 16], "validate": False}
    default_traffic_cache().clear()
    via_job = jobs.rank_job(jobs.normalize_rank(payload))
    default_traffic_cache().clear()
    direct = serializers.rank_result_to_dict(
        Engine().rank(RankRequest.from_payload(payload))
    )
    # predict_seconds is wall clock; everything else must be identical.
    assert json.dumps(_strip_volatile(via_job)) == json.dumps(
        _strip_volatile(direct)
    )
    assert via_job["traffic_cache"] == direct["traffic_cache"]
    assert list(via_job) == list(direct)  # same key order


def test_canonical_key_orders_match_legacy_serializers():
    """Engine serializer bytes must keep the historical key orders."""
    eng = Engine()
    payload = {"stencil": "3d7pt", "grid": [16, 16, 32]}
    pred = eng.predict(PredictRequest.from_payload(payload))
    keys = list(serializers.predict_result_to_dict(pred))
    assert keys == [
        "stencil", "machine", "plan", "ecm_notation", "t_ol_cycles",
        "t_nol_cycles", "t_data_cycles", "t_ecm_cycles", "regimes",
        "cycles_per_lup", "mlups", "mem_bytes_per_lup", "freq_ghz",
        "grid",
    ]

    tune = eng.tune(TuneRequest.from_payload(payload))
    tkeys = list(serializers.tune_result_to_dict(tune))
    assert tkeys == [
        "tuner", "best_plan", "best_mlups", "variants_examined",
        "variants_run", "simulated_run_seconds", "workers",
        "traffic_cache", "stencil", "machine", "grid", "recovery",
    ]

    rank = eng.rank(
        RankRequest.from_payload({"grid": [8, 8, 16], "validate": False})
    )
    rkeys = list(serializers.rank_result_to_dict(rank))
    assert rkeys == [
        "method", "ivp", "machine", "timings", "ranking",
        "best_predicted", "kendall_tau", "top1_hit", "predict_seconds",
        "measure_seconds", "traffic_cache", "grid",
    ]

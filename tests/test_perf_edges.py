"""Edge-case tests for the performance simulator and traffic reports."""

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy, sweep_stream
from repro.codegen import KernelPlan
from repro.grid import GridSet
from repro.machine import generic_avx2
from repro.perf.simulate import (
    Measurement,
    simulate_kernel,
    simulate_traffic_time,
)
from repro.stencil import get_stencil


class TestMeasurement:
    def test_runtime_scales_linearly_with_lups(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (8, 8, 16))
        m = simulate_kernel(spec, gs, KernelPlan(block=(8, 8, 16)), generic)
        assert m.runtime_seconds(2000) == pytest.approx(
            2 * m.runtime_seconds(1000)
        )

    def test_traffic_time_requires_lups(self, generic):
        h = CacheHierarchy(generic)
        rep = h.report(lups=0)
        with pytest.raises(ValueError):
            simulate_traffic_time(rep, generic)

    def test_traffic_time_grows_with_contention(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (8, 8, 16))
        h = CacheHierarchy(generic)
        for lines, writes in sweep_stream(spec, gs, KernelPlan(block=(8, 8, 16))):
            h.access_many(lines, writes)
        rep = h.report(lups=8 * 8 * 16)
        t1 = simulate_traffic_time(rep, generic, n_cores=1)
        t4 = simulate_traffic_time(rep, generic, n_cores=4)
        assert t4 > t1

    def test_plan_label_recorded(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (8, 8, 16))
        m = simulate_kernel(spec, gs, KernelPlan(block=(4, 4, 16)), generic)
        assert "b=4x4x16" in m.plan_label
        assert m.machine_name == generic.name


class TestStreamEdges:
    def test_empty_z_range(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (8, 8, 16))
        batches = list(
            sweep_stream(spec, gs, KernelPlan(block=(8, 8, 16)), z_range=(3, 3))
        )
        assert batches == []

    def test_z_range_outside_grid(self, generic):
        spec = get_stencil("3d7pt")
        gs = GridSet(spec, (8, 8, 16))
        batches = list(
            sweep_stream(
                spec, gs, KernelPlan(block=(8, 8, 16)), z_range=(0, 100)
            )
        )
        # Clipped to the grid: same as a full sweep.
        assert len(batches) == 8 * 8

    def test_single_row_grid(self, generic):
        spec = get_stencil("2d5pt")
        gs = GridSet(spec, (1, 16))
        batches = list(sweep_stream(spec, gs, KernelPlan(block=(1, 16))))
        assert len(batches) == 1
        lines, writes = batches[0]
        assert writes.any() and not writes.all()

    def test_blocked_and_unblocked_touch_same_lines(self, generic):
        spec = get_stencil("3d13pt")
        gs = GridSet(spec, (8, 8, 16))
        def all_lines(plan):
            touched = set()
            for lines, _ in sweep_stream(spec, gs, plan):
                touched.update(lines.tolist())
            return touched

        full = all_lines(KernelPlan(block=(8, 8, 16)))
        blocked = all_lines(KernelPlan(block=(4, 2, 16)))
        assert full == blocked

"""ServiceMetrics under concurrent writers: the bookkeeping invariants
must hold at every snapshot, not just at rest.

The server records from its loop thread while tests, the background
helper and the fabric prober read concurrently; these tests hammer the
same object from many threads and assert the sums that the SLO engine
and the perf gate rely on (outcome counts add up to totals, histogram
count matches the request count, tier ledgers are monotone).
"""

import threading

from repro.service.metrics import ServiceMetrics

N_THREADS = 8
PER_THREAD = 500
OUTCOME_CYCLE = ("cache", "fresh", "shed", "failed")


def hammer_requests(metrics, barrier, endpoint):
    barrier.wait()
    for i in range(PER_THREAD):
        outcome = OUTCOME_CYCLE[i % len(OUTCOME_CYCLE)]
        metrics.record_request(endpoint, outcome, seconds=0.001 * (i % 7))


def test_outcome_sums_match_totals_under_concurrency():
    metrics = ServiceMetrics(reservoir=64)
    barrier = threading.Barrier(N_THREADS + 1)
    threads = [
        threading.Thread(
            target=hammer_requests,
            args=(metrics, barrier, f"/endpoint-{t % 3}"),
        )
        for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()

    # Read snapshots while the writers run: every snapshot must be
    # internally consistent even mid-flight (the lock covers both the
    # counter bumps and the reads).
    barrier.wait()
    for _ in range(50):
        snap = metrics.snapshot(histograms=True)
        for row in snap["endpoints"].values():
            assert sum(row["outcomes"].values()) == row["requests"]
            assert row["latency_histogram"]["count"] == row["requests"]
    for thread in threads:
        thread.join()

    snap = metrics.snapshot(histograms=True)
    total = sum(row["requests"] for row in snap["endpoints"].values())
    assert total == N_THREADS * PER_THREAD
    for row in snap["endpoints"].values():
        assert sum(row["outcomes"].values()) == row["requests"]
        hist = row["latency_histogram"]
        assert hist["count"] == row["requests"]
        assert sum(hist["buckets"].values()) == hist["count"]
    # Per-outcome totals across endpoints: the cycle distributes each
    # outcome exactly PER_THREAD/4 times per thread.
    per_outcome = {}
    for row in snap["endpoints"].values():
        for outcome, n in row["outcomes"].items():
            per_outcome[outcome] = per_outcome.get(outcome, 0) + n
    expected = N_THREADS * PER_THREAD // len(OUTCOME_CYCLE)
    for outcome in OUTCOME_CYCLE:
        assert per_outcome[outcome] == expected


def test_tier_totals_stable_under_concurrent_writers():
    metrics = ServiceMetrics()
    barrier = threading.Barrier(N_THREADS)
    stop = threading.Event()
    errors = []

    def write():
        barrier.wait()
        for _ in range(PER_THREAD):
            metrics.record_tier("response", hits=2, misses=1)
            metrics.record_tier("approx", puts=1)

    def read():
        last = {}
        while not stop.is_set():
            totals = metrics.tier_totals()
            for name, row in totals.items():
                prev = last.get(name, {"hits": 0, "misses": 0})
                # Cumulative ledgers must be monotone — the SLO tier
                # sampler turns them into deltas and clamps at zero,
                # so a backwards step would silently drop bad events.
                if (
                    row["hits"] < prev["hits"]
                    or row["misses"] < prev["misses"]
                ):
                    errors.append((name, prev, row))
            last = {k: dict(v) for k, v in totals.items()}

    writers = [
        threading.Thread(target=write) for _ in range(N_THREADS - 1)
    ]
    reader = threading.Thread(target=read)
    reader.start()
    for thread in writers:
        thread.start()
    barrier.wait()
    for thread in writers:
        thread.join()
    stop.set()
    reader.join()

    assert errors == []
    totals = metrics.tier_totals()
    assert totals["response"]["hits"] == (N_THREADS - 1) * PER_THREAD * 2
    assert totals["response"]["misses"] == (N_THREADS - 1) * PER_THREAD


def test_predictor_and_stage_counters_under_concurrency():
    metrics = ServiceMetrics()
    barrier = threading.Barrier(N_THREADS)

    def work():
        barrier.wait()
        for _ in range(PER_THREAD):
            metrics.record_predictor(lc_served=1)
            metrics.record_stages({"execute": 0.001, "cache": 0.0005})

    threads = [threading.Thread(target=work) for _ in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    snap = metrics.snapshot()
    expected = N_THREADS * PER_THREAD
    assert snap["predictor"]["lc_served"] == expected
    assert snap["stages"]["execute"]["count"] == expected
    assert snap["stages"]["execute"]["total_s"] > 0

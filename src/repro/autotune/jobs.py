"""Content-addressed tune-job ledger with lease/steal distribution.

The fabric distributes long ``/tune`` jobs through a shared directory
of small crash-safe files, one trio per job key (the service's
``request_key`` content hash, so identical requests are one job)::

    <dir>/<key>.job      the job record: endpoint + normalized payload
    <dir>/<key>.lease    who is executing it, their pid, and an expiry
    <dir>/<key>.result   the finished JSON result (terminal state)
    <dir>/<key>.ckpt     the tuner checkpoint (partial measurements)

All four are written through :mod:`repro.util.crashsafe` (checksummed
envelopes, atomic replace) except ``.ckpt``, which *is* the PR-5
:class:`~repro.autotune.checkpoint.TunerCheckpoint` file — the fabric
reuses the checkpoint substrate unchanged as its resumable-progress
ledger.

**Leases are an efficiency device, not a correctness device.**  Every
job is deterministic and content-addressed: two executors racing the
same key produce bit-identical results and their ``.result`` writes
are idempotent.  The lease only keeps the common case from paying
duplicated work.  A lease is *adoptable* (stealable) when it is past
its expiry **or** its recorded pid is no longer alive on this host —
so a SIGKILLed shard's jobs free up immediately, not after a timeout.

The steal path: an idle shard (or a rerouted request for the same key)
finds the job adoptable, rewrites the lease with itself as owner,
opens the checkpoint and resumes from whatever measurements the dead
owner flushed, then publishes ``.result``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.util import crashsafe

__all__ = ["JobLedger"]

#: Lease-file schema marker (the envelope already carries its own
#: format version; this guards the payload shape).
_LEASE_SCHEMA = 1


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` is a live (non-zombie) process on this host.

    ``os.kill(pid, 0)`` alone is not enough: a SIGKILLed shard stays a
    zombie until its parent reaps it, and in that window its jobs must
    already be adoptable — the process will never run again.  On Linux
    ``/proc/<pid>/stat`` exposes the state field; elsewhere the signal
    probe is the best available answer.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    try:
        stat = Path(f"/proc/{pid}/stat").read_bytes()
        # "<pid> (<comm>) <state> ..." — comm may contain spaces/parens,
        # so parse from the *last* closing paren.
        state = stat.rsplit(b")", 1)[1].split()[0]
        if state == b"Z":
            return False  # zombie: will never run again
    except (OSError, IndexError):
        pass  # no procfs: trust the signal probe
    return True


class JobLedger:
    """One directory of distributable, resumable tune jobs."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # -- paths ----------------------------------------------------------
    def job_path(self, key: str) -> Path:
        return self.root / f"{key}.job"

    def lease_path(self, key: str) -> Path:
        return self.root / f"{key}.lease"

    def result_path(self, key: str) -> Path:
        return self.root / f"{key}.result"

    def checkpoint_path(self, key: str) -> Path:
        return self.root / f"{key}.ckpt"

    # -- job records ----------------------------------------------------
    def enqueue(self, key: str, endpoint: str, payload: dict) -> None:
        """Record one job (idempotent: identical key ⇒ identical record)."""
        path = self.job_path(key)
        if path.exists():
            return
        crashsafe.dump_envelope(
            path, {"key": key, "endpoint": endpoint, "payload": payload}
        )

    def job(self, key: str) -> dict | None:
        """The job record for ``key``, if one verifies."""
        return self._read(self.job_path(key))

    def result(self, key: str) -> dict | None:
        """The finished result for ``key``, if any (terminal state)."""
        entry = self._read(self.result_path(key))
        if entry is None or not isinstance(entry.get("result"), dict):
            return None
        return entry["result"]

    def complete(self, key: str, owner: str, result: dict) -> None:
        """Publish ``result`` and drop the lease.

        Idempotent and race-safe: racing executors publish identical
        content (jobs are deterministic), so last-write-wins is fine.
        """
        crashsafe.dump_envelope(
            self.result_path(key), {"owner": owner, "result": result}
        )
        try:
            self.lease_path(key).unlink()
        except OSError:
            pass

    def result_owner(self, key: str) -> str | None:
        """Who published the result (shard-death drill forensics)."""
        entry = self._read(self.result_path(key))
        return entry.get("owner") if isinstance(entry, dict) else None

    # -- leases ---------------------------------------------------------
    def claim(self, key: str, owner: str, ttl_s: float) -> bool:
        """Take (or steal) the execution lease on ``key``.

        Returns ``True`` when this caller now holds the lease: either
        no lease existed, the caller already held it (re-claim extends
        it), or the previous lease was adoptable (expired / dead pid).
        ``False`` means a *live* owner is working the job — poll for
        the result instead of duplicating the run.
        """
        lease = self._read(self.lease_path(key))
        if lease is not None and not self._adoptable(lease):
            if lease.get("owner") != owner:
                return False
        crashsafe.dump_envelope(
            self.lease_path(key),
            {
                "schema": _LEASE_SCHEMA,
                "owner": owner,
                "pid": os.getpid(),
                "expires": time.time() + ttl_s,
            },
        )
        return True

    def lease(self, key: str) -> dict | None:
        """The current lease record, if one verifies."""
        return self._read(self.lease_path(key))

    @staticmethod
    def _adoptable(lease: dict) -> bool:
        """Whether a lease may be stolen (expired or owner pid dead)."""
        try:
            expires = float(lease.get("expires", 0.0))
            pid = int(lease.get("pid", 0))
        except (TypeError, ValueError):
            return True  # malformed lease: treat as abandoned
        if time.time() >= expires:
            return True
        return not _pid_alive(pid)

    # -- scanning -------------------------------------------------------
    def pending(self) -> list[str]:
        """Keys with a job record but no published result."""
        keys = []
        try:
            entries = list(self.root.iterdir())
        except OSError:
            return []
        for path in entries:
            if path.suffix != ".job":
                continue
            key = path.stem
            if not self.result_path(key).exists():
                keys.append(key)
        return sorted(keys)

    def adoptable(self) -> list[dict]:
        """Pending job records whose lease is absent or stealable.

        The work-stealing scan: each record still carries the full
        normalized payload, so any shard can execute it from the
        ledger alone.
        """
        jobs = []
        for key in self.pending():
            lease = self._read(self.lease_path(key))
            if lease is not None and not self._adoptable(lease):
                continue
            record = self.job(key)
            if record is not None:
                jobs.append(record)
        return jobs

    # -- internals ------------------------------------------------------
    def _read(self, path: Path) -> dict | None:
        """A verified envelope payload, else None (corrupt ⇒ quarantine)."""
        try:
            payload = crashsafe.load_envelope(path)
        except FileNotFoundError:
            return None
        except OSError:
            return None  # transient I/O: treat as absent
        except crashsafe.CorruptPayload:
            crashsafe.quarantine(path)
            return None
        return payload if isinstance(payload, dict) else None

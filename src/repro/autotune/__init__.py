"""Autotuning: empirical search baselines vs. analytic ECM selection.

The paper's pitch is that the ECM model finds optimal parameters
*analytically*, where classic autotuners must compile and run many
variants.  This package provides both paths plus cost accounting so the
trade-off can be reproduced as a table (experiment T3).
"""

from repro.autotune.search import (
    EcmGuidedTuner,
    ExhaustiveTuner,
    GreedyLineSearchTuner,
    TunerResult,
)

__all__ = [
    "TunerResult",
    "ExhaustiveTuner",
    "GreedyLineSearchTuner",
    "EcmGuidedTuner",
]

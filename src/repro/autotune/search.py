"""Tuner implementations and their cost accounting.

The evaluation layer here is *supervised*: worker-pool failures are
retried and requeued, crashed pools are restarted (falling back to
in-process evaluation when restarts are exhausted), and whatever could
not be completed is reported in an explicit :class:`EvalLedger` rather
than aborting the sweep and discarding finished measurements.  Fault
points (:mod:`repro.faults`) cover both the in-worker evaluation and
the parent-side pool so every recovery path can be exercised
deterministically in tests and chaos runs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from repro import faults, obs
from repro.autotune.checkpoint import TunerCheckpoint, tuner_fingerprint
from repro.blocking.spatial import analytic_block_selection
from repro.cachesim.dispatch import (
    PREDICTORS,
    PredictorError,
    predictor_counters,
)
from repro.cachesim.memo import default_traffic_cache
from repro.codegen.plan import KernelPlan, candidate_plans
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.perf.simulate import Measurement, simulate_kernel
from repro.stencil.spec import StencilSpec


class TunerError(RuntimeError):
    """A tuning run that could not produce a single measurement."""


@dataclass
class EvalLedger:
    """Recovery accounting for one batch of variant evaluations.

    ``retried_jobs`` counts re-submissions (including jobs requeued
    after a pool break); ``failed_jobs``/``skipped_jobs`` list the plan
    labels that were given up on (retries exhausted) or never attempted
    (deadline expired); ``resumed_jobs`` counts measurements restored
    from a checkpoint instead of re-run.

    ``lc_served``/``sim_served`` count traffic reports produced by the
    layer-condition fast path vs. the cache replay across the batch
    (memo hits count in neither); ``lc_validation_mismatch`` counts
    cross-checks (``REPRO_LC_VALIDATE=1``) where the LC answer diverged
    from the simulator and the simulated report was served instead.
    """

    retried_jobs: int = 0
    failed_jobs: list = field(default_factory=list)
    skipped_jobs: list = field(default_factory=list)
    pool_restarts: int = 0
    resumed_jobs: int = 0
    in_process_fallback: bool = False
    lc_served: int = 0
    sim_served: int = 0
    lc_validation_mismatch: int = 0
    # Per-tier traffic-memo breakdown (unified store ledger: a disk hit
    # is distinguishable from a memory hit; disk misses are overall
    # misses).  Zeros when no disk tier is configured.
    mem_hits: int = 0
    mem_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the batch is missing measurements a clean run has."""
        return bool(self.failed_jobs or self.skipped_jobs)

    def merge(self, other: "EvalLedger") -> None:
        """Fold another batch's accounting into this one."""
        self.retried_jobs += other.retried_jobs
        self.failed_jobs.extend(other.failed_jobs)
        self.skipped_jobs.extend(other.skipped_jobs)
        self.pool_restarts += other.pool_restarts
        self.resumed_jobs += other.resumed_jobs
        self.in_process_fallback = (
            self.in_process_fallback or other.in_process_fallback
        )
        self.lc_served += other.lc_served
        self.sim_served += other.sim_served
        self.lc_validation_mismatch += other.lc_validation_mismatch
        self.mem_hits += other.mem_hits
        self.mem_misses += other.mem_misses
        self.disk_hits += other.disk_hits
        self.disk_misses += other.disk_misses


@dataclass
class TunerResult:
    """Outcome of one tuning run, with its cost ledger.

    ``variants_run`` counts kernels that had to be *executed* (the
    expensive part the paper eliminates); ``simulated_run_seconds`` sums
    the simulated wall time those runs would have cost on the target
    machine; ``tuner_seconds`` is the actual time the tuner logic took.
    ``traffic_cache_hits``/``misses`` count traffic-memoization lookups
    during the run; ``workers`` records the degree of parallelism used.
    ``lc_served``/``sim_served``/``lc_validation_mismatch`` break the
    memo misses down by which predictor path produced the report (see
    :class:`EvalLedger`).

    The recovery fields mirror :class:`EvalLedger`: ``degraded`` is True
    when the result was produced from partial work (some jobs failed or
    were skipped), and the remaining fields say exactly what was
    retried, lost, restored from a checkpoint, or rescued by the
    in-process fallback.
    """

    tuner: str
    best_plan: KernelPlan
    best_mlups: float
    variants_examined: int
    variants_run: int
    simulated_run_seconds: float
    tuner_seconds: float
    trace: list[tuple[str, float]] = field(default_factory=list)
    traffic_cache_hits: int = 0
    traffic_cache_misses: int = 0
    workers: int = 1
    degraded: bool = False
    retried_jobs: int = 0
    failed_jobs: list = field(default_factory=list)
    skipped_jobs: list = field(default_factory=list)
    pool_restarts: int = 0
    resumed_jobs: int = 0
    in_process_fallback: bool = False
    lc_served: int = 0
    sim_served: int = 0
    lc_validation_mismatch: int = 0
    traffic_mem_hits: int = 0
    traffic_mem_misses: int = 0
    traffic_disk_hits: int = 0
    traffic_disk_misses: int = 0

    def apply_ledger(self, ledger: EvalLedger) -> "TunerResult":
        """Stamp a batch ledger's accounting onto this result."""
        self.degraded = ledger.degraded
        self.retried_jobs = ledger.retried_jobs
        self.failed_jobs = list(ledger.failed_jobs)
        self.skipped_jobs = list(ledger.skipped_jobs)
        self.pool_restarts = ledger.pool_restarts
        self.resumed_jobs = ledger.resumed_jobs
        self.in_process_fallback = ledger.in_process_fallback
        self.lc_served = ledger.lc_served
        self.sim_served = ledger.sim_served
        self.lc_validation_mismatch = ledger.lc_validation_mismatch
        self.traffic_mem_hits = ledger.mem_hits
        self.traffic_mem_misses = ledger.mem_misses
        self.traffic_disk_hits = ledger.disk_hits
        self.traffic_disk_misses = ledger.disk_misses
        return self


def _run_variant(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    seed: int,
) -> Measurement:
    return simulate_kernel(spec, grids, plan, machine, seed=seed)


# --- supervised parallel variant evaluation --------------------------------
#
# Measurements are deterministic functions of (plan, seed), so evaluating a
# batch of variants in worker processes and reducing the results in submission
# order yields exactly the serial tuner's outcome.  The GridSet is rebuilt in
# each worker (its NumPy buffers are large and never read by the simulator's
# address arithmetic) instead of being pickled per task.

_WORKER_STATE: dict = {}

#: Per-job retry budget and pool-restart budget before falling back to
#: in-process evaluation.
DEFAULT_RETRIES = 2
DEFAULT_POOL_RESTARTS = 2


def _worker_init(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    extra_halo: int,
    machine: Machine,
    fault_specs: tuple = (),
    predictor: str = "auto",
) -> None:
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["grids"] = GridSet(spec, interior_shape, extra_halo)
    _WORKER_STATE["machine"] = machine
    _WORKER_STATE["predictor"] = predictor
    # Arm the parent's fault plan with fresh per-process trigger state —
    # explicit rather than inherited, so spawn behaves like fork and an
    # ``nth=K`` trigger means "this worker's K-th call" deterministically.
    faults.install(faults.FaultPlan(fault_specs) if fault_specs else None)


def _eval_one(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    seed: int,
    predictor: str = "auto",
) -> tuple[
    Measurement, int, int, tuple[int, int, int], tuple[int, int, int, int]
]:
    """Evaluate one job, returning the traffic-memo lookup deltas too.

    The fourth element is the per-job delta of the process-wide
    predictor counters ``(lc_served, sim_served, lc_validation_mismatch)``
    — measured here so it rides back across the pool boundary with the
    result instead of being lost in the worker process.  The fifth is
    the per-tier traffic-memo delta ``(mem_hits, mem_misses, disk_hits,
    disk_misses)``, splitting the overall lookups by which store tier
    served them.
    """
    faults.check("tuner.eval")
    cache = default_traffic_cache()
    h0, m0 = cache.hits, cache.misses
    t0 = cache.tier_counts()
    c0 = predictor_counters().snapshot()
    meas = simulate_kernel(
        spec, grids, plan, machine, seed=seed, predictor=predictor
    )
    c1 = predictor_counters().snapshot()
    delta = (
        c1["lc_served"] - c0["lc_served"],
        c1["sim_served"] - c0["sim_served"],
        c1["lc_validation_mismatch"] - c0["lc_validation_mismatch"],
    )
    t1 = cache.tier_counts()
    tiers = tuple(b - a for a, b in zip(t0, t1))
    return meas, cache.hits - h0, cache.misses - m0, delta, tiers


def _worker_eval(
    job: tuple[KernelPlan, int],
) -> tuple[
    Measurement, int, int, tuple[int, int, int], tuple[int, int, int, int]
]:
    plan, seed = job
    faults.check("tuner.worker")
    return _eval_one(
        _WORKER_STATE["spec"],
        _WORKER_STATE["grids"],
        plan,
        _WORKER_STATE["machine"],
        seed,
        predictor=_WORKER_STATE.get("predictor", "auto"),
    )


def _expired(deadline: float | None) -> bool:
    return deadline is not None and time.time() >= deadline


def _serial_fill(
    spec: StencilSpec,
    grids: GridSet,
    machine: Machine,
    jobs: list[tuple[KernelPlan, int]],
    todo: set,
    attempts: dict,
    deadline: float | None,
    retries: int,
    results: list,
    ledger: EvalLedger,
    on_complete,
    predictor: str = "auto",
) -> None:
    """Run the ``todo`` jobs in this process, with retries and deadline.

    The deadline is only honored once *some* measurement exists
    (completed here or restored from a checkpoint): a request must not
    time out into an empty result when running the first job would give
    it a usable one.

    :class:`~repro.cachesim.dispatch.PredictorError` propagates
    immediately: a forced ``predictor="lc"`` declining a variant is
    deterministic, so retrying it is pointless and swallowing it would
    silently turn the sweep into a degraded partial search with a
    potentially different winner.
    """
    progress = any(r is not None for r in results)
    for i in sorted(todo):
        plan, seed = jobs[i]
        if progress and _expired(deadline):
            ledger.skipped_jobs.append(plan.describe())
            continue
        while True:
            try:
                res = _eval_one(
                    spec, grids, plan, machine, seed, predictor=predictor
                )
            except PredictorError:
                raise
            except Exception:
                attempts[i] = attempts.get(i, 0) + 1
                if attempts[i] <= retries:
                    ledger.retried_jobs += 1
                    continue
                ledger.failed_jobs.append(plan.describe())
                break
            results[i] = res
            progress = True
            if on_complete is not None:
                on_complete(i, res)
            break
    todo.clear()


def _pool_fill(
    spec: StencilSpec,
    grids: GridSet,
    machine: Machine,
    jobs: list[tuple[KernelPlan, int]],
    todo: set,
    attempts: dict,
    workers: int,
    deadline: float | None,
    retries: int,
    max_pool_restarts: int,
    results: list,
    ledger: EvalLedger,
    on_complete,
    predictor: str = "auto",
) -> None:
    """Supervised pool evaluation of the ``todo`` jobs.

    Per-job futures with bounded retries; a broken pool (worker death,
    injected ``tuner.pool`` fault) requeues its lost jobs into a fresh
    pool, and after ``max_pool_restarts`` restarts the remainder runs
    in-process so the sweep always completes.  A worker-side
    :class:`~repro.cachesim.dispatch.PredictorError` is deterministic
    (see :func:`_serial_fill`) and propagates without retries.
    """
    extra_halo = grids.output.halo - spec.radius
    initargs = (
        spec,
        grids.interior_shape,
        extra_halo,
        machine,
        faults.active_specs(),
        predictor,
    )
    restarts = 0

    def record(i: int, res) -> None:
        results[i] = res
        todo.discard(i)
        if on_complete is not None:
            on_complete(i, res)

    def progress() -> bool:
        return any(r is not None for r in results)

    while todo:
        if progress() and _expired(deadline):
            for i in sorted(todo):
                ledger.skipped_jobs.append(jobs[i][0].describe())
            todo.clear()
            return
        broken = False
        futures: dict = {}
        ex = ProcessPoolExecutor(
            max_workers=min(workers, len(todo)),
            initializer=_worker_init,
            initargs=initargs,
        )
        try:
            for i in sorted(todo):
                try:
                    faults.check("tuner.pool")
                    futures[ex.submit(_worker_eval, jobs[i])] = i
                except (faults.FaultInjected, BrokenExecutor):
                    broken = True
                    break
            pending = set(futures)
            while pending and not broken:
                timeout = None
                if deadline is not None and progress():
                    timeout = max(0.0, deadline - time.time())
                done, pending = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:  # deadline expired with jobs in flight
                    for fut in pending:
                        fut.cancel()
                    break
                for fut in done:
                    i = futures[fut]
                    try:
                        res = fut.result()
                    except BrokenExecutor:
                        broken = True
                        continue
                    except PredictorError:
                        raise
                    except Exception:
                        attempts[i] = attempts.get(i, 0) + 1
                        if attempts[i] <= retries:
                            ledger.retried_jobs += 1
                            try:
                                nf = ex.submit(_worker_eval, jobs[i])
                            except BrokenExecutor:
                                broken = True
                                continue
                            futures[nf] = i
                            pending.add(nf)
                        else:
                            ledger.failed_jobs.append(jobs[i][0].describe())
                            todo.discard(i)
                        continue
                    record(i, res)
        finally:
            ex.shutdown(wait=True, cancel_futures=True)
        # Salvage anything that completed while shutting down (a broken
        # pool or an expired deadline leaves finished futures behind).
        for fut, i in futures.items():
            if i in todo and fut.done() and not fut.cancelled():
                if fut.exception() is None:
                    record(i, fut.result())
        if not todo:
            return
        if broken:
            # Jobs lost to the crashed pool go around again.
            ledger.retried_jobs += len(todo)
            restarts += 1
            ledger.pool_restarts += 1
            if restarts > max_pool_restarts:
                ledger.in_process_fallback = True
                _serial_fill(
                    spec, grids, machine, jobs, todo, attempts,
                    deadline, retries, results, ledger, on_complete,
                    predictor=predictor,
                )
                return
        # A non-broken exit with work left means the deadline expired:
        # the loop head will ledger the rest as skipped (or, with no
        # progress yet, run another round).


def _evaluate_variants(
    spec: StencilSpec,
    grids: GridSet,
    machine: Machine,
    jobs: list[tuple[KernelPlan, int]],
    workers: int = 1,
    deadline: float | None = None,
    retries: int = DEFAULT_RETRIES,
    max_pool_restarts: int = DEFAULT_POOL_RESTARTS,
    precomputed: dict | None = None,
    on_complete=None,
    predictor: str = "auto",
) -> tuple[list, EvalLedger]:
    """Evaluate ``(plan, seed)`` jobs, serially or in worker processes.

    Returns ``(results, ledger)``: ``results`` holds one
    ``(measurement, cache_hit_delta, cache_miss_delta, predictor_delta)``
    tuple per job in submission order — ``None`` where the job failed
    after retries or was skipped on deadline — and ``ledger`` accounts
    for every recovery action taken (including per-predictor serve
    counts folded from the results).  ``precomputed`` maps job indices
    to already known results (checkpoint resume); ``on_complete(index,
    result)`` fires for each fresh completion (checkpoint write-out).

    The reduction over a fully successful ``results`` is independent of
    ``workers``, retries and pool restarts.  A
    :class:`~repro.cachesim.dispatch.PredictorError` (forced
    ``predictor="lc"`` on a variant the analysis declines) is raised
    rather than ledgered: it is deterministic, so the batch could only
    ever complete degraded, with a winner the other predictors might
    not pick.
    """
    if predictor not in PREDICTORS:
        raise ValueError(
            f"unknown predictor {predictor!r}; choose from {PREDICTORS}"
        )
    ledger = EvalLedger()
    results: list = [None] * len(jobs)
    if precomputed:
        for i, res in precomputed.items():
            if 0 <= i < len(results) and res is not None:
                results[i] = res
                ledger.resumed_jobs += 1
    with obs.span("tuner.evaluate") as sp:
        todo = {i for i, r in enumerate(results) if r is None}
        sp.add(jobs=len(jobs), workers=max(1, workers))
        if ledger.resumed_jobs:
            sp.add(resumed=ledger.resumed_jobs)
        attempts: dict = {}
        if workers <= 1 or len(todo) <= 1:
            _serial_fill(
                spec, grids, machine, jobs, todo, attempts,
                deadline, retries, results, ledger, on_complete,
                predictor=predictor,
            )
        else:
            # Spans cannot cross process boundaries: the pool's wall
            # time is attributed here at the submission site, not
            # inside the workers.
            _pool_fill(
                spec, grids, machine, jobs, todo, attempts, workers,
                deadline, retries, max_pool_restarts, results, ledger,
                on_complete,
                predictor=predictor,
            )
        for entry in results:
            if entry is None:
                continue
            lc, sim, mismatch = entry[3]
            ledger.lc_served += lc
            ledger.sim_served += sim
            ledger.lc_validation_mismatch += mismatch
            if len(entry) > 4:  # older checkpoints lack the tier split
                mh, mm, dh, dm = entry[4]
                ledger.mem_hits += mh
                ledger.mem_misses += mm
                ledger.disk_hits += dh
                ledger.disk_misses += dm
        for key, value in (
            ("retried", ledger.retried_jobs),
            ("failed", len(ledger.failed_jobs)),
            ("skipped", len(ledger.skipped_jobs)),
            ("pool_restarts", ledger.pool_restarts),
            ("lc_served", ledger.lc_served),
            ("sim_served", ledger.sim_served),
            ("lc_mismatch", ledger.lc_validation_mismatch),
        ):
            if value:
                sp.add(**{key: value})
    return results, ledger


def _open_checkpoint(
    checkpoint,
    tuner_name: str,
    spec: StencilSpec,
    grids: GridSet,
    machine: Machine,
    seed: int,
) -> TunerCheckpoint | None:
    """Resolve a tuner's ``checkpoint`` argument (path or instance)."""
    if checkpoint is None or isinstance(checkpoint, TunerCheckpoint):
        return checkpoint
    if isinstance(checkpoint, (str, os.PathLike)):
        return TunerCheckpoint(
            checkpoint,
            tuner_fingerprint(tuner_name, spec, grids, machine, seed),
        )
    raise TypeError(
        f"checkpoint must be a path or TunerCheckpoint, got {checkpoint!r}"
    )


def _checkpoint_hooks(
    cp: TunerCheckpoint | None,
    spec: StencilSpec,
    grids: GridSet,
    machine: Machine,
    jobs: list[tuple[KernelPlan, int]],
):
    """Build the (precomputed, on_complete) pair for one jobs batch."""
    if cp is None:
        return None, None
    keys = [cp.job_key(spec, grids, plan, machine, seed) for plan, seed in jobs]
    precomputed = {}
    for i, key in enumerate(keys):
        meas = cp.get(key)
        if meas is not None:
            precomputed[i] = (meas, 0, 0, (0, 0, 0), (0, 0, 0, 0))

    def on_complete(i: int, res) -> None:
        cp.put(keys[i], res[0])

    return precomputed, on_complete


def make_tuner(
    name: str,
    workers: int = 1,
    checkpoint=None,
    validate: bool = True,
    predictor: str = "auto",
):
    """Construct a tuner by registry name (see :data:`TUNERS`).

    The single entry point shared by :class:`repro.core.YaskSite`, the
    CLI and the service: ``workers`` and ``checkpoint`` are forwarded to
    the empirical tuners and ignored by the analytic one (nothing to
    parallelise or resume); ``validate`` is the analytic tuner's
    single-validation-run switch.  ``predictor`` selects the traffic
    predictor used for every variant evaluation (see
    :func:`repro.cachesim.driver.measure_sweep`): under ``"auto"`` and
    ``"simulate"`` reports are bit-identical, so tuner winners match
    exactly.  Forcing ``"lc"`` raises
    :class:`~repro.cachesim.dispatch.PredictorError` as soon as any
    variant is declined — tuner sweeps include blocked variants the
    analysis never certifies, so a forced-lc tune fails loudly instead
    of returning a degraded partial winner.
    """
    try:
        cls = TUNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown tuner {name!r}; choose from {sorted(TUNERS)}"
        ) from None
    if name == "ecm":
        return cls(validate=validate, predictor=predictor)
    return cls(workers=workers, checkpoint=checkpoint, predictor=predictor)


class ExhaustiveTuner:
    """Run every candidate plan and keep the fastest (YASK-style search).

    ``workers > 1`` evaluates the candidates in that many processes; the
    reduction walks results in candidate order with a strict ``>``, so
    the chosen plan is identical to the serial run for any ``workers``.
    ``checkpoint`` (a path or :class:`TunerCheckpoint`) persists
    completed measurements so an interrupted sweep resumes where it
    died.
    """

    name = "exhaustive"

    def __init__(self, workers: int = 1, checkpoint=None,
                 predictor: str = "auto"):
        self.workers = workers
        self.checkpoint = checkpoint
        self.predictor = predictor

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
        deadline: float | None = None,
    ) -> TunerResult:
        """Search the full spatial-block space empirically."""
        start = time.perf_counter()
        shape = grids.interior_shape
        best: tuple[float, KernelPlan] | None = None
        trace: list[tuple[str, float]] = []
        sim_seconds = 0.0
        cache_hits = cache_misses = 0
        lups = 1
        for s in shape:
            lups *= s
        jobs = [
            (plan, seed + i)
            for i, plan in enumerate(candidate_plans(spec, shape, machine))
        ]
        cp = _open_checkpoint(
            self.checkpoint, self.name, spec, grids, machine, seed
        )
        precomputed, on_complete = _checkpoint_hooks(
            cp, spec, grids, machine, jobs
        )
        results, ledger = _evaluate_variants(
            spec, grids, machine, jobs,
            workers=self.workers, deadline=deadline,
            precomputed=precomputed, on_complete=on_complete,
            predictor=self.predictor,
        )
        if cp is not None:
            cp.flush()
        n_fresh = 0
        resumed = set(precomputed or ())
        for i, ((plan, _), entry) in enumerate(zip(jobs, results)):
            if entry is None:
                continue
            meas, dh, dm = entry[:3]
            if i not in resumed:
                n_fresh += 1
                sim_seconds += meas.runtime_seconds(lups) * 2  # warm-up+timed
            cache_hits += dh
            cache_misses += dm
            trace.append((plan.describe(), meas.mlups))
            if best is None or meas.mlups > best[0]:
                best = (meas.mlups, plan)
        if best is None:
            raise TunerError(
                f"exhaustive sweep produced no measurements "
                f"({len(jobs)} jobs, {len(ledger.failed_jobs)} failed)"
            )
        return TunerResult(
            tuner=self.name,
            best_plan=best[1],
            best_mlups=best[0],
            variants_examined=len(jobs),
            variants_run=n_fresh,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
            traffic_cache_hits=cache_hits,
            traffic_cache_misses=cache_misses,
            workers=self.workers,
        ).apply_ledger(ledger)


class GreedyLineSearchTuner:
    """Tune one axis at a time, keeping other axes fixed (common heuristic).

    Cheaper than exhaustive but can land in a local optimum — included
    as the middle ground in the tuning-cost table.
    """

    name = "greedy"

    def __init__(self, workers: int = 1, checkpoint=None,
                 predictor: str = "auto"):
        self.workers = workers
        self.checkpoint = checkpoint
        self.predictor = predictor

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
        deadline: float | None = None,
    ) -> TunerResult:
        """Axis-by-axis line search over block sizes.

        Candidates within one axis are independent, so each axis's batch
        is evaluated via :func:`_evaluate_variants` (parallel when
        ``workers > 1``); the per-candidate seed numbering matches the
        serial loop exactly.  An axis whose candidates all failed keeps
        its current block size (the failures appear in the ledger).
        """
        start = time.perf_counter()
        shape = grids.interior_shape
        dim = spec.dim
        lups = 1
        for s in shape:
            lups *= s
        current = list(shape)
        trace: list[tuple[str, float]] = []
        n_run = 0
        n_examined = 0
        sim_seconds = 0.0
        cache_hits = cache_misses = 0
        best_mlups = -1.0
        run_seed = seed
        ledger = EvalLedger()
        cp = _open_checkpoint(
            self.checkpoint, self.name, spec, grids, machine, seed
        )
        for axis in range(dim - 1):
            sizes = []
            b = 4
            while b < shape[axis]:
                sizes.append(b)
                b *= 2
            sizes.append(shape[axis])
            jobs = []
            for size in sizes:
                cand = list(current)
                cand[axis] = size
                jobs.append((KernelPlan(block=tuple(cand)), run_seed))
                run_seed += 1
            precomputed, on_complete = _checkpoint_hooks(
                cp, spec, grids, machine, jobs
            )
            results, axis_ledger = _evaluate_variants(
                spec, grids, machine, jobs,
                workers=self.workers, deadline=deadline,
                precomputed=precomputed, on_complete=on_complete,
                predictor=self.predictor,
            )
            ledger.merge(axis_ledger)
            resumed = set(precomputed or ())
            axis_best = None
            for i, (size, (plan, _), entry) in enumerate(
                zip(sizes, jobs, results)
            ):
                if entry is None:
                    continue
                meas, dh, dm = entry[:3]
                n_examined += 1
                if i not in resumed:
                    n_run += 1
                    sim_seconds += meas.runtime_seconds(lups) * 2
                cache_hits += dh
                cache_misses += dm
                trace.append((plan.describe(), meas.mlups))
                if axis_best is None or meas.mlups > axis_best[0]:
                    axis_best = (meas.mlups, size)
            if axis_best is not None:
                current[axis] = axis_best[1]
                best_mlups = axis_best[0]
        if cp is not None:
            cp.flush()
        if best_mlups < 0:
            raise TunerError(
                "greedy line search produced no measurements "
                f"({len(ledger.failed_jobs)} failed, "
                f"{len(ledger.skipped_jobs)} skipped)"
            )
        return TunerResult(
            tuner=self.name,
            best_plan=KernelPlan(block=tuple(current)),
            best_mlups=best_mlups,
            variants_examined=n_examined,
            variants_run=n_run,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
            traffic_cache_hits=cache_hits,
            traffic_cache_misses=cache_misses,
            workers=self.workers,
        ).apply_ledger(ledger)


class EcmGuidedTuner:
    """YaskSite's analytic path: model every candidate, run only the winner.

    The single validation run is optional (``validate=False`` gives the
    paper's pure offline mode with zero executions).  If the validation
    run itself fails after retries, the analytic prediction is returned
    with ``degraded=True`` — the model's answer is still useful, and
    this is exactly the service's breaker-open degraded mode.
    """

    name = "ecm"

    def __init__(self, validate: bool = True, capacity_factor: float = 1.0,
                 predictor: str = "auto"):
        self.validate = validate
        self.capacity_factor = capacity_factor
        self.predictor = predictor

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
        deadline: float | None = None,
    ) -> TunerResult:
        """Analytic selection over the same candidate space."""
        start = time.perf_counter()
        shape = grids.interior_shape
        choice = analytic_block_selection(
            spec, shape, machine, capacity_factor=self.capacity_factor
        )
        n_run = 0
        sim_seconds = 0.0
        cache_hits = cache_misses = 0
        mlups = choice.prediction.mlups
        trace = [(choice.plan.describe(), mlups)]
        ledger = EvalLedger()
        if self.validate:
            lups = 1
            for s in shape:
                lups *= s
            results, ledger = _evaluate_variants(
                spec, grids, machine, [(choice.plan, seed)],
                deadline=deadline,
                predictor=self.predictor,
            )
            entry = results[0]
            if entry is not None:
                meas, cache_hits, cache_misses = entry[:3]
                n_run = 1
                sim_seconds = meas.runtime_seconds(lups) * 2
                mlups = meas.mlups
                trace.append((choice.plan.describe(), mlups))
        return TunerResult(
            tuner=self.name,
            best_plan=choice.plan,
            best_mlups=mlups,
            variants_examined=choice.candidates_examined,
            variants_run=n_run,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
            traffic_cache_hits=cache_hits,
            traffic_cache_misses=cache_misses,
        ).apply_ledger(ledger)


#: Registry of tuner implementations by CLI/service name.
TUNERS = {
    "ecm": EcmGuidedTuner,
    "exhaustive": ExhaustiveTuner,
    "greedy": GreedyLineSearchTuner,
}

"""Tuner implementations and their cost accounting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.blocking.spatial import analytic_block_selection
from repro.codegen.plan import KernelPlan, candidate_plans
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.perf.simulate import Measurement, simulate_kernel
from repro.stencil.spec import StencilSpec


@dataclass
class TunerResult:
    """Outcome of one tuning run, with its cost ledger.

    ``variants_run`` counts kernels that had to be *executed* (the
    expensive part the paper eliminates); ``simulated_run_seconds`` sums
    the simulated wall time those runs would have cost on the target
    machine; ``tuner_seconds`` is the actual time the tuner logic took.
    """

    tuner: str
    best_plan: KernelPlan
    best_mlups: float
    variants_examined: int
    variants_run: int
    simulated_run_seconds: float
    tuner_seconds: float
    trace: list[tuple[str, float]] = field(default_factory=list)


def _run_variant(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    seed: int,
) -> Measurement:
    return simulate_kernel(spec, grids, plan, machine, seed=seed)


class ExhaustiveTuner:
    """Run every candidate plan and keep the fastest (YASK-style search)."""

    name = "exhaustive"

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
    ) -> TunerResult:
        """Search the full spatial-block space empirically."""
        start = time.perf_counter()
        shape = grids.interior_shape
        best: tuple[float, KernelPlan] | None = None
        trace: list[tuple[str, float]] = []
        n_run = 0
        sim_seconds = 0.0
        lups = 1
        for s in shape:
            lups *= s
        for i, plan in enumerate(candidate_plans(spec, shape, machine)):
            meas = _run_variant(spec, grids, plan, machine, seed + i)
            n_run += 1
            sim_seconds += meas.runtime_seconds(lups) * 2  # warm-up + timed
            trace.append((plan.describe(), meas.mlups))
            if best is None or meas.mlups > best[0]:
                best = (meas.mlups, plan)
        assert best is not None
        return TunerResult(
            tuner=self.name,
            best_plan=best[1],
            best_mlups=best[0],
            variants_examined=n_run,
            variants_run=n_run,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
        )


class GreedyLineSearchTuner:
    """Tune one axis at a time, keeping other axes fixed (common heuristic).

    Cheaper than exhaustive but can land in a local optimum — included
    as the middle ground in the tuning-cost table.
    """

    name = "greedy"

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
    ) -> TunerResult:
        """Axis-by-axis line search over block sizes."""
        start = time.perf_counter()
        shape = grids.interior_shape
        dim = spec.dim
        lups = 1
        for s in shape:
            lups *= s
        current = list(shape)
        trace: list[tuple[str, float]] = []
        n_run = 0
        sim_seconds = 0.0
        best_mlups = -1.0
        run_seed = seed
        for axis in range(dim - 1):
            sizes = []
            b = 4
            while b < shape[axis]:
                sizes.append(b)
                b *= 2
            sizes.append(shape[axis])
            axis_best = None
            for size in sizes:
                cand = list(current)
                cand[axis] = size
                plan = KernelPlan(block=tuple(cand))
                meas = _run_variant(spec, grids, plan, machine, run_seed)
                run_seed += 1
                n_run += 1
                sim_seconds += meas.runtime_seconds(lups) * 2
                trace.append((plan.describe(), meas.mlups))
                if axis_best is None or meas.mlups > axis_best[0]:
                    axis_best = (meas.mlups, size)
            assert axis_best is not None
            current[axis] = axis_best[1]
            best_mlups = axis_best[0]
        return TunerResult(
            tuner=self.name,
            best_plan=KernelPlan(block=tuple(current)),
            best_mlups=best_mlups,
            variants_examined=n_run,
            variants_run=n_run,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
        )


class EcmGuidedTuner:
    """YaskSite's analytic path: model every candidate, run only the winner.

    The single validation run is optional (``validate=False`` gives the
    paper's pure offline mode with zero executions).
    """

    name = "ecm"

    def __init__(self, validate: bool = True, capacity_factor: float = 1.0):
        self.validate = validate
        self.capacity_factor = capacity_factor

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
    ) -> TunerResult:
        """Analytic selection over the same candidate space."""
        start = time.perf_counter()
        shape = grids.interior_shape
        choice = analytic_block_selection(
            spec, shape, machine, capacity_factor=self.capacity_factor
        )
        n_run = 0
        sim_seconds = 0.0
        mlups = choice.prediction.mlups
        trace = [(choice.plan.describe(), mlups)]
        if self.validate:
            lups = 1
            for s in shape:
                lups *= s
            meas = _run_variant(spec, grids, choice.plan, machine, seed)
            n_run = 1
            sim_seconds = meas.runtime_seconds(lups) * 2
            mlups = meas.mlups
            trace.append((choice.plan.describe(), mlups))
        return TunerResult(
            tuner=self.name,
            best_plan=choice.plan,
            best_mlups=mlups,
            variants_examined=choice.candidates_examined,
            variants_run=n_run,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
        )

"""Tuner implementations and their cost accounting."""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.blocking.spatial import analytic_block_selection
from repro.cachesim.memo import default_traffic_cache
from repro.codegen.plan import KernelPlan, candidate_plans
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.perf.simulate import Measurement, simulate_kernel
from repro.stencil.spec import StencilSpec


@dataclass
class TunerResult:
    """Outcome of one tuning run, with its cost ledger.

    ``variants_run`` counts kernels that had to be *executed* (the
    expensive part the paper eliminates); ``simulated_run_seconds`` sums
    the simulated wall time those runs would have cost on the target
    machine; ``tuner_seconds`` is the actual time the tuner logic took.
    ``traffic_cache_hits``/``misses`` count traffic-memoization lookups
    during the run; ``workers`` records the degree of parallelism used.
    """

    tuner: str
    best_plan: KernelPlan
    best_mlups: float
    variants_examined: int
    variants_run: int
    simulated_run_seconds: float
    tuner_seconds: float
    trace: list[tuple[str, float]] = field(default_factory=list)
    traffic_cache_hits: int = 0
    traffic_cache_misses: int = 0
    workers: int = 1


def _run_variant(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    seed: int,
) -> Measurement:
    return simulate_kernel(spec, grids, plan, machine, seed=seed)


# --- parallel variant evaluation -------------------------------------------
#
# Measurements are deterministic functions of (plan, seed), so evaluating a
# batch of variants in worker processes and reducing the results in submission
# order yields exactly the serial tuner's outcome.  The GridSet is rebuilt in
# each worker (its NumPy buffers are large and never read by the simulator's
# address arithmetic) instead of being pickled per task.

_WORKER_STATE: dict = {}


def _worker_init(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    extra_halo: int,
    machine: Machine,
) -> None:
    _WORKER_STATE["spec"] = spec
    _WORKER_STATE["grids"] = GridSet(spec, interior_shape, extra_halo)
    _WORKER_STATE["machine"] = machine


def _worker_eval(job: tuple[KernelPlan, int]) -> tuple[Measurement, int, int]:
    plan, seed = job
    cache = default_traffic_cache()
    h0, m0 = cache.hits, cache.misses
    meas = simulate_kernel(
        _WORKER_STATE["spec"],
        _WORKER_STATE["grids"],
        plan,
        _WORKER_STATE["machine"],
        seed=seed,
    )
    return meas, cache.hits - h0, cache.misses - m0


def _evaluate_variants(
    spec: StencilSpec,
    grids: GridSet,
    machine: Machine,
    jobs: list[tuple[KernelPlan, int]],
    workers: int = 1,
) -> list[tuple[Measurement, int, int]]:
    """Evaluate ``(plan, seed)`` jobs, serially or in worker processes.

    Returns ``(measurement, cache_hit_delta, cache_miss_delta)`` per job,
    in submission order — the reduction over this list is independent of
    ``workers``.
    """
    with obs.span("tuner.evaluate") as sp:
        sp.add(jobs=len(jobs), workers=max(1, workers))
        if workers <= 1:
            cache = default_traffic_cache()
            out = []
            for plan, seed in jobs:
                h0, m0 = cache.hits, cache.misses
                meas = simulate_kernel(spec, grids, plan, machine, seed=seed)
                out.append((meas, cache.hits - h0, cache.misses - m0))
            return out
        # Spans cannot cross process boundaries: the pool's wall time is
        # attributed here at the submission site, not inside the workers.
        extra_halo = grids.output.halo - spec.radius
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(spec, grids.interior_shape, extra_halo, machine),
        ) as ex:
            return list(ex.map(_worker_eval, jobs))


def make_tuner(name: str, workers: int = 1):
    """Construct a tuner by registry name (see :data:`TUNERS`).

    The single entry point shared by :class:`repro.core.YaskSite`, the
    CLI and the service: ``workers`` is forwarded to the empirical
    tuners and ignored by the analytic one (nothing to parallelise).
    """
    try:
        cls = TUNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown tuner {name!r}; choose from {sorted(TUNERS)}"
        ) from None
    if name == "ecm":
        return cls()
    return cls(workers=workers)


class ExhaustiveTuner:
    """Run every candidate plan and keep the fastest (YASK-style search).

    ``workers > 1`` evaluates the candidates in that many processes; the
    reduction walks results in candidate order with a strict ``>``, so
    the chosen plan is identical to the serial run for any ``workers``.
    """

    name = "exhaustive"

    def __init__(self, workers: int = 1):
        self.workers = workers

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
    ) -> TunerResult:
        """Search the full spatial-block space empirically."""
        start = time.perf_counter()
        shape = grids.interior_shape
        best: tuple[float, KernelPlan] | None = None
        trace: list[tuple[str, float]] = []
        sim_seconds = 0.0
        cache_hits = cache_misses = 0
        lups = 1
        for s in shape:
            lups *= s
        jobs = [
            (plan, seed + i)
            for i, plan in enumerate(candidate_plans(spec, shape, machine))
        ]
        results = _evaluate_variants(
            spec, grids, machine, jobs, workers=self.workers
        )
        for (plan, _), (meas, dh, dm) in zip(jobs, results):
            sim_seconds += meas.runtime_seconds(lups) * 2  # warm-up + timed
            cache_hits += dh
            cache_misses += dm
            trace.append((plan.describe(), meas.mlups))
            if best is None or meas.mlups > best[0]:
                best = (meas.mlups, plan)
        assert best is not None
        return TunerResult(
            tuner=self.name,
            best_plan=best[1],
            best_mlups=best[0],
            variants_examined=len(jobs),
            variants_run=len(jobs),
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
            traffic_cache_hits=cache_hits,
            traffic_cache_misses=cache_misses,
            workers=self.workers,
        )


class GreedyLineSearchTuner:
    """Tune one axis at a time, keeping other axes fixed (common heuristic).

    Cheaper than exhaustive but can land in a local optimum — included
    as the middle ground in the tuning-cost table.
    """

    name = "greedy"

    def __init__(self, workers: int = 1):
        self.workers = workers

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
    ) -> TunerResult:
        """Axis-by-axis line search over block sizes.

        Candidates within one axis are independent, so each axis's batch
        is evaluated via :func:`_evaluate_variants` (parallel when
        ``workers > 1``); the per-candidate seed numbering matches the
        serial loop exactly.
        """
        start = time.perf_counter()
        shape = grids.interior_shape
        dim = spec.dim
        lups = 1
        for s in shape:
            lups *= s
        current = list(shape)
        trace: list[tuple[str, float]] = []
        n_run = 0
        sim_seconds = 0.0
        cache_hits = cache_misses = 0
        best_mlups = -1.0
        run_seed = seed
        for axis in range(dim - 1):
            sizes = []
            b = 4
            while b < shape[axis]:
                sizes.append(b)
                b *= 2
            sizes.append(shape[axis])
            jobs = []
            for size in sizes:
                cand = list(current)
                cand[axis] = size
                jobs.append((KernelPlan(block=tuple(cand)), run_seed))
                run_seed += 1
            results = _evaluate_variants(
                spec, grids, machine, jobs, workers=self.workers
            )
            axis_best = None
            for size, (plan, _), (meas, dh, dm) in zip(sizes, jobs, results):
                n_run += 1
                sim_seconds += meas.runtime_seconds(lups) * 2
                cache_hits += dh
                cache_misses += dm
                trace.append((plan.describe(), meas.mlups))
                if axis_best is None or meas.mlups > axis_best[0]:
                    axis_best = (meas.mlups, size)
            assert axis_best is not None
            current[axis] = axis_best[1]
            best_mlups = axis_best[0]
        return TunerResult(
            tuner=self.name,
            best_plan=KernelPlan(block=tuple(current)),
            best_mlups=best_mlups,
            variants_examined=n_run,
            variants_run=n_run,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
            traffic_cache_hits=cache_hits,
            traffic_cache_misses=cache_misses,
            workers=self.workers,
        )


class EcmGuidedTuner:
    """YaskSite's analytic path: model every candidate, run only the winner.

    The single validation run is optional (``validate=False`` gives the
    paper's pure offline mode with zero executions).
    """

    name = "ecm"

    def __init__(self, validate: bool = True, capacity_factor: float = 1.0):
        self.validate = validate
        self.capacity_factor = capacity_factor

    def tune(
        self,
        spec: StencilSpec,
        grids: GridSet,
        machine: Machine,
        seed: int = 0,
    ) -> TunerResult:
        """Analytic selection over the same candidate space."""
        start = time.perf_counter()
        shape = grids.interior_shape
        choice = analytic_block_selection(
            spec, shape, machine, capacity_factor=self.capacity_factor
        )
        n_run = 0
        sim_seconds = 0.0
        cache_hits = cache_misses = 0
        mlups = choice.prediction.mlups
        trace = [(choice.plan.describe(), mlups)]
        if self.validate:
            lups = 1
            for s in shape:
                lups *= s
            ((meas, cache_hits, cache_misses),) = _evaluate_variants(
                spec, grids, machine, [(choice.plan, seed)]
            )
            n_run = 1
            sim_seconds = meas.runtime_seconds(lups) * 2
            mlups = meas.mlups
            trace.append((choice.plan.describe(), mlups))
        return TunerResult(
            tuner=self.name,
            best_plan=choice.plan,
            best_mlups=mlups,
            variants_examined=choice.candidates_examined,
            variants_run=n_run,
            simulated_run_seconds=sim_seconds,
            tuner_seconds=time.perf_counter() - start,
            trace=trace,
            traffic_cache_hits=cache_hits,
            traffic_cache_misses=cache_misses,
        )


#: Registry of tuner implementations by CLI/service name.
TUNERS = {
    "ecm": EcmGuidedTuner,
    "exhaustive": ExhaustiveTuner,
    "greedy": GreedyLineSearchTuner,
}

"""Atomic checkpoint/resume for empirical tuner sweeps.

A long exhaustive or greedy sweep periodically persists its completed
``(job, measurement)`` pairs so a crashed or deadline-killed run can be
resumed instead of redone.  Entries are keyed by the same
content-addressed fingerprints the traffic memo uses (stencil geometry,
grid placement, clipped plan, cache geometry) plus the per-job noise
seed — so a checkpoint can only ever resupply a measurement the sweep
would have recomputed bit-identically, and a checkpoint taken with a
different seed, grid or machine simply never matches.

The file is a checksummed :mod:`repro.util.crashsafe` envelope written
atomically every ``interval`` completions: a crash mid-write leaves the
previous checkpoint intact, and a corrupted file is quarantined and
ignored rather than poisoning the resume.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.cachesim.memo import (
    content_digest,
    report_from_dict,
    report_to_dict,
    sweep_key,
)
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.perf.simulate import Measurement
from repro.stencil.spec import StencilSpec
from repro.util import crashsafe

__all__ = [
    "JsonCheckpoint",
    "TunerCheckpoint",
    "tuner_fingerprint",
    "measurement_to_dict",
    "measurement_from_dict",
]


def measurement_to_dict(meas: Measurement) -> dict:
    """JSON form of one simulated measurement."""
    return {
        "spec_name": meas.spec_name,
        "machine_name": meas.machine_name,
        "plan_label": meas.plan_label,
        "cores": meas.cores,
        "cycles_per_lup": meas.cycles_per_lup,
        "freq_ghz": meas.freq_ghz,
        "traffic": report_to_dict(meas.traffic),
    }


def measurement_from_dict(data: dict) -> Measurement:
    """Inverse of :func:`measurement_to_dict`."""
    return Measurement(
        spec_name=data["spec_name"],
        machine_name=data["machine_name"],
        plan_label=data["plan_label"],
        cores=int(data["cores"]),
        cycles_per_lup=float(data["cycles_per_lup"]),
        traffic=report_from_dict(data["traffic"]),
        freq_ghz=float(data["freq_ghz"]),
    )


def tuner_fingerprint(
    tuner: str,
    spec: StencilSpec,
    grids: GridSet,
    machine: Machine,
    seed: int,
) -> str:
    """Identity of one tuning run for checkpoint compatibility checks.

    Job keys are already content-addressed, so a mismatched checkpoint
    could never resupply a wrong measurement — the fingerprint exists so
    an operator pointing ``--checkpoint`` at the wrong file gets a clean
    fresh sweep instead of a file that silently accumulates two runs.
    """
    return content_digest(
        {
            "kind": "tuner-checkpoint",
            "tuner": tuner,
            "spec": spec.name,
            "machine": machine.name,
            "grid": list(grids.interior_shape),
            "seed": seed,
        }
    )


class JsonCheckpoint:
    """Crash-safe key→JSON store with periodic atomic flushes.

    The generic substrate: callers bring their own entry schema and
    keying discipline (see :class:`TunerCheckpoint` for the autotune
    sweeps, :class:`repro.offsite.tuner.OffsiteTuner` for variant
    rankings).  Every ``interval`` puts the store flushes itself
    atomically; call :meth:`flush` once more when the run finishes.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        fingerprint: str,
        interval: int = 4,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.interval = max(1, interval)
        self._entries: dict[str, dict] = {}
        self._dirty = 0
        self._load()

    def _load(self) -> None:
        try:
            payload = crashsafe.load_envelope(self.path)
        except FileNotFoundError:
            return
        except OSError:
            return  # unreadable: resume from nothing, keep the file
        except crashsafe.CorruptPayload:
            crashsafe.quarantine(self.path)
            return
        if (
            not isinstance(payload, dict)
            or payload.get("fingerprint") != self.fingerprint
            or not isinstance(payload.get("entries"), dict)
        ):
            return  # a different run's checkpoint: ignore its entries
        self._entries = dict(payload["entries"])

    def __len__(self) -> int:
        return len(self._entries)

    def get_raw(self, key: str):
        """The stored JSON value for ``key``, if any."""
        return self._entries.get(key)

    def put_raw(self, key: str, value) -> None:
        """Store a JSON value; flush every ``interval`` puts."""
        self._entries[key] = value
        self._dirty += 1
        if self._dirty >= self.interval:
            self.flush()

    def flush(self) -> None:
        """Atomically persist all entries (no-op when nothing changed)."""
        if not self._dirty:
            return
        crashsafe.dump_envelope(
            self.path,
            {"fingerprint": self.fingerprint, "entries": self._entries},
        )
        self._dirty = 0


class TunerCheckpoint(JsonCheckpoint):
    """Checkpoint of completed sweep measurements, keyed by job content."""

    def job_key(
        self,
        spec: StencilSpec,
        grids: GridSet,
        plan: KernelPlan,
        machine: Machine,
        seed: int,
    ) -> str:
        """Content key of one tuner job (sweep identity + noise seed)."""
        return content_digest(
            {
                "kind": "tuner-job",
                "sweep": sweep_key(spec, grids, plan, machine, True),
                "plan": plan.describe(),
                "seed": seed,
            }
        )

    def get(self, key: str) -> Measurement | None:
        """A checkpointed measurement for ``key``, if one verifies."""
        entry = self.get_raw(key)
        if entry is None:
            return None
        try:
            return measurement_from_dict(entry)
        except (KeyError, TypeError, ValueError):
            del self._entries[key]  # malformed entry: recompute
            return None

    def put(self, key: str, meas: Measurement) -> None:
        """Record a completed measurement; flush every ``interval`` puts."""
        self.put_raw(key, measurement_to_dict(meas))

"""The YaskSite facade: one object tying the whole pipeline together.

Typical use::

    ys = YaskSite("clx")
    spec = get_stencil("3d7pt")
    kernel = ys.compile(spec, (64, 64, 64))       # analytically tuned
    pred = ys.predict(spec, (64, 64, 64), kernel.plan)
    meas = ys.measure(spec, (64, 64, 64), kernel.plan)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.autotune.search import TunerResult, make_tuner
from repro.blocking.spatial import BlockChoice, analytic_block_selection
from repro.codegen.compiler import CompiledKernel, compile_kernel
from repro.codegen.plan import KernelPlan
from repro.ecm.model import EcmPrediction, predict
from repro.ecm.multicore import ScalingPoint, scaling_curve
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.machine.presets import get_machine
from repro.perf.multicore import simulate_scaling
from repro.perf.simulate import Measurement, simulate_kernel
from repro.stencil.spec import StencilSpec


class YaskSite:
    """Stencil optimisation front end bound to one target machine.

    Parameters
    ----------
    machine:
        A :class:`~repro.machine.Machine` or a preset short name
        (``"clx"``, ``"rome"``, ``"generic"``).
    capacity_factor:
        Cache-capacity derating used by the analytic model.
    cache_scale:
        Optional factor shrinking every cache (grids in the exact
        simulator are shrunk in proportion by the experiments; see
        DESIGN.md).
    """

    def __init__(
        self,
        machine: Machine | str,
        capacity_factor: float = 1.0,
        cache_scale: float | None = None,
    ) -> None:
        if isinstance(machine, str):
            machine = get_machine(machine)
        if cache_scale is not None:
            machine = machine.scaled_caches(cache_scale)
        self.machine = machine
        self.capacity_factor = capacity_factor

    # ------------------------------------------------------------------
    def compile_text(
        self,
        definition: str,
        shape: tuple[int, ...],
        name: str = "parsed",
        params: dict[str, float] | None = None,
        plan: KernelPlan | None = None,
    ) -> CompiledKernel:
        """Parse a textual stencil definition and compile it.

        >>> ys = YaskSite("generic")
        >>> k = ys.compile_text("out[0,0] = 0.5*u[0,0] + 0.25*(u[0,1]"
        ...                     " + u[0,-1])", shape=(8, 16))
        """
        from repro.stencil.parser import parse_stencil

        spec = parse_stencil(definition, name=name, params=params)
        return self.compile(spec, shape, plan=plan)

    def select_block(
        self, spec: StencilSpec, shape: tuple[int, ...], threads: int = 1
    ) -> BlockChoice:
        """Analytic (model-only) block-size selection."""
        return analytic_block_selection(
            spec,
            shape,
            self.machine,
            threads=threads,
            capacity_factor=self.capacity_factor,
        )

    def compile(
        self,
        spec: StencilSpec,
        shape: tuple[int, ...],
        plan: KernelPlan | None = None,
    ) -> CompiledKernel:
        """Compile ``spec``; without a plan the analytic choice is used."""
        if plan is None:
            plan = self.select_block(spec, shape).plan
        return compile_kernel(spec, shape, plan, machine=self.machine)

    def predict(
        self,
        spec: StencilSpec,
        shape: tuple[int, ...],
        plan: KernelPlan,
    ) -> EcmPrediction:
        """Single-core ECM prediction for one configuration."""
        return predict(
            spec, shape, plan, self.machine,
            capacity_factor=self.capacity_factor,
        )

    def measure(
        self,
        spec: StencilSpec,
        shape: tuple[int, ...],
        plan: KernelPlan,
        seed: int = 0,
        grids: GridSet | None = None,
        predictor: str = "auto",
    ) -> Measurement:
        """Simulated measurement (exact cache replay) of one config.

        ``predictor`` selects the traffic predictor (``"auto"``,
        ``"lc"``, ``"simulate"``); LC-served traffic is bit-identical
        to the replay, so the measurement itself never depends on it.
        """
        if grids is None:
            grids = GridSet(spec, shape)
        return simulate_kernel(
            spec, grids, plan, self.machine, seed=seed, predictor=predictor
        )

    def tune(
        self,
        spec: StencilSpec,
        shape: tuple[int, ...],
        tuner: str = "ecm",
        seed: int = 0,
        workers: int = 1,
        deadline: float | None = None,
        checkpoint: str | None = None,
        validate: bool = True,
        predictor: str = "auto",
    ) -> TunerResult:
        """Run one of the tuners ("ecm", "exhaustive", "greedy").

        ``workers`` parallelises the empirical tuners' variant
        evaluations across processes; the result is identical to a
        serial run (the ECM tuner ignores it — there is nothing to
        parallelise over).  ``deadline`` (epoch seconds) makes the
        empirical tuners stop starting new variant evaluations once
        passed; ``checkpoint`` persists/resumes their completed
        measurements; ``validate`` is the ECM tuner's single
        validation-run switch.  ``predictor`` selects the traffic
        predictor for every variant evaluation — ``"auto"`` and
        ``"simulate"`` produce bit-identical reports, so winners match
        exactly; forcing ``"lc"`` raises ``PredictorError`` on the
        first variant the analysis declines (tuner sweeps always
        contain blocked variants it never certifies) instead of
        silently degrading the search.
        """
        instance = make_tuner(
            tuner, workers=workers, checkpoint=checkpoint, validate=validate,
            predictor=predictor,
        )
        grids = GridSet(spec, shape)
        with obs.span(f"tuner.{tuner}"):
            return instance.tune(
                spec, grids, self.machine, seed=seed, deadline=deadline
            )

    def predicted_scaling(
        self,
        spec: StencilSpec,
        shape: tuple[int, ...],
        plan: KernelPlan,
        max_cores: int | None = None,
    ) -> list[ScalingPoint]:
        """ECM multicore scaling prediction."""
        pred = self.predict(spec, shape, plan)
        cores = max_cores or self.machine.cores
        return scaling_curve(pred, self.machine.mem_bw_gbs, cores)

    def measured_scaling(
        self,
        spec: StencilSpec,
        shape: tuple[int, ...],
        plan: KernelPlan,
        core_counts: list[int],
        seed: int = 0,
    ) -> list[Measurement]:
        """Simulated multicore scaling measurements."""
        grids = GridSet(spec, shape)
        return simulate_scaling(
            spec, grids, plan, self.machine, core_counts, seed=seed
        )

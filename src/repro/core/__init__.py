"""Public facade: the :class:`YaskSite` tool object."""

from repro.core.yasksite import YaskSite

__all__ = ["YaskSite"]

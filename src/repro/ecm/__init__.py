"""Execution-Cache-Memory (ECM) performance model.

The analytic heart of YaskSite: predicts stencil kernel performance
from machine and kernel properties alone — no execution required.

* :mod:`repro.ecm.incore` — port-based in-core model (T_OL, T_nOL).
* :mod:`repro.ecm.layer_conditions` — cache traffic from layer conditions.
* :mod:`repro.ecm.model` — single-core ECM composition.
* :mod:`repro.ecm.multicore` — bandwidth-saturation scaling model.
* :mod:`repro.ecm.roofline` — classic roofline, used as a contrast model.
"""

from repro.ecm.incore import InCoreSummary, incore_model
from repro.ecm.layer_conditions import (
    LayerConditionReport,
    boundary_traffic,
    effective_capacity,
)
from repro.ecm.model import EcmComposition, EcmPrediction, predict
from repro.ecm.multicore import saturation_point, scaling_curve
from repro.ecm.roofline import roofline_predict

__all__ = [
    "InCoreSummary",
    "incore_model",
    "LayerConditionReport",
    "boundary_traffic",
    "effective_capacity",
    "EcmComposition",
    "EcmPrediction",
    "predict",
    "scaling_curve",
    "saturation_point",
    "roofline_predict",
]

"""Multicore ECM: linear scaling until memory-bandwidth saturation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecm.model import EcmPrediction


@dataclass(frozen=True)
class ScalingPoint:
    """Predicted performance at one core count."""

    cores: int
    mlups: float
    saturated: bool


def saturation_mlups(pred: EcmPrediction, mem_bw_gbs: float) -> float:
    """Bandwidth-bound performance ceiling in MLUP/s."""
    bytes_per_lup = pred.memory_bytes_per_lup()
    if bytes_per_lup <= 0:
        return float("inf")
    return mem_bw_gbs * 1e9 / bytes_per_lup / 1e6


def scaling_curve(
    pred: EcmPrediction,
    mem_bw_gbs: float,
    max_cores: int,
) -> list[ScalingPoint]:
    """ECM scaling prediction: ``P(n) = min(n * P_1, P_sat)``.

    ``pred`` must be a single-core prediction; ``mem_bw_gbs`` is the
    saturated bandwidth of the scaling domain (socket or CCX).
    """
    if max_cores <= 0:
        raise ValueError("max_cores must be positive")
    p1 = pred.mlups
    p_sat = saturation_mlups(pred, mem_bw_gbs)
    points = []
    for n in range(1, max_cores + 1):
        linear = n * p1
        points.append(
            ScalingPoint(
                cores=n,
                mlups=min(linear, p_sat),
                saturated=linear >= p_sat,
            )
        )
    return points


def saturation_point(pred: EcmPrediction, mem_bw_gbs: float) -> float:
    """Predicted number of cores at which memory bandwidth saturates."""
    p1 = pred.mlups
    if p1 <= 0:
        raise ValueError("single-core prediction must be positive")
    return saturation_mlups(pred, mem_bw_gbs) / p1

"""Single-core ECM composition: T_ECM = max(T_OL, T_nOL + sum T_data).

Two overlap hypotheses are supported (the two poles the ECM literature
uses for Intel vs. AMD microarchitectures):

* ``SERIAL`` (default, Intel-like): cache transfers on different levels
  serialise — ``T_ECM = max(T_OL, T_nOL + sum_k T_data_k)``.
* ``OVERLAP`` (AMD-like): transfers on different levels proceed
  concurrently — ``T_ECM = max(T_OL, T_nOL, max_k T_data_k)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import obs
from repro.codegen.plan import KernelPlan
from repro.ecm.incore import InCoreSummary, incore_model
from repro.ecm.layer_conditions import LayerConditionReport, boundary_traffic
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec


class EcmComposition(enum.Enum):
    """Overlap hypothesis for composing per-level transfer times."""

    SERIAL = "serial"
    OVERLAP = "overlap"


@dataclass(frozen=True)
class EcmPrediction:
    """Full analytic prediction for one kernel configuration.

    All times are core cycles per cache line of updates (8 doubles for
    64-byte lines), the canonical ECM unit.
    """

    spec_name: str
    machine_name: str
    plan_label: str
    incore: InCoreSummary
    traffic: LayerConditionReport
    t_data: tuple[float, ...]
    lups_per_line: int
    freq_ghz: float
    composition: EcmComposition = EcmComposition.SERIAL

    @property
    def t_ol(self) -> float:
        """Overlapping (arithmetic) cycles per cache line."""
        return self.incore.t_ol

    @property
    def t_nol(self) -> float:
        """Non-overlapping (L1 port) cycles per cache line."""
        return self.incore.t_nol

    @property
    def t_ecm(self) -> float:
        """Predicted cycles per cache line of updates."""
        if self.composition is EcmComposition.OVERLAP:
            return max(self.t_ol, self.t_nol, max(self.t_data, default=0.0))
        return max(self.t_ol, self.t_nol + sum(self.t_data))

    @property
    def cycles_per_lup(self) -> float:
        """Cycles per lattice update."""
        return self.t_ecm / self.lups_per_line

    @property
    def mlups(self) -> float:
        """Predicted single-core performance in MLUP/s."""
        return self.freq_ghz * 1e3 / self.cycles_per_lup

    @property
    def runtime_per_lup_ns(self) -> float:
        """Nanoseconds per lattice update."""
        return self.cycles_per_lup / self.freq_ghz

    def memory_bytes_per_lup(self) -> float:
        """Predicted main-memory volume per update (saturation input)."""
        return self.traffic.elements_per_lup[-1] * 8.0

    def notation(self) -> str:
        """The conventional `{T_OL || T_nOL | T_L1L2 | ...}` string."""
        parts = " | ".join(f"{t:.1f}" for t in self.t_data)
        return f"{{{self.t_ol:.1f} ∥ {self.t_nol:.1f} | {parts}}} cy/CL"


def predict(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    plan: KernelPlan,
    machine: Machine,
    capacity_factor: float = 1.0,
    assume_no_reuse: bool = False,
    composition: EcmComposition = EcmComposition.SERIAL,
    detailed: bool = False,
) -> EcmPrediction:
    """Run the full single-core ECM analysis for one configuration.

    ``detailed=True`` replaces the throughput-count in-core model with
    the port-level scheduler (:mod:`repro.ecm.portsim`), the
    OSACA/IACA-style path the paper's workflow uses.
    """
    plan = plan.clipped(interior_shape)
    with obs.span("ecm.predict"):
        incore = incore_model(spec, machine, plan.fold)
        if detailed:
            from dataclasses import replace as _replace

            from repro.ecm.portsim import detailed_incore

            port = detailed_incore(spec, machine)
            incore = _replace(incore, t_ol=port.t_ol, t_nol=port.t_nol)
        traffic = boundary_traffic(
            spec,
            interior_shape,
            plan,
            machine,
            capacity_factor=capacity_factor,
            assume_no_reuse=assume_no_reuse,
        )
        elems_per_line = machine.line_bytes // spec.dtype_bytes
        t_data = []
        for k, elems in enumerate(traffic.elements_per_lup):
            bytes_per_cl = elems * spec.dtype_bytes * elems_per_line
            if k == machine.n_levels - 1:
                cycles = (
                    bytes_per_cl
                    * machine.mem_cycles_per_line(1)
                    / machine.line_bytes
                )
            else:
                cycles = bytes_per_cl / machine.caches[k].bytes_per_cycle
            t_data.append(cycles)
    return EcmPrediction(
        spec_name=spec.name,
        machine_name=machine.name,
        plan_label=plan.describe(),
        incore=incore,
        traffic=traffic,
        t_data=tuple(t_data),
        lups_per_line=elems_per_line,
        freq_ghz=machine.freq_ghz,
        composition=composition,
    )

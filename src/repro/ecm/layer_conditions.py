"""Layer-condition analysis: cache traffic without running anything.

For a blocked stencil sweep the data volume crossing each cache
boundary is governed by which *layer condition* the cache level
satisfies:

* **LC_plane** — the level holds all planes of the block the stencil
  keeps in flight: every input element crosses the boundary once per
  block (plus block-halo overhead), the classic ``(1 + 2r/b)`` factors.
* **LC_row** — the level holds the rows in flight for one row sweep:
  one new row per distinct leading-axis offset group crosses per
  iteration.
* **none** — every distinct row projection of the stencil misses.

The store stream always contributes a write-allocate read plus a
write-back (two elements per update) at every boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.plan import KernelPlan
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec


def effective_capacity(machine: Machine, boundary: int) -> int:
    """Cache bytes that must hold a working set to silence ``boundary``.

    For the fill-through (inclusive-ish) levels this is the capacity of
    level ``boundary`` itself; an exclusive victim last level adds the
    capacity of the level above it.
    """
    caches = machine.caches
    level = caches[boundary]
    if level.victim:
        return level.size_bytes + caches[boundary - 1].size_bytes
    return level.size_bytes


@dataclass(frozen=True)
class _GridPattern:
    """Offset geometry of one read grid, projected for LC analysis."""

    name: str
    ext: tuple[int, ...]  # per-axis offset span (max - min)
    n_rows: int  # distinct row projections (all axes but x)
    n_groups: int  # distinct leading-axis offsets


def _patterns(spec: StencilSpec) -> list[_GridPattern]:
    pats = []
    for grid in spec.reads:
        offs = spec.offsets[grid]
        dim = spec.dim
        ext = tuple(
            max(o[a] for o in offs) - min(o[a] for o in offs) for a in range(dim)
        )
        rows = {o[:-1] for o in offs}
        groups = {o[0] for o in offs} if dim >= 3 else {0}
        pats.append(_GridPattern(grid, ext, len(rows), len(groups)))
    return pats


@dataclass
class LayerConditionReport:
    """Per-boundary traffic prediction in elements per lattice update."""

    boundaries: tuple[str, ...]
    regimes: tuple[str, ...]
    elements_per_lup: tuple[float, ...]
    working_set_row: float
    working_set_plane: float

    def bytes_per_lup(self, dtype_bytes: int) -> tuple[float, ...]:
        """Convert element volumes to bytes."""
        return tuple(e * dtype_bytes for e in self.elements_per_lup)


def boundary_traffic(
    spec: StencilSpec,
    interior_shape: tuple[int, ...],
    plan: KernelPlan,
    machine: Machine,
    capacity_factor: float = 1.0,
    assume_no_reuse: bool = False,
) -> LayerConditionReport:
    """Predict per-boundary traffic for one blocked sweep.

    ``capacity_factor`` derates cache capacities (LRU/conflict safety
    margin).  ``assume_no_reuse`` disables layer conditions entirely —
    the naive traffic model used by the F7 ablation.
    """
    dim = spec.dim
    plan = plan.clipped(interior_shape)
    pats = _patterns(spec)
    dtype = spec.dtype_bytes
    nx = plan.block[dim - 1]
    by = plan.block[dim - 2] if dim >= 2 else 1
    bz = plan.block[0] if dim >= 3 else 1

    # Working sets (bytes) that must fit to satisfy each condition.
    ws_row = 0.0
    ws_plane = 0.0
    for pat in pats:
        ws_row += (pat.n_rows + 1) * nx * dtype
        ext_y = pat.ext[dim - 2] if dim >= 2 else 0
        ext_z = pat.ext[0] if dim >= 3 else 0
        # Rows in flight for full reuse: every in-flight plane keeps its
        # already-visited `by` rows, plus the y-window of the centre
        # plane.  (Charging `by + ext_y` rows for *every* plane would
        # overstate the set and miss reuse the LRU simulator achieves.)
        ws_plane += ((ext_z + 1) * by + ext_y) * nx * dtype
    # Output stream keeps one row / one block-plane in flight.
    ws_row += 2 * nx * dtype
    ws_plane += by * nx * dtype

    store_elems = 2.0  # write-allocate read + write-back

    regimes: list[str] = []
    elements: list[float] = []
    names: list[str] = []
    n_boundaries = machine.n_levels
    for k in range(n_boundaries):
        cap = effective_capacity(machine, k) * capacity_factor
        if assume_no_reuse:
            regime = "none"
        elif cap >= ws_plane:
            regime = "plane"
        elif cap >= ws_row:
            regime = "row"
        else:
            regime = "none"
        t_in = 0.0
        for pat in pats:
            if regime == "plane":
                ext_y = pat.ext[dim - 2] if dim >= 2 else 0
                ext_z = pat.ext[0] if dim >= 3 else 0
                vol = 1.0
                if dim >= 3 and bz < interior_shape[0]:
                    vol *= 1.0 + ext_z / bz
                if dim >= 2 and by < interior_shape[dim - 2]:
                    vol *= 1.0 + ext_y / by
                t_in += vol
            elif regime == "row":
                t_in += pat.n_groups
            else:
                t_in += pat.n_rows
        regimes.append(regime)
        elements.append(t_in + store_elems)
        next_name = (
            machine.caches[k + 1].name if k + 1 < machine.n_levels else "Mem"
        )
        names.append(f"{machine.caches[k].name}-{next_name}")
    return LayerConditionReport(
        boundaries=tuple(names),
        regimes=tuple(regimes),
        elements_per_lup=tuple(elements),
        working_set_row=ws_row,
        working_set_plane=ws_plane,
    )

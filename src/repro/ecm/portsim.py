"""Port-level in-core scheduling — the OSACA/IACA substitute.

The paper's ECM workflow derives ``T_OL``/``T_nOL`` from a static
analyzer (IACA, later OSACA) that maps the kernel's instructions onto
execution ports.  This module reproduces that analysis for our stencil
kernels:

1. the update expression is optimised (:mod:`repro.codegen.optimize`),
2. lowered to a SIMD instruction DAG (loads, FMA-contracted arithmetic,
   one store),
3. list-scheduled onto the machine's ports with instruction latencies,

yielding both the throughput bound (port pressure, the steady-state
quantity ECM uses) and the latency bound (critical path — relevant for
tiny loop bodies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.optimize import TempRef, eliminate_common_subexpressions, fold_constants
from repro.machine.machine import Machine
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec

#: Instruction latencies in cycles (typical Skylake/Zen2 SIMD values).
LATENCY = {"load": 5, "store": 4, "add": 4, "mul": 4, "fma": 4, "div": 13}

#: Reciprocal throughput contribution (uops) per instruction class.
DIV_RTHROUGHPUT = 8.0


@dataclass
class Instruction:
    """One SIMD instruction in the kernel body DAG."""

    index: int
    kind: str  # load / store / add / mul / fma / div
    deps: tuple[int, ...] = ()
    label: str = ""

    @property
    def latency(self) -> int:
        """Result latency in cycles."""
        return LATENCY[self.kind]


@dataclass
class PortSchedule:
    """Result of scheduling one loop body."""

    instructions: list[Instruction]
    throughput_cycles: float  # steady-state cycles per iteration
    latency_cycles: int  # critical path of one iteration
    port_cycles: dict[str, float]  # per-port busy cycles

    @property
    def n_instructions(self) -> int:
        """Instruction count of the body."""
        return len(self.instructions)

    def bound(self) -> str:
        """Which bound dominates ("throughput" or "latency")."""
        return (
            "latency"
            if self.latency_cycles > self.throughput_cycles
            else "throughput"
        )


class _Lowerer:
    """Lower an optimised expression DAG to the instruction list."""

    def __init__(self) -> None:
        self.instructions: list[Instruction] = []
        self._load_of: dict[tuple[str, tuple[int, ...]], int] = {}
        self._temp_result: dict[int, int] = {}

    def _emit(self, kind: str, deps: tuple[int, ...], label: str = "") -> int:
        idx = len(self.instructions)
        self.instructions.append(
            Instruction(index=idx, kind=kind, deps=deps, label=label)
        )
        return idx

    def lower(self, node: E.Expr) -> int | None:
        """Lower one node; return producing instruction index.

        Constants and parameters live in registers: they produce no
        instruction and return ``None``.
        """
        if isinstance(node, (E.Const, E.Param)):
            return None
        if isinstance(node, TempRef):
            return self._temp_result[node.index]
        if isinstance(node, E.GridAccess):
            key = (node.grid, node.offsets)
            if key not in self._load_of:
                self._load_of[key] = self._emit("load", (), label=str(node))
            return self._load_of[key]
        if isinstance(node, E.BinOp):
            return self._lower_binop(node)
        raise TypeError(type(node).__name__)

    def _lower_binop(self, node: E.BinOp) -> int:
        # FMA contraction: (a*b) + c, c + (a*b), (a*b) - c.
        if node.op in ("+", "-"):
            for mul_side, other in ((node.lhs, node.rhs), (node.rhs, node.lhs)):
                if isinstance(mul_side, E.BinOp) and mul_side.op == "*":
                    deps = _drop_none(
                        self.lower(mul_side.lhs),
                        self.lower(mul_side.rhs),
                        self.lower(other),
                    )
                    return self._emit("fma", deps)
            deps = _drop_none(self.lower(node.lhs), self.lower(node.rhs))
            return self._emit("add", deps)
        if node.op == "*":
            deps = _drop_none(self.lower(node.lhs), self.lower(node.rhs))
            return self._emit("mul", deps)
        deps = _drop_none(self.lower(node.lhs), self.lower(node.rhs))
        return self._emit("div", deps)

    def bind_temp(self, index: int, produced_by: int | None) -> None:
        """Record the instruction producing CSE temporary ``index``."""
        if produced_by is not None:
            self._temp_result[index] = produced_by


def _drop_none(*indices: int | None) -> tuple[int, ...]:
    return tuple(i for i in indices if i is not None)


def lower_spec(spec: StencilSpec) -> list[Instruction]:
    """Optimise and lower a stencil update to one SIMD loop body."""
    folded = fold_constants(spec.expr)
    let = eliminate_common_subexpressions(folded)
    lowerer = _Lowerer()
    for i, binding in enumerate(let.bindings):
        lowerer.bind_temp(i, lowerer.lower(binding))
    root = lowerer.lower(let.root)
    lowerer._emit("store", _drop_none(root), label=spec.output)
    return lowerer.instructions


def schedule(instructions: list[Instruction], machine: Machine) -> PortSchedule:
    """List-schedule the body onto the machine's ports.

    Ports: ``fp0..fp{n-1}`` for arithmetic (FMA units), ``ld0..`` for
    loads, ``st0..`` for stores.  Greedy earliest-issue order respecting
    data dependencies; one instruction per port per cycle (divides
    occupy their port for ``DIV_RTHROUGHPUT`` cycles).
    """
    core = machine.core
    ports: dict[str, float] = {}
    for i in range(core.fma_ports):
        ports[f"fp{i}"] = 0.0
    for i in range(core.load_ports):
        ports[f"ld{i}"] = 0.0
    for i in range(core.store_ports):
        ports[f"st{i}"] = 0.0

    port_class = {
        "add": "fp", "mul": "fp", "fma": "fp", "div": "fp",
        "load": "ld", "store": "st",
    }
    # Steady-state throughput: in a pipelined loop, latency gaps are
    # hidden by overlapping iterations, so the initiation interval is
    # the occupancy of the busiest port.  Balance greedily.
    for inst in instructions:
        cls = port_class[inst.kind]
        candidates = [p for p in ports if p.startswith(cls)]
        port = min(candidates, key=lambda p: ports[p])
        ports[port] += DIV_RTHROUGHPUT if inst.kind == "div" else 1.0
    busiest = max(ports.values())

    # Latency bound: dataflow critical path of one iteration.
    ready_at: dict[int, float] = {}
    finish = 0.0
    for inst in instructions:
        start = max((ready_at[d] for d in inst.deps), default=0.0)
        ready_at[inst.index] = start + inst.latency
        finish = max(finish, ready_at[inst.index])

    return PortSchedule(
        instructions=instructions,
        throughput_cycles=busiest,
        latency_cycles=int(finish),
        port_cycles=dict(ports),
    )


@dataclass(frozen=True)
class DetailedInCore:
    """Port-simulated in-core summary, per cache line of updates."""

    t_ol: float
    t_nol: float
    schedule: PortSchedule = field(repr=False)

    @property
    def t_core(self) -> float:
        """In-core runtime with all data in L1."""
        return max(self.t_ol, self.t_nol)


def detailed_incore(spec: StencilSpec, machine: Machine) -> DetailedInCore:
    """Port-level in-core analysis in ECM units (cycles per cache line).

    ``t_ol`` is the FP-port pressure, ``t_nol`` the load/store port
    pressure, both scaled from one SIMD iteration to one cache line of
    results.
    """
    instructions = lower_spec(spec)
    sched = schedule(instructions, machine)
    lanes = machine.core.simd_lanes(spec.dtype_bytes)
    elems_per_line = machine.line_bytes // spec.dtype_bytes
    vectors_per_line = elems_per_line / lanes
    fp_busy = max(
        (v for p, v in sched.port_cycles.items() if p.startswith("fp")),
        default=0.0,
    )
    mem_busy = max(
        (v for p, v in sched.port_cycles.items() if not p.startswith("fp")),
        default=0.0,
    )
    return DetailedInCore(
        t_ol=fp_busy * vectors_per_line,
        t_nol=mem_busy * vectors_per_line,
        schedule=sched,
    )

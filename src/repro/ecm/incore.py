"""In-core part of the ECM model: T_OL and T_nOL per cache line of work.

Follows the standard ECM convention: the unit of work is one cache line
of output elements (8 doubles for 64-byte lines).  ``T_OL`` is the time
spent in instructions that can overlap with data transfers (arithmetic),
``T_nOL`` the non-overlapping part (loads/stores occupying the L1
ports).  Counts are derived from the stencil expression the way a
competent SIMD compiler would lower it: one SIMD load per distinct grid
read, one store, and maximal FMA contraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.grid.folding import Fold, default_fold
from repro.machine.machine import Machine
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec


@dataclass(frozen=True)
class InCoreSummary:
    """Instruction counts and port times for one cache line of updates."""

    vectors_per_line: float
    loads: int
    stores: int
    fma_ops: int
    add_ops: int
    mul_ops: int
    div_ops: int
    t_ol: float
    t_nol: float

    @property
    def t_core(self) -> float:
        """Pure in-core runtime (data in L1): max of the two paths."""
        return max(self.t_ol, self.t_nol)


def incore_model(
    spec: StencilSpec,
    machine: Machine,
    fold: Fold | None = None,
) -> InCoreSummary:
    """Analytic in-core cycles per cache line of output for ``spec``."""
    core = machine.core
    lanes = core.simd_lanes(spec.dtype_bytes)
    if fold is None:
        fold = default_fold(core, spec.dtype_bytes, spec.dim)
    fold.validate(core, spec.dtype_bytes, spec.dim)
    elems_per_line = machine.line_bytes // spec.dtype_bytes
    vectors_per_line = elems_per_line / lanes

    flops = E.count_flops(spec.expr)
    adds = flops["+"] + flops["-"]
    muls = flops["*"]
    divs = flops["/"]
    if core.has_fma:
        fused = min(adds, muls)
    else:
        fused = 0
    rem_add = adds - fused
    rem_mul = muls - fused

    loads = spec.n_accesses  # one SIMD load per distinct read offset
    stores = 1

    # Arithmetic micro-ops all issue to the FP ports; divides are slow.
    arith_uops = fused + rem_add + rem_mul
    div_penalty = 8.0  # cycles per SIMD divide (throughput-limited)
    t_ol_vec = arith_uops / core.fma_ports + divs * div_penalty
    t_ol_vec *= fold.shuffle_factor(spec.radius)

    t_nol_vec = loads / core.load_ports + stores / core.store_ports

    return InCoreSummary(
        vectors_per_line=vectors_per_line,
        loads=loads,
        stores=stores,
        fma_ops=fused,
        add_ops=rem_add,
        mul_ops=rem_mul,
        div_ops=divs,
        t_ol=t_ol_vec * vectors_per_line,
        t_nol=t_nol_vec * vectors_per_line,
    )

"""Classic roofline model, used as a contrast to ECM in the ablations.

Roofline only knows peak flops and memory bandwidth; it has no notion
of cache-level transfer times, so it systematically over-predicts
cache-resident stencils and cannot rank block sizes.  Including it
makes the "why ECM" argument of the paper concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec


@dataclass(frozen=True)
class RooflinePrediction:
    """Roofline estimate for one stencil on one machine."""

    spec_name: str
    machine_name: str
    peak_mflops: float
    bandwidth_mlups: float
    compute_mlups: float

    @property
    def mlups(self) -> float:
        """min(compute roof, bandwidth roof) in MLUP/s."""
        return min(self.compute_mlups, self.bandwidth_mlups)

    @property
    def memory_bound(self) -> bool:
        """True when the bandwidth roof is the binding constraint."""
        return self.bandwidth_mlups <= self.compute_mlups


def roofline_predict(
    spec: StencilSpec,
    machine: Machine,
    cores: int = 1,
) -> RooflinePrediction:
    """Roofline performance estimate at ``cores`` active cores."""
    if cores <= 0:
        raise ValueError("cores must be positive")
    core = machine.core
    lanes = core.simd_lanes(spec.dtype_bytes)
    flops_per_cycle = core.fma_ports * 2 * lanes  # FMA = 2 flops
    peak_mflops = flops_per_cycle * machine.freq_ghz * 1e3 * cores
    compute_mlups = peak_mflops / spec.flops

    bw = min(machine.mem_bw_gbs, cores * machine.mem_bw_core_gbs)
    bandwidth_mlups = bw * 1e9 / spec.code_balance_bytes() / 1e6
    return RooflinePrediction(
        spec_name=spec.name,
        machine_name=machine.name,
        peak_mflops=peak_mflops,
        bandwidth_mlups=bandwidth_mlups,
        compute_mlups=compute_mlups,
    )

"""Host a whole fabric in-process (tests, benchmarks, smoke runs).

The shards are *real* OS processes (they must be, for the SIGKILL
drill and for genuine multi-process database/ledger semantics); only
the router's asyncio loop runs on a daemon thread in the calling
process, mirroring :class:`~repro.service.background.BackgroundServer`.
Use as a context manager::

    config = FabricConfig(fabric_dir=str(tmp), port=0, shards=3)
    with BackgroundFabric(config) as fabric:
        fabric.client.predict(stencil="3d7pt")
        fabric.kill_shard(1)          # the drill
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import Future

from repro.fabric.config import FabricConfig
from repro.fabric.proc import FabricSupervisor
from repro.fabric.router import FabricRouter
from repro.service.client import ServiceClient

__all__ = ["BackgroundFabric"]


class BackgroundFabric:
    """Shard processes + a thread-hosted router, torn down together."""

    def __init__(self, config: FabricConfig) -> None:
        self.config = config
        self.supervisor = FabricSupervisor(config)
        self.router: FabricRouter | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stopped: Future | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self, timeout_s: float = 60.0) -> "BackgroundFabric":
        """Start shards, then the router; blocks until routable."""
        ports = self.supervisor.start_all(timeout_s=timeout_s)
        started: Future = Future()
        self._stopped = Future()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def run() -> None:
                router = FabricRouter(
                    self.config, ports, supervisor=self.supervisor
                )
                self.router = router
                try:
                    port = await router.start()
                    started.set_result(port)
                except BaseException as exc:
                    started.set_exception(exc)
                    return
                await router.wait_stopped()

            try:
                loop.run_until_complete(run())
                self._stopped.set_result(None)
            except BaseException as exc:
                if not self._stopped.done():
                    self._stopped.set_exception(exc)
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-fabric-router", daemon=True
        )
        self._thread.start()
        try:
            self.port = started.result(timeout=timeout_s)
        except BaseException:
            self.supervisor.stop_all()
            raise
        return self

    def stop(self, timeout_s: float = 60.0) -> None:
        """Drain the router, join its thread, stop every shard."""
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_drain)
            except RuntimeError:
                pass
        if self._stopped is not None:
            try:
                self._stopped.result(timeout=timeout_s)
            except Exception:
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
        self.supervisor.stop_all()

    def __enter__(self) -> "BackgroundFabric":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- conveniences ---------------------------------------------------
    @property
    def client(self) -> ServiceClient:
        """A client bound to the router."""
        assert self.port is not None, "fabric not started"
        return ServiceClient(host=self.config.host, port=self.port)

    def shard_client(self, index: int) -> ServiceClient:
        """A client bound directly to one shard (bypasses the router)."""
        port = self.supervisor.ports()[index]
        return ServiceClient(host=self.config.host, port=port)

    def kill_shard(self, index: int, sig: int = signal.SIGKILL) -> int:
        """Send ``sig`` to shard ``index``; returns the signalled pid."""
        shard = self.supervisor.shards[index]
        pid = shard.pid
        shard.kill(sig)
        shard.join(timeout_s=10.0)
        return pid if pid is not None else -1

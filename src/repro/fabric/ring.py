"""Consistent-hash ring for shard routing.

Each member (a shard id) is mapped to ``vnodes`` points on a 64-bit
hash circle; a key routes to the member owning the first point at or
after the key's hash.  Virtual nodes keep the load balanced (the
per-member share of a large key population concentrates around 1/N),
and consistency keeps remapping minimal: when a member joins or
leaves, only the keys falling on its own arcs move — every other
key keeps its shard, so per-shard response caches and in-flight
coalescing survive membership churn.

Hashing is sha256-based and therefore stable across processes and
Python invocations (``hash()`` is salted per process and must never be
used for routing); the router and any shard compute identical routes
from identical keys.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

#: Default virtual nodes per member; 64 keeps the max/mean key share
#: under ~1.5x for small member counts (see tests/test_fabric_ring.py).
DEFAULT_VNODES = 64


def stable_hash(text: str) -> int:
    """64-bit position of ``text`` on the hash circle (process-stable)."""
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash membership with deterministic key routing."""

    def __init__(
        self, members: tuple[str, ...] | list[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted hash positions
        self._owners: list[str] = []  # owner of self._points[i]
        self._members: set[str] = set()
        for member in members:
            self.add(member)

    # -- membership -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> list[str]:
        """Current members, sorted (stable for display and tests)."""
        return sorted(self._members)

    def add(self, member: str) -> None:
        """Add ``member``; no-op if it is already on the ring."""
        if member in self._members:
            return
        self._members.add(member)
        for v in range(self.vnodes):
            point = stable_hash(f"{member}#{v}")
            idx = bisect.bisect_left(self._points, point)
            # sha256 collisions on 64 bits are vanishingly unlikely;
            # deterministic tie-break by member name keeps add/remove
            # order from ever changing the route.
            while (
                idx < len(self._points)
                and self._points[idx] == point
                and self._owners[idx] < member
            ):
                idx += 1
            self._points.insert(idx, point)
            self._owners.insert(idx, member)

    def remove(self, member: str) -> None:
        """Remove ``member``; no-op if it is not on the ring."""
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != member
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- routing --------------------------------------------------------
    def route(self, key: str) -> str:
        """The member owning ``key``.  Raises on an empty ring."""
        if not self._points:
            raise LookupError("consistent-hash ring is empty")
        idx = bisect.bisect_right(self._points, stable_hash(key))
        if idx == len(self._points):
            idx = 0  # wrap around the circle
        return self._owners[idx]

    def route_order(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct members in ring order starting at ``key``'s owner.

        The failover order: the first entry is :meth:`route`'s answer,
        later entries are the successive owners a router should try
        when earlier ones are unreachable.  Deterministic, so every
        router instance agrees on the fallback shard too.
        """
        if not self._points:
            return []
        if limit is None:
            limit = len(self._members)
        start = bisect.bisect_right(self._points, stable_hash(key))
        order: list[str] = []
        seen: set[str] = set()
        n = len(self._points)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) >= limit:
                    break
        return order

    # -- introspection --------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready description (for ``/metrics`` and ``fabric status``)."""
        return {
            "members": self.members,
            "vnodes": self.vnodes,
            "points": len(self._points),
        }

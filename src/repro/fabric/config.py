"""Configuration of one fabric: router + N shard processes.

One frozen dataclass carries the topology knobs (shard count, ring
vnodes, probe cadence, restart policy) plus the per-shard service
knobs the supervisor copies into every shard's
:class:`~repro.service.config.ServiceConfig`.  The CLI (``python -m
repro serve --shards N``) maps its flags onto these fields; tests
construct the dataclass directly with ``port=0`` and a tmp
``fabric_dir``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fabric.ring import DEFAULT_VNODES

__all__ = ["FabricConfig"]


@dataclass(frozen=True)
class FabricConfig:
    """All tunables of one fabric.

    Parameters
    ----------
    fabric_dir:
        Shared state directory.  The supervisor creates three
        subdirectories under it: ``db/`` (segmented tuning database,
        :mod:`repro.util.segdb`), ``jobs/`` (tune-job ledger,
        :mod:`repro.autotune.jobs`) and ``ports/`` (one file per shard
        announcing its ephemeral port).
    host, port:
        Router bind address; ``port=0`` picks an ephemeral port.
        Shards always bind ephemeral ports on ``host`` and announce
        them through ``ports/``.
    shards:
        Number of shard server processes.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring.
    probe_interval_s:
        Router health-probe period per shard.
    probe_timeout_s:
        Socket timeout of one health probe / forwarded request connect.
    restart_shards:
        Whether the router's probe loop asks the supervisor to restart
        a dead shard (tests that drill adoption disable this so the
        *surviving* shards must finish the dead shard's jobs).
    max_restarts:
        Per-shard restart budget; a shard past it stays down.
    workers, executor, queue_limit, response_cache_size,
    request_timeout_s, drain_timeout_s, breaker_threshold,
    breaker_recovery_s, degraded_mode:
        Copied into every shard's ServiceConfig (same meanings).
    lease_ttl_s, steal_interval_s:
        Job-ledger lease TTL and idle work-stealing period, copied to
        every shard (see :class:`~repro.service.config.ServiceConfig`).
    cost_routing, cost_threshold_s, cheap_queue_limit,
    expensive_queue_limit, cheap_timeout_s, expensive_timeout_s,
    expensive_workers:
        Cost-aware admission knobs, copied to every shard.  The router
        forwards request bodies verbatim, so classification happens on
        the owning shard.
    approx_enabled, approx_confidence, approx_capacity:
        Near-match approximate tier knobs, copied to every shard.  The
        support sets are per-shard; consistent-hash routing keeps a
        request family on one shard, so its observations concentrate
        where its lookups land.
    adaptive_limits, adaptive_target_ms, brownout,
    brownout_approx_confidence, brownout_escalate_s,
    brownout_recover_s:
        Overload-control knobs (AIMD admission limits and the
        SLO-driven brownout ladder), copied to every shard.  Each shard
        runs its own limiter and ladder over its own traffic; the
        router's fan-in surfaces the per-shard stages and sums the
        adaptive limits.
    slo_enabled, slo_config, flight_recorder:
        SLO-engine and flight-recorder knobs, copied to every shard.
        Each shard evaluates its own objectives over its own traffic;
        the router's ``/slo`` and ``/debug/requests`` fan the per-shard
        documents in.
    shard_faults:
        Optional per-shard fault plans for chaos drills:
        ``((index, "<REPRO_FAULTS grammar>"), ...)``.  Only the named
        shards are armed — the shard-death drill kills exactly the
        job's owner and leaves the adopters clean.
    """

    fabric_dir: str
    host: str = "127.0.0.1"
    port: int = 8750
    shards: int = 3
    vnodes: int = DEFAULT_VNODES
    probe_interval_s: float = 1.0
    probe_timeout_s: float = 5.0
    restart_shards: bool = True
    max_restarts: int = 3
    workers: int = 1
    executor: str = "thread"
    queue_limit: int = 64
    response_cache_size: int = 1024
    request_timeout_s: float = 120.0
    drain_timeout_s: float = 10.0
    breaker_threshold: int = 5
    breaker_recovery_s: float = 30.0
    degraded_mode: bool = True
    lease_ttl_s: float = 60.0
    steal_interval_s: float = 0.5
    cost_routing: bool = False
    cost_threshold_s: float = 0.25
    cheap_queue_limit: int | None = None
    expensive_queue_limit: int | None = None
    cheap_timeout_s: float | None = None
    expensive_timeout_s: float | None = None
    expensive_workers: int | None = None
    approx_enabled: bool = False
    approx_confidence: float = 0.75
    approx_capacity: int = 512
    adaptive_limits: bool = False
    adaptive_target_ms: float = 500.0
    brownout: bool = False
    brownout_approx_confidence: float = 0.5
    brownout_escalate_s: float = 2.0
    brownout_recover_s: float = 5.0
    slo_enabled: bool = False
    slo_config: str | None = None
    flight_recorder: int = 256
    shard_faults: tuple[tuple[int, str], ...] | None = None

    def __post_init__(self) -> None:
        if not self.fabric_dir:
            raise ValueError("fabric_dir is required")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.probe_interval_s <= 0 or self.probe_timeout_s <= 0:
            raise ValueError("probe intervals must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")

"""Shard processes and their supervisor.

Each shard is a real OS process running one
:class:`~repro.service.server.ReproService` with a fabric-flavored
config: a ``shard_id``, the shared segmented database directory, the
shared job ledger directory, and an ephemeral port it announces by
atomically writing ``ports/shard-<i>.port`` *after* binding — the
router polls that file, so it can never connect to a half-started
shard.

:class:`FabricSupervisor` owns the process set: it derives every
shard's :class:`~repro.service.config.ServiceConfig` from one
:class:`~repro.fabric.config.FabricConfig`, brings the set up, tears
it down (SIGTERM → join → SIGKILL), and restarts dead shards within a
per-shard budget.  Restart is the router's *recovery* path; the job
ledger is the *correctness* path — a killed shard's in-flight tunes
are adopted by survivors whether or not a replacement comes up.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path

from repro.fabric.config import FabricConfig
from repro.service.config import ServiceConfig

__all__ = ["FabricSupervisor", "ShardProcess", "shard_service_config"]

#: How the port announcement file for shard ``i`` is named.
def _port_file(ports_dir: Path, index: int) -> Path:
    return ports_dir / f"shard-{index}.port"


def shard_service_config(config: FabricConfig, index: int) -> ServiceConfig:
    """The ServiceConfig shard ``index`` runs under."""
    root = Path(config.fabric_dir)
    return ServiceConfig(
        host=config.host,
        port=0,  # ephemeral; announced through the port file
        workers=config.workers,
        executor=config.executor,
        queue_limit=config.queue_limit,
        response_cache_size=config.response_cache_size,
        request_timeout_s=config.request_timeout_s,
        drain_timeout_s=config.drain_timeout_s,
        breaker_threshold=config.breaker_threshold,
        breaker_recovery_s=config.breaker_recovery_s,
        degraded_mode=config.degraded_mode,
        shard_id=index,
        db_dir=str(root / "db"),
        job_dir=str(root / "jobs"),
        lease_ttl_s=config.lease_ttl_s,
        steal_interval_s=config.steal_interval_s,
        cost_routing=config.cost_routing,
        cost_threshold_s=config.cost_threshold_s,
        cheap_queue_limit=config.cheap_queue_limit,
        expensive_queue_limit=config.expensive_queue_limit,
        cheap_timeout_s=config.cheap_timeout_s,
        expensive_timeout_s=config.expensive_timeout_s,
        expensive_workers=config.expensive_workers,
        approx_enabled=config.approx_enabled,
        approx_confidence=config.approx_confidence,
        approx_capacity=config.approx_capacity,
        adaptive_limits=config.adaptive_limits,
        adaptive_target_ms=config.adaptive_target_ms,
        brownout=config.brownout,
        brownout_approx_confidence=config.brownout_approx_confidence,
        brownout_escalate_s=config.brownout_escalate_s,
        brownout_recover_s=config.brownout_recover_s,
        slo_enabled=config.slo_enabled,
        slo_config=config.slo_config,
        flight_recorder=config.flight_recorder,
    )


def _shard_main(
    service_config: ServiceConfig, port_file: str, faults_spec: str | None
) -> None:
    """Entry point of one shard process (must stay a picklable
    top-level so a ``spawn`` start method would also work)."""
    import asyncio

    from repro import faults
    from repro.service.server import ReproService

    if faults_spec:
        faults.install(faults_spec)

    async def run() -> None:
        service = ReproService(service_config)
        port = await service.start()
        # Announce the bound port atomically: the router must never
        # read a partially written file.
        tmp = Path(f"{port_file}.tmp.{os.getpid()}")
        tmp.write_text(str(port))
        os.replace(tmp, port_file)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, service.request_drain)
            except (NotImplementedError, RuntimeError):
                pass
        await service.wait_stopped()

    asyncio.run(run())


class ShardProcess:
    """One shard's OS process + its port announcement."""

    def __init__(
        self,
        index: int,
        service_config: ServiceConfig,
        ports_dir: Path,
        faults_spec: str | None = None,
    ) -> None:
        self.index = index
        self.service_config = service_config
        self.port_file = _port_file(ports_dir, index)
        self.faults_spec = faults_spec
        self.port: int | None = None
        self._process: multiprocessing.Process | None = None

    def start(self) -> None:
        """Fork the shard (stale port announcements are removed first)."""
        try:
            self.port_file.unlink()
        except OSError:
            pass
        ctx = multiprocessing.get_context("fork")
        self._process = ctx.Process(
            target=_shard_main,
            args=(self.service_config, str(self.port_file), self.faults_spec),
            name=f"repro-shard-{self.index}",
            daemon=False,
        )
        self._process.start()

    def wait_port(self, timeout_s: float = 30.0) -> int:
        """Block until the shard announces its bound port."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                text = self.port_file.read_text().strip()
                if text:
                    self.port = int(text)
                    return self.port
            except (OSError, ValueError):
                pass
            if not self.alive:
                raise RuntimeError(
                    f"shard {self.index} died before announcing a port "
                    f"(exitcode={self.exitcode})"
                )
            time.sleep(0.02)
        raise TimeoutError(f"shard {self.index} never announced a port")

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def pid(self) -> int | None:
        return self._process.pid if self._process is not None else None

    @property
    def exitcode(self) -> int | None:
        return self._process.exitcode if self._process is not None else None

    def kill(self, sig: int = signal.SIGKILL) -> None:
        """Send ``sig`` (default SIGKILL: the shard-death drill)."""
        if self._process is not None and self._process.pid:
            try:
                os.kill(self._process.pid, sig)
            except OSError:
                pass

    def stop(self, timeout_s: float = 10.0) -> None:
        """SIGTERM (graceful drain), then SIGKILL past the timeout."""
        if self._process is None:
            return
        self.kill(signal.SIGTERM)
        self._process.join(timeout=timeout_s)
        if self._process.is_alive():
            self.kill(signal.SIGKILL)
            self._process.join(timeout=5.0)

    def join(self, timeout_s: float | None = None) -> None:
        if self._process is not None:
            self._process.join(timeout=timeout_s)


class FabricSupervisor:
    """Owns the shard process set of one fabric."""

    def __init__(self, config: FabricConfig) -> None:
        self.config = config
        self.root = Path(config.fabric_dir)
        self.ports_dir = self.root / "ports"
        self.shards: dict[int, ShardProcess] = {}
        self.restarts: dict[int, int] = {}

    def _make_shard(self, index: int) -> ShardProcess:
        faults_by_shard = dict(self.config.shard_faults or ())
        return ShardProcess(
            index,
            shard_service_config(self.config, index),
            self.ports_dir,
            faults_spec=faults_by_shard.get(index),
        )

    def start_all(self, timeout_s: float = 30.0) -> dict[int, int]:
        """Bring every shard up; returns ``{index: port}``."""
        for sub in ("db", "jobs", "ports"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        for index in range(self.config.shards):
            shard = self._make_shard(index)
            shard.start()
            self.shards[index] = shard
        return {
            index: shard.wait_port(timeout_s)
            for index, shard in self.shards.items()
        }

    def restart(self, index: int, timeout_s: float = 30.0) -> int | None:
        """Replace a dead shard; ``None`` once its budget is spent."""
        used = self.restarts.get(index, 0)
        if used >= self.config.max_restarts:
            return None
        self.restarts[index] = used + 1
        old = self.shards.get(index)
        if old is not None and old.alive:
            old.stop(timeout_s=self.config.drain_timeout_s)
        shard = self._make_shard(index)
        shard.start()
        self.shards[index] = shard
        return shard.wait_port(timeout_s)

    def ports(self) -> dict[int, int]:
        """Last known ``{index: port}`` of every started shard."""
        return {
            index: shard.port
            for index, shard in self.shards.items()
            if shard.port is not None
        }

    def stop_all(self, timeout_s: float = 15.0) -> None:
        for shard in self.shards.values():
            shard.kill(signal.SIGTERM)
        deadline = time.monotonic() + timeout_s
        for shard in self.shards.values():
            shard.join(timeout_s=max(0.1, deadline - time.monotonic()))
            if shard.alive:
                shard.kill(signal.SIGKILL)
                shard.join(timeout_s=5.0)

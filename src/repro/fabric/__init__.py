"""``repro.fabric``: the sharded multi-process tuning fabric.

One front **router** process accepts the existing HTTP API and shards
requests across N **shard** server processes by cache identity —
consistent hashing (:class:`HashRing`) over the same normalization the
engine computes (:func:`repro.engine.shard_key`), so request
coalescing and the per-shard response LRU stay exactly as effective as
in single-process mode.  Shards persist tuning records through the
segmented multi-process database (:mod:`repro.util.segdb`) and
distribute long ``/tune`` jobs through the content-addressed job
ledger (:mod:`repro.autotune.jobs`): a killed shard's in-flight jobs
are *adopted* by survivors (router reroute + idle-shard work stealing)
and resumed from their checkpoints instead of being lost.

Entry points: ``python -m repro serve --shards N`` brings a fabric up;
:class:`BackgroundFabric` hosts one in-process for tests and
benchmarks.
"""

from repro.fabric.background import BackgroundFabric
from repro.fabric.config import FabricConfig
from repro.fabric.proc import FabricSupervisor, ShardProcess
from repro.fabric.ring import HashRing
from repro.fabric.router import FabricRouter, serve_fabric

__all__ = [
    "BackgroundFabric",
    "FabricConfig",
    "FabricRouter",
    "FabricSupervisor",
    "HashRing",
    "ShardProcess",
    "serve_fabric",
]

"""Run a service in a background thread (tests, benchmarks, smoke).

The server's asyncio loop lives in a daemon thread; the caller gets a
bound :class:`~repro.service.client.ServiceClient` and a handle to the
live :class:`ReproService` (for metrics assertions).  Use as a context
manager::

    with BackgroundServer(ServiceConfig(port=0, executor="thread")) as bg:
        bg.client.predict(stencil="3d7pt")
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future

from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig
from repro.service.server import ReproService

__all__ = ["BackgroundServer"]


class BackgroundServer:
    """A :class:`ReproService` hosted on its own event-loop thread."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig(port=0, executor="thread")
        self.service: ReproService | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stopped: Future | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self, timeout_s: float = 30.0) -> "BackgroundServer":
        """Start the loop thread; blocks until the port is bound."""
        started: Future = Future()
        self._stopped = Future()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def run() -> None:
                service = ReproService(self.config)
                self.service = service
                try:
                    port = await service.start()
                    started.set_result(port)
                except BaseException as exc:  # bind failures etc.
                    started.set_exception(exc)
                    return
                await service.wait_stopped()

            try:
                loop.run_until_complete(run())
                self._stopped.set_result(None)
            except BaseException as exc:
                if not self._stopped.done():
                    self._stopped.set_exception(exc)
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-service-bg", daemon=True
        )
        self._thread.start()
        self.port = started.result(timeout=timeout_s)
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        """Request a drain and join the loop thread."""
        if self._loop is not None and self.service is not None:
            try:
                self._loop.call_soon_threadsafe(self.service.request_drain)
            except RuntimeError:
                pass  # loop already closed
        if self._stopped is not None:
            self._stopped.result(timeout=timeout_s)
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- conveniences ---------------------------------------------------
    @property
    def client(self) -> ServiceClient:
        """A client bound to the live server."""
        assert self.port is not None, "server not started"
        return ServiceClient(host=self.config.host, port=self.port)

    def metrics_snapshot(self) -> dict:
        """In-process metrics readout (no HTTP round trip)."""
        assert self.service is not None
        return self.service.metrics_snapshot()

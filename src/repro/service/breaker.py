"""Per-backend circuit breaker for the service's fresh-execution path.

A breaker watches consecutive fresh-job failures on one endpoint.
After ``failure_threshold`` in a row it *opens*: the server stops
sending work to the backend and (with ``degraded_mode``) answers from
the analytic fallback instead.  After ``recovery_s`` the breaker turns
*half-open* and lets exactly one probe request through — a success
closes it again, a failure re-opens it for another ``recovery_s``.

The class is a plain thread-safe state machine with an injectable
clock; it knows nothing about HTTP so the unit tests can drive it
deterministically.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe."""

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if recovery_s < 0:
            raise ValueError("recovery_s must be >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive failures while closed
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._times_opened = 0

    # -- queries --------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a fresh request proceed right now?

        While open, the first call after ``recovery_s`` flips the
        breaker half-open and is granted as the probe; concurrent
        requests during the probe are refused.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.recovery_s:
                    self._state = HALF_OPEN
                    self._probe_in_flight = True
                    return True
                return False
            # half-open: one probe at a time
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def retry_after_s(self) -> float:
        """Seconds until the next probe would be allowed (0 if now)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self.recovery_s - (self._clock() - self._opened_at)
            )

    # -- transitions ----------------------------------------------------
    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probe_in_flight = False
            self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._open_locked()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._open_locked()

    def release_probe(self) -> None:
        """Give back a granted probe whose request never ran fresh work
        (it coalesced onto an in-flight task or was shed), so the next
        request can probe instead of the breaker sticking half-open."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_in_flight = False

    def force_open(self) -> None:
        """Trip the breaker immediately (tests, operator action)."""
        with self._lock:
            self._open_locked()

    def reset(self) -> None:
        """Close and forget all failure history."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probe_in_flight = False

    def _open_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probe_in_flight = False
        self._times_opened += 1

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready state for ``/healthz`` and ``/metrics``."""
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "recovery_s": self.recovery_s,
                "times_opened": self._times_opened,
            }

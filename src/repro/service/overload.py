"""Overload resilience: deadlines, adaptive limits, brownout ladder.

Three cooperating mechanisms, all inert until engaged, compose the
service's Google-SRE-style overload control:

**Deadline propagation.**  A client stamps each request with its
remaining budget in the ``X-Repro-Deadline-Ms`` header; the fabric
router deducts its own elapsed time before forwarding; the server
rejects work whose remaining budget cannot cover the queue class's
observed p95 (a fast 429 instead of queueing a doomed job), the
dispatcher sweeps queued entries whose deadline expired while waiting,
and ``/tune`` workers inherit the tightened deadline so sweeps
checkpoint-and-yield instead of burning a dead caller's budget.  The
representation on the wire is *relative* (milliseconds of remaining
budget) so clocks never need to agree; each hop re-anchors it against
its own clock.

**Adaptive concurrency limits** (:class:`AdaptiveLimiter`).  An AIMD
limiter per queue class replaces the static admission bound when
``--adaptive-limits`` is on: every healthy completion grows the limit
additively (~ +1 per ``limit`` completions), a windowed p95 above the
class's latency target shrinks it multiplicatively (×0.5, with a
cooldown so one breach is one cut).  The static class limit stays as
the hard ceiling and the floor is 1, so the limiter can only ever
*tighten* admission.

**Brownout ladder** (:class:`BrownoutLadder`).  A small state machine
fed by the SLO engine's page alerts that degrades service in stages —
widen the near-match tier's acceptance, serve ``/predict`` from the
analytic fallback, shed tune/rank before predict, full shed — with
hysteresis in both directions (a sustained burn to step down, a
sustained calm to step back up), a ledgered transition history, and no
background task: it is evaluated inline, rate-limited, from the
request path and the health/SLO surfaces.
"""

from __future__ import annotations

import time
from collections import deque

__all__ = [
    "DEADLINE_HEADER",
    "BROWNOUT_STAGES",
    "deadline_from_headers",
    "format_deadline_ms",
    "ClassLatencyTracker",
    "AdaptiveLimiter",
    "BrownoutLadder",
]

#: The remaining-budget request header (milliseconds, relative).
DEADLINE_HEADER = "X-Repro-Deadline-Ms"
_DEADLINE_KEY = DEADLINE_HEADER.lower()

#: The ladder's stages, mildest first.  Index == severity.
BROWNOUT_STAGES = (
    "normal",          # full service
    "approx-wide",     # near-match tier accepts lower-confidence answers
    "predict-analytic",  # /predict served by the analytic fallback
    "shed-heavy",      # /tune and /rank refused before /predict degrades
    "full-shed",       # everything refused until the burn subsides
)


def deadline_from_headers(
    headers: dict[str, str] | None, now: float | None = None
) -> float | None:
    """Absolute epoch deadline from a request's header map.

    ``None`` when the header is absent or unparseable — a malformed
    budget must degrade to "no deadline", never to an error, so a
    broken middlebox cannot fail every request.
    """
    if not headers:
        return None
    raw = headers.get(_DEADLINE_KEY)
    if raw is None:
        return None
    try:
        budget_ms = float(raw)
    except ValueError:
        return None
    if budget_ms != budget_ms or budget_ms in (float("inf"), float("-inf")):
        return None
    return (time.time() if now is None else now) + budget_ms / 1e3


def format_deadline_ms(remaining_s: float) -> str:
    """Header value for a remaining budget (floored at 1 ms: a zero or
    negative budget is expressed by *not sending* the request)."""
    return str(max(1, int(remaining_s * 1e3)))


class ClassLatencyTracker:
    """Windowed latency observations of one queue class.

    Feeds two consumers: deadline admission (``p95`` — can the
    remaining budget plausibly cover this class?) and the adaptive
    limiter.  A plain sorted-window p95 over a small deque; O(window)
    on read, which only happens on deadline-carrying admissions and
    limiter updates.
    """

    def __init__(self, window: int = 64) -> None:
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def p95(self) -> float | None:
        """Windowed p95 in seconds; ``None`` until enough samples exist
        (admission must not guess from one observation)."""
        n = len(self._samples)
        if n < 4:
            return None
        ordered = sorted(self._samples)
        return ordered[min(n - 1, round(0.95 * (n - 1)))]


class AdaptiveLimiter:
    """AIMD concurrency limit for one queue class.

    ``record(elapsed_s)`` is called once per finished fresh job with
    its total latency (queue wait + execution — the quantity the
    caller experiences and the SLO measures).  While the windowed p95
    stays at or under ``target_s`` the limit grows additively
    (``growth / limit`` per completion ≈ +1 per ``limit`` healthy
    completions); when the p95 breaches the target the limit is cut
    multiplicatively (×``shrink``), at most once per ``cooldown_s`` so
    a single burst of slow completions is one cut, not a collapse.
    The static class limit is the hard ceiling, the floor is 1.
    """

    def __init__(
        self,
        ceiling: int,
        target_s: float,
        floor: int = 1,
        shrink: float = 0.5,
        growth: float = 1.0,
        cooldown_s: float = 1.0,
        window: int = 32,
        now_fn=time.monotonic,
    ) -> None:
        if ceiling < 1:
            raise ValueError("ceiling must be >= 1")
        if target_s <= 0:
            raise ValueError("target_s must be positive")
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        self.ceiling = ceiling
        self.target_s = target_s
        self.floor = max(1, floor)
        self.shrink = shrink
        self.growth = growth
        self.cooldown_s = cooldown_s
        self._now = now_fn
        self._limit = float(ceiling)
        self._samples: deque[float] = deque(maxlen=window)
        self._last_shrink: float | None = None
        self.shrinks = 0
        self.grows = 0

    @property
    def limit(self) -> int:
        """The current admission bound (integer, in [floor, ceiling])."""
        return max(self.floor, min(self.ceiling, int(self._limit)))

    def _window_p95(self) -> float | None:
        n = len(self._samples)
        if n < 4:
            return None
        ordered = sorted(self._samples)
        return ordered[min(n - 1, round(0.95 * (n - 1)))]

    def record(self, elapsed_s: float) -> None:
        """Feed one finished job; adjusts the limit."""
        self._samples.append(elapsed_s)
        p95 = self._window_p95()
        if p95 is not None and p95 > self.target_s:
            now = self._now()
            if (
                self._last_shrink is None
                or now - self._last_shrink >= self.cooldown_s
            ):
                self._last_shrink = now
                cut = max(float(self.floor), self._limit * self.shrink)
                if cut < self._limit:
                    self._limit = cut
                    self.shrinks += 1
                # A cut judges the *old* window's latency; observing it
                # again next completion would double-punish, so start
                # the window over at the new limit.
                self._samples.clear()
            return
        if self._limit < self.ceiling:
            self._limit = min(
                float(self.ceiling), self._limit + self.growth / self._limit
            )
            self.grows += 1

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "ceiling": self.ceiling,
            "floor": self.floor,
            "target_ms": round(self.target_s * 1e3, 3),
            "shrinks": self.shrinks,
            "grows": self.grows,
        }


class BrownoutLadder:
    """SLO-burn-driven staged degradation with hysteresis.

    ``evaluate()`` (rate-limited, called inline from the request path
    and the health surfaces — no background task) asks ``alerts_fn``
    for the currently firing SLO alerts.  A **page**-severity alert
    sustained for ``escalate_hold_s`` steps the ladder one stage down;
    a calm spell of ``recover_hold_s`` steps it one stage back up.
    One step per hold period in either direction, so the ladder can
    neither free-fall nor snap back — and because recovery is also
    staged, a server that browned out under load walks fully back to
    ``normal`` without a restart once the burn subsides.

    Alerts from ``shed_rate``-type objectives are ignored by default:
    shedding is this ladder's own actuator, and a controller that
    senses its actuator latches in the degraded state.
    """

    def __init__(
        self,
        alerts_fn,
        escalate_hold_s: float = 2.0,
        recover_hold_s: float = 5.0,
        max_stage: int = len(BROWNOUT_STAGES) - 1,
        ignore_types: tuple[str, ...] = ("shed_rate",),
        eval_interval_s: float | None = None,
        now_fn=time.monotonic,
        on_transition=None,
        ledger_capacity: int = 64,
    ) -> None:
        if escalate_hold_s <= 0 or recover_hold_s <= 0:
            raise ValueError("hold times must be positive")
        if not 1 <= max_stage <= len(BROWNOUT_STAGES) - 1:
            raise ValueError(
                f"max_stage must be in [1, {len(BROWNOUT_STAGES) - 1}]"
            )
        self._alerts = alerts_fn
        self.escalate_hold_s = escalate_hold_s
        self.recover_hold_s = recover_hold_s
        self.max_stage = max_stage
        self.ignore_types = tuple(ignore_types)
        # Re-evaluating more often than a fraction of the shorter hold
        # cannot change the outcome; bound to [50ms, 1s].
        self.eval_interval_s = (
            min(1.0, max(0.05, min(escalate_hold_s, recover_hold_s) / 4.0))
            if eval_interval_s is None
            else eval_interval_s
        )
        self._now = now_fn
        self._on_transition = on_transition
        self.stage = 0
        self._burn_since: float | None = None
        self._calm_since: float | None = None
        self._evaluated_at: float | None = None
        self.transitions: deque[dict] = deque(maxlen=ledger_capacity)
        self.escalations = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        return BROWNOUT_STAGES[self.stage]

    def _paging(self) -> list[str]:
        """Names of page-severity alerts the ladder listens to."""
        try:
            alerts = self._alerts() or []
        except Exception:
            return []  # a broken sensor must not wedge the ladder
        return [
            str(alert.get("objective"))
            for alert in alerts
            if alert.get("severity") == "page"
            and alert.get("type") not in self.ignore_types
        ]

    def _transition(self, new_stage: int, alerts: list[str]) -> None:
        old = self.stage
        self.stage = new_stage
        direction = "escalate" if new_stage > old else "recover"
        if direction == "escalate":
            self.escalations += 1
        else:
            self.recoveries += 1
        entry = {
            "ts": time.time(),
            "from": BROWNOUT_STAGES[old],
            "to": BROWNOUT_STAGES[new_stage],
            "direction": direction,
            "alerts": alerts,
        }
        self.transitions.append(entry)
        if self._on_transition is not None:
            try:
                self._on_transition(entry)
            except Exception:
                pass  # observer failures must not affect control

    def evaluate(self) -> int:
        """Advance the state machine; returns the current stage."""
        now = self._now()
        if (
            self._evaluated_at is not None
            and now - self._evaluated_at < self.eval_interval_s
        ):
            return self.stage
        self._evaluated_at = now
        paging = self._paging()
        if paging:
            self._calm_since = None
            if self._burn_since is None:
                self._burn_since = now
            elif (
                now - self._burn_since >= self.escalate_hold_s
                and self.stage < self.max_stage
            ):
                self._transition(self.stage + 1, paging)
                self._burn_since = now  # next step needs its own hold
        else:
            self._burn_since = None
            if self.stage == 0:
                self._calm_since = None
            elif self._calm_since is None:
                self._calm_since = now
            elif now - self._calm_since >= self.recover_hold_s:
                self._transition(self.stage - 1, [])
                self._calm_since = now
        return self.stage

    def snapshot(self) -> dict:
        """The ladder's state for ``/healthz``, ``/slo`` and ``/metrics``."""
        return {
            "stage": self.stage,
            "state": self.state,
            "stages": list(BROWNOUT_STAGES),
            "max_stage": self.max_stage,
            "escalations": self.escalations,
            "recoveries": self.recoveries,
            "transitions": [dict(entry) for entry in self.transitions],
        }

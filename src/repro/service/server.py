"""The tuning/prediction server: asyncio + stdlib HTTP/1.1, no deps.

Layering of one POST request (``/predict``, ``/tune``, ``/rank``)::

    parse + normalize                 (400 on bad payload)
      └─ tier 1: LRU response cache  (identical request already solved)
          └─ tier 3: tuning database (/rank, validate=false: the warm
             Offsite store — rankings computed once, then looked up)
              └─ coalesce            (identical request in flight joins it)
                  └─ admit + batch   (429 when the bounded queue is full)
                      └─ worker pool (jobs; tier 2 traffic memo inside)

``GET /healthz`` and ``GET /metrics`` are served inline.  SIGTERM (or
``stop()``) drains gracefully: the listener closes, in-flight requests
finish within ``drain_timeout_s``, then the pool shuts down.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import time
from urllib.parse import parse_qs

from repro import faults, obs
from repro.offsite.database import TuningDatabase, TuningKey, TuningRecord
from repro.service.batching import (
    CoalescingDispatcher,
    DeadlineSwept,
    Overloaded,
)
from repro.service.breaker import CircuitBreaker
from repro.service.config import ServiceConfig
from repro.service.cost import classify
from repro.service.overload import BrownoutLadder, deadline_from_headers
from repro.service.jobs import (
    DEGRADED_JOBS,
    JOBS,
    JobError,
    rank_db_key_parts,
    request_key,
    run_traced_job,
)
from repro.service.metrics import ServiceMetrics
from repro.service.serializers import tuning_record_to_dict
from repro.store import DatabaseTier, LruTier, NearMatchTier
from repro.telemetry import (
    FlightRecorder,
    SloEngine,
    load_slo_config,
    render_prometheus,
)
from repro.telemetry.prom import CONTENT_TYPE as _PROM_CONTENT_TYPE

__all__ = ["ReproService", "serve"]

_SERVER_NAME = "repro-service"
#: One deadline covering the whole request read (request line, headers
#: and body), so a stalled client cannot pin a connection open.
_READ_TIMEOUT_S = 30.0
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _first(params: dict, name: str) -> str | None:
    """First value of one query parameter (``None`` when absent)."""
    values = params.get(name)
    return values[0] if values else None


def _flag(params: dict, name: str) -> bool:
    """Boolean query parameter: present and not ``0``/``false``."""
    value = _first(params, name)
    return value is not None and value.lower() not in ("0", "false")


class _HttpError(Exception):
    """Request cannot be parsed/admitted; reply ``status`` and close."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


#: The response cache is a plain :class:`~repro.store.tier.LruTier`
#: from the unified store substrate; the alias keeps the historical
#: name importable.
_LruCache = LruTier


class ReproService:
    """One server instance; ``start()`` binds, ``stop()`` drains."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics(self.config.latency_reservoir)
        self.dispatcher = CoalescingDispatcher(self.config)
        self.response_cache = LruTier(
            "response", capacity=self.config.response_cache_size
        )
        self.metrics.attach_tier("response", self.response_cache)
        if self.config.db_dir:
            # Fabric mode: the segmented multi-process store.  Each
            # shard writes only its own segment; peers' records are
            # merged in on (rate-limited) lookup misses.
            from repro.util.segdb import SegmentedTuningDatabase

            self.database: TuningDatabase = SegmentedTuningDatabase(
                self.config.db_dir, self.config.shard_id
            )
        elif self.config.db_path:
            self.database = TuningDatabase.load_or_empty(self.config.db_path)
        else:
            self.database = TuningDatabase()
        # The warm database serves through its tier adapter (uniform
        # ledger); persistence keeps talking to the wrapped object.
        self.database_tier = DatabaseTier(self.database)
        self.metrics.attach_tier("database", self.database_tier)
        self.approx_tier: NearMatchTier | None = None
        if self.config.approx_enabled:
            self.approx_tier = NearMatchTier(
                "approx", capacity=self.config.approx_capacity
            )
            self.metrics.attach_tier("approx", self.approx_tier)
        # Flight recorder: always constructed (recording one dict per
        # request is O(1)); only the /debug/requests surface reads it.
        self.flight = FlightRecorder(self.config.flight_recorder)
        # SLO engine: exists only when objectives were configured, so
        # the default /metrics and /healthz documents are unchanged.
        self.slo: SloEngine | None = None
        if self.config.slo_enabled:
            self.slo = SloEngine(load_slo_config(self.config.slo_config))
            self.slo.set_tier_source(self.metrics.tier_totals)
        # Brownout ladder: staged SLO-burn-driven degradation.  Only
        # constructed when armed (config validation guarantees the SLO
        # engine exists), so default responses are byte-identical.
        self.ladder: BrownoutLadder | None = None
        if self.config.brownout:
            self.ladder = BrownoutLadder(
                self.slo.alerts,
                escalate_hold_s=self.config.brownout_escalate_s,
                recover_hold_s=self.config.brownout_recover_s,
                on_transition=self._record_brownout_transition,
            )
        self.breakers = {
            path: CircuitBreaker(
                path,
                failure_threshold=self.config.breaker_threshold,
                recovery_s=self.config.breaker_recovery_s,
            )
            for path in JOBS
        }
        self._server: asyncio.base_events.Server | None = None
        self._stop_requested = asyncio.Event()
        self._active_requests = 0
        self._db_dirty = False
        self._db_save_task: asyncio.Task | None = None
        self._steal_task: asyncio.Task | None = None
        self.steal_counters = {"scans": 0, "adopted": 0}
        self.read_timeout_s = _READ_TIMEOUT_S
        self._started_at: float | None = None
        self.port: int | None = None
        self.draining = False

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        if self.config.job_dir and self.config.steal_interval_s > 0:
            self._steal_task = asyncio.get_running_loop().create_task(
                self._steal_loop()
            )
        return self.port

    def request_drain(self) -> None:
        """Ask the server to drain and stop (signal-handler safe)."""
        self.draining = True
        self._stop_requested.set()

    async def wait_stopped(self) -> None:
        """Block until a drain is requested, then shut down cleanly."""
        await self._stop_requested.wait()
        await self.stop()

    async def stop(self, drain: bool = True) -> None:
        """Close the listener, optionally drain in-flight work, tear down."""
        self.draining = True
        if self._steal_task is not None:
            self._steal_task.cancel()
            try:
                await self._steal_task
            except (asyncio.CancelledError, Exception):
                pass
            self._steal_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            deadline = time.monotonic() + self.config.drain_timeout_s
            while self._active_requests > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            await self.dispatcher.drain(
                max(0.0, deadline - time.monotonic())
            )
        self.dispatcher.shutdown()
        await self._flush_database_now()
        self._stop_requested.set()

    def uptime_s(self) -> float:
        return (
            time.monotonic() - self._started_at if self._started_at else 0.0
        )

    # -- HTTP plumbing --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._active_requests += 1
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._active_requests -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, dict[str, str]] | None:
        """Read one request; ``None`` if the line is unparseable.

        Raises :class:`_HttpError` for a malformed or oversized body
        declaration.  Callers bound the *whole* read with one deadline.
        Headers are returned lower-cased (deadline propagation reads
        the remaining-budget header from them).
        """
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad content-length") from None
        if length > self.config.max_body_bytes:
            raise _HttpError(413, "payload too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body, headers

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # One deadline for request line + headers + body: a client that
        # stalls mid-headers or mid-body (slowloris) is dropped instead
        # of pinning the connection (and the drain counter) open.
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=self.read_timeout_s
            )
        except asyncio.TimeoutError:
            return
        except _HttpError as err:
            await self._send(writer, err.status, {"error": err.message})
            return
        if request is None:
            return
        method, target, body, req_headers = request
        path, _, query = target.partition("?")
        params = parse_qs(query) if query else {}

        if method == "GET" and path == "/healthz":
            status = 503 if self.draining else 200
            health = {
                "status": "draining" if self.draining else "ok",
                "uptime_s": self.uptime_s(),
                "shard": self.config.shard_id,
                "breakers": {
                    path_: breaker.state
                    for path_, breaker in sorted(self.breakers.items())
                },
            }
            # The alerts key appears only with an SLO engine, keeping
            # the default health document byte-identical.
            if self.slo is not None:
                health["alerts"] = self.slo.alerts()
            # Health probes also advance the ladder: recovery must not
            # need request traffic to walk back up after load drops.
            if self.ladder is not None:
                self.ladder.evaluate()
                health["brownout"] = {
                    "stage": self.ladder.stage,
                    "state": self.ladder.state,
                    "transitions": [
                        dict(entry) for entry in self.ladder.transitions
                    ],
                }
            await self._send(writer, status, health)
            return
        if method == "GET" and path == "/metrics":
            histograms = _flag(params, "histograms")
            if _first(params, "format") == "prometheus":
                snapshot = self.metrics_snapshot(histograms=True)
                await self._send_text(
                    writer, 200, render_prometheus(snapshot),
                    _PROM_CONTENT_TYPE,
                )
                return
            await self._send(
                writer, 200, self.metrics_snapshot(histograms=histograms)
            )
            return
        if method == "GET" and path == "/slo":
            if self.slo is None:
                await self._send(writer, 200, {"enabled": False})
                return
            document = self.slo.snapshot()
            if self.ladder is not None:
                self.ladder.evaluate()
                document["brownout"] = self.ladder.snapshot()
            await self._send(writer, 200, document)
            return
        if method == "GET" and path == "/debug/requests":
            try:
                document = self._flight_document(params)
            except ValueError as exc:
                await self._send(writer, 400, {"error": str(exc)})
                return
            await self._send(writer, 200, document)
            return
        if path in JOBS:
            if method != "POST":
                await self._send(
                    writer, 405, {"error": f"{path} requires POST"}
                )
                return
            await self._handle_job(writer, path, body, req_headers)
            return
        await self._send(writer, 404, {"error": f"no route {path}"})

    def _flight_document(self, params: dict) -> dict:
        """The ``/debug/requests`` document (filters from the query)."""
        try:
            n = int(_first(params, "n") or 50)
        except ValueError:
            raise ValueError('"n" must be an integer') from None
        min_ms = _first(params, "min_ms")
        if min_ms is not None:
            try:
                min_ms = float(min_ms)
            except ValueError:
                raise ValueError('"min_ms" must be a number') from None
        return {
            **self.flight.snapshot(),
            "shard": self.config.shard_id,
            "requests": self.flight.tail(
                n=max(0, n),
                endpoint=_first(params, "endpoint"),
                outcome=_first(params, "outcome"),
                min_latency_ms=min_ms,
            ),
        }

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Server: {_SERVER_NAME}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str,
    ) -> None:
        """Non-JSON response (the Prometheus exposition)."""
        body = text.encode()
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Server: {_SERVER_NAME}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        writer.write("\r\n".join(headers).encode() + b"\r\n\r\n" + body)
        await writer.drain()

    def _record_brownout_transition(self, entry: dict) -> None:
        """Ledger a ladder transition into the flight recorder, so
        ``repro obs tail --endpoint @brownout`` attributes a degraded
        spell to the exact alerts that drove it."""
        self.flight.record(
            endpoint="@brownout",
            outcome=entry["direction"],
            status=None,
            shard=self.config.shard_id,
            latency_ms=0.0,
            stage_from=entry["from"],
            stage_to=entry["to"],
            alerts=list(entry.get("alerts") or ()),
        )

    # -- the tiered job path --------------------------------------------
    async def _handle_job(
        self,
        writer: asyncio.StreamWriter,
        endpoint: str,
        body: bytes,
        req_headers: dict[str, str] | None = None,
    ) -> None:
        t0 = time.perf_counter()
        stages: dict[str, float] = {}
        note: dict = {}
        deadline_epoch = deadline_from_headers(req_headers)
        if self.ladder is not None:
            self.ladder.evaluate()
        outcome, status, response, headers = await self._process_job(
            endpoint, body, stages, note, deadline_epoch
        )
        elapsed = time.perf_counter() - t0
        # Count the request *before* the response leaves, so a client
        # that reads /metrics right after a reply sees it included.
        self.metrics.record_request(endpoint, outcome, elapsed)
        if self.slo is not None:
            self.slo.observe(endpoint, outcome, elapsed)
        self.flight.record(
            endpoint=endpoint,
            outcome=outcome,
            status=status,
            shard=self.config.shard_id,
            latency_ms=round(elapsed * 1e3, 3),
            served=response.get("served"),
            **note,
            stages_ms={
                name: round(seconds * 1e3, 3)
                for name, seconds in stages.items()
            },
        )
        await self._send(writer, status, response, extra_headers=headers)

    async def _process_job(
        self,
        endpoint: str,
        body: bytes,
        stages: dict[str, float] | None = None,
        note: dict | None = None,
        deadline_epoch: float | None = None,
    ) -> tuple[str, int, dict, dict[str, str] | None]:
        """Resolve one POST through the cache tiers and the pool.

        Returns ``(outcome, http_status, response, extra_headers)``.
        Stage wall times (normalize/cache/execute, plus span aggregates
        for traced requests) are folded into ``/metrics`` on every exit
        path with one batched call; ``note`` collects flight-recorder
        attribution (queue class) along the way.
        """
        if stages is None:
            stages = {}
        try:
            return await self._process_job_stages(
                endpoint, body, stages,
                note if note is not None else {}, deadline_epoch,
            )
        finally:
            self.metrics.record_stages(stages)

    async def _process_job_stages(
        self,
        endpoint: str,
        body: bytes,
        stages: dict[str, float],
        note: dict,
        deadline_epoch: float | None = None,
    ) -> tuple[str, int, dict, dict[str, str] | None]:
        normalizer, job = JOBS[endpoint]
        t_stage = time.perf_counter()
        try:
            payload = json.loads(body.decode() or "{}")
            if not isinstance(payload, dict):
                raise JobError("payload must be a JSON object")
            # The trace flag rides outside the normalized payload:
            # traced and untraced requests share one cache/coalescing
            # identity, so tracing can never fork the response space.
            # The predictor hint works the same way — validated during
            # normalization but excluded from the canonical payload.
            # That sharing is sound only because normalization rejects
            # predictor="lc" for /tune (see TuneRequest): the admitted
            # modes ("auto"/"simulate") produce bit-identical reports,
            # so a response computed under one serves them all.
            want_trace = bool(payload.get("trace"))
            requested_predictor = payload.get("predictor")
            # "exact": true opts this request out of the near-match
            # approximate tier.  Like trace/predictor it is
            # execution-only: exact and approximable requests share one
            # cache/coalescing identity (both are satisfied by the
            # exact answer; only the serving path differs).
            want_exact = payload.get("exact", False)
            if not isinstance(want_exact, bool):
                raise JobError('"exact" must be a boolean')
            normalized = normalizer(payload)
        except (ValueError, JobError) as exc:
            return "failed", 400, {"error": str(exc)}, None
        finally:
            stages["normalize"] = time.perf_counter() - t_stage
        key = request_key(endpoint, normalized)

        def envelope(
            served: str, result: dict, trace: dict | None = None
        ) -> dict:
            env = {"endpoint": endpoint, "served": served, "result": result}
            if want_trace:
                env["trace"] = trace
            return env

        t_stage = time.perf_counter()
        # Tier 1: in-process response LRU (its own ledger is attached
        # to /metrics — no per-request bookkeeping here).
        cached = self.response_cache.get(key)
        if cached is not None:
            stages["cache"] = time.perf_counter() - t_stage
            return "cache", 200, envelope("response-cache", cached), None

        # Tier 3: the warm Offsite tuning database (/rank lookups;
        # validated rankings always recompute measurements).
        if endpoint == "/rank" and not normalized["validate"]:
            method, ivp, machine, grid = rank_db_key_parts(normalized)
            record = self.database_tier.get(
                TuningKey(method, ivp, machine, grid)
            )
            if record is not None:
                stages["cache"] = time.perf_counter() - t_stage
                return (
                    "database",
                    200,
                    envelope("database", tuning_record_to_dict(record)),
                    None,
                )

        # Near-match approximate tier: an interpolated answer from
        # stored exact observations of the same request family with a
        # nearby grid.  Never consulted when the client sent
        # ``"exact": true``; declines (falls through to exact work)
        # below the configured confidence.  The answer is served but
        # NEVER written into any exact tier.
        brownout_stage = 0 if self.ladder is None else self.ladder.stage
        if self.approx_tier is not None and not want_exact:
            # Brownout stage 1+ widens acceptance: a lower-confidence
            # interpolation beats queueing on a saturated pool.  The
            # bar only ever *loosens* — a brownout confidence above the
            # configured one is clamped.
            min_confidence = self.config.approx_confidence
            if brownout_stage >= 1:
                min_confidence = min(
                    min_confidence, self.config.brownout_approx_confidence
                )
            served = self.approx_tier.lookup(
                endpoint, normalized, min_confidence
            )
            if served is not None:
                result, confidence = served
                stages["cache"] = time.perf_counter() - t_stage
                env = envelope("approximate", result)
                env["approximate"] = True
                env["confidence"] = confidence
                return "approximate", 200, env, None
        stages["cache"] = time.perf_counter() - t_stage

        # Brownout shedding and analytic serving: the ladder degrades
        # *after* the cache tiers (a warm hit costs microseconds and
        # stays exact) but before any pool work.  Heavy endpoints shed
        # first (stage 3); /predict switches to the analytic fallback
        # at stage 2 and is only refused at full shed (stage 4).
        if brownout_stage >= (3 if endpoint in ("/tune", "/rank") else 4):
            retry_after = max(
                1, int(self.config.brownout_recover_s + 0.999)
            )
            note["brownout"] = self.ladder.state
            return (
                "shed",
                503,
                {
                    "error": "brownout",
                    "stage": self.ladder.state,
                    "endpoint": endpoint,
                },
                {"Retry-After": str(retry_after)},
            )
        if brownout_stage >= 2 and endpoint == "/predict":
            t_stage = time.perf_counter()
            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, DEGRADED_JOBS[endpoint], normalized
                )
            except Exception as exc:
                return (
                    "failed",
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                    None,
                )
            finally:
                stages["execute"] = time.perf_counter() - t_stage
            note["brownout"] = self.ladder.state
            env = envelope("degraded", result)
            env["degraded"] = True
            env["brownout"] = self.ladder.state
            return "degraded", 200, env, None

        # Circuit breaker: a backend that keeps failing fresh jobs is
        # taken out of rotation.  With degraded_mode the request is
        # answered analytically on the loop's thread executor (the
        # suspect pool is never touched) and marked degraded — the
        # response is NOT cached, so a recovered backend serves real
        # answers again immediately.  Without degraded_mode the
        # request is refused with 503 + Retry-After.
        breaker = self.breakers[endpoint]
        if not breaker.allow():
            if not self.config.degraded_mode:
                retry_after = max(1, int(breaker.retry_after_s() + 0.999))
                return (
                    "shed",
                    503,
                    {
                        "error": "circuit open",
                        "endpoint": endpoint,
                        "breaker": breaker.snapshot(),
                    },
                    {"Retry-After": str(retry_after)},
                )
            t_stage = time.perf_counter()
            try:
                result = await asyncio.get_running_loop().run_in_executor(
                    None, DEGRADED_JOBS[endpoint], normalized
                )
            except Exception as exc:
                return (
                    "failed",
                    500,
                    {"error": f"{type(exc).__name__}: {exc}"},
                    None,
                )
            finally:
                stages["execute"] = time.perf_counter() - t_stage
            env = envelope("degraded", result)
            env["degraded"] = True
            return "degraded", 200, env, None

        # Cost-aware admission: price the job analytically and route it
        # to its queue class.  With routing off everything is "cheap"
        # under the legacy queue_limit/request_timeout_s, so behavior
        # is identical to the single-queue server.
        job_class = "cheap"
        if self.config.cost_routing:
            job_class, _est = classify(
                endpoint, normalized, self.config.cost_threshold_s
            )
        note["queue_class"] = job_class
        timeout_s = self.config.class_timeout_s(job_class)

        # Deadline admission: a request whose remaining budget cannot
        # plausibly cover this class's observed p95 is refused *now*
        # with a fast 429 instead of queueing work its caller will
        # have abandoned by completion.  Needs the class (for the p95),
        # so it runs after classify; the breaker probe this request may
        # hold is handed back — no fresh work ran.
        if deadline_epoch is not None:
            remaining_s = deadline_epoch - time.time()
            observed_p95 = self.dispatcher.observed_p95_s(job_class)
            if remaining_s <= 0 or (
                observed_p95 is not None and remaining_s < observed_p95
            ):
                breaker.release_probe()
                note["deadline_remaining_ms"] = round(remaining_s * 1e3, 3)
                retry_after = max(
                    1,
                    int((observed_p95 or 0.0) - max(0.0, remaining_s) + 0.999),
                )
                return (
                    "shed",
                    429,
                    {
                        "error": "deadline too tight",
                        "remaining_ms": round(remaining_s * 1e3, 3),
                        "observed_p95_ms": (
                            round(observed_p95 * 1e3, 3)
                            if observed_p95 is not None
                            else None
                        ),
                        "queue_class": job_class,
                    },
                    {"Retry-After": str(retry_after)},
                )

        # The job payload may carry execution-only hints the request
        # identity must exclude: /tune gets the per-request deadline so
        # the tuner inside the worker stops starting variants the
        # server would time out on anyway.  Injected AFTER ``key`` is
        # computed, so caching/coalescing identity is unchanged.
        job_payload = normalized
        if endpoint == "/tune":
            job_payload = dict(normalized)
            job_payload["deadline"] = time.time() + timeout_s
            if deadline_epoch is not None:
                # The caller's propagated budget tightens the tuner's
                # own deadline: sweeps checkpoint-and-yield instead of
                # burning a dead caller's budget.
                job_payload["deadline"] = min(
                    job_payload["deadline"], deadline_epoch
                )
            if requested_predictor is not None:
                job_payload["predictor"] = requested_predictor
            if self.config.job_dir:
                # Fabric mode: run the tune through the shared job
                # ledger (enqueue + lease + checkpoint + publish) so a
                # peer shard can adopt it if this process dies.  These
                # keys are execution-only like the deadline above — a
                # remote client can never plant them, normalization
                # strips unknown keys before ``key`` is computed.
                job_payload["job_dir"] = self.config.job_dir
                job_payload["job_key"] = key
                job_payload["lease_ttl_s"] = self.config.lease_ttl_s

        # Coalesce + admit + batch onto the pool.  The completion hook
        # fills the caches before the in-flight key is released, so
        # identical late arrivals can never re-execute.
        def on_result(result: dict) -> None:
            # Degraded results (partial searches after exhausted retries,
            # skipped jobs, or a failed validation run) are served to the
            # waiters that shared the in-flight run but never pinned in
            # the response cache: an identical later request deserves a
            # clean recomputation, not somebody else's degraded answer.
            recovery = result.get("recovery")
            degraded = bool(result.get("degraded")) or (
                isinstance(recovery, dict) and recovery.get("degraded")
            )
            if not degraded:
                self.response_cache.put(key, result)
                # Exact, non-degraded results become interpolation
                # support for the near-match tier.  Approximate answers
                # never reach this hook (they are served before
                # dispatch), so the support set stays exact-only.
                if self.approx_tier is not None:
                    try:
                        self.approx_tier.observe(endpoint, normalized, result)
                    except Exception:
                        pass  # advisory tier: never fail the request
            ledger = result.get("traffic_cache")
            if isinstance(ledger, dict):
                self.metrics.record_tier(
                    "traffic",
                    hits=int(ledger.get("hits", 0)),
                    misses=int(ledger.get("misses", 0)),
                )
                # Per-store-tier split of the same lookups (memory LRU
                # over the optional disk tier inside the workers).
                self.metrics.record_tier(
                    "traffic-memory",
                    hits=int(ledger.get("memory_hits", 0)),
                    misses=int(ledger.get("memory_misses", 0)),
                )
                self.metrics.record_tier(
                    "traffic-disk",
                    hits=int(ledger.get("disk_hits", 0)),
                    misses=int(ledger.get("disk_misses", 0)),
                )
                self.metrics.record_predictor(
                    lc_served=int(ledger.get("lc_served", 0)),
                    sim_served=int(ledger.get("sim_served", 0)),
                    lc_validation_mismatch=int(
                        ledger.get("lc_validation_mismatch", 0)
                    ),
                )
            if endpoint == "/rank":
                try:
                    self._store_ranking(normalized, result)
                except Exception:
                    # Warm-tier bookkeeping runs after the job already
                    # succeeded; any failure here (unexpected result
                    # shape, persistence error) must not turn that
                    # success into a 500 for every coalesced waiter.
                    pass

        if want_trace:
            # The traced wrapper runs the job under an obs trace inside
            # the worker and returns {"result", "trace"}.  It dispatches
            # under a derived key so a traced run never hands its
            # envelope to untraced coalesced waiters; on_result unwraps
            # before filling the caches, keeping cached bytes identical
            # to untraced responses.
            dispatch_key = key + "#trace"
            dispatch_job = functools.partial(run_traced_job, endpoint)

            def on_wrapped(wrapped: dict) -> None:
                on_result(wrapped["result"])

            dispatch_hook = on_wrapped
        else:
            dispatch_key, dispatch_job, dispatch_hook = key, job, on_result

        t_stage = time.perf_counter()
        try:
            mode, task = self.dispatcher.dispatch(
                dispatch_key, dispatch_job, job_payload,
                on_result=dispatch_hook, job_class=job_class,
                deadline_epoch=deadline_epoch,
            )
        except Overloaded as exc:
            breaker.release_probe()
            stages["execute"] = time.perf_counter() - t_stage
            return (
                "shed",
                429,
                {"error": "overloaded", "detail": str(exc)},
                {"Retry-After": "1"},
            )
        # Only the request that actually dispatched fresh work reports
        # to the breaker — coalesced waiters would multiply one backend
        # failure into N breaker strikes.  A granted half-open probe
        # that didn't run fresh work is handed back instead.
        if mode != "fresh":
            breaker.release_probe()
        # The propagated deadline tightens (never widens) the wait: a
        # caller that gives up sooner than the class timeout gets its
        # 504 at the moment its budget dies.
        effective_timeout = timeout_s
        if deadline_epoch is not None:
            effective_timeout = min(
                timeout_s, max(0.0, deadline_epoch - time.time())
            )
        try:
            result = await asyncio.wait_for(
                asyncio.shield(task), effective_timeout
            )
        except DeadlineSwept:
            # The queue sweeper dropped the job before execution: the
            # caller's deadline died while waiting.  The backend never
            # ran, so this is not a breaker strike; a granted half-open
            # probe is handed back.
            breaker.release_probe()
            return (
                "shed",
                504,
                {"error": "deadline expired in queue"},
                None,
            )
        except asyncio.TimeoutError:
            if effective_timeout < timeout_s:
                # Deadline-driven, not a slow backend: the job may well
                # finish for its coalesced waiters — no breaker strike,
                # and any held probe is handed back.
                breaker.release_probe()
                return (
                    "failed",
                    504,
                    {"error": "deadline exceeded"},
                    None,
                )
            if mode == "fresh":
                breaker.record_failure()
            return (
                "failed",
                504,
                {
                    "error": "timeout",
                    "timeout_s": timeout_s,
                },
                None,
            )
        except Exception as exc:  # job blew up in the worker
            if mode == "fresh":
                breaker.record_failure()
            return (
                "failed",
                500,
                {"error": f"{type(exc).__name__}: {exc}"},
                None,
            )
        finally:
            stages["execute"] = time.perf_counter() - t_stage
        if mode == "fresh":
            breaker.record_success()
        if want_trace:
            trace = result["trace"]
            obs.fold_stage_seconds(trace, stages)
            return mode, 200, envelope(mode, result["result"], trace), None
        return mode, 200, envelope(mode, result), None

    def _store_ranking(self, normalized: dict, result: dict) -> None:
        """Warm the database tier with a freshly computed ranking."""
        method, ivp, machine, grid = rank_db_key_parts(normalized)
        block = normalized["block"]
        if isinstance(block, list):
            block = tuple(block)
        elif block == "auto":
            block = (0,) * len(grid)  # sentinel: per-kernel analytic choice
        else:
            block = grid
        self.database_tier.put(
            TuningRecord(
                key=TuningKey(method, ivp, machine, grid),
                best_variant=result["best_predicted"]["variant"],
                block=block,
                predicted_s_per_step=result["best_predicted"]["predicted_s"],
                ranking=list(result["ranking"]),
            )
        )
        self._schedule_db_save()

    def _schedule_db_save(self) -> None:
        """Persist the database off the event loop, single-flight.

        ``TuningDatabase.save`` rewrites the whole JSON file; doing
        that synchronously on the loop would stall every connection
        once per fresh ``/rank``.  Instead mark the database dirty and
        keep (at most) one saver task that snapshots on the loop and
        writes on a thread, re-checking the dirty flag so bursts of
        rankings coalesce into few writes.
        """
        if not (self.config.db_path or self.config.db_dir):
            return
        self._db_dirty = True
        if self._db_save_task is None or self._db_save_task.done():
            self._db_save_task = asyncio.get_running_loop().create_task(
                self._flush_database()
            )

    async def _flush_database(self) -> None:
        loop = asyncio.get_running_loop()
        while self._db_dirty:
            self._db_dirty = False
            if self.config.db_dir:
                # Segmented store: persist only this shard's records,
                # into this shard's own segment file (single writer).
                records = self.database.snapshot_for_persist()
                writer = self.database.persist_snapshot
                args = (records,)
            else:
                records = self.database.records()  # snapshot on the loop
                writer = TuningDatabase.write_records
                args = (self.config.db_path, records)
            try:
                await loop.run_in_executor(None, writer, *args)
            except OSError:
                pass  # persistence failure must not fail requests

    async def _flush_database_now(self) -> None:
        """Await any pending persistence (shutdown path)."""
        task = self._db_save_task
        if task is not None and not task.done():
            try:
                await asyncio.wait_for(
                    asyncio.shield(task), self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                pass

    # -- work stealing --------------------------------------------------
    async def _steal_loop(self) -> None:
        """Adopt abandoned tune jobs from the shared ledger when idle.

        Every ``steal_interval_s`` an idle shard (no pending dispatcher
        work) scans ``job_dir`` for jobs whose lease is absent, expired
        or held by a dead pid, and runs them through the normal
        dispatcher path.  The job body re-claims the lease itself (the
        scan is advisory — a peer may win the race, in which case the
        body polls for the published result instead of recomputing).
        Adopted runs resume from the dead owner's checkpoint, and their
        results warm this shard's response cache so a rerouted client
        retry is a cache hit.
        """
        from repro.autotune.jobs import JobLedger

        ledger = JobLedger(self.config.job_dir)
        job = JOBS["/tune"][1]
        loop = asyncio.get_running_loop()
        while not self.draining:
            await asyncio.sleep(self.config.steal_interval_s)
            if self.draining or self.dispatcher.pending > 0:
                continue
            self.steal_counters["scans"] += 1
            try:
                records = await loop.run_in_executor(None, ledger.adoptable)
            except Exception:
                continue
            for record in records:
                if self.draining or self.dispatcher.pending > 0:
                    break
                key = record.get("key")
                payload = record.get("payload")
                if not isinstance(key, str) or not isinstance(payload, dict):
                    continue
                job_payload = dict(payload)
                job_payload["deadline"] = (
                    time.time() + self.config.request_timeout_s
                )
                job_payload["job_dir"] = self.config.job_dir
                job_payload["job_key"] = key
                job_payload["lease_ttl_s"] = self.config.lease_ttl_s

                def on_adopted(result: dict, key: str = key) -> None:
                    recovery = result.get("recovery")
                    degraded = bool(result.get("degraded")) or (
                        isinstance(recovery, dict)
                        and recovery.get("degraded")
                    )
                    if not degraded:
                        self.response_cache.put(key, result)

                try:
                    mode, task = self.dispatcher.dispatch(
                        key, job, job_payload, on_result=on_adopted
                    )
                except Overloaded:
                    break  # shard got busy mid-scan; client work first
                if mode == "fresh":
                    self.steal_counters["adopted"] += 1
                try:
                    await asyncio.shield(task)
                except Exception:
                    pass  # adoption failure: job stays pending for peers

    def metrics_snapshot(self, histograms: bool = False) -> dict:
        """The ``/metrics`` document (``histograms`` adds the mergeable
        per-endpoint bucket rows; ``slo`` rows appear only when the
        engine is configured)."""
        extra: dict = {}
        if self.slo is not None:
            extra["slo"] = self.slo.metrics_rows()
        # The overload section appears only when one of the overload
        # features is armed, keeping the default document byte-identical
        # (deadline headers alone never change /metrics).
        if self.config.adaptive_limits or self.ladder is not None:
            extra["overload"] = self.dispatcher.overload_snapshot()
            if self.ladder is not None:
                extra["overload"]["brownout"] = self.ladder.snapshot()
        return self.metrics.snapshot(
            histograms=histograms,
            uptime_s=self.uptime_s(),
            shard=self.config.shard_id,
            draining=self.draining,
            queue={
                "depth": self.dispatcher.queue_depth,
                "pending": self.dispatcher.pending,
                "limit": self.config.queue_limit,
            },
            queues=self.dispatcher.queue_snapshot(),
            approx={
                "enabled": self.config.approx_enabled,
                "min_confidence": self.config.approx_confidence,
            },
            pool={
                "workers": self.config.workers,
                "executor": self.config.executor,
                "busy": self.dispatcher.busy,
                "utilization": self.dispatcher.utilization,
            },
            response_cache={
                "size": len(self.response_cache),
                "capacity": self.config.response_cache_size,
            },
            database={"records": len(self.database)},
            breakers={
                path: breaker.snapshot()
                for path, breaker in sorted(self.breakers.items())
            },
            steal=dict(self.steal_counters),
            faults={"fired": faults.counters()},
            **extra,
        )


async def serve(config: ServiceConfig, banner: bool = True) -> None:
    """Run a server until SIGTERM/SIGINT, then drain and exit."""
    service = ReproService(config)
    port = await service.start()
    if banner:
        print(
            f"repro-service listening on http://{config.host}:{port} "
            f"(workers={config.workers}/{config.executor}, "
            f"queue_limit={config.queue_limit})",
            flush=True,
        )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, service.request_drain)
        except (NotImplementedError, RuntimeError):  # non-Unix loops
            pass
    await service.wait_stopped()
    if banner:
        print("repro-service drained, bye", flush=True)

"""Request payloads: validation, canonicalization and job execution.

Each endpoint has a *normalizer* (fills defaults, validates types,
returns a canonical dict — two requests meaning the same thing
normalize identically, which is what request coalescing and the
response cache key on) and a *job* (a pure top-level function taking
the normalized payload and returning a JSON-ready dict, picklable so
it runs unchanged on a thread or process pool).

Jobs report the traffic-memoization ledger of their own run under a
``"traffic_cache"`` key, so the server can aggregate per-tier hit
rates even when the memo lives in worker processes.  The ledger comes
from the library result objects (``TunerResult``/``RankingReport``),
which count their own lookups — never from diffing the process-global
cache counters, which would cross-count concurrent jobs.
"""

from __future__ import annotations

import hashlib

from repro.autotune.search import TUNERS
from repro.codegen.plan import KernelPlan
from repro.core.yasksite import YaskSite
from repro.machine.presets import PRESETS
from repro.offsite.tuner import TABLEAU_FAMILIES, rank_variants
from repro.service.serializers import (
    canonical_dumps,
    prediction_to_dict,
    ranking_report_to_dict,
    tuner_result_to_dict,
)
from repro.stencil.library import STENCIL_SUITE, get_stencil

__all__ = [
    "JobError",
    "JOBS",
    "request_key",
    "normalize_predict",
    "normalize_tune",
    "normalize_rank",
    "predict_job",
    "tune_job",
    "rank_job",
    "rank_db_key_parts",
]


class JobError(ValueError):
    """Invalid request payload (maps to HTTP 400)."""


def _require_grid(payload: dict, default: list[int]) -> list[int]:
    grid = payload.get("grid", default)
    if (
        not isinstance(grid, (list, tuple))
        or not grid
        or not all(isinstance(g, int) and g > 0 for g in grid)
    ):
        raise JobError(f"bad grid {grid!r}; expected a list of positive ints")
    return [int(g) for g in grid]


def _require_machine(payload: dict) -> str:
    machine = payload.get("machine", "clx")
    if not isinstance(machine, str) or machine.lower() not in PRESETS:
        raise JobError(
            f"unknown machine {machine!r}; choose from {sorted(PRESETS)}"
        )
    return machine.lower()


def _require_stencil(payload: dict) -> str:
    stencil = payload.get("stencil")
    if stencil not in STENCIL_SUITE:
        raise JobError(
            f"unknown stencil {stencil!r}; choose from {sorted(STENCIL_SUITE)}"
        )
    return stencil


def _optional_scale(payload: dict, key: str, default: float | None):
    value = payload.get(key, default)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or value <= 0:
        raise JobError(f"{key} must be a positive number, got {value!r}")
    return float(value)


def normalize_predict(payload: dict) -> dict:
    """Canonical form of a ``/predict`` request."""
    grid = _require_grid(payload, [48, 48, 64])
    block = payload.get("block")
    if block is not None:
        if (
            not isinstance(block, (list, tuple))
            or len(block) != len(grid)
            or not all(isinstance(b, int) and b > 0 for b in block)
        ):
            raise JobError(f"bad block {block!r}; expected e.g. [8, 8, 64]")
        block = [int(b) for b in block]
    return {
        "stencil": _require_stencil(payload),
        "grid": grid,
        "machine": _require_machine(payload),
        "block": block,
        "cache_scale": _optional_scale(payload, "cache_scale", None),
        "capacity_factor": _optional_scale(payload, "capacity_factor", 1.0),
    }


def normalize_tune(payload: dict) -> dict:
    """Canonical form of a ``/tune`` request."""
    tuner = payload.get("tuner", "ecm")
    if tuner not in TUNERS:
        raise JobError(
            f"unknown tuner {tuner!r}; choose from {sorted(TUNERS)}"
        )
    seed = payload.get("seed", 0)
    if not isinstance(seed, int):
        raise JobError(f"seed must be an int, got {seed!r}")
    return {
        "stencil": _require_stencil(payload),
        "grid": _require_grid(payload, [48, 48, 64]),
        "machine": _require_machine(payload),
        "tuner": tuner,
        "cache_scale": _optional_scale(payload, "cache_scale", 1 / 32),
        "seed": seed,
    }


def normalize_rank(payload: dict) -> dict:
    """Canonical form of a ``/rank`` request."""
    family = payload.get("method", "radau_iia")
    if family not in TABLEAU_FAMILIES:
        raise JobError(
            f"unknown method family {family!r}; "
            f"choose from {sorted(TABLEAU_FAMILIES)}"
        )
    stages = payload.get("stages", 4)
    corrector = payload.get("corrector_steps", 3)
    if not isinstance(stages, int) or stages < 1:
        raise JobError(f"stages must be a positive int, got {stages!r}")
    if not isinstance(corrector, int) or corrector < 1:
        raise JobError(
            f"corrector_steps must be a positive int, got {corrector!r}"
        )
    block = payload.get("block")
    grid = _require_grid(payload, [16, 16, 32])
    if block is not None and block != "auto":
        if (
            not isinstance(block, (list, tuple))
            or len(block) != len(grid)
            or not all(isinstance(b, int) and b > 0 for b in block)
        ):
            raise JobError(
                f"bad block {block!r}; expected 'auto', null or e.g. [8, 8, 32]"
            )
        block = [int(b) for b in block]
    validate = payload.get("validate", True)
    if not isinstance(validate, bool):
        raise JobError(f"validate must be a bool, got {validate!r}")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int):
        raise JobError(f"seed must be an int, got {seed!r}")
    return {
        "method": family,
        "stages": stages,
        "corrector_steps": corrector,
        "grid": grid,
        "machine": _require_machine(payload),
        "cache_scale": _optional_scale(payload, "cache_scale", 1 / 32),
        "block": block,
        "validate": validate,
        "seed": seed,
    }


#: Canonical ``/rank`` parameter defaults (see :func:`normalize_rank`).
#: Requests deviating from them get the deviation folded into the
#: database identity below.
_RANK_DEFAULT_CACHE_SCALE = 1 / 32
_RANK_DEFAULT_SEED = 0


def rank_db_key_parts(payload: dict) -> tuple[str, str, str, tuple[int, ...]]:
    """(method, ivp, machine, grid) identity of a normalized ``/rank``
    request — the :class:`~repro.offsite.database.TuningKey` fields the
    warm database tier stores rankings under.

    Every parameter that changes the ranking output is part of the
    identity: non-default ``cache_scale``, ``block`` and ``seed`` are
    folded into the ivp string, so a record stored for one
    parameterization can never be served to a request with another.
    Canonical-default requests keep the plain ``gridAxBxC`` name.
    """
    method = (
        f"{payload['method']}({payload['stages']})"
        f"m{payload['corrector_steps']}"
    )
    grid = tuple(payload["grid"])
    ivp = "grid" + "x".join(map(str, grid))
    qualifiers = []
    cache_scale = payload["cache_scale"]
    if cache_scale != _RANK_DEFAULT_CACHE_SCALE:
        qualifiers.append(
            "csfull" if cache_scale is None else f"cs{cache_scale:g}"
        )
    block = payload["block"]
    if block is not None:
        qualifiers.append(
            "bauto" if block == "auto" else "b" + "x".join(map(str, block))
        )
    if payload["seed"] != _RANK_DEFAULT_SEED:
        qualifiers.append(f"s{payload['seed']}")
    if qualifiers:
        ivp += "@" + ",".join(qualifiers)
    return method, ivp, payload["machine"], grid


# ----------------------------------------------------------------------
# Job bodies (run on the worker pool; must stay picklable top-levels)
# ----------------------------------------------------------------------
def predict_job(payload: dict) -> dict:
    """Analytic ECM prediction (no simulation, no traffic)."""
    ys = YaskSite(
        payload["machine"],
        capacity_factor=payload["capacity_factor"],
        cache_scale=payload["cache_scale"],
    )
    spec = get_stencil(payload["stencil"])
    grid = tuple(payload["grid"])
    if payload["block"] is not None:
        plan = KernelPlan(block=tuple(payload["block"]))
    else:
        plan = ys.select_block(spec, grid).plan
    pred = ys.predict(spec, grid, plan)
    out = prediction_to_dict(pred, plan=plan)
    out["grid"] = list(grid)
    return out


def tune_job(payload: dict) -> dict:
    """Run a tuner; the pool provides the parallelism (inner workers=1).

    The ``traffic_cache`` ledger is the :class:`TunerResult`'s own
    per-run counters (already serialized by
    :func:`tuner_result_to_dict`), so concurrent jobs on a shared memo
    never count each other's lookups.
    """
    ys = YaskSite(payload["machine"], cache_scale=payload["cache_scale"])
    spec = get_stencil(payload["stencil"])
    res = ys.tune(
        spec,
        tuple(payload["grid"]),
        tuner=payload["tuner"],
        seed=payload["seed"],
    )
    out = tuner_result_to_dict(res)
    out["stencil"] = payload["stencil"]
    out["machine"] = payload["machine"]
    out["grid"] = list(payload["grid"])
    return out


def rank_job(payload: dict) -> dict:
    """Offsite variant ranking for one (method, grid, machine)."""
    block = payload["block"]
    if isinstance(block, list):
        block = tuple(block)
    _, ivp, _, _ = rank_db_key_parts(payload)
    report = rank_variants(
        payload["method"],
        payload["stages"],
        payload["corrector_steps"],
        tuple(payload["grid"]),
        payload["machine"],
        cache_scale=payload["cache_scale"],
        block=block,
        validate=payload["validate"],
        seed=payload["seed"],
        ivp_name=ivp,
    )
    out = ranking_report_to_dict(report)
    out["grid"] = list(payload["grid"])
    return out


#: endpoint path → (normalizer, job body)
JOBS = {
    "/predict": (normalize_predict, predict_job),
    "/tune": (normalize_tune, tune_job),
    "/rank": (normalize_rank, rank_job),
}


def request_key(endpoint: str, normalized: dict) -> str:
    """Content hash identifying one request for coalescing/caching."""
    blob = canonical_dumps({"endpoint": endpoint, "payload": normalized})
    return hashlib.sha256(blob.encode()).hexdigest()

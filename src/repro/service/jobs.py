"""Service job adapters over the shared :mod:`repro.engine` layer.

Each endpoint has a *normalizer* (a thin wrapper over the engine's
request dataclasses: ``Request.from_payload(...).to_payload()`` fills
defaults, validates, and returns the canonical dict — two requests
meaning the same thing normalize identically, which is what request
coalescing and the response cache key on) and a *job* (a pure
top-level function taking the normalized payload and returning a
JSON-ready dict, picklable so it runs unchanged on a thread or process
pool).

Jobs report the traffic-memoization ledger of their own run under a
``"traffic_cache"`` key, so the server can aggregate per-tier hit
rates even when the memo lives in worker processes.  The ledger comes
from the engine result objects, which count their own lookups — never
from diffing the process-global cache counters, which would
cross-count concurrent jobs.

:func:`run_traced_job` wraps any job with an :mod:`repro.obs` trace
and returns ``{"result", "trace"}``; it runs *inside* the worker (a
span tree cannot cross a process boundary), and the server unwraps the
envelope so cached responses stay byte-identical to untraced ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time

from repro import faults, obs
from repro.engine import (
    PredictRequest,
    RankRequest,
    RequestError,
    TuneRequest,
    default_engine,
)
from repro.service.serializers import (
    canonical_dumps,
    predict_result_to_dict,
    rank_result_to_dict,
    tune_result_to_dict,
)

__all__ = [
    "JobError",
    "JOBS",
    "DEGRADED_JOBS",
    "request_key",
    "normalize_predict",
    "normalize_tune",
    "normalize_rank",
    "predict_job",
    "tune_job",
    "rank_job",
    "degraded_predict_job",
    "degraded_tune_job",
    "degraded_rank_job",
    "rank_db_key_parts",
    "run_traced_job",
]

#: Invalid request payload (maps to HTTP 400).  Alias of the engine's
#: error type so ``except JobError`` keeps working for callers that
#: predate the engine layer.
JobError = RequestError


def normalize_predict(payload: dict) -> dict:
    """Canonical form of a ``/predict`` request."""
    return PredictRequest.from_payload(payload).to_payload()


def normalize_tune(payload: dict) -> dict:
    """Canonical form of a ``/tune`` request."""
    return TuneRequest.from_payload(payload).to_payload()


def normalize_rank(payload: dict) -> dict:
    """Canonical form of a ``/rank`` request."""
    return RankRequest.from_payload(payload).to_payload()


def rank_db_key_parts(payload: dict) -> tuple[str, str, str, tuple[int, ...]]:
    """(method, ivp, machine, grid) identity of a normalized ``/rank``
    request — the :class:`~repro.offsite.database.TuningKey` fields the
    warm database tier stores rankings under.

    See :meth:`repro.engine.RankRequest.db_key_parts` for the folding
    rules.
    """
    return RankRequest.from_payload(payload).db_key_parts()


# ----------------------------------------------------------------------
# Job bodies (run on the worker pool; must stay picklable top-levels)
# ----------------------------------------------------------------------
def predict_job(payload: dict) -> dict:
    """Analytic ECM prediction (no simulation, no traffic)."""
    faults.check("service.predict")
    result = default_engine().predict(PredictRequest.from_payload(payload))
    return predict_result_to_dict(result)


def tune_job(payload: dict) -> dict:
    """Run a tuner; the pool provides the parallelism (inner workers=1).

    When the executing shard injected fabric keys (``job_dir`` /
    ``job_key`` — execution-only, added server-side *after* the cache
    identity is computed, so a remote client can never plant them
    through normalization), the job runs through the distributable
    ledger path instead: enqueue + lease + checkpointed execution +
    published result.
    """
    faults.check("service.tune")
    if "job_dir" in payload:
        return _fabric_tune_job(payload)
    result = default_engine().tune(TuneRequest.from_payload(payload))
    return tune_result_to_dict(result)


#: Execution-only keys the shard server injects into a fabric tune
#: payload; they never enter the job record's stored identity payload.
_FABRIC_EXEC_KEYS = ("job_dir", "job_key", "lease_ttl_s", "deadline",
                     "predictor")


def _fabric_tune_job(payload: dict) -> dict:
    """One ``/tune`` as a content-addressed, resumable, stealable unit.

    Lifecycle (see :mod:`repro.autotune.jobs`): a published result for
    the key is returned as-is (bit-identical by construction — another
    shard finished or adopted the job); otherwise the job is enqueued,
    the lease claimed (stolen from a dead owner if need be), and the
    tuner runs with its checkpoint parked next to the job record so a
    later adopter resumes instead of recomputing.  While a *live* peer
    holds the lease, this executor polls for the published result
    rather than duplicating the run.  Degraded results (partial
    searches) are returned to the caller but never published: a
    published entry is terminal and must be the clean answer.
    """
    from repro.autotune.jobs import JobLedger

    work = dict(payload)
    job_dir = work.pop("job_dir")
    job_key = work.pop("job_key")
    lease_ttl_s = float(work.pop("lease_ttl_s", 60.0))
    ledger = JobLedger(job_dir)
    done = ledger.result(job_key)
    if done is not None:
        return done
    record_payload = {
        k: v for k, v in work.items() if k not in _FABRIC_EXEC_KEYS
    }
    ledger.enqueue(job_key, "/tune", record_payload)
    owner = f"shard-pid-{os.getpid()}"
    deadline = work.get("deadline")
    while not ledger.claim(job_key, owner, ttl_s=lease_ttl_s):
        done = ledger.result(job_key)
        if done is not None:
            return done
        if deadline is not None and time.time() >= deadline:
            raise TimeoutError(
                f"tune job {job_key[:12]} leased elsewhere past deadline"
            )
        time.sleep(0.05)
    faults.check("fabric.shard.tune")
    request = TuneRequest.from_payload(work)
    request = dataclasses.replace(
        request, checkpoint=str(ledger.checkpoint_path(job_key))
    )
    result = tune_result_to_dict(default_engine().tune(request))
    if result.get("recovery", {}).get("degraded"):
        return result  # serve it, but never publish a degraded terminal
    ledger.complete(job_key, owner, result)
    return result


def rank_job(payload: dict) -> dict:
    """Offsite variant ranking for one (method, grid, machine)."""
    faults.check("service.rank")
    result = default_engine().rank(RankRequest.from_payload(payload))
    return rank_result_to_dict(result)


#: endpoint path → (normalizer, job body)
JOBS = {
    "/predict": (normalize_predict, predict_job),
    "/tune": (normalize_tune, tune_job),
    "/rank": (normalize_rank, rank_job),
}


# ----------------------------------------------------------------------
# Degraded fallbacks (breaker open: analytic answers, no fault points,
# run on the loop's thread executor — never on the suspect pool)
# ----------------------------------------------------------------------
def degraded_predict_job(payload: dict) -> dict:
    """Prediction is already analytic; rerun it off the broken pool."""
    result = default_engine().predict(PredictRequest.from_payload(payload))
    return predict_result_to_dict(result)


def degraded_tune_job(payload: dict) -> dict:
    """ECM-guided analytic tune (no variant runs), marked degraded."""
    result = default_engine().tune_analytic(TuneRequest.from_payload(payload))
    return tune_result_to_dict(result)


def degraded_rank_job(payload: dict) -> dict:
    """Prediction-only ranking: validation runs are dropped."""
    request = RankRequest.from_payload(payload)
    if request.validate:
        request = dataclasses.replace(request, validate=False)
    result = default_engine().rank(request)
    return rank_result_to_dict(result)


#: endpoint path → breaker-open fallback body
DEGRADED_JOBS = {
    "/predict": degraded_predict_job,
    "/tune": degraded_tune_job,
    "/rank": degraded_rank_job,
}


def run_traced_job(endpoint: str, payload: dict) -> dict:
    """Run ``endpoint``'s job under a trace; return result + span tree.

    Top-level and driven by ``functools.partial(run_traced_job,
    endpoint)`` so the wrapped job stays picklable for process pools.
    The trace is recorded in the executing process — worker-side spans
    cannot be stitched into a server-side trace across the pickle
    boundary, so the whole request body is traced where it runs.
    """
    _, job = JOBS[endpoint]
    trace = obs.start_trace(f"request:{endpoint}")
    try:
        result = job(payload)
    finally:
        root = trace.finish()
    return {"result": result, "trace": root.to_dict()}


def request_key(endpoint: str, normalized: dict) -> str:
    """Content hash identifying one request for coalescing/caching."""
    blob = canonical_dumps({"endpoint": endpoint, "payload": normalized})
    return hashlib.sha256(blob.encode()).hexdigest()

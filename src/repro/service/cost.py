"""Cost-aware admission: price a job analytically, route it by class.

The server must decide *before* running a job whether it is a
microsecond analytic answer or a multi-second simulation sweep — after
is too late, the queue is already blocked.  The classifier prices each
normalized request with the analytic in-core ECM estimate
(:func:`repro.perf.simulate.analytic_cycles_per_lup` — pure arithmetic
over the stencil expression and the core description, no cache
simulation) scaled by grid volume and the variant count the chosen
tuner will sweep, and routes it to the ``cheap`` or ``expensive``
queue.

The estimate is deliberately coarse: its only job is to keep
multi-second tune sweeps from queueing ahead of microsecond
predictions, so being within an order of magnitude is enough.
Per-family estimates are memoized in an :class:`~repro.store.tier.LruTier`
(the classifier runs on the event loop, on every fresh request).
"""

from __future__ import annotations

from math import prod

from repro.store.tier import LruTier

__all__ = ["classify", "JOB_CLASSES", "estimate_seconds"]

#: Queue classes, fastest first.
JOB_CLASSES = ("cheap", "expensive")

#: Simulated-replay slowdown: the exact cache simulator replays the
#: access stream in Python, costing roughly this many host cycles per
#: simulated kernel cycle.  Order-of-magnitude calibration only.
HOST_REPLAY_FACTOR = 2000.0

#: Variants a tuner sweep evaluates (coarse: the exhaustive tuner's
#: candidate count varies with grid rank; the greedy tuner converges in
#: around a dozen evaluations; the ecm tuner runs one validation).
TUNER_VARIANTS = {"ecm": 1.0, "greedy": 12.0, "exhaustive": 32.0}

#: family key → estimated seconds per simulated variant evaluation.
_estimates = LruTier("cost-estimates", capacity=256)


def _per_variant_seconds(stencil: str, machine: str, grid) -> float:
    """Host seconds to simulate one variant of this family (memoized)."""
    key = f"{stencil}|{machine}|{len(grid)}"
    cached = _estimates.peek(key)
    volume = prod(grid) if grid else 1
    if cached is not None:
        return cached * volume
    from repro.machine.presets import get_machine
    from repro.perf.simulate import analytic_cycles_per_lup
    from repro.stencil.library import get_stencil

    spec = get_stencil(stencil)
    mach = get_machine(machine)
    cycles = analytic_cycles_per_lup(spec, mach)
    per_lup_s = cycles / (mach.freq_ghz * 1e9) * HOST_REPLAY_FACTOR
    _estimates.put(key, per_lup_s)
    return per_lup_s * volume


def estimate_seconds(endpoint: str, normalized: dict) -> float:
    """Coarse host-seconds estimate of one normalized job.

    ``/predict`` is analytic (effectively free).  ``/tune`` scales the
    per-variant simulation estimate by the tuner's sweep size.
    ``/rank`` without validation is prediction-only; with validation it
    measures every variant (priced like a small sweep).  Unknown
    stencils/machines price as 0.0 — normalization already rejected
    them, and a misprice only affects queueing, not correctness.
    """
    if endpoint == "/predict":
        return 0.0
    try:
        if endpoint == "/tune":
            tuner = normalized.get("tuner", "ecm")
            if tuner == "ecm":
                return 0.0
            per_variant = _per_variant_seconds(
                normalized["stencil"],
                normalized["machine"],
                normalized.get("grid", ()),
            )
            return per_variant * TUNER_VARIANTS.get(tuner, 16.0)
        if endpoint == "/rank":
            if not normalized.get("validate"):
                return 0.0
            # Composite-kernel measurement: corrector iterations over a
            # radius-1 star; price it as a handful of variant sweeps of
            # the canonical star stencil of matching rank.
            grid = normalized.get("grid", ())
            per_variant = _per_variant_seconds(
                "2d5pt" if len(grid) == 2 else "3d7pt",
                normalized["machine"],
                grid,
            )
            return per_variant * 8.0
    except Exception:
        return 0.0
    return 0.0


def classify(
    endpoint: str, normalized: dict, threshold_s: float
) -> tuple[str, float]:
    """``(job_class, estimated_seconds)`` for one normalized request."""
    est = estimate_seconds(endpoint, normalized)
    return ("expensive" if est >= threshold_s else "cheap"), est

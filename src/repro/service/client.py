"""Stdlib HTTP client for the service, with retry + backoff.

Connection errors and retryable statuses (429 load-shed, 503 drain)
back off exponentially and try again; anything else raises
:class:`ServiceError` carrying the status and decoded body.  One
``http.client`` connection per request (the server closes connections
after each response anyway), so the client is thread-safe and the
soak test can hammer one instance from many threads.

Three overload-control behaviors ride on the retry loop (see
:mod:`repro.service.overload` for the server side):

* **Full jitter**: the exponential backoff sleeps a uniform random
  fraction of the scheduled delay, so a fleet of synchronized clients
  shed at the same instant cannot re-arrive as one retry storm.  A
  server-provided ``Retry-After`` is honored exactly (the server
  already knows when capacity returns).  ``jitter=False`` restores the
  deterministic schedule; ``jitter_seed`` makes the jitter
  reproducible for tests.
* **Retry budget**: a token bucket deposits ``retry_budget`` tokens
  per request and charges one per retry, so retries are bounded to
  roughly ``retry_budget`` of recent traffic (default 10%) — when the
  bucket is dry the client fails fast instead of amplifying an
  overload.
* **Deadline propagation**: with ``deadline_s`` set, every attempt
  carries the remaining budget in the ``X-Repro-Deadline-Ms`` header
  so the server (and the fabric router in between) can refuse or
  sweep work the caller will have abandoned; the client itself stops
  retrying once the budget is gone.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from urllib.parse import quote

from repro.service.overload import DEADLINE_HEADER, format_deadline_ms

__all__ = ["ServiceError", "ServiceClient"]

#: Token-bucket capacity of the retry budget: a short lull never banks
#: more than ten "free" retries.
_RETRY_BUDGET_CAP = 10.0


class ServiceError(RuntimeError):
    """Non-success response (after retries were exhausted)."""

    def __init__(self, status: int, body: dict | str) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServiceClient:
    """Client bound to one server address.

    Parameters
    ----------
    host, port:
        Server address.
    timeout_s:
        Socket timeout per attempt.
    retries:
        Extra attempts after the first (so ``retries=3`` → ≤ 4 tries).
    backoff_s, backoff_factor:
        Sleep before retry ``k`` is ``backoff_s * backoff_factor**k``.
    retry_statuses:
        HTTP statuses treated as transient.
    jitter:
        Full jitter on the exponential schedule (uniform in
        ``[0, scheduled delay]``).  ``Retry-After`` sleeps are never
        jittered.  ``False`` restores the deterministic schedule.
    jitter_seed:
        Seed of the jitter RNG (``None`` → nondeterministic), so tests
        can assert exact sleep sequences with jitter on.
    retry_budget:
        Tokens deposited per request into the retry token bucket; each
        retry costs one token and a dry bucket fails fast.  The default
        0.1 bounds retries to ~10% of recent attempts.  ``None``
        disables budgeting entirely.
    deadline_s:
        Per-request total budget.  Each attempt stamps the *remaining*
        budget (milliseconds) into the ``X-Repro-Deadline-Ms`` header;
        when it runs out the client raises :class:`ServiceError` with
        status 504 instead of attempting/retrying further.  ``None``
        (default) sends no header — byte-identical requests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8753,
        timeout_s: float = 120.0,
        retries: int = 3,
        backoff_s: float = 0.1,
        backoff_factor: float = 2.0,
        retry_statuses: tuple[int, ...] = (429, 503),
        jitter: bool = True,
        jitter_seed: int | None = None,
        retry_budget: float | None = 0.1,
        deadline_s: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.retry_statuses = retry_statuses
        self.jitter = jitter
        self.deadline_s = deadline_s
        self.retry_budget = retry_budget
        self._rng = random.Random(jitter_seed)
        # One lock guards both the RNG (not thread-safe under seeding
        # guarantees) and the token bucket; the critical sections are a
        # few arithmetic ops, far below the cost of one HTTP attempt.
        self._lock = threading.Lock()
        # The bucket starts full so a fresh client's first transient
        # failures retry normally; sustained retry storms drain it.
        self._retry_tokens = _RETRY_BUDGET_CAP
        self.retries_denied = 0

    # -- transport ------------------------------------------------------
    def _attempt(
        self,
        method: str,
        path: str,
        payload: dict | None,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | str, dict[str, str]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            if extra_headers:
                headers.update(extra_headers)
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read().decode()
            try:
                decoded: dict | str = json.loads(raw)
            except ValueError:
                decoded = raw
            resp_headers = {k.lower(): v for k, v in resp.getheaders()}
            return resp.status, decoded, resp_headers
        finally:
            conn.close()

    def _retry_delay_s(
        self, attempt: int, headers: dict[str, str] | None
    ) -> float:
        """Backoff before retry ``attempt``, honoring ``Retry-After``.

        A parseable Retry-After (seconds form) from a 429/503 overrides
        the exponential schedule — the server knows when capacity (or a
        half-open breaker probe) comes back — and is never jittered.
        It is capped at ``timeout_s`` so a confused server can't park
        the client, and a malformed value falls back to the exponential
        schedule.  The exponential path gets full jitter (uniform in
        ``[0, scheduled]``) unless ``jitter=False``.
        """
        if headers:
            retry_after = headers.get("retry-after")
            if retry_after is not None:
                try:
                    return min(max(float(retry_after), 0.0), self.timeout_s)
                except ValueError:
                    pass  # HTTP-date or garbage: use the backoff schedule
        scheduled = self.backoff_s * self.backoff_factor**attempt
        if not self.jitter:
            return scheduled
        with self._lock:
            return self._rng.uniform(0.0, scheduled)

    def _deposit_retry_tokens(self) -> None:
        if self.retry_budget is None:
            return
        with self._lock:
            self._retry_tokens = min(
                _RETRY_BUDGET_CAP, self._retry_tokens + self.retry_budget
            )

    def _withdraw_retry_token(self) -> bool:
        """Charge the bucket for one retry; ``False`` = budget dry."""
        if self.retry_budget is None:
            return True
        with self._lock:
            if self._retry_tokens >= 1.0:
                self._retry_tokens -= 1.0
                return True
            self.retries_denied += 1
            return False

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        retries: int | None = None,
    ) -> dict:
        """Issue one request; retry transient failures with backoff."""
        budget = self.retries if retries is None else retries
        deadline_epoch = (
            time.time() + self.deadline_s
            if self.deadline_s is not None
            else None
        )
        self._deposit_retry_tokens()
        attempt = 0
        while True:
            extra_headers = None
            if deadline_epoch is not None:
                remaining_s = deadline_epoch - time.time()
                if remaining_s <= 0:
                    raise ServiceError(
                        504, {"error": "client deadline exceeded"}
                    )
                extra_headers = {
                    DEADLINE_HEADER: format_deadline_ms(remaining_s)
                }
            try:
                status, body, headers = self._attempt(
                    method, path, payload, extra_headers
                )
            except (ConnectionError, OSError, http.client.HTTPException):
                if attempt >= budget or not self._withdraw_retry_token():
                    raise
                # transient transport failure
                status, body, headers = None, None, None
            if status is not None:
                if status < 400:
                    return body if isinstance(body, dict) else {"raw": body}
                if status not in self.retry_statuses or attempt >= budget:
                    raise ServiceError(status, body)
                if not self._withdraw_retry_token():
                    raise ServiceError(status, body)
            delay = self._retry_delay_s(attempt, headers)
            if deadline_epoch is not None:
                # Never sleep past the caller's budget: wake with just
                # enough time for the expiry check to fail fast.
                delay = min(delay, max(0.0, deadline_epoch - time.time()))
            time.sleep(delay)
            attempt += 1

    # -- endpoint wrappers ----------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz`` (no retries — health must be a point probe)."""
        status, body, _ = self._attempt("GET", "/healthz", None)
        if isinstance(body, dict):
            return {"http_status": status, **body}
        return {"http_status": status, "raw": body}

    def metrics(self, histograms: bool = False) -> dict:
        """``GET /metrics`` (``histograms`` adds mergeable bucket rows)."""
        path = "/metrics?histograms=1" if histograms else "/metrics"
        return self.request("GET", path)

    def slo(self) -> dict:
        """``GET /slo`` (``{"enabled": false}`` without an SLO engine)."""
        return self.request("GET", "/slo")

    def debug_requests(
        self,
        n: int = 50,
        endpoint: str | None = None,
        outcome: str | None = None,
        min_ms: float | None = None,
    ) -> dict:
        """``GET /debug/requests`` — the flight-recorder tail."""
        params = [f"n={n}"]
        if endpoint is not None:
            params.append(f"endpoint={quote(endpoint, safe='')}")
        if outcome is not None:
            params.append(f"outcome={quote(outcome, safe='')}")
        if min_ms is not None:
            params.append(f"min_ms={min_ms}")
        return self.request("GET", "/debug/requests?" + "&".join(params))

    def predict(self, **payload: object) -> dict:
        """``POST /predict``; returns the response envelope."""
        return self.request("POST", "/predict", dict(payload))

    def tune(self, **payload: object) -> dict:
        """``POST /tune``."""
        return self.request("POST", "/tune", dict(payload))

    def rank(self, **payload: object) -> dict:
        """``POST /rank``."""
        return self.request("POST", "/rank", dict(payload))

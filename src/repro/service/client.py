"""Stdlib HTTP client for the service, with retry + backoff.

Connection errors and retryable statuses (429 load-shed, 503 drain)
back off exponentially and try again; anything else raises
:class:`ServiceError` carrying the status and decoded body.  One
``http.client`` connection per request (the server closes connections
after each response anyway), so the client is thread-safe and the
soak test can hammer one instance from many threads.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import quote

__all__ = ["ServiceError", "ServiceClient"]


class ServiceError(RuntimeError):
    """Non-success response (after retries were exhausted)."""

    def __init__(self, status: int, body: dict | str) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class ServiceClient:
    """Client bound to one server address.

    Parameters
    ----------
    host, port:
        Server address.
    timeout_s:
        Socket timeout per attempt.
    retries:
        Extra attempts after the first (so ``retries=3`` → ≤ 4 tries).
    backoff_s, backoff_factor:
        Sleep before retry ``k`` is ``backoff_s * backoff_factor**k``.
    retry_statuses:
        HTTP statuses treated as transient.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8753,
        timeout_s: float = 120.0,
        retries: int = 3,
        backoff_s: float = 0.1,
        backoff_factor: float = 2.0,
        retry_statuses: tuple[int, ...] = (429, 503),
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self.retry_statuses = retry_statuses

    # -- transport ------------------------------------------------------
    def _attempt(
        self, method: str, path: str, payload: dict | None
    ) -> tuple[int, dict | str, dict[str, str]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            raw = resp.read().decode()
            try:
                decoded: dict | str = json.loads(raw)
            except ValueError:
                decoded = raw
            resp_headers = {k.lower(): v for k, v in resp.getheaders()}
            return resp.status, decoded, resp_headers
        finally:
            conn.close()

    def _retry_delay_s(
        self, attempt: int, headers: dict[str, str] | None
    ) -> float:
        """Backoff before retry ``attempt``, honoring ``Retry-After``.

        A parseable Retry-After (seconds form) from a 429/503 overrides
        the exponential schedule — the server knows when capacity (or a
        half-open breaker probe) comes back.  It is capped at
        ``timeout_s`` so a confused server can't park the client, and a
        malformed value falls back to the exponential schedule.
        """
        if headers:
            retry_after = headers.get("retry-after")
            if retry_after is not None:
                try:
                    return min(max(float(retry_after), 0.0), self.timeout_s)
                except ValueError:
                    pass  # HTTP-date or garbage: use the backoff schedule
        return self.backoff_s * self.backoff_factor**attempt

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        retries: int | None = None,
    ) -> dict:
        """Issue one request; retry transient failures with backoff."""
        budget = self.retries if retries is None else retries
        attempt = 0
        while True:
            try:
                status, body, headers = self._attempt(method, path, payload)
            except (ConnectionError, OSError, http.client.HTTPException):
                if attempt >= budget:
                    raise
                # transient transport failure
                status, body, headers = None, None, None
            if status is not None:
                if status < 400:
                    return body if isinstance(body, dict) else {"raw": body}
                if status not in self.retry_statuses or attempt >= budget:
                    raise ServiceError(status, body)
            time.sleep(self._retry_delay_s(attempt, headers))
            attempt += 1

    # -- endpoint wrappers ----------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz`` (no retries — health must be a point probe)."""
        status, body, _ = self._attempt("GET", "/healthz", None)
        if isinstance(body, dict):
            return {"http_status": status, **body}
        return {"http_status": status, "raw": body}

    def metrics(self, histograms: bool = False) -> dict:
        """``GET /metrics`` (``histograms`` adds mergeable bucket rows)."""
        path = "/metrics?histograms=1" if histograms else "/metrics"
        return self.request("GET", path)

    def slo(self) -> dict:
        """``GET /slo`` (``{"enabled": false}`` without an SLO engine)."""
        return self.request("GET", "/slo")

    def debug_requests(
        self,
        n: int = 50,
        endpoint: str | None = None,
        outcome: str | None = None,
        min_ms: float | None = None,
    ) -> dict:
        """``GET /debug/requests`` — the flight-recorder tail."""
        params = [f"n={n}"]
        if endpoint is not None:
            params.append(f"endpoint={quote(endpoint, safe='')}")
        if outcome is not None:
            params.append(f"outcome={quote(outcome, safe='')}")
        if min_ms is not None:
            params.append(f"min_ms={min_ms}")
        return self.request("GET", "/debug/requests?" + "&".join(params))

    def predict(self, **payload: object) -> dict:
        """``POST /predict``; returns the response envelope."""
        return self.request("POST", "/predict", dict(payload))

    def tune(self, **payload: object) -> dict:
        """``POST /tune``."""
        return self.request("POST", "/tune", dict(payload))

    def rank(self, **payload: object) -> dict:
        """``POST /rank``."""
        return self.request("POST", "/rank", dict(payload))

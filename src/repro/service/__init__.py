"""``repro.service`` — the async tuning/prediction server.

A stdlib-only HTTP JSON service in front of the ECM/cache-simulation
pipeline: ``/predict`` (single-core ECM prediction), ``/tune`` (tuner
run + ledger), ``/rank`` (Offsite variant ranking), ``/healthz`` and
``/metrics``.  Internally it layers request coalescing and batching
onto a worker pool behind tiered caches (response LRU → traffic memo
→ tuning database), with admission control, per-request timeouts and
graceful drain.  Start one with ``python -m repro serve``.
"""

from repro.service.background import BackgroundServer
from repro.service.batching import CoalescingDispatcher, Overloaded
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.jobs import JOBS, JobError, request_key
from repro.service.metrics import ServiceMetrics
from repro.service.server import ReproService, serve

__all__ = [
    "BackgroundServer",
    "CoalescingDispatcher",
    "Overloaded",
    "ServiceClient",
    "ServiceError",
    "ServiceConfig",
    "JOBS",
    "JobError",
    "request_key",
    "ServiceMetrics",
    "ReproService",
    "serve",
]

"""Service observability: request counters, latency percentiles, tiers.

Every POST request resolves to exactly **one** outcome —

``cache``        served by the in-process LRU response cache (tier 1)
``coalesced``    joined an identical in-flight request's future
``database``     served by the warm Offsite tuning database (tier 3)
``approximate``  interpolated from the near-match store tier
``fresh``        executed on the worker pool
``degraded``     breaker open — served by the analytic fallback
``shed``         refused by admission control or an open breaker
``failed``       bad payload, job error or timeout

so the per-endpoint outcome counts always sum to the request total;
the soak test asserts that invariant through ``/metrics``.

Tier ledgers come from the unified ``repro.store`` substrate: a tier
either *reports itself* (an attached :class:`~repro.store.tier.Tier`
whose own ledger is snapshotted) or is *recorded into* (counts arriving
with results, e.g. the traffic memo deltas a tuner job carries back
from its worker process).  Both shapes merge into one
``{"hits", "misses", "puts", "evictions", "hit_rate"}`` row per tier,
and ``hit_rate`` is ``None`` — never 0.0 — for an untouched tier.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.telemetry.histogram import LatencyHistogram

__all__ = [
    "OUTCOMES",
    "TIER_NAMES",
    "LatencyReservoir",
    "EndpointStats",
    "ServiceMetrics",
]

OUTCOMES = (
    "cache", "coalesced", "database", "approximate", "fresh", "degraded",
    "shed", "failed",
)

#: Tiers pre-registered on every server so ``/metrics`` always exposes
#: the full ledger table (all-zero rows for idle tiers) and the fabric
#: fan-in can sum shard snapshots without schema drift.  ``traffic`` is
#: the combined memo ledger kept for dashboard continuity;
#: ``traffic-memory``/``traffic-disk`` split it by serving tier.
TIER_NAMES = (
    "response",
    "traffic",
    "traffic-memory",
    "traffic-disk",
    "database",
    "approx",
)

_LEDGER_FIELDS = ("hits", "misses", "puts", "evictions")


class LatencyReservoir:
    """Sliding window of request latencies with percentile readout."""

    def __init__(self, capacity: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        self._samples.append(seconds)
        self.count += 1

    def percentiles(self) -> dict[str, float | None]:
        """p50/p95/p99 of the retained window, in milliseconds."""
        if not self._samples:
            return {"p50_ms": None, "p95_ms": None, "p99_ms": None}
        ordered = sorted(self._samples)
        n = len(ordered)

        def pick(q: float) -> float:
            idx = min(n - 1, max(0, round(q * (n - 1))))
            return ordered[idx] * 1e3

        return {
            "p50_ms": pick(0.50),
            "p95_ms": pick(0.95),
            "p99_ms": pick(0.99),
        }


class EndpointStats:
    """Outcome counters + latency reservoir + histogram of one endpoint.

    The reservoir keeps raw samples (exact in-process percentiles);
    the histogram keeps the same stream in the fixed mergeable bucket
    layout so shard snapshots can be summed by the fabric router.  Both
    record on every request (a few ns each); the histogram appears in
    snapshots only when asked for, keeping the default JSON unchanged.
    """

    def __init__(self, reservoir: int = 2048) -> None:
        self.total = 0
        self.outcomes = {name: 0 for name in OUTCOMES}
        self.latency = LatencyReservoir(reservoir)
        self.histogram = LatencyHistogram()

    def record(self, outcome: str, seconds: float) -> None:
        if outcome not in self.outcomes:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.total += 1
        self.outcomes[outcome] += 1
        self.latency.record(seconds)
        self.histogram.record(seconds)

    def snapshot(self, histograms: bool = False) -> dict:
        data = {
            "requests": self.total,
            "outcomes": dict(self.outcomes),
            "latency": self.latency.percentiles(),
        }
        if histograms:
            data["latency_histogram"] = self.histogram.to_dict()
        return data


class ServiceMetrics:
    """All counters of one server, snapshotted by ``/metrics``.

    Thread-safe: the asyncio server records from its loop thread, but
    tests and the background-server helper may read concurrently.
    """

    def __init__(self, reservoir: int = 2048) -> None:
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self.endpoints: dict[str, EndpointStats] = {}
        # Recorded tier counts (arriving with results); attached tiers
        # report their own ledgers and are merged in at snapshot time.
        self.tiers = {
            name: {field: 0 for field in _LEDGER_FIELDS}
            for name in TIER_NAMES
        }
        self._attached: dict[str, object] = {}
        # Predictor-path ledger: which path produced the traffic
        # reports behind fresh tune work (layer-condition fast path vs.
        # cache replay; mismatches are LC cross-check divergences).
        self.predictor = {
            "lc_served": 0,
            "sim_served": 0,
            "lc_validation_mismatch": 0,
        }
        # Per-stage wall-time attribution: request lifecycle stages
        # (normalize/cache/execute) on every request, plus obs span
        # aggregates folded in when a request ran traced.
        self.stages: dict[str, dict] = {}

    def record_request(
        self, endpoint: str, outcome: str, seconds: float
    ) -> None:
        """Count one finished request."""
        with self._lock:
            stats = self.endpoints.get(endpoint)
            if stats is None:
                stats = self.endpoints[endpoint] = EndpointStats(
                    self._reservoir
                )
            stats.record(outcome, seconds)

    def record_tier(
        self,
        tier: str,
        hits: int = 0,
        misses: int = 0,
        puts: int = 0,
        evictions: int = 0,
    ) -> None:
        """Add to one tier's recorded ledger (unknown names register)."""
        with self._lock:
            ledger = self.tiers.setdefault(
                tier, {field: 0 for field in _LEDGER_FIELDS}
            )
            ledger["hits"] += hits
            ledger["misses"] += misses
            ledger["puts"] += puts
            ledger["evictions"] += evictions

    def attach_tier(self, name: str, tier) -> None:
        """Register a live :class:`~repro.store.tier.Tier`.

        Its own ledger is read at every snapshot and summed with any
        recorded counts under the same name, so a tier the server
        consults directly (response LRU, database adapter, near-match)
        needs no per-request ``record_tier`` bookkeeping.
        """
        with self._lock:
            self._attached[name] = tier
            self.tiers.setdefault(
                name, {field: 0 for field in _LEDGER_FIELDS}
            )

    def record_predictor(
        self,
        lc_served: int = 0,
        sim_served: int = 0,
        lc_validation_mismatch: int = 0,
    ) -> None:
        """Add one job's predictor-path serve counts."""
        if not (lc_served or sim_served or lc_validation_mismatch):
            return
        with self._lock:
            self.predictor["lc_served"] += lc_served
            self.predictor["sim_served"] += sim_served
            self.predictor["lc_validation_mismatch"] += lc_validation_mismatch

    def record_stages(self, stage_seconds: dict[str, float]) -> None:
        """Fold one request's per-stage wall times in (single lock)."""
        if not stage_seconds:
            return
        with self._lock:
            for name, seconds in stage_seconds.items():
                entry = self.stages.get(name)
                if entry is None:
                    entry = self.stages[name] = {"count": 0, "total_s": 0.0}
                entry["count"] += 1
                entry["total_s"] += seconds

    @staticmethod
    def _hit_rate(ledger: dict) -> float | None:
        total = ledger["hits"] + ledger["misses"]
        return ledger["hits"] / total if total else None

    def _tier_rows(self) -> dict:
        """Recorded + attached ledgers merged into one table (locked)."""
        rows = {}
        for name, ledger in self.tiers.items():
            row = {field: ledger[field] for field in _LEDGER_FIELDS}
            tier = self._attached.get(name)
            if tier is not None:
                stats = tier.stats()
                for field in _LEDGER_FIELDS:
                    row[field] += int(stats.get(field, 0))
                row["size"] = stats.get("size", 0)
            row["hit_rate"] = self._hit_rate(row)
            rows[name] = row
        return rows

    def tier_totals(self) -> dict[str, dict[str, int]]:
        """Cumulative ``{tier: {"hits", "misses"}}`` (recorded +
        attached, locked) — the SLO engine's hit-rate feed."""
        with self._lock:
            return {
                name: {"hits": row["hits"], "misses": row["misses"]}
                for name, row in self._tier_rows().items()
            }

    def snapshot(self, histograms: bool = False, **extra: object) -> dict:
        """JSON-ready state; ``extra`` merges server-owned gauges in
        (queue depth, pool utilization, uptime, ...).  ``histograms``
        adds each endpoint's mergeable bucket rows — requested by the
        fabric fan-in and ``?histograms=1``, off by default so the
        plain ``/metrics`` document is unchanged."""
        with self._lock:
            data = {
                "endpoints": {
                    path: stats.snapshot(histograms=histograms)
                    for path, stats in sorted(self.endpoints.items())
                },
                "tiers": self._tier_rows(),
                "predictor": {
                    **self.predictor,
                    "lc_fraction": self._hit_rate(
                        {
                            "hits": self.predictor["lc_served"],
                            "misses": self.predictor["sim_served"],
                        }
                    ),
                },
                "stages": {
                    name: {
                        "count": entry["count"],
                        "total_s": entry["total_s"],
                        "mean_ms": entry["total_s"] / entry["count"] * 1e3,
                    }
                    for name, entry in sorted(self.stages.items())
                },
            }
        data.update(extra)
        return data

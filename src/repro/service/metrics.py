"""Service observability: request counters, latency percentiles, tiers.

Every POST request resolves to exactly **one** outcome —

``cache``      served by the in-process LRU response cache (tier 1)
``coalesced``  joined an identical in-flight request's future
``database``   served by the warm Offsite tuning database (tier 3)
``fresh``      executed on the worker pool
``degraded``   breaker open — served by the analytic fallback
``shed``       refused by admission control or an open breaker
``failed``     bad payload, job error or timeout

so the per-endpoint outcome counts always sum to the request total;
the soak test asserts that invariant through ``/metrics``.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["OUTCOMES", "LatencyReservoir", "EndpointStats", "ServiceMetrics"]

OUTCOMES = (
    "cache", "coalesced", "database", "fresh", "degraded", "shed", "failed"
)


class LatencyReservoir:
    """Sliding window of request latencies with percentile readout."""

    def __init__(self, capacity: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample (in seconds)."""
        self._samples.append(seconds)
        self.count += 1

    def percentiles(self) -> dict[str, float | None]:
        """p50/p95/p99 of the retained window, in milliseconds."""
        if not self._samples:
            return {"p50_ms": None, "p95_ms": None, "p99_ms": None}
        ordered = sorted(self._samples)
        n = len(ordered)

        def pick(q: float) -> float:
            idx = min(n - 1, max(0, round(q * (n - 1))))
            return ordered[idx] * 1e3

        return {
            "p50_ms": pick(0.50),
            "p95_ms": pick(0.95),
            "p99_ms": pick(0.99),
        }


class EndpointStats:
    """Outcome counters + latency reservoir of one endpoint."""

    def __init__(self, reservoir: int = 2048) -> None:
        self.total = 0
        self.outcomes = {name: 0 for name in OUTCOMES}
        self.latency = LatencyReservoir(reservoir)

    def record(self, outcome: str, seconds: float) -> None:
        if outcome not in self.outcomes:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.total += 1
        self.outcomes[outcome] += 1
        self.latency.record(seconds)

    def snapshot(self) -> dict:
        return {
            "requests": self.total,
            "outcomes": dict(self.outcomes),
            "latency": self.latency.percentiles(),
        }


class ServiceMetrics:
    """All counters of one server, snapshotted by ``/metrics``.

    Thread-safe: the asyncio server records from its loop thread, but
    tests and the background-server helper may read concurrently.
    """

    def __init__(self, reservoir: int = 2048) -> None:
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self.endpoints: dict[str, EndpointStats] = {}
        # Tiered-cache ledgers: response LRU (1), traffic memo (2),
        # tuning database (3).
        self.tiers = {
            "response": {"hits": 0, "misses": 0},
            "traffic": {"hits": 0, "misses": 0},
            "database": {"hits": 0, "misses": 0},
        }
        # Predictor-path ledger: which path produced the traffic
        # reports behind fresh tune work (layer-condition fast path vs.
        # cache replay; mismatches are LC cross-check divergences).
        self.predictor = {
            "lc_served": 0,
            "sim_served": 0,
            "lc_validation_mismatch": 0,
        }
        # Per-stage wall-time attribution: request lifecycle stages
        # (normalize/cache/execute) on every request, plus obs span
        # aggregates folded in when a request ran traced.
        self.stages: dict[str, dict] = {}

    def record_request(
        self, endpoint: str, outcome: str, seconds: float
    ) -> None:
        """Count one finished request."""
        with self._lock:
            stats = self.endpoints.get(endpoint)
            if stats is None:
                stats = self.endpoints[endpoint] = EndpointStats(
                    self._reservoir
                )
            stats.record(outcome, seconds)

    def record_tier(self, tier: str, hits: int = 0, misses: int = 0) -> None:
        """Add to one cache tier's hit/miss ledger."""
        with self._lock:
            ledger = self.tiers[tier]
            ledger["hits"] += hits
            ledger["misses"] += misses

    def record_predictor(
        self,
        lc_served: int = 0,
        sim_served: int = 0,
        lc_validation_mismatch: int = 0,
    ) -> None:
        """Add one job's predictor-path serve counts."""
        if not (lc_served or sim_served or lc_validation_mismatch):
            return
        with self._lock:
            self.predictor["lc_served"] += lc_served
            self.predictor["sim_served"] += sim_served
            self.predictor["lc_validation_mismatch"] += lc_validation_mismatch

    def record_stages(self, stage_seconds: dict[str, float]) -> None:
        """Fold one request's per-stage wall times in (single lock)."""
        if not stage_seconds:
            return
        with self._lock:
            for name, seconds in stage_seconds.items():
                entry = self.stages.get(name)
                if entry is None:
                    entry = self.stages[name] = {"count": 0, "total_s": 0.0}
                entry["count"] += 1
                entry["total_s"] += seconds

    @staticmethod
    def _hit_rate(ledger: dict) -> float | None:
        total = ledger["hits"] + ledger["misses"]
        return ledger["hits"] / total if total else None

    def snapshot(self, **extra: object) -> dict:
        """JSON-ready state; ``extra`` merges server-owned gauges in
        (queue depth, pool utilization, uptime, ...)."""
        with self._lock:
            data = {
                "endpoints": {
                    path: stats.snapshot()
                    for path, stats in sorted(self.endpoints.items())
                },
                "tiers": {
                    name: {**ledger, "hit_rate": self._hit_rate(ledger)}
                    for name, ledger in self.tiers.items()
                },
                "predictor": {
                    **self.predictor,
                    "lc_fraction": self._hit_rate(
                        {
                            "hits": self.predictor["lc_served"],
                            "misses": self.predictor["sim_served"],
                        }
                    ),
                },
                "stages": {
                    name: {
                        "count": entry["count"],
                        "total_s": entry["total_s"],
                        "mean_ms": entry["total_s"] / entry["count"] * 1e3,
                    }
                    for name, entry in sorted(self.stages.items())
                },
            }
        data.update(extra)
        return data

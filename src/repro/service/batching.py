"""Request coalescing + batching onto a worker pool, with admission.

The dispatcher owns the executor (thread or process pool — job bodies
in :mod:`repro.service.jobs` are picklable top-level functions so both
work) and keeps one task per distinct in-flight request key: a second
identical request *joins* the running task instead of re-executing it
(coalescing).  Heterogeneous requests batch naturally — each fresh job
is one pool item, and the pool's ``workers`` slots drain the queue.

Admission control is a bounded count of fresh in-flight jobs *per
queue class*: cost-aware routing (``config.cost_routing``) splits
admissions into a ``cheap`` and an ``expensive`` queue with their own
limits and deadlines, so a burst of multi-second tune sweeps saturates
its own queue instead of shedding microsecond predictions.  With
routing off everything rides the ``cheap`` queue under the legacy
``queue_limit`` — behavior is byte-identical to the single-queue
dispatcher.  Beyond a class's limit the dispatcher sheds (the server
turns that into HTTP 429).

Two overload-control layers ride on top (see
:mod:`repro.service.overload`):

* A fresh job carrying a propagated deadline is wrapped in a *sweep
  guard*: if the deadline expired while the job sat in the pool queue,
  the worker raises :class:`DeadlineSwept` at dequeue instead of
  executing for a caller that already gave up.  Per-class
  ``admitted``/``executed``/``swept`` counters keep the invariant
  ``admitted == executed + swept`` once the queue drains.
* With ``config.adaptive_limits`` each class's admission bound becomes
  ``min(static limit, AIMD limit)``; finished fresh jobs feed their
  total latency back into the limiter and the per-class latency
  tracker (which deadline admission consults for the observed p95).
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Awaitable, Callable

from repro.service.config import ServiceConfig
from repro.service.cost import JOB_CLASSES
from repro.service.overload import AdaptiveLimiter, ClassLatencyTracker

__all__ = ["Overloaded", "DeadlineSwept", "CoalescingDispatcher"]


class Overloaded(RuntimeError):
    """Admission control tripped: too many in-flight jobs."""


class DeadlineSwept(RuntimeError):
    """The job's deadline expired while it waited in the queue."""


def _deadline_guarded(deadline_epoch: float, fn, payload: dict) -> dict:
    """Top-level (picklable) sweep guard run inside the pool worker:
    a job whose caller's deadline already passed is dropped at dequeue
    instead of executed."""
    now = time.time()
    if now >= deadline_epoch:
        raise DeadlineSwept(
            f"deadline expired {now - deadline_epoch:.3f}s before dequeue"
        )
    return fn(payload)


class CoalescingDispatcher:
    """Deduplicate identical in-flight requests; bound fresh admissions.

    All methods must be called from the event-loop thread (the server's
    request handlers); the executor threads/processes only ever see the
    pure job functions.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._executor: Executor | None = None
        self._expensive_executor: Executor | None = None
        self._inflight: dict[str, asyncio.Task] = {}
        # Fresh jobs admitted and not yet finished, per queue class.
        self._class_pending = {cls: 0 for cls in JOB_CLASSES}
        self._class_shed = {cls: 0 for cls in JOB_CLASSES}
        # Deadline bookkeeping: admitted == executed + swept once the
        # queue drains (the property test drills this invariant).
        self._class_admitted = {cls: 0 for cls in JOB_CLASSES}
        self._class_executed = {cls: 0 for cls in JOB_CLASSES}
        self._class_swept = {cls: 0 for cls in JOB_CLASSES}
        # Observed total latency per class (deadline admission's p95
        # source) — always on, a deque append per finished fresh job.
        self._trackers = {cls: ClassLatencyTracker() for cls in JOB_CLASSES}
        self._limiters: dict[str, AdaptiveLimiter] | None = None
        if config.adaptive_limits:
            self._limiters = {
                cls: AdaptiveLimiter(
                    ceiling=config.class_queue_limit(cls),
                    target_s=config.class_adaptive_target_s(cls),
                )
                for cls in JOB_CLASSES
            }

    # -- gauges ---------------------------------------------------------
    @property
    def pending(self) -> int:
        """Fresh jobs admitted and not yet finished (running + queued)."""
        return sum(self._class_pending.values())

    @property
    def busy(self) -> int:
        """Pool slots currently occupied (bounded by the pool sizes)."""
        cheap = min(self._class_pending["cheap"], self.config.workers)
        expensive = self._class_pending["expensive"]
        if self.config.expensive_workers is not None:
            return cheap + min(expensive, self.config.expensive_workers)
        # Shared pool: both classes compete for the same slots.
        return min(self.pending, self.config.workers)

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but waiting for a free pool slot."""
        return max(0, self.pending - self.busy)

    @property
    def utilization(self) -> float:
        """Busy fraction of the pools in [0, 1]."""
        slots = self.config.workers + (self.config.expensive_workers or 0)
        return self.busy / slots

    def queue_snapshot(self) -> dict:
        """Per-class queue gauges for ``/metrics``.

        Always two classes; with routing off the ``expensive`` row is
        all-idle (everything admits as ``cheap``), so dashboards keep a
        stable schema either way.
        """
        snapshot = {}
        for cls in JOB_CLASSES:
            pending = self._class_pending[cls]
            workers = self._class_workers(cls)
            snapshot[cls] = {
                "pending": pending,
                "depth": max(0, pending - workers),
                "limit": self.config.class_queue_limit(cls),
                "shed": self._class_shed[cls],
                "deadline_s": self.config.class_timeout_s(cls),
                "workers": workers,
            }
            # The adaptive gauge appears only when the limiter is on,
            # keeping the default /metrics document byte-identical.
            if self._limiters is not None:
                snapshot[cls]["adaptive_limit"] = self._limiters[cls].limit
        return snapshot

    def overload_snapshot(self) -> dict:
        """Per-class overload-control gauges (deadline sweep counters,
        observed p95, adaptive limiter state) for the ``/metrics``
        ``overload`` section."""
        classes: dict[str, dict] = {}
        for cls in JOB_CLASSES:
            p95 = self._trackers[cls].p95()
            row = {
                "admitted": self._class_admitted[cls],
                "executed": self._class_executed[cls],
                "swept": self._class_swept[cls],
                "observed_p95_ms": (
                    round(p95 * 1e3, 3) if p95 is not None else None
                ),
            }
            if self._limiters is not None:
                row["adaptive"] = self._limiters[cls].snapshot()
            classes[cls] = row
        return {"classes": classes}

    def class_limit(self, job_class: str) -> int:
        """The admission bound in force: the static class limit, further
        tightened by the AIMD limiter when adaptive limits are on."""
        limit = self.config.class_queue_limit(job_class)
        if self._limiters is not None:
            limit = min(limit, self._limiters[job_class].limit)
        return limit

    def observed_p95_s(self, job_class: str) -> float | None:
        """Windowed p95 total latency of one class (``None`` while the
        sample is too small to judge a deadline by)."""
        return self._trackers[job_class].p95()

    def _class_workers(self, job_class: str) -> int:
        if (
            job_class == "expensive"
            and self.config.expensive_workers is not None
        ):
            return self.config.expensive_workers
        return self.config.workers

    # -- lifecycle ------------------------------------------------------
    def _make_executor(self, workers: int) -> Executor:
        if self.config.executor == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )

    def _ensure_executor(self, job_class: str = "cheap") -> Executor:
        if (
            job_class == "expensive"
            and self.config.expensive_workers is not None
        ):
            if self._expensive_executor is None:
                self._expensive_executor = self._make_executor(
                    self.config.expensive_workers
                )
            return self._expensive_executor
        if self._executor is None:
            self._executor = self._make_executor(self.config.workers)
        return self._executor

    async def drain(self, timeout: float) -> bool:
        """Wait for all in-flight jobs; ``True`` if everything finished."""
        tasks = list(self._inflight.values())
        if not tasks:
            return True
        done, pending = await asyncio.wait(tasks, timeout=timeout)
        return not pending

    def shutdown(self) -> None:
        """Tear the pools down (cancels jobs still queued inside them)."""
        for attr in ("_executor", "_expensive_executor"):
            executor = getattr(self, attr)
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                setattr(self, attr, None)

    # -- dispatch -------------------------------------------------------
    def dispatch(
        self,
        key: str,
        fn: Callable[[dict], dict],
        payload: dict,
        on_result: Callable[[dict], None] | None = None,
        job_class: str = "cheap",
        deadline_epoch: float | None = None,
    ) -> tuple[str, Awaitable[dict]]:
        """Route one request; returns ``("coalesced"|"fresh", awaitable)``.

        Raises :class:`Overloaded` when a fresh job would exceed its
        class's admission bound.  ``on_result`` runs on the loop with a
        successful result *before* the key leaves the in-flight map —
        populate response caches there, so a request can never slip
        between job completion and cache fill and re-execute.  Awaiters
        must wrap the returned task in ``asyncio.shield`` so a
        per-request timeout does not cancel the shared job other
        waiters ride on.

        A ``deadline_epoch`` (absolute ``time.time()`` seconds) arms
        the sweep guard: if it passes while the job waits for a pool
        slot, the job raises :class:`DeadlineSwept` at dequeue instead
        of executing.  Coalesced waiters share the fresh dispatcher's
        deadline fate — a later arrival with more budget re-requests
        after the swept key is released.
        """
        if job_class not in self._class_pending:
            raise ValueError(f"unknown job class {job_class!r}")
        task = self._inflight.get(key)
        if task is not None:
            return "coalesced", task
        limit = self.class_limit(job_class)
        if self._class_pending[job_class] >= limit:
            self._class_shed[job_class] += 1
            raise Overloaded(
                f"{self._class_pending[job_class]} jobs in flight "
                f"(limit {limit})"
            )
        self._class_pending[job_class] += 1
        self._class_admitted[job_class] += 1
        if deadline_epoch is not None:
            fn = functools.partial(_deadline_guarded, deadline_epoch, fn)
        task = asyncio.get_running_loop().create_task(
            self._run(key, fn, payload, on_result, job_class)
        )
        # Consume exceptions even if every waiter timed out first.
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
        self._inflight[key] = task
        return "fresh", task

    async def _run(
        self,
        key: str,
        fn: Callable[[dict], dict],
        payload: dict,
        on_result: Callable[[dict], None] | None,
        job_class: str,
    ) -> dict:
        swept = False
        t0 = time.perf_counter()
        try:
            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    self._ensure_executor(job_class), fn, payload
                )
            except DeadlineSwept:
                swept = True
                raise
            if on_result is not None:
                on_result(result)
            return result
        finally:
            self._class_pending[job_class] -= 1
            self._inflight.pop(key, None)
            if swept:
                self._class_swept[job_class] += 1
            else:
                # Executed = the worker actually ran it (success or
                # job failure alike — both consumed a pool slot).
                self._class_executed[job_class] += 1
                elapsed = time.perf_counter() - t0
                self._trackers[job_class].record(elapsed)
                if self._limiters is not None:
                    self._limiters[job_class].record(elapsed)

"""Request coalescing + batching onto a worker pool, with admission.

The dispatcher owns the executor (thread or process pool — job bodies
in :mod:`repro.service.jobs` are picklable top-level functions so both
work) and keeps one task per distinct in-flight request key: a second
identical request *joins* the running task instead of re-executing it
(coalescing).  Heterogeneous requests batch naturally — each fresh job
is one pool item, and the pool's ``workers`` slots drain the queue.

Admission control is a bounded count of fresh in-flight jobs: beyond
``queue_limit`` the dispatcher sheds (the server turns that into HTTP
429) instead of letting the queue grow without bound.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Awaitable, Callable

from repro.service.config import ServiceConfig

__all__ = ["Overloaded", "CoalescingDispatcher"]


class Overloaded(RuntimeError):
    """Admission control tripped: too many in-flight jobs."""


class CoalescingDispatcher:
    """Deduplicate identical in-flight requests; bound fresh admissions.

    All methods must be called from the event-loop thread (the server's
    request handlers); the executor threads/processes only ever see the
    pure job functions.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._executor: Executor | None = None
        self._inflight: dict[str, asyncio.Task] = {}
        self._pending = 0  # fresh jobs admitted and not yet finished

    # -- gauges ---------------------------------------------------------
    @property
    def pending(self) -> int:
        """Fresh jobs admitted and not yet finished (running + queued)."""
        return self._pending

    @property
    def busy(self) -> int:
        """Pool slots currently occupied (bounded by ``workers``)."""
        return min(self._pending, self.config.workers)

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but waiting for a free pool slot."""
        return max(0, self._pending - self.config.workers)

    @property
    def utilization(self) -> float:
        """Busy fraction of the pool in [0, 1]."""
        return self.busy / self.config.workers

    # -- lifecycle ------------------------------------------------------
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.config.executor == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.workers
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-service",
                )
        return self._executor

    async def drain(self, timeout: float) -> bool:
        """Wait for all in-flight jobs; ``True`` if everything finished."""
        tasks = list(self._inflight.values())
        if not tasks:
            return True
        done, pending = await asyncio.wait(tasks, timeout=timeout)
        return not pending

    def shutdown(self) -> None:
        """Tear the pool down (cancels jobs still queued inside it)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # -- dispatch -------------------------------------------------------
    def dispatch(
        self,
        key: str,
        fn: Callable[[dict], dict],
        payload: dict,
        on_result: Callable[[dict], None] | None = None,
    ) -> tuple[str, Awaitable[dict]]:
        """Route one request; returns ``("coalesced"|"fresh", awaitable)``.

        Raises :class:`Overloaded` when a fresh job would exceed the
        admission bound.  ``on_result`` runs on the loop with a
        successful result *before* the key leaves the in-flight map —
        populate response caches there, so a request can never slip
        between job completion and cache fill and re-execute.  Awaiters
        must wrap the returned task in ``asyncio.shield`` so a
        per-request timeout does not cancel the shared job other
        waiters ride on.
        """
        task = self._inflight.get(key)
        if task is not None:
            return "coalesced", task
        if self._pending >= self.config.queue_limit:
            raise Overloaded(
                f"{self._pending} jobs in flight (limit "
                f"{self.config.queue_limit})"
            )
        self._pending += 1
        task = asyncio.get_running_loop().create_task(
            self._run(key, fn, payload, on_result)
        )
        # Consume exceptions even if every waiter timed out first.
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
        self._inflight[key] = task
        return "fresh", task

    async def _run(
        self,
        key: str,
        fn: Callable[[dict], dict],
        payload: dict,
        on_result: Callable[[dict], None] | None,
    ) -> dict:
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._ensure_executor(), fn, payload
            )
            if on_result is not None:
                on_result(result)
            return result
        finally:
            self._pending -= 1
            self._inflight.pop(key, None)

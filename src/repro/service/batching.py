"""Request coalescing + batching onto a worker pool, with admission.

The dispatcher owns the executor (thread or process pool — job bodies
in :mod:`repro.service.jobs` are picklable top-level functions so both
work) and keeps one task per distinct in-flight request key: a second
identical request *joins* the running task instead of re-executing it
(coalescing).  Heterogeneous requests batch naturally — each fresh job
is one pool item, and the pool's ``workers`` slots drain the queue.

Admission control is a bounded count of fresh in-flight jobs *per
queue class*: cost-aware routing (``config.cost_routing``) splits
admissions into a ``cheap`` and an ``expensive`` queue with their own
limits and deadlines, so a burst of multi-second tune sweeps saturates
its own queue instead of shedding microsecond predictions.  With
routing off everything rides the ``cheap`` queue under the legacy
``queue_limit`` — behavior is byte-identical to the single-queue
dispatcher.  Beyond a class's limit the dispatcher sheds (the server
turns that into HTTP 429).
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Awaitable, Callable

from repro.service.config import ServiceConfig
from repro.service.cost import JOB_CLASSES

__all__ = ["Overloaded", "CoalescingDispatcher"]


class Overloaded(RuntimeError):
    """Admission control tripped: too many in-flight jobs."""


class CoalescingDispatcher:
    """Deduplicate identical in-flight requests; bound fresh admissions.

    All methods must be called from the event-loop thread (the server's
    request handlers); the executor threads/processes only ever see the
    pure job functions.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._executor: Executor | None = None
        self._expensive_executor: Executor | None = None
        self._inflight: dict[str, asyncio.Task] = {}
        # Fresh jobs admitted and not yet finished, per queue class.
        self._class_pending = {cls: 0 for cls in JOB_CLASSES}
        self._class_shed = {cls: 0 for cls in JOB_CLASSES}

    # -- gauges ---------------------------------------------------------
    @property
    def pending(self) -> int:
        """Fresh jobs admitted and not yet finished (running + queued)."""
        return sum(self._class_pending.values())

    @property
    def busy(self) -> int:
        """Pool slots currently occupied (bounded by the pool sizes)."""
        cheap = min(self._class_pending["cheap"], self.config.workers)
        expensive = self._class_pending["expensive"]
        if self.config.expensive_workers is not None:
            return cheap + min(expensive, self.config.expensive_workers)
        # Shared pool: both classes compete for the same slots.
        return min(self.pending, self.config.workers)

    @property
    def queue_depth(self) -> int:
        """Jobs admitted but waiting for a free pool slot."""
        return max(0, self.pending - self.busy)

    @property
    def utilization(self) -> float:
        """Busy fraction of the pools in [0, 1]."""
        slots = self.config.workers + (self.config.expensive_workers or 0)
        return self.busy / slots

    def queue_snapshot(self) -> dict:
        """Per-class queue gauges for ``/metrics``.

        Always two classes; with routing off the ``expensive`` row is
        all-idle (everything admits as ``cheap``), so dashboards keep a
        stable schema either way.
        """
        snapshot = {}
        for cls in JOB_CLASSES:
            pending = self._class_pending[cls]
            workers = self._class_workers(cls)
            snapshot[cls] = {
                "pending": pending,
                "depth": max(0, pending - workers),
                "limit": self.config.class_queue_limit(cls),
                "shed": self._class_shed[cls],
                "deadline_s": self.config.class_timeout_s(cls),
                "workers": workers,
            }
        return snapshot

    def _class_workers(self, job_class: str) -> int:
        if (
            job_class == "expensive"
            and self.config.expensive_workers is not None
        ):
            return self.config.expensive_workers
        return self.config.workers

    # -- lifecycle ------------------------------------------------------
    def _make_executor(self, workers: int) -> Executor:
        if self.config.executor == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )

    def _ensure_executor(self, job_class: str = "cheap") -> Executor:
        if (
            job_class == "expensive"
            and self.config.expensive_workers is not None
        ):
            if self._expensive_executor is None:
                self._expensive_executor = self._make_executor(
                    self.config.expensive_workers
                )
            return self._expensive_executor
        if self._executor is None:
            self._executor = self._make_executor(self.config.workers)
        return self._executor

    async def drain(self, timeout: float) -> bool:
        """Wait for all in-flight jobs; ``True`` if everything finished."""
        tasks = list(self._inflight.values())
        if not tasks:
            return True
        done, pending = await asyncio.wait(tasks, timeout=timeout)
        return not pending

    def shutdown(self) -> None:
        """Tear the pools down (cancels jobs still queued inside them)."""
        for attr in ("_executor", "_expensive_executor"):
            executor = getattr(self, attr)
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)
                setattr(self, attr, None)

    # -- dispatch -------------------------------------------------------
    def dispatch(
        self,
        key: str,
        fn: Callable[[dict], dict],
        payload: dict,
        on_result: Callable[[dict], None] | None = None,
        job_class: str = "cheap",
    ) -> tuple[str, Awaitable[dict]]:
        """Route one request; returns ``("coalesced"|"fresh", awaitable)``.

        Raises :class:`Overloaded` when a fresh job would exceed its
        class's admission bound.  ``on_result`` runs on the loop with a
        successful result *before* the key leaves the in-flight map —
        populate response caches there, so a request can never slip
        between job completion and cache fill and re-execute.  Awaiters
        must wrap the returned task in ``asyncio.shield`` so a
        per-request timeout does not cancel the shared job other
        waiters ride on.
        """
        if job_class not in self._class_pending:
            raise ValueError(f"unknown job class {job_class!r}")
        task = self._inflight.get(key)
        if task is not None:
            return "coalesced", task
        limit = self.config.class_queue_limit(job_class)
        if self._class_pending[job_class] >= limit:
            self._class_shed[job_class] += 1
            raise Overloaded(
                f"{self._class_pending[job_class]} jobs in flight "
                f"(limit {limit})"
            )
        self._class_pending[job_class] += 1
        task = asyncio.get_running_loop().create_task(
            self._run(key, fn, payload, on_result, job_class)
        )
        # Consume exceptions even if every waiter timed out first.
        task.add_done_callback(lambda t: t.cancelled() or t.exception())
        self._inflight[key] = task
        return "fresh", task

    async def _run(
        self,
        key: str,
        fn: Callable[[dict], dict],
        payload: dict,
        on_result: Callable[[dict], None] | None,
        job_class: str,
    ) -> dict:
        try:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(
                self._ensure_executor(job_class), fn, payload
            )
            if on_result is not None:
                on_result(result)
            return result
        finally:
            self._class_pending[job_class] -= 1
            self._inflight.pop(key, None)

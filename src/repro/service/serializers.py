"""JSON serializers shared by the CLI (``--json``) and the service.

Every serializer maps one result object onto plain built-in types, so
``json.dumps`` works on the output and a service response is
byte-identical to what a direct library call would serialize to —
the soak test asserts exactly that.

Two families live here.  The ``*_result_*`` functions are the
canonical serializers for the :mod:`repro.engine` result dataclasses
(with ``*_result_from_dict`` inverses; the round-trip tests assert
``from_dict(to_dict(x)) == x``).  The legacy functions
(:func:`prediction_to_dict`, :func:`tuner_result_to_dict`,
:func:`ranking_report_to_dict`) serialize the library-level objects
directly and define the historical key orders the canonical family
preserves.
"""

from __future__ import annotations

import json

from repro.autotune.search import TunerResult
from repro.codegen.plan import KernelPlan
from repro.ecm.model import EcmPrediction
from repro.engine.results import (
    CacheLedger,
    PlanResult,
    PredictResult,
    RankResult,
    RecoveryLedger,
    TuneResult,
    VariantTimingResult,
)
from repro.offsite.database import TuningRecord
from repro.offsite.tuner import RankingReport

__all__ = [
    "canonical_dumps",
    "plan_to_dict",
    "prediction_to_dict",
    "tuner_result_to_dict",
    "ranking_report_to_dict",
    "tuning_record_to_dict",
    "plan_result_to_dict",
    "plan_result_from_dict",
    "recovery_ledger_to_dict",
    "recovery_ledger_from_dict",
    "predict_result_to_dict",
    "predict_result_from_dict",
    "tune_result_to_dict",
    "tune_result_from_dict",
    "rank_result_to_dict",
    "rank_result_from_dict",
]


def canonical_dumps(obj: object) -> str:
    """Stable JSON form (sorted keys, no whitespace) for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def plan_to_dict(plan: KernelPlan) -> dict:
    """JSON form of a kernel plan."""
    return {
        "block": list(plan.block),
        "loop_order": list(plan.loop_order) if plan.loop_order else None,
        "threads": plan.threads,
        "wavefront": plan.wavefront,
        "label": plan.describe(),
    }


def prediction_to_dict(
    pred: EcmPrediction, plan: KernelPlan | None = None
) -> dict:
    """JSON form of a single-core ECM prediction."""
    data = {
        "stencil": pred.spec_name,
        "machine": pred.machine_name,
        "plan": plan_to_dict(plan) if plan is not None else pred.plan_label,
        "ecm_notation": pred.notation(),
        "t_ol_cycles": pred.t_ol,
        "t_nol_cycles": pred.t_nol,
        "t_data_cycles": list(pred.t_data),
        "t_ecm_cycles": pred.t_ecm,
        "regimes": list(pred.traffic.regimes),
        "cycles_per_lup": pred.cycles_per_lup,
        "mlups": pred.mlups,
        "mem_bytes_per_lup": pred.memory_bytes_per_lup(),
        "freq_ghz": pred.freq_ghz,
    }
    return data


def tuner_result_to_dict(res: TunerResult) -> dict:
    """JSON form of a tuning run, including its cost ledger."""
    return {
        "tuner": res.tuner,
        "best_plan": plan_to_dict(res.best_plan),
        "best_mlups": res.best_mlups,
        "variants_examined": res.variants_examined,
        "variants_run": res.variants_run,
        "simulated_run_seconds": res.simulated_run_seconds,
        "workers": res.workers,
        "traffic_cache": {
            "hits": res.traffic_cache_hits,
            "misses": res.traffic_cache_misses,
            "lc_served": res.lc_served,
            "sim_served": res.sim_served,
            "lc_validation_mismatch": res.lc_validation_mismatch,
            "memory_hits": res.traffic_mem_hits,
            "memory_misses": res.traffic_mem_misses,
            "disk_hits": res.traffic_disk_hits,
            "disk_misses": res.traffic_disk_misses,
        },
        "recovery": {
            "degraded": res.degraded,
            "retried_jobs": res.retried_jobs,
            "failed_jobs": list(res.failed_jobs),
            "skipped_jobs": list(res.skipped_jobs),
            "pool_restarts": res.pool_restarts,
            "resumed_jobs": res.resumed_jobs,
            "in_process_fallback": res.in_process_fallback,
        },
    }


def ranking_report_to_dict(report: RankingReport) -> dict:
    """JSON form of an Offsite variant-ranking run."""
    ranking = [
        t.variant
        for t in sorted(report.timings, key=lambda t: t.predicted_s)
    ]
    best = report.best_predicted()
    return {
        "method": report.method,
        "ivp": report.ivp,
        "machine": report.machine,
        "timings": [
            {
                "variant": t.variant,
                "predicted_s": t.predicted_s,
                "measured_s": t.measured_s,
                "error_pct": t.error_pct,
                "sweeps_per_step": t.sweeps_per_step,
                "mem_bytes_per_lup": t.mem_bytes_per_lup,
            }
            for t in report.timings
        ],
        "ranking": ranking,
        "best_predicted": {
            "variant": best.variant,
            "predicted_s": best.predicted_s,
        },
        "kendall_tau": report.kendall_tau,
        "top1_hit": report.top1_hit,
        "predict_seconds": report.predict_seconds,
        "measure_seconds": report.measure_seconds,
        "traffic_cache": {
            "hits": report.traffic_cache_hits,
            "misses": report.traffic_cache_misses,
            "memory_hits": report.traffic_mem_hits,
            "memory_misses": report.traffic_mem_misses,
            "disk_hits": report.traffic_disk_hits,
            "disk_misses": report.traffic_disk_misses,
        },
    }


# ----------------------------------------------------------------------
# Canonical serializers for the repro.engine result dataclasses.
# Key orders replicate the legacy serializers above byte-for-byte
# (json.dumps preserves insertion order, and the service's recorded
# responses and the soak test depend on the exact bytes).
# ----------------------------------------------------------------------
def plan_result_to_dict(plan: PlanResult) -> dict:
    """JSON form of an engine :class:`PlanResult`."""
    return {
        "block": list(plan.block),
        "loop_order": list(plan.loop_order) if plan.loop_order else None,
        "threads": plan.threads,
        "wavefront": plan.wavefront,
        "label": plan.label,
    }


def plan_result_from_dict(data: dict) -> PlanResult:
    """Inverse of :func:`plan_result_to_dict`."""
    return PlanResult(
        block=tuple(data["block"]),
        loop_order=tuple(data["loop_order"]) if data["loop_order"] else None,
        threads=data["threads"],
        wavefront=data["wavefront"],
        label=data["label"],
    )


def predict_result_to_dict(res: PredictResult) -> dict:
    """JSON form of an engine :class:`PredictResult`."""
    return {
        "stencil": res.stencil,
        "machine": res.machine,
        "plan": plan_result_to_dict(res.plan),
        "ecm_notation": res.ecm_notation,
        "t_ol_cycles": res.t_ol_cycles,
        "t_nol_cycles": res.t_nol_cycles,
        "t_data_cycles": list(res.t_data_cycles),
        "t_ecm_cycles": res.t_ecm_cycles,
        "regimes": list(res.regimes),
        "cycles_per_lup": res.cycles_per_lup,
        "mlups": res.mlups,
        "mem_bytes_per_lup": res.mem_bytes_per_lup,
        "freq_ghz": res.freq_ghz,
        "grid": list(res.grid),
    }


def predict_result_from_dict(data: dict) -> PredictResult:
    """Inverse of :func:`predict_result_to_dict`."""
    return PredictResult(
        stencil=data["stencil"],
        machine=data["machine"],
        plan=plan_result_from_dict(data["plan"]),
        ecm_notation=data["ecm_notation"],
        t_ol_cycles=data["t_ol_cycles"],
        t_nol_cycles=data["t_nol_cycles"],
        t_data_cycles=tuple(data["t_data_cycles"]),
        t_ecm_cycles=data["t_ecm_cycles"],
        regimes=tuple(data["regimes"]),
        cycles_per_lup=data["cycles_per_lup"],
        mlups=data["mlups"],
        mem_bytes_per_lup=data["mem_bytes_per_lup"],
        freq_ghz=data["freq_ghz"],
        grid=tuple(data["grid"]),
    )


def tune_result_to_dict(res: TuneResult) -> dict:
    """JSON form of an engine :class:`TuneResult`."""
    return {
        "tuner": res.tuner,
        "best_plan": plan_result_to_dict(res.best_plan),
        "best_mlups": res.best_mlups,
        "variants_examined": res.variants_examined,
        "variants_run": res.variants_run,
        "simulated_run_seconds": res.simulated_run_seconds,
        "workers": res.workers,
        "traffic_cache": {
            "hits": res.traffic_cache.hits,
            "misses": res.traffic_cache.misses,
            "lc_served": res.traffic_cache.lc_served,
            "sim_served": res.traffic_cache.sim_served,
            "lc_validation_mismatch": res.traffic_cache.lc_validation_mismatch,
            "memory_hits": res.traffic_cache.memory_hits,
            "memory_misses": res.traffic_cache.memory_misses,
            "disk_hits": res.traffic_cache.disk_hits,
            "disk_misses": res.traffic_cache.disk_misses,
        },
        "stencil": res.stencil,
        "machine": res.machine,
        "grid": list(res.grid),
        "recovery": recovery_ledger_to_dict(res.recovery),
    }


def recovery_ledger_to_dict(ledger: RecoveryLedger) -> dict:
    """JSON form of a tuning run's fault-recovery accounting."""
    return {
        "degraded": ledger.degraded,
        "retried_jobs": ledger.retried_jobs,
        "failed_jobs": list(ledger.failed_jobs),
        "skipped_jobs": list(ledger.skipped_jobs),
        "pool_restarts": ledger.pool_restarts,
        "resumed_jobs": ledger.resumed_jobs,
        "in_process_fallback": ledger.in_process_fallback,
    }


def recovery_ledger_from_dict(data: dict | None) -> RecoveryLedger:
    """Inverse of :func:`recovery_ledger_to_dict` (None → clean run)."""
    if not data:
        return RecoveryLedger()
    return RecoveryLedger(
        degraded=data.get("degraded", False),
        retried_jobs=data.get("retried_jobs", 0),
        failed_jobs=tuple(data.get("failed_jobs", ())),
        skipped_jobs=tuple(data.get("skipped_jobs", ())),
        pool_restarts=data.get("pool_restarts", 0),
        resumed_jobs=data.get("resumed_jobs", 0),
        in_process_fallback=data.get("in_process_fallback", False),
    )


def tune_result_from_dict(data: dict) -> TuneResult:
    """Inverse of :func:`tune_result_to_dict`.

    Tolerates responses recorded before the recovery ledger existed
    (a missing ``recovery`` key means a clean run) and before the
    predictor breakdown existed (missing counters mean 0).
    """
    cache = data["traffic_cache"]
    return TuneResult(
        tuner=data["tuner"],
        best_plan=plan_result_from_dict(data["best_plan"]),
        best_mlups=data["best_mlups"],
        variants_examined=data["variants_examined"],
        variants_run=data["variants_run"],
        simulated_run_seconds=data["simulated_run_seconds"],
        workers=data["workers"],
        traffic_cache=CacheLedger(
            hits=cache["hits"],
            misses=cache["misses"],
            lc_served=cache.get("lc_served", 0),
            sim_served=cache.get("sim_served", 0),
            lc_validation_mismatch=cache.get("lc_validation_mismatch", 0),
            memory_hits=cache.get("memory_hits", 0),
            memory_misses=cache.get("memory_misses", 0),
            disk_hits=cache.get("disk_hits", 0),
            disk_misses=cache.get("disk_misses", 0),
        ),
        stencil=data["stencil"],
        machine=data["machine"],
        grid=tuple(data["grid"]),
        recovery=recovery_ledger_from_dict(data.get("recovery")),
    )


def rank_result_to_dict(res: RankResult) -> dict:
    """JSON form of an engine :class:`RankResult`."""
    return {
        "method": res.method,
        "ivp": res.ivp,
        "machine": res.machine,
        "timings": [
            {
                "variant": t.variant,
                "predicted_s": t.predicted_s,
                "measured_s": t.measured_s,
                "error_pct": t.error_pct,
                "sweeps_per_step": t.sweeps_per_step,
                "mem_bytes_per_lup": t.mem_bytes_per_lup,
            }
            for t in res.timings
        ],
        "ranking": list(res.ranking),
        "best_predicted": {
            "variant": res.best_variant,
            "predicted_s": res.best_predicted_s,
        },
        "kendall_tau": res.kendall_tau,
        "top1_hit": res.top1_hit,
        "predict_seconds": res.predict_seconds,
        "measure_seconds": res.measure_seconds,
        "traffic_cache": {
            "hits": res.traffic_cache.hits,
            "misses": res.traffic_cache.misses,
            "memory_hits": res.traffic_cache.memory_hits,
            "memory_misses": res.traffic_cache.memory_misses,
            "disk_hits": res.traffic_cache.disk_hits,
            "disk_misses": res.traffic_cache.disk_misses,
        },
        "grid": list(res.grid),
    }


def rank_result_from_dict(data: dict) -> RankResult:
    """Inverse of :func:`rank_result_to_dict`."""
    return RankResult(
        method=data["method"],
        ivp=data["ivp"],
        machine=data["machine"],
        timings=tuple(
            VariantTimingResult(
                variant=t["variant"],
                predicted_s=t["predicted_s"],
                measured_s=t["measured_s"],
                error_pct=t["error_pct"],
                sweeps_per_step=t["sweeps_per_step"],
                mem_bytes_per_lup=t["mem_bytes_per_lup"],
            )
            for t in data["timings"]
        ),
        ranking=tuple(data["ranking"]),
        best_variant=data["best_predicted"]["variant"],
        best_predicted_s=data["best_predicted"]["predicted_s"],
        kendall_tau=data["kendall_tau"],
        top1_hit=data["top1_hit"],
        predict_seconds=data["predict_seconds"],
        measure_seconds=data["measure_seconds"],
        traffic_cache=CacheLedger(
            hits=data["traffic_cache"]["hits"],
            misses=data["traffic_cache"]["misses"],
            memory_hits=data["traffic_cache"].get("memory_hits", 0),
            memory_misses=data["traffic_cache"].get("memory_misses", 0),
            disk_hits=data["traffic_cache"].get("disk_hits", 0),
            disk_misses=data["traffic_cache"].get("disk_misses", 0),
        ),
        grid=tuple(data["grid"]),
    )


def tuning_record_to_dict(record: TuningRecord) -> dict:
    """JSON form of a stored tuning record (database-tier responses)."""
    return {
        "method": record.key.method,
        "ivp": record.key.ivp,
        "machine": record.key.machine,
        "grid": list(record.key.grid),
        "best_variant": record.best_variant,
        "block": list(record.block),
        "predicted_s_per_step": record.predicted_s_per_step,
        "ranking": list(record.ranking),
        "served_from": "database",
    }

"""JSON serializers shared by the CLI (``--json``) and the service.

Every serializer maps one library result object onto plain built-in
types, so ``json.dumps`` works on the output and a service response is
byte-identical to what a direct library call would serialize to —
the soak test asserts exactly that.
"""

from __future__ import annotations

import json

from repro.autotune.search import TunerResult
from repro.codegen.plan import KernelPlan
from repro.ecm.model import EcmPrediction
from repro.offsite.database import TuningRecord
from repro.offsite.tuner import RankingReport

__all__ = [
    "canonical_dumps",
    "plan_to_dict",
    "prediction_to_dict",
    "tuner_result_to_dict",
    "ranking_report_to_dict",
    "tuning_record_to_dict",
]


def canonical_dumps(obj: object) -> str:
    """Stable JSON form (sorted keys, no whitespace) for hashing."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def plan_to_dict(plan: KernelPlan) -> dict:
    """JSON form of a kernel plan."""
    return {
        "block": list(plan.block),
        "loop_order": list(plan.loop_order) if plan.loop_order else None,
        "threads": plan.threads,
        "wavefront": plan.wavefront,
        "label": plan.describe(),
    }


def prediction_to_dict(
    pred: EcmPrediction, plan: KernelPlan | None = None
) -> dict:
    """JSON form of a single-core ECM prediction."""
    data = {
        "stencil": pred.spec_name,
        "machine": pred.machine_name,
        "plan": plan_to_dict(plan) if plan is not None else pred.plan_label,
        "ecm_notation": pred.notation(),
        "t_ol_cycles": pred.t_ol,
        "t_nol_cycles": pred.t_nol,
        "t_data_cycles": list(pred.t_data),
        "t_ecm_cycles": pred.t_ecm,
        "regimes": list(pred.traffic.regimes),
        "cycles_per_lup": pred.cycles_per_lup,
        "mlups": pred.mlups,
        "mem_bytes_per_lup": pred.memory_bytes_per_lup(),
        "freq_ghz": pred.freq_ghz,
    }
    return data


def tuner_result_to_dict(res: TunerResult) -> dict:
    """JSON form of a tuning run, including its cost ledger."""
    return {
        "tuner": res.tuner,
        "best_plan": plan_to_dict(res.best_plan),
        "best_mlups": res.best_mlups,
        "variants_examined": res.variants_examined,
        "variants_run": res.variants_run,
        "simulated_run_seconds": res.simulated_run_seconds,
        "workers": res.workers,
        "traffic_cache": {
            "hits": res.traffic_cache_hits,
            "misses": res.traffic_cache_misses,
        },
    }


def ranking_report_to_dict(report: RankingReport) -> dict:
    """JSON form of an Offsite variant-ranking run."""
    ranking = [
        t.variant
        for t in sorted(report.timings, key=lambda t: t.predicted_s)
    ]
    best = report.best_predicted()
    return {
        "method": report.method,
        "ivp": report.ivp,
        "machine": report.machine,
        "timings": [
            {
                "variant": t.variant,
                "predicted_s": t.predicted_s,
                "measured_s": t.measured_s,
                "error_pct": t.error_pct,
                "sweeps_per_step": t.sweeps_per_step,
                "mem_bytes_per_lup": t.mem_bytes_per_lup,
            }
            for t in report.timings
        ],
        "ranking": ranking,
        "best_predicted": {
            "variant": best.variant,
            "predicted_s": best.predicted_s,
        },
        "kendall_tau": report.kendall_tau,
        "top1_hit": report.top1_hit,
        "predict_seconds": report.predict_seconds,
        "measure_seconds": report.measure_seconds,
        "traffic_cache": {
            "hits": report.traffic_cache_hits,
            "misses": report.traffic_cache_misses,
        },
    }


def tuning_record_to_dict(record: TuningRecord) -> dict:
    """JSON form of a stored tuning record (database-tier responses)."""
    return {
        "method": record.key.method,
        "ivp": record.key.ivp,
        "machine": record.key.machine,
        "grid": list(record.key.grid),
        "best_variant": record.best_variant,
        "block": list(record.block),
        "predicted_s_per_step": record.predicted_s_per_step,
        "ranking": list(record.ranking),
        "served_from": "database",
    }

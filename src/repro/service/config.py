"""Configuration of the tuning/prediction service.

One frozen dataclass carries every knob of the server: network
binding, worker-pool sizing, admission control, cache sizing and the
timeouts that bound a request's life.  The CLI (``python -m repro
serve``) maps its flags 1:1 onto these fields; tests construct the
dataclass directly with an ephemeral port.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """All tunables of one :class:`~repro.service.server.ReproService`.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (the bound
        port is returned by ``start()``).
    workers:
        Size of the executor pool evaluating jobs.
    executor:
        ``"process"`` (default; jobs are picklable top-level functions
        in :mod:`repro.service.jobs`) or ``"thread"`` (cheaper startup,
        used by tests and benchmarks).
    queue_limit:
        Admission control: maximum number of in-flight *fresh* jobs
        (running + queued).  Requests beyond it are shed with HTTP 429.
    response_cache_size:
        Entries kept in the in-process LRU response cache (tier 1).
    request_timeout_s:
        Per-request deadline; an expired request gets HTTP 504 (the
        underlying job keeps running for coalesced waiters).
    drain_timeout_s:
        On SIGTERM/``stop()``, how long to wait for in-flight requests
        before forcing shutdown.
    db_path:
        Optional path of the Offsite :class:`TuningDatabase` used as
        the warm persistent tier for ``/rank`` (loaded if present,
        updated after fresh rankings).
    max_body_bytes:
        Request bodies larger than this are rejected with HTTP 413.
    latency_reservoir:
        Samples kept per endpoint for the latency percentiles
        reported by ``/metrics``.
    breaker_threshold:
        Consecutive fresh-job failures on one endpoint before its
        circuit breaker opens.
    breaker_recovery_s:
        How long an open breaker waits before letting one half-open
        probe request through.
    degraded_mode:
        When an endpoint's breaker is open, serve the analytic
        fallback (HTTP 200 with ``"degraded": true``) instead of
        refusing with HTTP 503.
    shard_id:
        Fabric shard identity of this server (``None`` outside a
        fabric).  Surfaced on ``/healthz`` and as the ``shard``
        dimension of ``/metrics`` so a router fan-in can tell shard
        gauges apart instead of letting them shadow each other.
    db_dir:
        Directory of the segmented multi-process tuning database
        (:mod:`repro.util.segdb`).  Mutually exclusive with
        ``db_path``; requires ``shard_id``.
    job_dir:
        Directory of the fabric's tune-job ledger
        (:mod:`repro.autotune.jobs`).  When set, ``/tune`` jobs are
        enqueued as content-addressed resumable units with a lease,
        checkpointed, and publishable/stealable by peer shards.
    lease_ttl_s:
        Seconds a tune-job lease stays unstealable while its owner's
        pid is alive (a dead pid is adoptable immediately).
    steal_interval_s:
        Period of the idle-shard work-stealing scan over ``job_dir``
        (0 disables stealing; rerouted requests still adopt).
    cost_routing:
        Cost-aware admission: classify each fresh job at admission by
        an analytic ECM cost estimate and route it to the ``cheap`` or
        ``expensive`` queue, each with its own admission bound and
        deadline.  Off by default — with routing off everything runs
        through the ``cheap`` queue with the legacy ``queue_limit`` and
        ``request_timeout_s``, byte-identical to the pre-split server.
    cost_threshold_s:
        Estimated job seconds at or above which a job is classed
        expensive.
    cheap_queue_limit, expensive_queue_limit:
        Per-class admission bounds (``None`` → ``queue_limit``).
    cheap_timeout_s, expensive_timeout_s:
        Per-class request deadlines (``None`` → ``request_timeout_s``).
    expensive_workers:
        Pool slots dedicated to the expensive queue (``None`` → share
        the main pool).  A separate pool keeps saturated tune work from
        starving cheap predictions of executor slots.
    approx_enabled:
        Serve near-match approximate answers (interpolated from stored
        exact observations for the same request family with a nearby
        grid).  Responses carry ``"approximate": true`` + a numeric
        confidence; clients opt out per request with ``"exact": true``.
    approx_confidence:
        Minimum confidence an interpolated answer needs; below it the
        request falls through to exact computation.
    approx_capacity:
        Exact observations retained as interpolation support.
    adaptive_limits:
        Replace the static per-class admission bounds with AIMD
        limiters (:class:`~repro.service.overload.AdaptiveLimiter`):
        grow on healthy latency, shrink multiplicatively when a class's
        windowed p95 breaches its target.  The static class limit stays
        as the hard ceiling (floor of 1), so the limiter only ever
        tightens admission.  Off by default — with it off admission is
        byte-identical to the static-limit server.
    adaptive_target_ms:
        Latency target of the *cheap* class's limiter (default aligned
        with the shipped 500 ms latency SLO).  The expensive class
        targets half its own request deadline — multi-second tune
        sweeps must not be judged by a prediction-latency bar.
    brownout:
        Arm the SLO-driven brownout ladder
        (:class:`~repro.service.overload.BrownoutLadder`): sustained
        page-severity burn alerts degrade service in stages (widen
        near-match acceptance → serve /predict analytically → shed
        tune/rank → full shed) with staged recovery.  Requires
        ``slo_enabled`` (the ladder is fed by the engine's alerts).
        Off by default with byte-identical responses.
    brownout_approx_confidence:
        The near-match tier's loosened acceptance bar while the ladder
        is at ``approx-wide`` or deeper (clamped to never *raise* the
        configured ``approx_confidence``).
    brownout_escalate_s:
        Seconds a page alert must burn before each downward step.
    brownout_recover_s:
        Calm seconds before each upward (recovery) step.
    slo_enabled:
        Construct the SLO engine: declarative objectives evaluated by
        multi-window burn-rate alerting, surfaced on ``/slo``, as
        ``alerts`` in ``/healthz`` and as ``slo`` rows in ``/metrics``.
        Off by default — without it those surfaces are byte-identical
        to the pre-SLO server.
    slo_config:
        Objectives source when ``slo_enabled``: ``None`` → shipped
        defaults, a path → JSON file, inline JSON text → parsed
        directly (see :func:`repro.telemetry.load_slo_config`).
    flight_recorder:
        Capacity of the per-request flight-recorder ring dumped by
        ``/debug/requests`` (0 disables recording; the endpoint then
        reports an empty ring).
    """

    host: str = "127.0.0.1"
    port: int = 8753
    workers: int = 2
    executor: str = "process"
    queue_limit: int = 64
    response_cache_size: int = 1024
    request_timeout_s: float = 120.0
    drain_timeout_s: float = 30.0
    db_path: str | None = None
    max_body_bytes: int = 1 << 20
    latency_reservoir: int = 2048
    breaker_threshold: int = 5
    breaker_recovery_s: float = 30.0
    degraded_mode: bool = True
    shard_id: int | None = None
    db_dir: str | None = None
    job_dir: str | None = None
    lease_ttl_s: float = 60.0
    steal_interval_s: float = 0.0
    cost_routing: bool = False
    cost_threshold_s: float = 0.25
    cheap_queue_limit: int | None = None
    expensive_queue_limit: int | None = None
    cheap_timeout_s: float | None = None
    expensive_timeout_s: float | None = None
    expensive_workers: int | None = None
    approx_enabled: bool = False
    approx_confidence: float = 0.75
    approx_capacity: int = 512
    adaptive_limits: bool = False
    adaptive_target_ms: float = 500.0
    brownout: bool = False
    brownout_approx_confidence: float = 0.5
    brownout_escalate_s: float = 2.0
    brownout_recover_s: float = 5.0
    slo_enabled: bool = False
    slo_config: str | None = None
    flight_recorder: int = 256

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {self.executor!r}"
            )
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if self.response_cache_size < 0:
            raise ValueError("response_cache_size must be >= 0")
        if self.request_timeout_s <= 0 or self.drain_timeout_s < 0:
            raise ValueError("timeouts must be positive")
        if self.breaker_threshold <= 0:
            raise ValueError("breaker_threshold must be positive")
        if self.breaker_recovery_s < 0:
            raise ValueError("breaker_recovery_s must be >= 0")
        if self.db_dir is not None and self.db_path is not None:
            raise ValueError("db_dir and db_path are mutually exclusive")
        if self.db_dir is not None and self.shard_id is None:
            raise ValueError("db_dir (segmented database) requires shard_id")
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if self.steal_interval_s < 0:
            raise ValueError("steal_interval_s must be >= 0")
        if self.cost_threshold_s <= 0:
            raise ValueError("cost_threshold_s must be positive")
        for name in ("cheap_queue_limit", "expensive_queue_limit"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("cheap_timeout_s", "expensive_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        if self.expensive_workers is not None and self.expensive_workers <= 0:
            raise ValueError("expensive_workers must be positive")
        if not 0.0 < self.approx_confidence <= 1.0:
            raise ValueError("approx_confidence must be in (0, 1]")
        if self.approx_capacity < 0:
            raise ValueError("approx_capacity must be >= 0")
        if self.adaptive_target_ms <= 0:
            raise ValueError("adaptive_target_ms must be positive")
        if not 0.0 < self.brownout_approx_confidence <= 1.0:
            raise ValueError(
                "brownout_approx_confidence must be in (0, 1]"
            )
        if self.brownout_escalate_s <= 0 or self.brownout_recover_s <= 0:
            raise ValueError("brownout hold times must be positive")
        if self.brownout and not self.slo_enabled:
            raise ValueError(
                "brownout requires slo_enabled (the ladder is fed by"
                " the SLO engine's burn alerts)"
            )
        if self.slo_config is not None and not self.slo_enabled:
            raise ValueError("slo_config requires slo_enabled")
        if self.flight_recorder < 0:
            raise ValueError("flight_recorder must be >= 0")

    # -- per-class views (cost-aware admission) -------------------------
    def class_queue_limit(self, job_class: str) -> int:
        """Admission bound of one queue class."""
        if self.cost_routing and job_class == "expensive":
            return self.expensive_queue_limit or self.queue_limit
        if self.cost_routing and job_class == "cheap":
            return self.cheap_queue_limit or self.queue_limit
        return self.queue_limit

    def class_timeout_s(self, job_class: str) -> float:
        """Request deadline of one queue class."""
        if self.cost_routing and job_class == "expensive":
            return self.expensive_timeout_s or self.request_timeout_s
        if self.cost_routing and job_class == "cheap":
            return self.cheap_timeout_s or self.request_timeout_s
        return self.request_timeout_s

    def class_adaptive_target_s(self, job_class: str) -> float:
        """Latency target of one class's adaptive limiter.

        Cheap work answers to the interactive target
        (``adaptive_target_ms``); expensive work is healthy as long as
        it clears well inside its own deadline, so it targets half the
        class timeout (never tighter than the cheap target).
        """
        cheap_target = self.adaptive_target_ms / 1e3
        if job_class == "expensive":
            return max(cheap_target, self.class_timeout_s("expensive") / 2.0)
        return cheap_target

"""Configuration of the tuning/prediction service.

One frozen dataclass carries every knob of the server: network
binding, worker-pool sizing, admission control, cache sizing and the
timeouts that bound a request's life.  The CLI (``python -m repro
serve``) maps its flags 1:1 onto these fields; tests construct the
dataclass directly with an ephemeral port.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """All tunables of one :class:`~repro.service.server.ReproService`.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (the bound
        port is returned by ``start()``).
    workers:
        Size of the executor pool evaluating jobs.
    executor:
        ``"process"`` (default; jobs are picklable top-level functions
        in :mod:`repro.service.jobs`) or ``"thread"`` (cheaper startup,
        used by tests and benchmarks).
    queue_limit:
        Admission control: maximum number of in-flight *fresh* jobs
        (running + queued).  Requests beyond it are shed with HTTP 429.
    response_cache_size:
        Entries kept in the in-process LRU response cache (tier 1).
    request_timeout_s:
        Per-request deadline; an expired request gets HTTP 504 (the
        underlying job keeps running for coalesced waiters).
    drain_timeout_s:
        On SIGTERM/``stop()``, how long to wait for in-flight requests
        before forcing shutdown.
    db_path:
        Optional path of the Offsite :class:`TuningDatabase` used as
        the warm persistent tier for ``/rank`` (loaded if present,
        updated after fresh rankings).
    max_body_bytes:
        Request bodies larger than this are rejected with HTTP 413.
    latency_reservoir:
        Samples kept per endpoint for the latency percentiles
        reported by ``/metrics``.
    breaker_threshold:
        Consecutive fresh-job failures on one endpoint before its
        circuit breaker opens.
    breaker_recovery_s:
        How long an open breaker waits before letting one half-open
        probe request through.
    degraded_mode:
        When an endpoint's breaker is open, serve the analytic
        fallback (HTTP 200 with ``"degraded": true``) instead of
        refusing with HTTP 503.
    shard_id:
        Fabric shard identity of this server (``None`` outside a
        fabric).  Surfaced on ``/healthz`` and as the ``shard``
        dimension of ``/metrics`` so a router fan-in can tell shard
        gauges apart instead of letting them shadow each other.
    db_dir:
        Directory of the segmented multi-process tuning database
        (:mod:`repro.util.segdb`).  Mutually exclusive with
        ``db_path``; requires ``shard_id``.
    job_dir:
        Directory of the fabric's tune-job ledger
        (:mod:`repro.autotune.jobs`).  When set, ``/tune`` jobs are
        enqueued as content-addressed resumable units with a lease,
        checkpointed, and publishable/stealable by peer shards.
    lease_ttl_s:
        Seconds a tune-job lease stays unstealable while its owner's
        pid is alive (a dead pid is adoptable immediately).
    steal_interval_s:
        Period of the idle-shard work-stealing scan over ``job_dir``
        (0 disables stealing; rerouted requests still adopt).
    """

    host: str = "127.0.0.1"
    port: int = 8753
    workers: int = 2
    executor: str = "process"
    queue_limit: int = 64
    response_cache_size: int = 1024
    request_timeout_s: float = 120.0
    drain_timeout_s: float = 30.0
    db_path: str | None = None
    max_body_bytes: int = 1 << 20
    latency_reservoir: int = 2048
    breaker_threshold: int = 5
    breaker_recovery_s: float = 30.0
    degraded_mode: bool = True
    shard_id: int | None = None
    db_dir: str | None = None
    job_dir: str | None = None
    lease_ttl_s: float = 60.0
    steal_interval_s: float = 0.0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.executor not in ("process", "thread"):
            raise ValueError(
                f"executor must be 'process' or 'thread', got {self.executor!r}"
            )
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if self.response_cache_size < 0:
            raise ValueError("response_cache_size must be >= 0")
        if self.request_timeout_s <= 0 or self.drain_timeout_s < 0:
            raise ValueError("timeouts must be positive")
        if self.breaker_threshold <= 0:
            raise ValueError("breaker_threshold must be positive")
        if self.breaker_recovery_s < 0:
            raise ValueError("breaker_recovery_s must be >= 0")
        if self.db_dir is not None and self.db_path is not None:
            raise ValueError("db_dir and db_path are mutually exclusive")
        if self.db_dir is not None and self.shard_id is None:
            raise ValueError("db_dir (segmented database) requires shard_id")
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if self.steal_interval_s < 0:
            raise ValueError("steal_interval_s must be >= 0")

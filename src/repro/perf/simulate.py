"""Single-core kernel performance simulation.

The simulated runtime of one sweep is::

    cycles = max(T_exec, T_ports + T_traffic) * (1 + noise)

where ``T_exec`` is the arithmetic pipeline time (instruction counts
with a pipeline-inefficiency factor — deliberately *not* the idealised
ECM in-core model), ``T_ports`` the L1 load/store port time, and
``T_traffic`` charges the cache-line counts *observed by the exact
cache simulator* at each boundary with that boundary's bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

import numpy as np

from repro import obs
from repro.cachesim.driver import measure_sweep
from repro.cachesim.hierarchy import TrafficReport
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil import expr as E
from repro.stencil.spec import StencilSpec

#: Pipeline inefficiency of real kernels vs. ideal port throughput
#: (frontend stalls, address generation, remainder loops).
PIPELINE_FACTOR = 1.15

#: Relative sigma of the multiplicative run-to-run noise.
NOISE_SIGMA = 0.02


@dataclass(frozen=True)
class Measurement:
    """Simulated measurement of one kernel configuration."""

    spec_name: str
    machine_name: str
    plan_label: str
    cores: int
    cycles_per_lup: float
    traffic: TrafficReport

    @property
    def mlups(self) -> float:
        """Measured performance in MLUP/s (per scaling domain)."""
        return self.freq_ghz * 1e3 / self.cycles_per_lup

    # freq is carried via the traffic report's machine indirectly; store it:
    freq_ghz: float = 0.0

    def runtime_seconds(self, lups: int) -> float:
        """Wall time for ``lups`` lattice updates."""
        return self.cycles_per_lup * lups / (self.freq_ghz * 1e9)


def _exec_cycles_per_lup(spec: StencilSpec, machine: Machine) -> float:
    """Arithmetic pipeline cycles per update (simulator's own core model)."""
    core = machine.core
    lanes = core.simd_lanes(spec.dtype_bytes)
    flops = E.count_flops(spec.expr)
    adds = flops["+"] + flops["-"]
    muls = flops["*"]
    divs = flops["/"]
    fused = min(adds, muls) if core.has_fma else 0
    uops = fused + (adds - fused) + (muls - fused)
    cycles_per_vec = uops / core.fma_ports + divs * 8.0
    return cycles_per_vec / lanes * PIPELINE_FACTOR


def _port_cycles_per_lup(spec: StencilSpec, machine: Machine) -> float:
    """L1 load/store port cycles per update."""
    core = machine.core
    lanes = core.simd_lanes(spec.dtype_bytes)
    cycles_per_vec = (
        spec.n_accesses / core.load_ports + 1.0 / core.store_ports
    )
    return cycles_per_vec / lanes


def analytic_cycles_per_lup(spec: StencilSpec, machine: Machine) -> float:
    """In-core cycles-per-update floor, with no traffic simulation.

    ``max(T_exec, T_ports)`` — the part of the performance model that
    is pure arithmetic over the stencil expression and the core
    description.  Used by the service's cost-aware admission to price a
    job in microseconds without touching the cache simulator the job
    itself would run.
    """
    return max(
        _exec_cycles_per_lup(spec, machine),
        _port_cycles_per_lup(spec, machine),
    )


def simulate_traffic_time(
    traffic: TrafficReport,
    machine: Machine,
    n_cores: int = 1,
) -> float:
    """Cycles per LUP charged for observed per-boundary line traffic."""
    if traffic.lups <= 0:
        raise ValueError("traffic report has no lups recorded")
    cycles = 0.0
    for k in range(len(traffic.loads)):
        lines_per_lup = traffic.total_lines(k) / traffic.lups
        if k == len(traffic.loads) - 1:
            cy_per_line = machine.mem_cycles_per_line(n_cores)
        else:
            cy_per_line = machine.caches[k].cycles_per_line()
        cycles += lines_per_lup * cy_per_line
    return cycles


def simulate_kernel(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    seed: int = 0,
    warmup: bool = True,
    n_cores: int = 1,
    engine: str = "auto",
    traffic_cache="default",
    predictor: str = "auto",
) -> Measurement:
    """Measure one sweep: exact cache replay + cycle accounting + noise.

    The traffic replay is memoized (see
    :func:`repro.cachesim.driver.measure_sweep`); the seeded noise is
    applied *after* the lookup, so cached and cold calls produce
    identical measurements for identical seeds.  ``predictor`` selects
    how the traffic is produced (``"auto"``/``"lc"``/``"simulate"``);
    LC-served traffic is bit-identical to the replay and the noise is
    applied afterwards either way, so the measurement never depends on
    the predictor that served it.
    """
    plan = plan.clipped(grids.interior_shape)
    with obs.span("perf.simulate"):
        traffic = measure_sweep(
            spec, grids, plan, machine, warmup=warmup,
            engine=engine, traffic_cache=traffic_cache,
            predictor=predictor,
        )
        t_exec = _exec_cycles_per_lup(spec, machine)
        t_ports = _port_cycles_per_lup(spec, machine)
        t_traffic = simulate_traffic_time(traffic, machine, n_cores=n_cores)
        cycles = max(t_exec, t_ports + t_traffic)
        rng = np.random.default_rng(seed)
        cycles *= 1.0 + rng.normal(0.0, NOISE_SIGMA)
    return Measurement(
        spec_name=spec.name,
        machine_name=machine.name,
        plan_label=plan.describe(),
        cores=n_cores,
        cycles_per_lup=float(cycles),
        traffic=traffic,
        freq_ghz=machine.freq_ghz,
    )

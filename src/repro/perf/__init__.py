"""Discrete performance simulator — the reproduction's "hardware".

Where :mod:`repro.ecm` *predicts* from analytic layer conditions, this
package *measures*: it replays the kernel's true access stream through
the exact cache simulator, charges cycles for the observed per-boundary
traffic and for the in-core instruction mix (with pipeline inefficiency
and seeded noise), and reports a runtime.  Experiments compare ECM
predictions against these simulated measurements.
"""

from repro.perf.simulate import Measurement, simulate_kernel, simulate_traffic_time
from repro.perf.multicore import simulate_scaling

__all__ = [
    "Measurement",
    "simulate_kernel",
    "simulate_traffic_time",
    "simulate_scaling",
]

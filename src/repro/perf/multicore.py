"""Multicore performance simulation via domain decomposition.

Threads get contiguous slabs of the outermost axis (YASK's OpenMP
strategy).  One representative interior slab is replayed through a
private hierarchy; the memory term is charged with the bandwidth an
individual core actually gets once ``n`` cores contend for the socket
(or CCX) bandwidth.  Aggregate performance is per-core performance
times cores — which saturates naturally as the contended memory term
grows.
"""

from __future__ import annotations

from math import prod

import numpy as np

from repro.cachesim.driver import measure_stream
from repro.cachesim.stream import sweep_stream
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.perf.simulate import (
    Measurement,
    NOISE_SIGMA,
    _exec_cycles_per_lup,
    _port_cycles_per_lup,
    simulate_traffic_time,
)
from repro.stencil.spec import StencilSpec


def simulate_scaling(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    core_counts: list[int],
    seed: int = 0,
) -> list[Measurement]:
    """Simulated aggregate performance at each core count.

    Returns one :class:`~repro.perf.simulate.Measurement` per entry of
    ``core_counts``; ``cycles_per_lup`` is the *aggregate* (per-domain)
    value, i.e. ``mlups`` is total machine performance.
    """
    shape = grids.interior_shape
    rng = np.random.default_rng(seed)
    results = []
    for n in core_counts:
        if n <= 0 or n > machine.cores:
            raise ValueError(f"core count {n} outside 1..{machine.cores}")
        slab = max(1, shape[0] // n)
        # Representative interior slab (away from domain boundaries).
        z_lo = slab * min(n // 2, max(0, shape[0] // slab - 1))
        z_hi = min(shape[0], z_lo + slab)
        stream = sweep_stream(spec, grids, plan, z_range=(z_lo, z_hi))
        lups = (z_hi - z_lo) * prod(shape[1:])
        # Warm replay then measured replay, like the single-core driver.
        from repro.cachesim.hierarchy import CacheHierarchy

        hier = CacheHierarchy(machine)
        for lines, writes in sweep_stream(spec, grids, plan, z_range=(z_lo, z_hi)):
            hier.access_many(lines, writes)
        hier.reset_counters()
        traffic = measure_stream(machine, stream, lups=lups, hierarchy=hier)
        t_exec = _exec_cycles_per_lup(spec, machine)
        t_ports = _port_cycles_per_lup(spec, machine)
        t_traffic = simulate_traffic_time(traffic, machine, n_cores=n)
        per_core_cycles = max(t_exec, t_ports + t_traffic)
        per_core_cycles *= 1.0 + rng.normal(0.0, NOISE_SIGMA)
        aggregate_cycles = per_core_cycles / n
        results.append(
            Measurement(
                spec_name=spec.name,
                machine_name=machine.name,
                plan_label=plan.describe(),
                cores=n,
                cycles_per_lup=float(aggregate_cycles),
                traffic=traffic,
                freq_ghz=machine.freq_ghz,
            )
        )
    return results

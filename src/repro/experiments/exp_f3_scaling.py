"""Experiment F3: multicore scaling and bandwidth saturation.

ECM predicts ``P(n) = min(n * P_1, P_sat)``; the simulator measures a
per-slab replay under contended memory bandwidth.  Expected shape:
near-linear scaling to a knee, then a plateau; the model tracks the
knee position.
"""

from __future__ import annotations

from repro.codegen.plan import KernelPlan
from repro.ecm.model import predict
from repro.ecm.multicore import saturation_point, scaling_curve
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.perf.multicore import simulate_scaling
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

CORE_COUNTS_QUICK = (1, 2, 4, 8)
CORE_COUNTS_FULL = (1, 2, 4, 8, 12, 16, 20, 28, 40)


def run(quick: bool = True) -> dict:
    """Scale 3d7pt (and 3d27pt in full mode) over cores on both machines."""
    stencils = ("3d7pt",) if quick else ("3d7pt", "3d27pt")
    shape = common.GRID_MEDIUM if quick else common.GRID_LARGE
    rows = []
    knees = {}
    for machine in common.machines():
        counts = [c for c in (CORE_COUNTS_QUICK if quick else CORE_COUNTS_FULL)
                  if c <= machine.cores]
        for name in stencils:
            spec = get_stencil(name)
            plan = KernelPlan(block=shape)
            pred1 = predict(spec, shape, plan, machine)
            curve = scaling_curve(pred1, machine.mem_bw_gbs, max(counts))
            pred_by_n = {p.cores: p for p in curve}
            grids = GridSet(spec, shape)
            meas = simulate_scaling(
                spec, grids, plan, machine, list(counts), seed=common.SEED
            )
            for point in meas:
                p = pred_by_n[point.cores]
                rows.append(
                    {
                        "machine": machine.name,
                        "stencil": name,
                        "cores": point.cores,
                        "pred MLUP/s": round(p.mlups, 1),
                        "meas MLUP/s": round(point.mlups, 1),
                        "pred saturated": p.saturated,
                    }
                )
            knees[(machine.name, name)] = saturation_point(
                pred1, machine.mem_bw_gbs
            )
    return {"rows": rows, "saturation_cores": knees}


def main() -> None:
    """Print the scaling table and an ASCII rendering of the figure."""
    from repro.util.asciiplot import line_plot

    result = run(quick=False)
    print(format_table(result["rows"], title="F3: Multicore scaling"))
    for key, n_sat in result["saturation_cores"].items():
        print(f"predicted saturation of {key}: {n_sat:.1f} cores")
    machines = sorted({r["machine"] for r in result["rows"]})
    for machine in machines:
        rows = [
            r
            for r in result["rows"]
            if r["machine"] == machine and r["stencil"] == "3d7pt"
        ]
        if not rows:
            continue
        cores = [r["cores"] for r in rows]
        print()
        print(
            line_plot(
                {
                    "pred": (cores, [r["pred MLUP/s"] for r in rows]),
                    "meas": (cores, [r["meas MLUP/s"] for r in rows]),
                },
                title=f"3d7pt scaling on {machine}",
                xlabel="cores",
                ylabel="MLUP/s",
            )
        )


if __name__ == "__main__":
    main()

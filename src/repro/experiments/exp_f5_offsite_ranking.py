"""Experiment F5: Offsite+YaskSite variant ranking reliability.

For PIRK methods on heat-type grids, the tuner predicts the runtime of
every implementation variant analytically and ranks them; the exact
simulator provides "measurements".  The paper's claim maps to: high
rank correlation and a top-1 (or near-top) hit, without running the
variants during tuning.
"""

from __future__ import annotations

from repro.experiments import common
from repro.ode.pirk import PIRK
from repro.ode.tableau import lobatto_iiic, radau_iia
from repro.offsite.tuner import OffsiteTuner
from repro.util.tables import format_table

GRID_QUICK = (16, 16, 32)
GRID_FULL = (24, 24, 48)


def run(quick: bool = True) -> dict:
    """Rank variants for two PIRK methods on both machines."""
    methods = [PIRK(radau_iia(4), 3)]
    if not quick:
        methods.append(PIRK(lobatto_iiic(5), 4))
    shape = GRID_QUICK if quick else GRID_FULL
    rows = []
    taus = []
    top1 = []
    errors = []
    for machine in common.machines():
        tuner = OffsiteTuner(machine)
        for method in methods:
            report = tuner.tune(method, shape, validate=True, seed=common.SEED)
            taus.append(report.kendall_tau)
            top1.append(report.top1_hit)
            for vt in sorted(report.timings, key=lambda v: v.predicted_s):
                errors.append(abs(vt.error_pct))
                rows.append(
                    {
                        "machine": machine.name,
                        "method": method.name,
                        "variant": vt.variant,
                        "pred ms/step": round(vt.predicted_s * 1e3, 3),
                        "meas ms/step": round(vt.measured_s * 1e3, 3),
                        "err %": round(vt.error_pct, 1),
                        "sweeps/step": vt.sweeps_per_step,
                    }
                )
    return {
        "rows": rows,
        "kendall_taus": taus,
        "top1_hits": top1,
        "mean_abs_err_pct": sum(errors) / len(errors),
    }


def main() -> None:
    """Print the ranking table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F5: Offsite variant ranking"))
    print("Kendall taus:", [round(t, 2) for t in result["kendall_taus"]])
    print("top-1 hits:", result["top1_hits"])
    print(f"mean |err| = {result['mean_abs_err_pct']:.1f}%")


if __name__ == "__main__":
    main()

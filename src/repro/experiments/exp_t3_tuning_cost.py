"""Experiment T3: autotuning cost — analytic ECM vs empirical search.

The table the abstract's "minimal ... autotuning costs" claim reduces
to: how many variants had to *run*, how much (simulated) machine time
that cost, and how good the final choice is relative to the exhaustive
optimum.
"""

from __future__ import annotations

from repro.autotune.search import (
    EcmGuidedTuner,
    ExhaustiveTuner,
    GreedyLineSearchTuner,
)
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

STENCILS_QUICK = ("3d7pt",)
STENCILS_FULL = ("3d7pt", "3d27pt", "3dvarcoef")


def run(quick: bool = True) -> dict:
    """Run all three tuners over the suite; collect the cost ledger."""
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    shape = common.GRID_MEDIUM if quick else common.GRID_LARGE
    machine = common.clx()
    tuners = [
        ExhaustiveTuner(),
        GreedyLineSearchTuner(),
        EcmGuidedTuner(validate=True),
    ]
    rows = []
    quality = {}
    for name in stencils:
        spec = get_stencil(name)
        grids = GridSet(spec, shape)
        results = {}
        for tuner in tuners:
            res = tuner.tune(spec, grids, machine, seed=common.SEED)
            results[res.tuner] = res
            rows.append(
                {
                    "stencil": name,
                    "tuner": res.tuner,
                    "examined": res.variants_examined,
                    "run": res.variants_run,
                    "sim run cost (ms)": round(res.simulated_run_seconds * 1e3, 2),
                    "cache hits": res.traffic_cache_hits,
                    "best block": "x".join(map(str, res.best_plan.block)),
                    "best MLUP/s": round(res.best_mlups, 1),
                }
            )
        exhaustive_best = results["exhaustive"].best_mlups
        quality[name] = {
            t: results[t].best_mlups / exhaustive_best for t in results
        }
    return {"rows": rows, "quality_vs_exhaustive": quality}


def main() -> None:
    """Print the tuning-cost table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="T3: Autotuning cost"))
    for name, q in result["quality_vs_exhaustive"].items():
        print(name, {k: round(v, 3) for k, v in q.items()})


if __name__ == "__main__":
    main()

"""Experiment F6: end-to-end ODE speedup of tuned kernels over naive.

The deployment payoff: the Offsite+YaskSite choice (best variant, with
YaskSite's analytic block size for the stencil sweeps) versus a naive
implementation (split variant, unblocked).  Expected shape: a clear
factor > 1 on both machines, larger where cache per core is scarcer.
"""

from __future__ import annotations

from repro.blocking.spatial import analytic_block_selection
from repro.codegen.plan import KernelPlan
from repro.experiments import common
from repro.ode.pirk import PIRK
from repro.ode.tableau import radau_iia
from repro.offsite.tuner import OffsiteTuner
from repro.stencil.builders import heat
from repro.util.tables import format_table

GRIDS_QUICK = ((16, 16, 32),)
GRIDS_FULL = ((16, 16, 32), (24, 24, 48), (32, 32, 64))


def run(quick: bool = True) -> dict:
    """Measure naive vs tuned PIRK step time on both machines."""
    method = PIRK(radau_iia(4), 3)
    shapes = GRIDS_QUICK if quick else GRIDS_FULL
    rows = []
    speedups = []
    for machine in common.machines():
        for shape in shapes:
            # Naive: split variant, whole-grid blocks.
            naive = OffsiteTuner(machine, block=shape).tune(
                method, shape, validate=True, seed=common.SEED
            )
            naive_time = next(
                v.measured_s for v in naive.timings if v.variant == "split"
            )
            # Tuned: per-kernel analytic block choice + best predicted
            # variant (pure offline decisions).
            spec = heat(3)
            choice = analytic_block_selection(spec, shape, machine)
            tuned_report = OffsiteTuner(machine, block="auto").tune(
                method, shape, validate=True, seed=common.SEED + 1
            )
            best_name = tuned_report.best_predicted().variant
            tuned_time = next(
                v.measured_s
                for v in tuned_report.timings
                if v.variant == best_name
            )
            speedup = naive_time / tuned_time
            speedups.append(speedup)
            rows.append(
                {
                    "machine": machine.name,
                    "grid": "x".join(map(str, shape)),
                    "naive ms/step": round(naive_time * 1e3, 3),
                    "tuned ms/step": round(tuned_time * 1e3, 3),
                    "tuned variant": best_name,
                    "block": "x".join(map(str, choice.plan.block)),
                    "speedup": round(speedup, 2),
                }
            )
    return {
        "rows": rows,
        "speedups": speedups,
        "geomean_speedup": common.geomean(speedups),
    }


def main() -> None:
    """Print the speedup table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F6: End-to-end ODE speedup"))
    print(f"geomean speedup: {result['geomean_speedup']:.2f}x")


if __name__ == "__main__":
    main()

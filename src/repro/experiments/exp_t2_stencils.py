"""Experiment T2: characteristics of the stencil evaluation suite."""

from __future__ import annotations

from repro.stencil.library import suite_table
from repro.util.tables import format_table


def run(quick: bool = True) -> dict:
    """Build the stencil-suite table."""
    return {"rows": suite_table()}


def main() -> None:
    """Print the table."""
    print(format_table(run()["rows"], title="T2: Stencil suite"))


if __name__ == "__main__":
    main()

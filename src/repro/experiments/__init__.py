"""Experiment drivers: one module per reconstructed table/figure.

Each module exposes ``run(quick=True) -> dict`` returning ``rows`` (the
table/series the paper reports) plus summary metrics the benchmark
suite asserts on, and a ``main()`` that prints the table.  See
DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
results.
"""

from repro.experiments import common

__all__ = ["common"]

"""Experiment F8 (ablation): in-core model detail level.

Compares the simple throughput-count in-core model against the
port-level scheduler (the OSACA/IACA substitute) in terms of ECM
prediction accuracy against the simulator.  Expected shape: the two
agree closely for streaming stencils (both are port-pressure bound),
diverging only where FMA contraction / CSE changes instruction counts.
"""

from __future__ import annotations

from repro.codegen.plan import KernelPlan
from repro.ecm.model import predict
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.perf.simulate import simulate_kernel
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

STENCILS_QUICK = ("3d7pt", "3d27pt")
STENCILS_FULL = ("3d7pt", "3d13pt", "3d25pt", "3d27pt", "3dvarcoef")


def run(quick: bool = True) -> dict:
    """Predict with both in-core models; compare against simulation."""
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    shape = common.GRID_MEDIUM
    machine = common.clx()
    rows = []
    err_simple = []
    err_detailed = []
    for name in stencils:
        spec = get_stencil(name)
        grids = GridSet(spec, shape)
        plan = KernelPlan(block=shape)
        simple = predict(spec, shape, plan, machine, detailed=False)
        detailed = predict(spec, shape, plan, machine, detailed=True)
        meas = simulate_kernel(spec, grids, plan, machine, seed=common.SEED)
        e_s = 100.0 * (simple.mlups - meas.mlups) / meas.mlups
        e_d = 100.0 * (detailed.mlups - meas.mlups) / meas.mlups
        err_simple.append(abs(e_s))
        err_detailed.append(abs(e_d))
        rows.append(
            {
                "stencil": name,
                "meas MLUP/s": round(meas.mlups, 1),
                "simple MLUP/s": round(simple.mlups, 1),
                "simple err %": round(e_s, 1),
                "portsim MLUP/s": round(detailed.mlups, 1),
                "portsim err %": round(e_d, 1),
                "t_nol simple": round(simple.t_nol, 2),
                "t_nol portsim": round(detailed.t_nol, 2),
            }
        )
    return {
        "rows": rows,
        "mean_abs_err_simple_pct": sum(err_simple) / len(err_simple),
        "mean_abs_err_detailed_pct": sum(err_detailed) / len(err_detailed),
    }


def main() -> None:
    """Print the ablation table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F8: In-core model detail"))
    print(
        f"mean |err| simple: {result['mean_abs_err_simple_pct']:.1f}%  "
        f"port-scheduled: {result['mean_abs_err_detailed_pct']:.1f}%"
    )


if __name__ == "__main__":
    main()

"""Experiment T4: code-generation and tuning time budget.

"Minimal code generation time and autotuning costs": the whole offline
pipeline — generating every kernel variant's code plus the analytic
tuning pass — is timed and set against the simulated machine time an
empirical tuner would burn running variants.
"""

from __future__ import annotations

import time

from repro.autotune.search import EcmGuidedTuner, ExhaustiveTuner
from repro.codegen.compiler import compile_kernel
from repro.codegen.plan import candidate_plans
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

STENCILS_QUICK = ("3d7pt",)
STENCILS_FULL = ("3d7pt", "3d27pt")


def run(quick: bool = True) -> dict:
    """Time codegen + analytic tuning vs empirical tuning cost."""
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    shape = common.GRID_MEDIUM
    machine = common.clx()
    rows = []
    for name in stencils:
        spec = get_stencil(name)
        grids = GridSet(spec, shape)

        t0 = time.perf_counter()
        n_variants = 0
        for plan in candidate_plans(spec, shape, machine):
            compile_kernel(spec, shape, plan, machine=machine)
            n_variants += 1
        codegen_all = time.perf_counter() - t0

        ecm = EcmGuidedTuner(validate=False).tune(
            spec, grids, machine, seed=common.SEED
        )
        exhaustive = ExhaustiveTuner().tune(
            spec, grids, machine, seed=common.SEED
        )
        rows.append(
            {
                "stencil": name,
                "variants": n_variants,
                "codegen all (s)": round(codegen_all, 3),
                "ECM tuning (s)": round(ecm.tuner_seconds, 3),
                "ECM runs": ecm.variants_run,
                "empirical runs": exhaustive.variants_run,
                "empirical sim cost (ms)": round(
                    exhaustive.simulated_run_seconds * 1e3, 2
                ),
            }
        )
    return {"rows": rows}


def main() -> None:
    """Print the cost table."""
    print(format_table(run(quick=False)["rows"], title="T4: Codegen & tuning budget"))


if __name__ == "__main__":
    main()

"""Experiment F4: wavefront temporal blocking gains.

Temporal blocking trades redundant skew work for memory-traffic
reduction; it pays off only for memory-bound stencils.  The experiment
sweeps the wavefront depth and reports simulated memory traffic and
performance versus pure spatial blocking.
"""

from __future__ import annotations

from repro.blocking.temporal import (
    WavefrontPlan,
    measure_wavefront,
    predict_wavefront_memtraffic,
)
from repro.cachesim.driver import measure_sweep
from repro.codegen.plan import KernelPlan
from repro.ecm.layer_conditions import effective_capacity
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.perf.simulate import simulate_traffic_time, _exec_cycles_per_lup, _port_cycles_per_lup
from repro.stencil.library import get_stencil
from repro.stencil.spec import StencilSpec
from repro.util.tables import format_table

#: Narrow grid so slabs fit the (scaled) caches; see DESIGN.md.
SHAPE = (96, 8, 32)
DEPTHS = (1, 2, 4, 8)


def pick_slab(spec: StencilSpec, machine: Machine, shape: tuple[int, ...]) -> int:
    """Largest slab whose two-buffer working set fits the outer cache."""
    plane_bytes = shape[1] * shape[2] * spec.dtype_bytes
    cap = effective_capacity(machine, machine.n_levels - 1)
    # Two Jacobi buffers plus skew halo must stay resident across fused
    # steps; the /6 margin absorbs LRU and conflict inefficiency (picked
    # to match the exact simulator's reuse cliff, see DESIGN.md).
    slab = max(2, int(cap / (6.0 * plane_bytes)))
    return min(slab, shape[0])


def _perf_mlups(spec, machine, traffic) -> float:
    t_exec = _exec_cycles_per_lup(spec, machine)
    t_ports = _port_cycles_per_lup(spec, machine)
    t_traffic = simulate_traffic_time(traffic, machine)
    cycles = max(t_exec, t_ports + t_traffic)
    return machine.freq_ghz * 1e3 / cycles


def run(quick: bool = True) -> dict:
    """Sweep wavefront depths for a low-AI and a high-AI stencil."""
    stencils = ("3d7pt",) if quick else ("3d7pt", "3d25pt")
    depths = DEPTHS[:3] if quick else DEPTHS
    machine = common.clx()
    rows = []
    best_speedup = {}
    for name in stencils:
        spec = get_stencil(name)
        grids = GridSet(spec, SHAPE)
        spatial_plan = KernelPlan(block=SHAPE)
        base = measure_sweep(spec, grids, spatial_plan, machine)
        base_mem = base.bytes_per_lup(len(base.loads) - 1)
        base_mlups = _perf_mlups(spec, machine, base)
        slab = pick_slab(spec, machine, SHAPE)
        speedups = [1.0]
        rows.append(
            {
                "stencil": name,
                "wt": 1,
                "slab": "-",
                "mem B/LUP": round(base_mem, 1),
                "pred mem B/LUP": round(base_mem, 1),
                "MLUP/s": round(base_mlups, 1),
                "speedup": 1.0,
            }
        )
        for wt in depths:
            if wt == 1:
                continue
            plan = WavefrontPlan(spatial=spatial_plan, wt=wt, slab=slab)
            traffic = measure_wavefront(spec, grids, plan, machine)
            mem = traffic.bytes_per_lup(len(traffic.loads) - 1)
            mlups = _perf_mlups(spec, machine, traffic)
            speedup = mlups / base_mlups
            speedups.append(speedup)
            rows.append(
                {
                    "stencil": name,
                    "wt": wt,
                    "slab": slab,
                    "mem B/LUP": round(mem, 1),
                    "pred mem B/LUP": round(
                        predict_wavefront_memtraffic(spec, plan, base_mem), 1
                    ),
                    "MLUP/s": round(mlups, 1),
                    "speedup": round(speedup, 2),
                }
            )
        best_speedup[name] = max(speedups)
    return {"rows": rows, "best_speedup": best_speedup}


def main() -> None:
    """Print the wavefront table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F4: Temporal (wavefront) blocking"))
    for name, s in result["best_speedup"].items():
        print(f"best wavefront speedup for {name}: {s:.2f}x")


if __name__ == "__main__":
    main()

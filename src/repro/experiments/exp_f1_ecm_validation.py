"""Experiment F1: single-core ECM prediction vs simulated measurement.

The paper's core claim — the analytic model is accurate enough to tune
with — is validated by sweeping stencils and grid sizes on both
machines and comparing predicted MLUP/s against the exact-cache
performance simulation.  Expected shape: errors mostly within ~20%.
"""

from __future__ import annotations

from repro.codegen.plan import KernelPlan
from repro.ecm.model import predict
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.perf.simulate import simulate_kernel
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

STENCILS_QUICK = ("3d7pt", "3d27pt")
STENCILS_FULL = ("3d7pt", "3d13pt", "3d27pt", "3dvarcoef")
SIZES_QUICK = (common.GRID_SMALL, common.GRID_MEDIUM)
SIZES_FULL = (common.GRID_SMALL, common.GRID_MEDIUM, common.GRID_LARGE)


def run(quick: bool = True) -> dict:
    """Sweep stencils x sizes x machines; compare model vs simulation."""
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    sizes = SIZES_QUICK if quick else SIZES_FULL
    rows = []
    errors = []
    for machine in common.machines():
        for name in stencils:
            spec = get_stencil(name)
            for shape in sizes:
                plan = KernelPlan(block=shape)  # unblocked full sweep
                pred = predict(spec, shape, plan, machine)
                grids = GridSet(spec, shape)
                meas = simulate_kernel(
                    spec, grids, plan, machine, seed=common.SEED
                )
                err = 100.0 * (pred.mlups - meas.mlups) / meas.mlups
                errors.append(abs(err))
                rows.append(
                    {
                        "machine": machine.name,
                        "stencil": name,
                        "grid": "x".join(map(str, shape)),
                        "pred MLUP/s": round(pred.mlups, 1),
                        "meas MLUP/s": round(meas.mlups, 1),
                        "err %": round(err, 1),
                        "pred mem B/LUP": round(pred.memory_bytes_per_lup(), 1),
                        "meas mem B/LUP": round(
                            meas.traffic.bytes_per_lup(
                                len(meas.traffic.loads) - 1
                            ),
                            1,
                        ),
                    }
                )
    return {
        "rows": rows,
        "max_abs_err_pct": max(errors),
        "mean_abs_err_pct": sum(errors) / len(errors),
    }


def main() -> None:
    """Print the validation table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F1: ECM model validation"))
    print(
        f"mean |err| = {result['mean_abs_err_pct']:.1f}%  "
        f"max |err| = {result['max_abs_err_pct']:.1f}%"
    )


if __name__ == "__main__":
    main()

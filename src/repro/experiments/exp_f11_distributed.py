"""Experiment F11: distributed (multi-rank) scaling shapes.

YASK's MPI layer is part of the substrate the paper builds on; the
model reproduces its canonical behaviour: near-perfect weak scaling
(halo surface amortised by constant local volume) and strong-scaling
efficiency decay as local grids shrink and exchanges dominate.
"""

from __future__ import annotations

from repro.dist.scaling import predict_distributed
from repro.experiments import common
from repro.machine.presets import cascade_lake_sp
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

RANKS = (1, 2, 4, 8, 16, 64)
LOCAL = (64, 64, 64)  # per-rank volume for weak scaling
STRONG_GLOBAL = (128, 128, 128)


def run(quick: bool = True) -> dict:
    """Weak and strong distributed scaling of 3d7pt on CLX nodes."""
    machine = cascade_lake_sp()  # full-size nodes: analytic only
    spec = get_stencil("3d7pt")
    ranks = RANKS[:4] if quick else RANKS
    rows = []
    weak_eff = []
    strong_eff = []
    for n in ranks:
        # Weak: global grid grows with ranks along z.
        global_shape = (LOCAL[0] * n, LOCAL[1], LOCAL[2])
        weak = predict_distributed(spec, global_shape, n, machine)
        weak_eff.append(weak.parallel_efficiency)
        rows.append(
            {
                "mode": "weak",
                "ranks": n,
                "local grid": "x".join(map(str, weak.decomposition.local_shape)),
                "GLUP/s": round(weak.total_mlups / 1e3, 2),
                "efficiency": round(weak.parallel_efficiency, 3),
                "comm %": round(100 * weak.comm_fraction, 1),
            }
        )
        # Strong: fixed global grid.
        try:
            strong = predict_distributed(spec, STRONG_GLOBAL, n, machine)
        except ValueError:
            continue
        strong_eff.append(strong.parallel_efficiency)
        rows.append(
            {
                "mode": "strong",
                "ranks": n,
                "local grid": "x".join(
                    map(str, strong.decomposition.local_shape)
                ),
                "GLUP/s": round(strong.total_mlups / 1e3, 2),
                "efficiency": round(strong.parallel_efficiency, 3),
                "comm %": round(100 * strong.comm_fraction, 1),
            }
        )
    return {
        "rows": rows,
        "weak_efficiency_min": min(weak_eff),
        "strong_efficiency_last": strong_eff[-1],
        "strong_monotone_decay": strong_eff == sorted(strong_eff, reverse=True),
    }


def main() -> None:
    """Print the distributed scaling table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F11: Distributed scaling"))
    print(
        f"weak-scaling efficiency ≥ {result['weak_efficiency_min']:.3f}; "
        f"strong efficiency at max ranks {result['strong_efficiency_last']:.3f}"
    )


if __name__ == "__main__":
    main()

"""Experiment T1: the testbed table (Cascade Lake SP vs AMD Rome)."""

from __future__ import annotations

from repro.machine.presets import cascade_lake_sp, rome
from repro.util.tables import format_table


def run(quick: bool = True) -> dict:
    """Build the machine-characteristics table (unscaled presets)."""
    machines = [cascade_lake_sp(), rome()]
    keys: list[str] = []
    per_machine: list[dict[str, str]] = []
    for m in machines:
        rows = dict(m.summary_rows())
        per_machine.append(rows)
        for key in rows:
            if key not in keys:
                keys.append(key)
    table = [
        {"characteristic": key, **{m.name: pm.get(key, "-") for m, pm in zip(machines, per_machine)}}
        for key in keys
    ]
    return {"rows": table, "machines": [m.name for m in machines]}


def main() -> None:
    """Print the table."""
    result = run()
    print(format_table(result["rows"], title="T1: Evaluation platforms"))


if __name__ == "__main__":
    main()

"""Shared configuration for the experiment suite.

The exact cache simulator is line-granular and pure Python, so the
experiments shrink grids *and* caches by :data:`CACHE_SCALE` together
(documented in DESIGN.md): layer-condition cliffs, block-size optima
and saturation behaviour all depend on the ratio of working set to
cache size, which this transformation preserves.

Machine construction routes through :func:`repro.engine.default_engine`
— machines are frozen dataclasses, so every experiment shares the
engine's cached, pre-scaled instances instead of rebuilding them.
"""

from __future__ import annotations

from repro.engine import default_engine
from repro.machine.machine import Machine

#: Factor by which every cache level (and the grids) are scaled down.
CACHE_SCALE = 1.0 / 32.0

#: Standard seeds so every run of the suite is reproducible.
SEED = 20260707


def clx() -> Machine:
    """Scaled Cascade Lake SP evaluation machine."""
    return default_engine().yasksite("clx", cache_scale=CACHE_SCALE).machine


def rome_m() -> Machine:
    """Scaled AMD Rome evaluation machine."""
    return default_engine().yasksite("rome", cache_scale=CACHE_SCALE).machine


def machines() -> list[Machine]:
    """Both evaluation platforms."""
    return [clx(), rome_m()]


#: Grid sizes (scaled counterparts of the paper's 256^3..512^3 range).
GRID_SMALL = (16, 16, 32)
GRID_MEDIUM = (32, 32, 48)
GRID_LARGE = (48, 48, 64)


def geomean(values: list[float]) -> float:
    """Geometric mean (positive inputs)."""
    if not values:
        raise ValueError("geomean of empty list")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geomean needs positive values")
        product *= v
    return product ** (1.0 / len(values))

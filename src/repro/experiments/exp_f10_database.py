"""Experiment F10: offline tuning database deployment.

Offsite's operating model: tune ahead of time for a set of grids,
persist the results, and at run time *look up* instead of tuning.  The
experiment populates the database for a few grid sizes, then deploys at
an intermediate, never-tuned grid via nearest-grid lookup and checks
the deployed choice against (a) the oracle (tuning at that exact grid)
and (b) the naive implementation.
"""

from __future__ import annotations

from repro.experiments import common
from repro.ode.pirk import PIRK
from repro.ode.tableau import radau_iia
from repro.offsite.database import TuningDatabase, TuningKey
from repro.offsite.tuner import OffsiteTuner
from repro.util.tables import format_table

TUNED_GRIDS = ((12, 12, 16), (32, 32, 48))
DEPLOY_GRID = (20, 20, 32)


def run(quick: bool = True) -> dict:
    """Populate, deploy, and validate the tuning database."""
    machine = common.clx()
    method = PIRK(radau_iia(4), 3)
    tuner = OffsiteTuner(machine, block="auto")
    db = TuningDatabase()
    rows = []
    for grid in TUNED_GRIDS:
        report = tuner.tune(
            method, grid, validate=False, seed=common.SEED,
            ivp_name="heat3d",
        )
        record = db.record_report(report, grid, block=grid)
        rows.append(
            {
                "phase": "tune",
                "grid": "x".join(map(str, grid)),
                "variant": record.best_variant,
                "pred ms/step": round(record.predicted_s_per_step * 1e3, 3),
                "note": "stored",
            }
        )

    # Deployment: look the never-tuned grid up.
    key = TuningKey(method.name, "heat3d", machine.name, DEPLOY_GRID)
    hit = db.lookup(key)
    assert hit is not None

    # Oracle: measure every variant at the deployment grid.
    oracle = tuner.tune(method, DEPLOY_GRID, validate=True, seed=common.SEED + 1)
    measured = {t.variant: t.measured_s for t in oracle.timings}
    deployed_time = measured[hit.best_variant]
    best_time = min(measured.values())
    naive_time = measured["split"]
    rows.append(
        {
            "phase": "deploy",
            "grid": "x".join(map(str, DEPLOY_GRID)),
            "variant": hit.best_variant,
            "pred ms/step": round(deployed_time * 1e3, 3),
            "note": f"from {'x'.join(map(str, hit.key.grid))} record",
        }
    )
    return {
        "rows": rows,
        "deployed_vs_oracle": deployed_time / best_time,
        "deployed_vs_naive": naive_time / deployed_time,
        "db_size": len(db),
    }


def main() -> None:
    """Print the deployment table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F10: Tuning-database deployment"))
    print(
        f"deployed/oracle time ratio : {result['deployed_vs_oracle']:.3f}\n"
        f"naive/deployed speedup     : {result['deployed_vs_naive']:.2f}x"
    )


if __name__ == "__main__":
    main()

"""Experiment F2: block-size sweep — does the model find the optimum?

For each candidate spatial block the ECM model predicts performance and
the exact simulator measures it.  The claim under test: the analytic
argmax lands within a few percent of the empirical best, so the code
never has to run during tuning.
"""

from __future__ import annotations

from repro.blocking.spatial import analytic_block_selection
from repro.codegen.plan import candidate_plans
from repro.ecm.model import predict
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.perf.simulate import simulate_kernel
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

STENCILS_QUICK = ("3d7pt",)
STENCILS_FULL = ("3d7pt", "3dlong_r4")


def run(quick: bool = True) -> dict:
    """Sweep every candidate block on both machines."""
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    shape = common.GRID_MEDIUM if quick else common.GRID_LARGE
    rows = []
    gaps = []
    for machine in common.machines():
        for name in stencils:
            spec = get_stencil(name)
            grids = GridSet(spec, shape)
            measured = {}
            for i, plan in enumerate(candidate_plans(spec, shape, machine)):
                pred = predict(spec, shape, plan, machine)
                meas = simulate_kernel(
                    spec, grids, plan, machine, seed=common.SEED + i
                )
                measured[plan.block] = (pred.mlups, meas.mlups, plan)
                rows.append(
                    {
                        "machine": machine.name,
                        "stencil": name,
                        "block": "x".join(map(str, plan.block)),
                        "pred MLUP/s": round(pred.mlups, 1),
                        "meas MLUP/s": round(meas.mlups, 1),
                    }
                )
            choice = analytic_block_selection(spec, shape, machine)
            best_meas = max(measured.values(), key=lambda v: v[1])
            chosen_meas = measured[choice.plan.block][1]
            gap = 100.0 * (best_meas[1] - chosen_meas) / best_meas[1]
            gaps.append(gap)
            rows.append(
                {
                    "machine": machine.name,
                    "stencil": name,
                    "block": f"<analytic pick {choice.plan.describe()}>",
                    "pred MLUP/s": round(choice.mlups, 1),
                    "meas MLUP/s": round(chosen_meas, 1),
                }
            )
    return {"rows": rows, "max_gap_pct": max(gaps), "gaps_pct": gaps}


def main() -> None:
    """Print the sweep table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F2: Block-size sweep"))
    print(f"max gap of analytic pick vs empirical best: {result['max_gap_pct']:.1f}%")


if __name__ == "__main__":
    main()

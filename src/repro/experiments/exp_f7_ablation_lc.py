"""Experiment F7 (ablation): ECM with vs. without layer conditions.

Dropping layer conditions (every boundary charged the no-reuse traffic)
is the naive traffic model.  The ablation shows (a) its predictions are
far off for cache-fitting blocks and (b) it can steer block selection
wrong — i.e. the LC machinery is a load-bearing ingredient, not
decoration.
"""

from __future__ import annotations

from repro.codegen.plan import KernelPlan, candidate_plans
from repro.ecm.model import predict
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.perf.simulate import simulate_kernel
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

STENCILS_QUICK = ("3d7pt",)
STENCILS_FULL = ("3d7pt", "3d13pt", "3d27pt")


def run(quick: bool = True) -> dict:
    """Compare full-ECM and no-LC predictions against simulation."""
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    shape = common.GRID_MEDIUM
    machine = common.clx()
    rows = []
    err_full = []
    err_nolc = []
    for name in stencils:
        spec = get_stencil(name)
        grids = GridSet(spec, shape)
        # A cache-friendly blocked plan, where reuse matters most.
        block = (8, 8, shape[2])
        plan = KernelPlan(block=block)
        full = predict(spec, shape, plan, machine)
        nolc = predict(spec, shape, plan, machine, assume_no_reuse=True)
        meas = simulate_kernel(spec, grids, plan, machine, seed=common.SEED)
        e_full = 100.0 * (full.mlups - meas.mlups) / meas.mlups
        e_nolc = 100.0 * (nolc.mlups - meas.mlups) / meas.mlups
        err_full.append(abs(e_full))
        err_nolc.append(abs(e_nolc))
        rows.append(
            {
                "stencil": name,
                "block": "x".join(map(str, block)),
                "meas MLUP/s": round(meas.mlups, 1),
                "ECM MLUP/s": round(full.mlups, 1),
                "ECM err %": round(e_full, 1),
                "no-LC MLUP/s": round(nolc.mlups, 1),
                "no-LC err %": round(e_nolc, 1),
            }
        )
    # Block selection disagreement under the naive model.
    spec = get_stencil(stencils[0])
    best_full = min(
        candidate_plans(spec, shape, machine),
        key=lambda p: predict(spec, shape, p, machine).t_ecm,
    )
    best_nolc = min(
        candidate_plans(spec, shape, machine),
        key=lambda p: predict(
            spec, shape, p, machine, assume_no_reuse=True
        ).t_ecm,
    )
    return {
        "rows": rows,
        "mean_abs_err_full_pct": sum(err_full) / len(err_full),
        "mean_abs_err_nolc_pct": sum(err_nolc) / len(err_nolc),
        "block_full": best_full.block,
        "block_nolc": best_nolc.block,
    }


def main() -> None:
    """Print the ablation table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F7: Layer-condition ablation"))
    print(
        f"mean |err| full ECM: {result['mean_abs_err_full_pct']:.1f}%  "
        f"no-LC: {result['mean_abs_err_nolc_pct']:.1f}%"
    )
    print(
        f"block choice full={result['block_full']} no-LC={result['block_nolc']}"
    )


if __name__ == "__main__":
    main()

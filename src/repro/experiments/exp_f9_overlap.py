"""Experiment F9 (ablation): ECM overlap hypothesis per architecture.

The ECM literature composes per-level transfer times serially on Intel
and (closer to) concurrently on AMD.  This ablation predicts with both
hypotheses on both machines and checks which fits the simulator.  In
*this* reproduction the simulator charges transfers serially (see
``repro.perf``), so the expected result is: SERIAL fits both machines,
and OVERLAP over-predicts — demonstrating that the composition choice
is observable, which is the methodological point.
"""

from __future__ import annotations

from repro.codegen.plan import KernelPlan
from repro.ecm.model import EcmComposition, predict
from repro.experiments import common
from repro.grid.grid import GridSet
from repro.perf.simulate import simulate_kernel
from repro.stencil.library import get_stencil
from repro.util.tables import format_table

STENCILS_QUICK = ("3d7pt",)
STENCILS_FULL = ("3d7pt", "3d13pt", "3dvarcoef")


def run(quick: bool = True) -> dict:
    """Predict under both composition hypotheses on both machines."""
    stencils = STENCILS_QUICK if quick else STENCILS_FULL
    shape = common.GRID_MEDIUM
    rows = []
    errs: dict[str, list[float]] = {"serial": [], "overlap": []}
    for machine in common.machines():
        for name in stencils:
            spec = get_stencil(name)
            grids = GridSet(spec, shape)
            plan = KernelPlan(block=shape)
            meas = simulate_kernel(spec, grids, plan, machine, seed=common.SEED)
            serial = predict(spec, shape, plan, machine)
            overlap = predict(
                spec, shape, plan, machine,
                composition=EcmComposition.OVERLAP,
            )
            e_serial = 100.0 * (serial.mlups - meas.mlups) / meas.mlups
            e_overlap = 100.0 * (overlap.mlups - meas.mlups) / meas.mlups
            errs["serial"].append(abs(e_serial))
            errs["overlap"].append(abs(e_overlap))
            rows.append(
                {
                    "machine": machine.name,
                    "stencil": name,
                    "meas MLUP/s": round(meas.mlups, 1),
                    "serial MLUP/s": round(serial.mlups, 1),
                    "serial err %": round(e_serial, 1),
                    "overlap MLUP/s": round(overlap.mlups, 1),
                    "overlap err %": round(e_overlap, 1),
                }
            )
    return {
        "rows": rows,
        "mean_abs_err_serial_pct": sum(errs["serial"]) / len(errs["serial"]),
        "mean_abs_err_overlap_pct": sum(errs["overlap"]) / len(errs["overlap"]),
    }


def main() -> None:
    """Print the ablation table."""
    result = run(quick=False)
    print(format_table(result["rows"], title="F9: Overlap hypothesis"))
    print(
        f"mean |err| serial: {result['mean_abs_err_serial_pct']:.1f}%  "
        f"overlap: {result['mean_abs_err_overlap_pct']:.1f}%"
    )


if __name__ == "__main__":
    main()

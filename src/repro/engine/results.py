"""Typed results: what the engine returns for each request type.

These are flat, JSON-shaped dataclasses — every field survives a
serialize→deserialize round trip through the canonical serializers in
:mod:`repro.service.serializers` unchanged (the property tests assert
exactly that).  Builders (``from_*``) lift the library-level result
objects (:class:`EcmPrediction`, :class:`TunerResult`,
:class:`RankingReport`) into this form once, at the engine boundary;
the CLI and the service only ever see the typed results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotune.search import TunerResult
from repro.codegen.plan import KernelPlan
from repro.ecm.model import EcmPrediction
from repro.offsite.tuner import RankingReport

__all__ = [
    "PlanResult",
    "CacheLedger",
    "RecoveryLedger",
    "PredictResult",
    "TuneResult",
    "VariantTimingResult",
    "RankResult",
]


@dataclass(frozen=True)
class PlanResult:
    """Kernel plan in result form (mirrors ``plan_to_dict``)."""

    block: tuple[int, ...]
    loop_order: tuple[int, ...] | None
    threads: int
    wavefront: int
    label: str

    @classmethod
    def from_plan(cls, plan: KernelPlan) -> "PlanResult":
        return cls(
            block=tuple(plan.block),
            loop_order=tuple(plan.loop_order) if plan.loop_order else None,
            threads=plan.threads,
            wavefront=plan.wavefront,
            label=plan.describe(),
        )


@dataclass(frozen=True)
class CacheLedger:
    """Hit/miss counters of one cache (traffic-memo ledger).

    The predictor breakdown says which path produced the reports behind
    the misses: ``lc_served`` analytically via the layer-condition fast
    path, ``sim_served`` by cache replay, ``lc_validation_mismatch``
    cross-checks where LC diverged and the replay was served instead.
    All default to 0 so ledgers from paths without predictor dispatch
    (e.g. rank's composite-stream measurements) stay valid.

    ``memory_hits``/``memory_misses``/``disk_hits``/``disk_misses``
    split the overall lookups by which store tier served them (the
    traffic memo is a memory LRU over an optional disk tier); all zero
    when the producing path predates the split or has no disk tier
    configured.
    """

    hits: int
    misses: int
    lc_served: int = 0
    sim_served: int = 0
    lc_validation_mismatch: int = 0
    memory_hits: int = 0
    memory_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0


@dataclass(frozen=True)
class RecoveryLedger:
    """Fault-recovery accounting of one tuning run.

    ``degraded`` means the result was produced from partial work (some
    variant evaluations failed after retries or were skipped on
    deadline); the remaining fields say exactly what was retried, lost,
    restored from a checkpoint, or rescued by the in-process fallback.
    A clean run is the all-defaults instance.
    """

    degraded: bool = False
    retried_jobs: int = 0
    failed_jobs: tuple[str, ...] = ()
    skipped_jobs: tuple[str, ...] = ()
    pool_restarts: int = 0
    resumed_jobs: int = 0
    in_process_fallback: bool = False

    @property
    def clean(self) -> bool:
        """Whether no recovery action was taken at all."""
        return self == RecoveryLedger()


@dataclass(frozen=True)
class PredictResult:
    """Analytic ECM prediction for one configuration."""

    stencil: str
    machine: str
    plan: PlanResult
    ecm_notation: str
    t_ol_cycles: float
    t_nol_cycles: float
    t_data_cycles: tuple[float, ...]
    t_ecm_cycles: float
    regimes: tuple[str, ...]
    cycles_per_lup: float
    mlups: float
    mem_bytes_per_lup: float
    freq_ghz: float
    grid: tuple[int, ...]

    @classmethod
    def from_prediction(
        cls,
        pred: EcmPrediction,
        plan: KernelPlan,
        grid: tuple[int, ...],
    ) -> "PredictResult":
        return cls(
            stencil=pred.spec_name,
            machine=pred.machine_name,
            plan=PlanResult.from_plan(plan),
            ecm_notation=pred.notation(),
            t_ol_cycles=pred.t_ol,
            t_nol_cycles=pred.t_nol,
            t_data_cycles=tuple(pred.t_data),
            t_ecm_cycles=pred.t_ecm,
            regimes=tuple(pred.traffic.regimes),
            cycles_per_lup=pred.cycles_per_lup,
            mlups=pred.mlups,
            mem_bytes_per_lup=pred.memory_bytes_per_lup(),
            freq_ghz=pred.freq_ghz,
            grid=tuple(grid),
        )


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one tuning run, with its cost ledger."""

    tuner: str
    best_plan: PlanResult
    best_mlups: float
    variants_examined: int
    variants_run: int
    simulated_run_seconds: float
    workers: int
    traffic_cache: CacheLedger
    stencil: str
    machine: str
    grid: tuple[int, ...]
    recovery: RecoveryLedger = RecoveryLedger()

    @classmethod
    def from_tuner_result(
        cls,
        res: TunerResult,
        stencil: str,
        machine: str,
        grid: tuple[int, ...],
    ) -> "TuneResult":
        return cls(
            tuner=res.tuner,
            best_plan=PlanResult.from_plan(res.best_plan),
            best_mlups=res.best_mlups,
            variants_examined=res.variants_examined,
            variants_run=res.variants_run,
            simulated_run_seconds=res.simulated_run_seconds,
            workers=res.workers,
            traffic_cache=CacheLedger(
                res.traffic_cache_hits, res.traffic_cache_misses,
                lc_served=res.lc_served,
                sim_served=res.sim_served,
                lc_validation_mismatch=res.lc_validation_mismatch,
                memory_hits=res.traffic_mem_hits,
                memory_misses=res.traffic_mem_misses,
                disk_hits=res.traffic_disk_hits,
                disk_misses=res.traffic_disk_misses,
            ),
            stencil=stencil,
            machine=machine,
            grid=tuple(grid),
            recovery=RecoveryLedger(
                degraded=res.degraded,
                retried_jobs=res.retried_jobs,
                failed_jobs=tuple(res.failed_jobs),
                skipped_jobs=tuple(res.skipped_jobs),
                pool_restarts=res.pool_restarts,
                resumed_jobs=res.resumed_jobs,
                in_process_fallback=res.in_process_fallback,
            ),
        )


@dataclass(frozen=True)
class VariantTimingResult:
    """Predicted (and optionally measured) step time of one variant."""

    variant: str
    predicted_s: float
    measured_s: float | None
    error_pct: float | None
    sweeps_per_step: int
    mem_bytes_per_lup: float


@dataclass(frozen=True)
class RankResult:
    """Offsite variant-ranking outcome (experiment F5 rows)."""

    method: str
    ivp: str
    machine: str
    timings: tuple[VariantTimingResult, ...]
    ranking: tuple[str, ...]
    best_variant: str
    best_predicted_s: float
    kendall_tau: float | None
    top1_hit: bool | None
    predict_seconds: float
    measure_seconds: float
    traffic_cache: CacheLedger
    grid: tuple[int, ...]

    @classmethod
    def from_report(
        cls, report: RankingReport, grid: tuple[int, ...]
    ) -> "RankResult":
        ranking = tuple(
            t.variant
            for t in sorted(report.timings, key=lambda t: t.predicted_s)
        )
        best = report.best_predicted()
        return cls(
            method=report.method,
            ivp=report.ivp,
            machine=report.machine,
            timings=tuple(
                VariantTimingResult(
                    variant=t.variant,
                    predicted_s=t.predicted_s,
                    measured_s=t.measured_s,
                    error_pct=t.error_pct,
                    sweeps_per_step=t.sweeps_per_step,
                    mem_bytes_per_lup=t.mem_bytes_per_lup,
                )
                for t in report.timings
            ),
            ranking=ranking,
            best_variant=best.variant,
            best_predicted_s=best.predicted_s,
            kendall_tau=report.kendall_tau,
            top1_hit=report.top1_hit,
            predict_seconds=report.predict_seconds,
            measure_seconds=report.measure_seconds,
            traffic_cache=CacheLedger(
                report.traffic_cache_hits, report.traffic_cache_misses,
                memory_hits=report.traffic_mem_hits,
                memory_misses=report.traffic_mem_misses,
                disk_hits=report.traffic_disk_hits,
                disk_misses=report.traffic_disk_misses,
            ),
            grid=tuple(grid),
        )

"""Typed requests: the single normalization/validation path.

Every front end (CLI flags, service JSON payloads, experiment drivers)
funnels through ``*Request.from_payload``, which fills defaults,
validates types and values, and produces a frozen dataclass.
``to_payload()`` emits the canonical dict form — two requests meaning
the same thing produce identical payloads, which is what the service's
request coalescing, response cache and database tier key on.

The canonical payload shapes are byte-compatible with the historical
``repro.service.jobs`` normalizers, so persisted tuning databases and
recorded service responses stay valid across the refactor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.autotune.search import TUNERS
from repro.cachesim.dispatch import PREDICTORS
from repro.machine.presets import PRESETS
from repro.offsite.tuner import TABLEAU_FAMILIES
from repro.stencil.library import STENCIL_SUITE

__all__ = [
    "RequestError",
    "PredictRequest",
    "TuneRequest",
    "RankRequest",
    "shard_key",
]


class RequestError(ValueError):
    """Invalid request payload (the service maps this to HTTP 400)."""


# ----------------------------------------------------------------------
# Field validators (shared by all request types)
# ----------------------------------------------------------------------
def _require_grid(payload: dict, default: list[int]) -> tuple[int, ...]:
    grid = payload.get("grid", default)
    if (
        not isinstance(grid, (list, tuple))
        or not grid
        or not all(isinstance(g, int) and g > 0 for g in grid)
    ):
        raise RequestError(
            f"bad grid {grid!r}; expected a list of positive ints"
        )
    return tuple(int(g) for g in grid)


def _require_machine(payload: dict) -> str:
    machine = payload.get("machine", "clx")
    if not isinstance(machine, str) or machine.lower() not in PRESETS:
        raise RequestError(
            f"unknown machine {machine!r}; choose from {sorted(PRESETS)}"
        )
    return machine.lower()


def _require_stencil(payload: dict) -> str:
    stencil = payload.get("stencil")
    if stencil not in STENCIL_SUITE:
        raise RequestError(
            f"unknown stencil {stencil!r}; choose from {sorted(STENCIL_SUITE)}"
        )
    return stencil


def _optional_scale(payload: dict, key: str, default: float | None):
    value = payload.get(key, default)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or value <= 0:
        raise RequestError(f"{key} must be a positive number, got {value!r}")
    return float(value)


def _optional_block(
    payload: dict, grid: tuple[int, ...], allow_auto: bool = False
):
    block = payload.get("block")
    if block is None:
        return None
    if allow_auto and block == "auto":
        return "auto"
    if (
        not isinstance(block, (list, tuple))
        or len(block) != len(grid)
        or not all(isinstance(b, int) and b > 0 for b in block)
    ):
        expected = (
            "'auto', null or e.g. [8, 8, 32]" if allow_auto
            else "e.g. [8, 8, 64]"
        )
        raise RequestError(f"bad block {block!r}; expected {expected}")
    return tuple(int(b) for b in block)


def _require_seed(payload: dict) -> int:
    seed = payload.get("seed", 0)
    if not isinstance(seed, int):
        raise RequestError(f"seed must be an int, got {seed!r}")
    return seed


# ----------------------------------------------------------------------
# Request types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredictRequest:
    """One analytic ECM prediction (no simulation, no measurements)."""

    stencil: str
    grid: tuple[int, ...] = (48, 48, 64)
    machine: str = "clx"
    block: tuple[int, ...] | None = None
    cache_scale: float | None = None
    capacity_factor: float = 1.0

    @classmethod
    def from_payload(cls, payload: dict) -> "PredictRequest":
        """Validate and canonicalize a raw payload dict."""
        grid = _require_grid(payload, [48, 48, 64])
        return cls(
            stencil=_require_stencil(payload),
            grid=grid,
            machine=_require_machine(payload),
            block=_optional_block(payload, grid),
            cache_scale=_optional_scale(payload, "cache_scale", None),
            capacity_factor=_optional_scale(payload, "capacity_factor", 1.0),
        )

    def to_payload(self) -> dict:
        """The canonical dict form (service normalization output)."""
        return {
            "stencil": self.stencil,
            "grid": list(self.grid),
            "machine": self.machine,
            "block": list(self.block) if self.block is not None else None,
            "cache_scale": self.cache_scale,
            "capacity_factor": self.capacity_factor,
        }


@dataclass(frozen=True)
class TuneRequest:
    """One tuner run (ecm / exhaustive / greedy).

    ``workers`` parallelises empirical tuners' variant evaluation but
    never changes the result (the reduction is serial-identical), so it
    is deliberately *not* part of the canonical payload identity.
    ``deadline`` (absolute ``time.time()`` epoch seconds) likewise rides
    along without entering the identity: a successful run returns the
    same result with or without one, and the service injects it *after*
    computing cache/coalescing keys.  ``predictor`` selects the traffic
    predictor: ``"auto"`` and ``"simulate"`` produce bit-identical
    reports for every variant (the LC fast path serves only what it
    proves exact), so the winner is predictor-independent and the knob
    stays outside the identity.  ``"lc"`` is *rejected* for tune: a
    tuner sweep includes blocked variants the layer-condition analysis
    declines by design, so a forced-lc tune can only fail or return a
    degraded partial search whose winner differs — admitting it under
    the shared predictor-free identity would let one request poison the
    response cache for all others.  ``checkpoint`` is constructor-only
    (never read from a payload) so a remote client cannot direct the
    server to write files.
    """

    stencil: str
    grid: tuple[int, ...] = (48, 48, 64)
    machine: str = "clx"
    tuner: str = "ecm"
    cache_scale: float | None = 1 / 32
    seed: int = 0
    workers: int = 1
    deadline: float | None = None
    checkpoint: str | None = None
    predictor: str = "auto"

    @classmethod
    def from_payload(cls, payload: dict) -> "TuneRequest":
        """Validate and canonicalize a raw payload dict."""
        tuner = payload.get("tuner", "ecm")
        if tuner not in TUNERS:
            raise RequestError(
                f"unknown tuner {tuner!r}; choose from {sorted(TUNERS)}"
            )
        workers = payload.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise RequestError(
                f"workers must be a positive int, got {workers!r}"
            )
        deadline = payload.get("deadline")
        if deadline is not None and not isinstance(deadline, (int, float)):
            raise RequestError(
                f"deadline must be epoch seconds, got {deadline!r}"
            )
        predictor = payload.get("predictor", "auto")
        if predictor not in PREDICTORS:
            raise RequestError(
                f"unknown predictor {predictor!r}; "
                f"choose from {list(PREDICTORS)}"
            )
        if predictor == "lc":
            raise RequestError(
                "predictor 'lc' is not valid for tune: tuner sweeps "
                "include blocked variants the layer-condition analysis "
                "never certifies, so a forced-lc tune cannot complete; "
                "use 'auto' (LC fast path where provably exact) or "
                "'simulate'"
            )
        return cls(
            stencil=_require_stencil(payload),
            grid=_require_grid(payload, [48, 48, 64]),
            machine=_require_machine(payload),
            tuner=tuner,
            cache_scale=_optional_scale(payload, "cache_scale", 1 / 32),
            seed=_require_seed(payload),
            workers=workers,
            deadline=float(deadline) if deadline is not None else None,
            predictor=predictor,
        )

    def to_payload(self) -> dict:
        """Canonical dict form.

        ``workers``, ``deadline``, ``predictor`` and ``checkpoint`` are
        excluded: they never change a successful result, so they must
        not fork the cache/coalescing identity.
        """
        return {
            "stencil": self.stencil,
            "grid": list(self.grid),
            "machine": self.machine,
            "tuner": self.tuner,
            "cache_scale": self.cache_scale,
            "seed": self.seed,
        }


#: Canonical ``rank`` parameter defaults.  Requests deviating from them
#: get the deviation folded into the database identity below.
_RANK_DEFAULT_CACHE_SCALE = 1 / 32
_RANK_DEFAULT_SEED = 0


@dataclass(frozen=True)
class RankRequest:
    """One Offsite variant ranking for a (method, grid, machine).

    ``checkpoint`` is constructor-only (CLI ``--checkpoint``; never read
    from a payload, never part of the canonical identity).
    """

    method: str = "radau_iia"
    stages: int = 4
    corrector_steps: int = 3
    grid: tuple[int, ...] = (16, 16, 32)
    machine: str = "clx"
    cache_scale: float | None = 1 / 32
    block: tuple[int, ...] | str | None = None
    validate: bool = True
    seed: int = 0
    checkpoint: str | None = None

    @classmethod
    def from_payload(cls, payload: dict) -> "RankRequest":
        """Validate and canonicalize a raw payload dict."""
        family = payload.get("method", "radau_iia")
        if family not in TABLEAU_FAMILIES:
            raise RequestError(
                f"unknown method family {family!r}; "
                f"choose from {sorted(TABLEAU_FAMILIES)}"
            )
        stages = payload.get("stages", 4)
        corrector = payload.get("corrector_steps", 3)
        if not isinstance(stages, int) or stages < 1:
            raise RequestError(
                f"stages must be a positive int, got {stages!r}"
            )
        if not isinstance(corrector, int) or corrector < 1:
            raise RequestError(
                f"corrector_steps must be a positive int, got {corrector!r}"
            )
        grid = _require_grid(payload, [16, 16, 32])
        validate = payload.get("validate", True)
        if not isinstance(validate, bool):
            raise RequestError(f"validate must be a bool, got {validate!r}")
        return cls(
            method=family,
            stages=stages,
            corrector_steps=corrector,
            grid=grid,
            machine=_require_machine(payload),
            cache_scale=_optional_scale(
                payload, "cache_scale", _RANK_DEFAULT_CACHE_SCALE
            ),
            block=_optional_block(payload, grid, allow_auto=True),
            validate=validate,
            seed=_require_seed(payload),
        )

    def to_payload(self) -> dict:
        """The canonical dict form (service normalization output)."""
        block: list[int] | str | None
        if isinstance(self.block, tuple):
            block = list(self.block)
        else:
            block = self.block
        return {
            "method": self.method,
            "stages": self.stages,
            "corrector_steps": self.corrector_steps,
            "grid": list(self.grid),
            "machine": self.machine,
            "cache_scale": self.cache_scale,
            "block": block,
            "validate": self.validate,
            "seed": self.seed,
        }

    def shard_key(self) -> str:
        """Routing identity for the fabric (see :func:`shard_key`).

        Rank requests shard by their *database* identity, not the full
        request payload: requests that differ only in ``validate``
        share one warm :class:`~repro.offsite.database.TuningKey`
        record, so co-locating them puts the database-tier hit on the
        same shard that stored the ranking.  (The per-shard response
        LRU still keys on the full identity, so a ``validate=true``
        response is never served for ``validate=false``.)
        """
        method, ivp, machine, grid = self.db_key_parts()
        return (
            f"rank|{method}|{ivp}|{machine}|" + "x".join(map(str, grid))
        )

    def db_key_parts(self) -> tuple[str, str, str, tuple[int, ...]]:
        """(method, ivp, machine, grid) identity for the database tier.

        Every parameter that changes the ranking output is part of the
        identity: non-default ``cache_scale``, ``block`` and ``seed``
        are folded into the ivp string, so a record stored for one
        parameterization can never be served to a request with another.
        Canonical-default requests keep the plain ``gridAxBxC`` name.
        """
        method = f"{self.method}({self.stages})m{self.corrector_steps}"
        ivp = "grid" + "x".join(map(str, self.grid))
        qualifiers = []
        if self.cache_scale != _RANK_DEFAULT_CACHE_SCALE:
            qualifiers.append(
                "csfull" if self.cache_scale is None
                else f"cs{self.cache_scale:g}"
            )
        if self.block is not None:
            qualifiers.append(
                "bauto" if self.block == "auto"
                else "b" + "x".join(map(str, self.block))
            )
        if self.seed != _RANK_DEFAULT_SEED:
            qualifiers.append(f"s{self.seed}")
        if qualifiers:
            ivp += "@" + ",".join(qualifiers)
        return method, ivp, self.machine, self.grid


# ----------------------------------------------------------------------
# Fabric shard-key extraction
# ----------------------------------------------------------------------
#: endpoint path → request class (both "/tune" and "tune" accepted).
_SHARD_REQUESTS = {
    "predict": PredictRequest,
    "tune": TuneRequest,
    "rank": RankRequest,
}


def shard_key(endpoint: str, payload: dict) -> str:
    """Stable cache-identity string for consistent-hash routing.

    The fabric router and every shard must agree, from the *raw* client
    payload, on which shard owns a request — otherwise coalescing and
    the per-shard response LRU fracture.  This is the single shared
    definition: the payload runs through the same ``from_payload``
    normalization the shard's cache identity uses, so two payloads
    meaning the same thing always land on the same shard, and
    execution-only knobs (``trace``, ``predictor``, ``workers``,
    ``deadline``) never fork the route.  ``/rank`` shards by its
    database identity (see :meth:`RankRequest.shard_key`) so warm
    database-tier hits stay local to the shard that stored them.

    Raises :class:`RequestError` on an invalid payload, which a router
    maps to HTTP 400 without touching any shard.
    """
    name = endpoint.lstrip("/")
    cls = _SHARD_REQUESTS.get(name)
    if cls is None:
        raise RequestError(f"no shardable endpoint {endpoint!r}")
    request = cls.from_payload(payload)
    if isinstance(request, RankRequest):
        return request.shard_key()
    canonical = json.dumps(
        request.to_payload(), sort_keys=True, separators=(",", ":")
    )
    return f"{name}|{canonical}"

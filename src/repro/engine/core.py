"""The engine: one request lifecycle for predict / tune / rank.

The engine owns what the CLI, the HTTP service and the experiment
drivers used to each wire up on their own: :class:`YaskSite`
construction (cached per ``(machine, cache_scale, capacity_factor)``
since machines are frozen and the facade is stateless), stencil/method
lookup, and lifting library results into the typed result dataclasses
the canonical serializers consume.

Every engine entry point runs under an :mod:`repro.obs` span, so a
trace of a request attributes its wall time to the engine stages and
the hot layers they call (block selection, ECM model, cache-replay
simulation, tuner variant evaluation).
"""

from __future__ import annotations

from repro import obs
from repro.codegen.plan import KernelPlan
from repro.core.yasksite import YaskSite
from repro.engine.requests import PredictRequest, RankRequest, TuneRequest
from repro.engine.results import PredictResult, RankResult, TuneResult
from repro.machine.machine import Machine
from repro.offsite.tuner import rank_variants
from repro.stencil.library import get_stencil

__all__ = ["Engine", "default_engine", "set_default_engine"]


class Engine:
    """Shared execution layer for prediction, tuning and ranking."""

    def __init__(self) -> None:
        self._sites: dict[tuple, YaskSite] = {}

    # ------------------------------------------------------------------
    def yasksite(
        self,
        machine: str | Machine,
        cache_scale: float | None = None,
        capacity_factor: float = 1.0,
    ) -> YaskSite:
        """A :class:`YaskSite` for the configuration, cached by key.

        Machines are frozen dataclasses and the facade holds no mutable
        state, so instances are shared freely across requests and
        threads.  Explicit :class:`Machine` objects bypass the cache
        (their identity is not a hashable preset key).
        """
        with obs.span("engine.yasksite") as sp:
            if isinstance(machine, Machine):
                return YaskSite(
                    machine,
                    capacity_factor=capacity_factor,
                    cache_scale=cache_scale,
                )
            key = (machine, cache_scale, capacity_factor)
            site = self._sites.get(key)
            if site is None:
                sp.add(constructed=1)
                site = YaskSite(
                    machine,
                    capacity_factor=capacity_factor,
                    cache_scale=cache_scale,
                )
                self._sites[key] = site
            return site

    # ------------------------------------------------------------------
    def predict(self, request: PredictRequest) -> PredictResult:
        """Analytic ECM prediction (no simulation, no measurements)."""
        with obs.span("engine.predict"):
            ys = self.yasksite(
                request.machine,
                cache_scale=request.cache_scale,
                capacity_factor=request.capacity_factor,
            )
            spec = get_stencil(request.stencil)
            if request.block is not None:
                plan = KernelPlan(block=request.block)
            else:
                plan = ys.select_block(spec, request.grid).plan
            pred = ys.predict(spec, request.grid, plan)
            return PredictResult.from_prediction(pred, plan, request.grid)

    def tune(self, request: TuneRequest) -> TuneResult:
        """Run one of the tuners; returns the typed ledger."""
        with obs.span("engine.tune"):
            ys = self.yasksite(
                request.machine, cache_scale=request.cache_scale
            )
            spec = get_stencil(request.stencil)
            res = ys.tune(
                spec,
                request.grid,
                tuner=request.tuner,
                seed=request.seed,
                workers=request.workers,
                deadline=request.deadline,
                checkpoint=request.checkpoint,
                predictor=request.predictor,
            )
            return TuneResult.from_tuner_result(
                res, request.stencil, request.machine, request.grid
            )

    def tune_analytic(self, request: TuneRequest) -> TuneResult:
        """Degraded-mode tune: the ECM-guided analytic answer, no runs.

        Used by the service when the tune backend's circuit breaker is
        open — whatever tuner was requested, the analytic model picks
        the block without executing a single variant, and the result is
        marked degraded so the caller knows it got the fallback.
        """
        with obs.span("engine.tune_analytic"):
            ys = self.yasksite(
                request.machine, cache_scale=request.cache_scale
            )
            spec = get_stencil(request.stencil)
            res = ys.tune(
                spec,
                request.grid,
                tuner="ecm",
                seed=request.seed,
                validate=False,
            )
            res.degraded = True
            return TuneResult.from_tuner_result(
                res, request.stencil, request.machine, request.grid
            )

    def rank(self, request: RankRequest) -> RankResult:
        """Offsite variant ranking for one (method, grid, machine)."""
        with obs.span("engine.rank"):
            ys = self.yasksite(
                request.machine, cache_scale=request.cache_scale
            )
            _, ivp, _, _ = request.db_key_parts()
            report = rank_variants(
                request.method,
                request.stages,
                request.corrector_steps,
                request.grid,
                ys.machine,
                cache_scale=None,  # the cached machine is already scaled
                block=request.block,
                validate=request.validate,
                seed=request.seed,
                ivp_name=ivp,
                checkpoint=request.checkpoint,
            )
            return RankResult.from_report(report, request.grid)


_default: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine (created on first use).

    Worker processes each build their own on first job, so the
    per-process :class:`YaskSite` cache warms exactly once per worker.
    """
    global _default
    if _default is None:
        _default = Engine()
    return _default


def set_default_engine(engine: Engine | None) -> None:
    """Replace the process-wide engine (``None`` resets it)."""
    global _default
    _default = engine

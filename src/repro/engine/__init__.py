"""repro.engine — the shared request lifecycle for predict/tune/rank.

The CLI (``python -m repro predict/tune/rank``), the HTTP service
(:mod:`repro.service`) and the experiment drivers are thin adapters
over this layer:

* :mod:`repro.engine.requests` — typed, validated request dataclasses
  (:class:`PredictRequest`, :class:`TuneRequest`, :class:`RankRequest`)
  with the single ``from_payload``/``to_payload`` normalization path.
* :mod:`repro.engine.results` — typed results that round-trip through
  the canonical serializers (:mod:`repro.service.serializers`).
* :mod:`repro.engine.core` — the :class:`Engine`, caching
  :class:`YaskSite` construction per ``(machine, cache_scale,
  capacity_factor)`` and tracing every stage via :mod:`repro.obs`.
"""

from repro.engine.core import Engine, default_engine, set_default_engine
from repro.engine.requests import (
    PredictRequest,
    RankRequest,
    RequestError,
    TuneRequest,
    shard_key,
)
from repro.engine.results import (
    CacheLedger,
    PlanResult,
    PredictResult,
    RankResult,
    RecoveryLedger,
    TuneResult,
    VariantTimingResult,
)

__all__ = [
    "Engine",
    "default_engine",
    "set_default_engine",
    "RequestError",
    "PredictRequest",
    "TuneRequest",
    "RankRequest",
    "shard_key",
    "PlanResult",
    "CacheLedger",
    "RecoveryLedger",
    "PredictResult",
    "TuneResult",
    "VariantTimingResult",
    "RankResult",
]

"""Exact set-associative cache-hierarchy simulation.

This package is the reproduction's measurement substrate: it replays
the true line-granular access stream of a compiled kernel through an
LRU hierarchy (write-back/write-allocate; optional exclusive victim L3
for AMD Rome) and reports per-boundary line traffic.  The analytic ECM
model in :mod:`repro.ecm` derives the same quantities from layer
conditions *without* running anything — comparing the two is how the
reproduction validates the paper's "no need to run the code" claim.
"""

from repro.cachesim.lru import SetAssocCache
from repro.cachesim.fastlru import VectorCache
from repro.cachesim.hierarchy import CacheHierarchy, TrafficReport
from repro.cachesim.stream import (
    SweepPrefix,
    canonical_sweep_plan,
    sweep_stream,
    stream_stats,
)
from repro.cachesim.dispatch import (
    PREDICTORS,
    LcAnalysis,
    PredictorError,
    analyze_lc,
    lc_traffic_report,
    predictor_counters,
)
from repro.cachesim.memo import (
    TrafficCache,
    default_traffic_cache,
    resolve_traffic_cache,
    set_default_traffic_cache,
    stream_key,
    sweep_key,
)
from repro.cachesim.driver import (
    measure_sweep,
    measure_stream,
    prefix_stats,
)

__all__ = [
    "SetAssocCache",
    "VectorCache",
    "CacheHierarchy",
    "TrafficReport",
    "TrafficCache",
    "PREDICTORS",
    "LcAnalysis",
    "PredictorError",
    "SweepPrefix",
    "analyze_lc",
    "canonical_sweep_plan",
    "lc_traffic_report",
    "predictor_counters",
    "default_traffic_cache",
    "set_default_traffic_cache",
    "resolve_traffic_cache",
    "sweep_key",
    "stream_key",
    "sweep_stream",
    "stream_stats",
    "measure_sweep",
    "measure_stream",
    "prefix_stats",
]

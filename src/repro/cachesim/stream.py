"""Line-granular access streams for blocked stencil sweeps.

The stream generator walks the *same* iteration space as the generated
kernel (block loops in plan order, full unit-stride rows inside) and
yields the cache-line accesses in execution order, interleaved at
x-chunk granularity.  It is intentionally independent of the analytic
layer-condition machinery in :mod:`repro.ecm`: addresses come straight
from the grid layouts.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

import numpy as np

from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.stencil.spec import StencilSpec


def _block_ranges(extent: int, block: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + block, extent)) for lo in range(0, extent, block)]


def sweep_stream(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    z_range: tuple[int, int] | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(line_numbers, is_write)`` batches for one sweep.

    Each batch covers one grid row (fixed outer indices, full x range of
    the current block).  Within a row, accesses are interleaved per
    64-byte x-chunk: all distinct read lines of the chunk, then the
    store line — the order an in-order traversal of the generated loop
    body produces at line granularity.

    ``z_range`` optionally restricts the outermost axis (used by the
    wavefront/temporal driver to stream skewed slabs).
    """
    dim = spec.dim
    shape = grids.interior_shape
    plan = plan.clipped(shape)
    halo = grids[spec.output].halo
    line_bytes = 64
    dtype = spec.dtype_bytes

    read_offsets = [
        (g, off) for g in spec.reads for off in sorted(spec.offsets[g])
    ]
    out_grid = grids[spec.output]
    out_layout = out_grid.layout

    order = plan.order()
    ranges_per_axis = [_block_ranges(shape[a], plan.block[a]) for a in range(dim)]
    if z_range is not None:
        lo, hi = z_range
        ranges_per_axis[0] = [
            (max(r0, lo), min(r1, hi))
            for r0, r1 in ranges_per_axis[0]
            if r1 > lo and r0 < hi
        ]

    # Iterate blocks in the plan's loop order.
    ordered_ranges = [ranges_per_axis[a] for a in order]
    for combo in product(*ordered_ranges):
        bounds = [None] * dim
        for axis, rng in zip(order, combo):
            bounds[axis] = rng
        x0, x1 = bounds[dim - 1]
        if x1 <= x0:
            continue
        inner_extents = [range(b[0], b[1]) for b in bounds[:-1]]
        for outer in product(*inner_extents):
            yield _row_batch(
                outer, x0, x1, halo, dtype, line_bytes,
                read_offsets, grids, out_layout, spec,
            )


def _row_batch(
    outer: tuple[int, ...],
    x0: int,
    x1: int,
    halo: int,
    dtype: int,
    line_bytes: int,
    read_offsets,
    grids: GridSet,
    out_layout,
    spec: StencilSpec,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the interleaved line stream of one row."""
    n = x1 - x0
    first_lines = []
    for g, off in read_offsets:
        layout = grids[g].layout
        idx = tuple(o + halo + d for o, d in zip(off[:-1], outer)) + (
            off[-1] + halo + x0,
        )
        addr = layout.element_addr(idx)
        first_lines.append(addr // line_bytes)
    out_idx = tuple(halo + d for d in outer) + (halo + x0,)
    out_addr = out_layout.element_addr(out_idx)
    out_first = out_addr // line_bytes

    # Chunk count: number of distinct lines the store stream touches.
    last_out = (out_addr + (n - 1) * dtype) // line_bytes
    n_chunks = int(last_out - out_first + 1)

    uniq = sorted(set(first_lines))
    cols = np.array(uniq + [out_first], dtype=np.int64)
    lines = (cols[None, :] + np.arange(n_chunks, dtype=np.int64)[:, None]).ravel()
    writes = np.zeros((n_chunks, len(cols)), dtype=bool)
    writes[:, -1] = True
    return lines, writes.ravel()


def stream_stats(
    spec: StencilSpec, grids: GridSet, plan: KernelPlan
) -> dict[str, int]:
    """Count batches/accesses of a sweep without touching a cache."""
    batches = 0
    accesses = 0
    for lines, _ in sweep_stream(spec, grids, plan):
        batches += 1
        accesses += len(lines)
    return {"batches": batches, "accesses": accesses}

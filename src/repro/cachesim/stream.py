"""Line-granular access streams for blocked stencil sweeps.

The stream generator walks the *same* iteration space as the generated
kernel (block loops in plan order, full unit-stride rows inside) and
yields the cache-line accesses in execution order, interleaved at
x-chunk granularity.  It is intentionally independent of the analytic
layer-condition machinery in :mod:`repro.ecm`: addresses come straight
from the grid layouts.

Two batching granularities are offered: ``batch="row"`` yields one
small batch per grid row (the historical shape, what the scalar engine
consumes), ``batch="block"`` concatenates all rows of one spatial block
into a single mega-batch — the exact same accesses in the exact same
order, but large enough for the vectorized replay engine to amortise
per-batch overheads.
"""

from __future__ import annotations

from dataclasses import replace
from itertools import product
from typing import Iterator

import numpy as np

from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.stencil.spec import StencilSpec


def canonical_sweep_plan(
    interior_shape: tuple[int, ...], plan: KernelPlan
) -> KernelPlan:
    """Collapse a plan to the coarsest plan with the *same* access stream.

    The sweep stream is fully determined by the execution order of grid
    rows.  Rows inside a block run lexicographically, and when the only
    split outer axis is the outermost one the block loop visits its
    intervals in ascending order regardless of ``loop_order`` — so the
    concatenated row order is exactly the unblocked lexicographic sweep.
    Every such variant (all full-x 2D plans; 3D plans with full y) is
    therefore stream-identical to the unblocked plan: canonicalizing
    before memoization and replay lets tuner sweeps share one replay
    across the whole equivalence class, bit-identically.
    """
    plan = plan.clipped(interior_shape)
    dim = plan.dim
    if plan.block[-1] != interior_shape[-1]:
        return plan
    if any(
        plan.block[a] < interior_shape[a] for a in range(1, dim - 1)
    ):
        return plan
    if plan.block == tuple(interior_shape) and plan.loop_order is None:
        return plan
    return replace(
        plan, block=tuple(interior_shape), loop_order=None
    )


def _block_ranges(extent: int, block: int) -> list[tuple[int, int]]:
    return [(lo, min(lo + block, extent)) for lo in range(0, extent, block)]


def _sweep_blocks(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    z_range: tuple[int, int] | None,
) -> Iterator[list[tuple[int, int]]]:
    """Yield per-axis bounds of every spatial block, in plan order."""
    dim = spec.dim
    shape = grids.interior_shape
    plan = plan.clipped(shape)
    order = plan.order()
    ranges_per_axis = [
        _block_ranges(shape[a], plan.block[a]) for a in range(dim)
    ]
    if z_range is not None:
        lo, hi = z_range
        ranges_per_axis[0] = [
            (max(r0, lo), min(r1, hi))
            for r0, r1 in ranges_per_axis[0]
            if r1 > lo and r0 < hi
        ]
    ordered_ranges = [ranges_per_axis[a] for a in order]
    for combo in product(*ordered_ranges):
        bounds: list[tuple[int, int]] = [None] * dim  # type: ignore[list-item]
        for axis, rng in zip(order, combo):
            bounds[axis] = rng
        if bounds[dim - 1][1] <= bounds[dim - 1][0]:
            continue
        yield bounds


def sweep_stream(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    z_range: tuple[int, int] | None = None,
    batch: str = "row",
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(line_numbers, is_write)`` batches for one sweep.

    With ``batch="row"`` each batch covers one grid row (fixed outer
    indices, full x range of the current block).  Within a row, accesses
    are interleaved per 64-byte x-chunk: all distinct read lines of the
    chunk, then the store line — the order an in-order traversal of the
    generated loop body produces at line granularity.  With
    ``batch="block"`` the row batches of each spatial block are emitted
    as one concatenated mega-batch (identical accesses and order).

    ``z_range`` optionally restricts the outermost axis (used by the
    wavefront/temporal driver to stream skewed slabs).
    """
    if batch not in ("row", "block"):
        raise ValueError(f"unknown batch mode {batch!r}; use 'row' or 'block'")
    dim = spec.dim
    halo = grids[spec.output].halo
    line_bytes = 64
    dtype = spec.dtype_bytes

    read_offsets = [
        (g, off) for g in spec.reads for off in sorted(spec.offsets[g])
    ]
    out_layout = grids[spec.output].layout

    for bounds in _sweep_blocks(spec, grids, plan, z_range):
        if batch == "block":
            yield _block_batch(
                bounds, halo, dtype, line_bytes, read_offsets, grids,
                out_layout,
            )
            continue
        x0, x1 = bounds[dim - 1]
        inner_extents = [range(b[0], b[1]) for b in bounds[:-1]]
        for outer in product(*inner_extents):
            yield _row_batch(
                outer, x0, x1, halo, dtype, line_bytes,
                read_offsets, grids, out_layout, spec,
            )


def _row_batch(
    outer: tuple[int, ...],
    x0: int,
    x1: int,
    halo: int,
    dtype: int,
    line_bytes: int,
    read_offsets,
    grids: GridSet,
    out_layout,
    spec: StencilSpec,
) -> tuple[np.ndarray, np.ndarray]:
    """Build the interleaved line stream of one row."""
    n = x1 - x0
    first_lines = []
    for g, off in read_offsets:
        layout = grids[g].layout
        idx = tuple(o + halo + d for o, d in zip(off[:-1], outer)) + (
            off[-1] + halo + x0,
        )
        addr = layout.element_addr(idx)
        first_lines.append(addr // line_bytes)
    out_idx = tuple(halo + d for d in outer) + (halo + x0,)
    out_addr = out_layout.element_addr(out_idx)
    out_first = out_addr // line_bytes

    # Chunk count: number of distinct lines the store stream touches.
    last_out = (out_addr + (n - 1) * dtype) // line_bytes
    n_chunks = int(last_out - out_first + 1)

    uniq = sorted(set(first_lines))
    cols = np.array(uniq + [out_first], dtype=np.int64)
    lines = (cols[None, :] + np.arange(n_chunks, dtype=np.int64)[:, None]).ravel()
    writes = np.zeros((n_chunks, len(cols)), dtype=bool)
    writes[:, -1] = True
    return lines, writes.ravel()


def _block_geometry(
    bounds: list[tuple[int, int]],
    halo: int,
    dtype: int,
    line_bytes: int,
    read_offsets,
    grids: GridSet,
    out_layout,
):
    """Vectorized per-row column/chunk geometry of one spatial block.

    Returns ``(cols_flat, col_start, cc, n_chunks, rows)``:
    ``cols_flat`` concatenates every row's sorted-unique read first
    lines followed by its store first line, ``col_start``/``cc`` index
    and count that ragged layout, and ``n_chunks`` is the per-row chunk
    count.  All derived without materializing any access array.
    """
    dim = len(bounds)
    x0 = bounds[-1][0]

    # Rows: the outer (non-x) index tuples, in the same lexicographic
    # order ``product`` yields them.
    axis_ranges = [
        np.arange(b0, b1, dtype=np.int64) for b0, b1 in bounds[:-1]
    ]
    if axis_ranges:
        mesh = np.meshgrid(*axis_ranges, indexing="ij")
        outer = np.stack([m.ravel() for m in mesh], axis=1)
    else:
        outer = np.zeros((1, 0), dtype=np.int64)
    rows = outer.shape[0]

    # Addresses are affine in the outer indices: one base address per
    # column at the block's x origin, plus a per-grid outer contribution.
    n_cols = len(read_offsets)
    base = np.empty(n_cols, dtype=np.int64)
    weight = np.empty((dim - 1, n_cols), dtype=np.int64)
    for c, (g, off) in enumerate(read_offsets):
        layout = grids[g].layout
        strides = layout.strides
        base[c] = layout.element_addr(
            tuple(o + halo for o in off[:-1]) + (off[-1] + halo + x0,)
        )
        for a in range(dim - 1):
            weight[a, c] = strides[a] * dtype
    out_strides = out_layout.strides
    out_base = out_layout.element_addr(
        (halo,) * (dim - 1) + (halo + x0,)
    )
    out_weight = np.array(
        [out_strides[a] * dtype for a in range(dim - 1)], dtype=np.int64
    )

    addr = base[None, :] + outer @ weight               # rows x n_cols
    first = addr // line_bytes
    out_addr = out_base + outer @ out_weight            # rows
    out_first = out_addr // line_bytes
    n = bounds[-1][1] - x0
    n_chunks = (out_addr + (n - 1) * dtype) // line_bytes - out_first + 1

    # Per-row sorted unique read lines, then the store line (duplicates
    # with the store column are kept, exactly like the row generator).
    first_sorted = np.sort(first, axis=1)
    keep = np.empty(first_sorted.shape, dtype=bool)
    keep[:, :1] = True
    keep[:, 1:] = first_sorted[:, 1:] != first_sorted[:, :-1]
    cols_mat = np.concatenate([first_sorted, out_first[:, None]], axis=1)
    keep_mat = np.concatenate(
        [keep, np.ones((rows, 1), dtype=bool)], axis=1
    )
    cols_flat = cols_mat[keep_mat]
    cc = keep_mat.sum(axis=1)
    col_start = np.concatenate(([0], np.cumsum(cc)[:-1]))
    return cols_flat, col_start, cc, n_chunks, rows


def _block_batch(
    bounds: list[tuple[int, int]],
    halo: int,
    dtype: int,
    line_bytes: int,
    read_offsets,
    grids: GridSet,
    out_layout,
) -> tuple[np.ndarray, np.ndarray]:
    """One mega-batch: the concatenation of a block's row batches."""
    cols_flat, col_start, cc, n_chunks, rows = _block_geometry(
        bounds, halo, dtype, line_bytes, read_offsets, grids, out_layout
    )
    per_row = cc * n_chunks
    total = int(per_row.sum())
    row_id = np.repeat(np.arange(rows), per_row)
    row_begin = np.concatenate(([0], np.cumsum(per_row)[:-1]))
    local = np.arange(total, dtype=np.int64) - row_begin[row_id]
    cc_r = cc[row_id]
    chunk = local // cc_r
    col_idx = local - chunk * cc_r
    lines = cols_flat[col_start[row_id] + col_idx] + chunk
    writes = col_idx == cc_r - 1
    return lines, writes


#: Target accesses per mega-batch of :meth:`SweepPrefix.stream`.  Large
#: enough to amortise the vector engine's per-batch fixed costs, small
#: enough that the engine's sort keys stay within the 16-bit radix-sort
#: range (see :func:`repro.cachesim.fastlru._narrow`).
DEFAULT_PREFIX_OPS = 65_536


class SweepPrefix:
    """Shared access-stream geometry for many block variants.

    Tuner sweeps evaluate dozens of plans against the *same*
    ``(spec, grids)`` pair.  For plans whose innermost block spans the
    full x extent, every variant touches exactly the same per-row
    column/chunk geometry — only the *order* of rows differs.  This
    class runs :func:`_block_geometry` once over the whole grid and
    replays any such variant by gathering row ids in that variant's
    block order, so stream construction is paid once per grid instead
    of once per variant.

    The replay engine is an exact LRU: its traffic counters depend only
    on the access *sequence*, not on how the sequence is cut into
    batches.  That lets :meth:`stream` coalesce rows across block
    boundaries into mega-batches of roughly ``max_ops`` accesses while
    staying bit-identical to the per-row and per-block generators.
    """

    def __init__(self, spec: StencilSpec, grids: GridSet) -> None:
        self.spec = spec
        self.grids = grids
        shape = grids.interior_shape
        halo = grids[spec.output].halo
        read_offsets = [
            (g, off) for g in spec.reads for off in sorted(spec.offsets[g])
        ]
        bounds = [(0, s) for s in shape]
        cols_flat, col_start, cc, n_chunks, rows = _block_geometry(
            bounds, halo, spec.dtype_bytes, 64, read_offsets, grids,
            grids[spec.output].layout,
        )
        self._cols_flat = cols_flat
        self._col_start = col_start.astype(np.int64)
        self._cc = cc.astype(np.int64)
        self._per_row = (cc * n_chunks).astype(np.int64)
        self._outer_shape = tuple(shape[:-1])
        self.rows = rows
        self.accesses = int(self._per_row.sum())

    def supports(self, plan: KernelPlan, z_range: tuple[int, int] | None = None) -> bool:
        """Whether ``plan`` replays through this prefix bit-identically.

        Requires the innermost block to span the full x extent (per-row
        geometry is then block-independent) and no z restriction.
        """
        plan = plan.clipped(self.grids.interior_shape)
        return (
            z_range is None
            and plan.block[-1] == self.grids.interior_shape[-1]
        )

    def _variant_rows(self, plan: KernelPlan) -> np.ndarray:
        """Global row ids of one variant's sweep, in execution order."""
        ids = []
        for bounds in _sweep_blocks(self.spec, self.grids, plan, None):
            axis_ranges = [
                np.arange(b0, b1, dtype=np.int64) for b0, b1 in bounds[:-1]
            ]
            if axis_ranges:
                mesh = np.meshgrid(*axis_ranges, indexing="ij")
                ids.append(
                    np.ravel_multi_index(
                        [m.ravel() for m in mesh], self._outer_shape
                    )
                )
            else:
                ids.append(np.zeros(1, dtype=np.int64))
        return np.concatenate(ids) if ids else np.zeros(0, dtype=np.int64)

    def _expand(self, rids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Materialize the accesses of a run of rows (same arithmetic as
        :func:`_block_batch`, gathered through the precomputed geometry)."""
        per_row = self._per_row[rids]
        total = int(per_row.sum())
        row_pos = np.repeat(np.arange(len(rids)), per_row)
        row_begin = np.concatenate(([0], np.cumsum(per_row)[:-1]))
        local = np.arange(total, dtype=np.int64) - row_begin[row_pos]
        cc_r = self._cc[rids][row_pos]
        chunk = local // cc_r
        col_idx = local - chunk * cc_r
        lines = self._cols_flat[
            self._col_start[rids][row_pos] + col_idx
        ] + chunk
        writes = col_idx == cc_r - 1
        return lines, writes

    def stream(
        self, plan: KernelPlan, max_ops: int = DEFAULT_PREFIX_OPS
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield mega-batches of one variant's sweep.

        The access sequence is exactly ``sweep_stream``'s; only the
        batch boundaries differ (cut at row granularity, roughly every
        ``max_ops`` accesses).
        """
        if not self.supports(plan):
            raise ValueError(
                f"plan {plan.describe()} does not replay through this "
                f"prefix (needs full-x innermost block)"
            )
        rids = self._variant_rows(plan)
        cum = np.concatenate(([0], np.cumsum(self._per_row[rids])))
        i, n = 0, len(rids)
        while i < n:
            j = int(np.searchsorted(cum, cum[i] + max_ops, side="right")) - 1
            j = max(j, i + 1)
            yield self._expand(rids[i:j])
            i = j


def stream_stats(
    spec: StencilSpec, grids: GridSet, plan: KernelPlan
) -> dict[str, int]:
    """Count row batches/accesses of a sweep without touching a cache.

    Computed arithmetically from the per-block geometry — no access
    arrays are materialized.
    """
    dim = spec.dim
    halo = grids[spec.output].halo
    line_bytes = 64
    dtype = spec.dtype_bytes
    read_offsets = [
        (g, off) for g in spec.reads for off in sorted(spec.offsets[g])
    ]
    out_layout = grids[spec.output].layout
    batches = 0
    accesses = 0
    for bounds in _sweep_blocks(spec, grids, plan, None):
        _, _, cc, n_chunks, rows = _block_geometry(
            bounds, halo, dtype, line_bytes, read_offsets, grids, out_layout
        )
        batches += rows
        accesses += int((cc * n_chunks).sum())
    return {"batches": batches, "accesses": accesses}

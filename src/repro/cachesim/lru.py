"""A single set-associative, write-back LRU cache."""

from __future__ import annotations

from collections import OrderedDict

from repro.machine.cache import CacheLevel


class SetAssocCache:
    """Set-associative LRU cache over line numbers.

    Lines are identified by their global line number
    (``byte_address // line_bytes``).  Each set is an ``OrderedDict``
    mapping line number to a dirty flag, most recently used last.
    """

    def __init__(self, level: CacheLevel) -> None:
        self.level = level
        self.n_sets = level.n_sets
        self.assoc = level.assoc
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_for(self, line: int) -> OrderedDict[int, bool]:
        return self._sets[line % self.n_sets]

    def lookup(self, line: int) -> bool:
        """Probe for ``line``; update LRU order and hit/miss counters."""
        s = self._set_for(line)
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        """Non-destructive membership test (no LRU or counter update)."""
        return line in self._set_for(line)

    def mark_dirty(self, line: int) -> None:
        """Set the dirty flag of a resident line."""
        s = self._set_for(line)
        if line not in s:
            raise KeyError(f"line {line} not resident")
        s[line] = True
        s.move_to_end(line)

    def insert(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Install ``line``; return ``(victim_line, victim_dirty)`` if one
        was evicted, else ``None``.

        Inserting a resident line refreshes it (dirty flags OR together).
        """
        s = self._set_for(line)
        if line in s:
            s[line] = s[line] or dirty
            s.move_to_end(line)
            return None
        victim = None
        if len(s) >= self.assoc:
            victim = s.popitem(last=False)
        s[line] = dirty
        return victim

    def remove(self, line: int) -> bool | None:
        """Invalidate ``line``; return its dirty flag, or ``None`` if absent."""
        s = self._set_for(line)
        return s.pop(line, None)

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(s) for s in self._sets)

    def lru_snapshot(self) -> list[list[tuple[int, bool]]]:
        """Per-set ``(line, dirty)`` pairs in LRU-to-MRU order."""
        return [list(s.items()) for s in self._sets]

    def flush(self) -> int:
        """Drop all contents; return the number of dirty lines discarded."""
        dirty = 0
        for s in self._sets:
            dirty += sum(1 for d in s.values() if d)
            s.clear()
        return dirty

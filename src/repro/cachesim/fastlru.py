"""Vectorized batch replay of the cache hierarchy (the fast engine).

The scalar engine in :mod:`repro.cachesim.hierarchy` walks one access
at a time through every level.  This module replays the *same* semantics
over whole NumPy batches and produces bit-identical traffic counters.
It exploits two structural facts of the scalar algorithm:

1.  **Level-phase decomposition.**  During one access, each level sees
    at most three primitive operations: a *demand* probe (lookup, and on
    a miss the fill of the same line — nothing else touches the level in
    between, so the pair is atomic), an *install* (an eviction from the
    level above being written back / victim-installed), and — for an
    exclusive victim last level — a *victim demand* (probe that removes
    the line on a hit and never fills).  The hierarchy can therefore be
    replayed level by level: level ``j`` consumes an ordered op stream
    and emits the ordered op stream of level ``j+1``.  Ordering is
    preserved by position arithmetic: an op at position ``p`` emits its
    propagated demand at ``4p`` and its eviction at ``4p+1`` (demand
    fill) or ``4p+2`` (install), which reproduces exactly the scalar
    engine's interleaving of probes, fills and eviction cascades.

2.  **Set independence.**  Ops that map to different sets commute, so
    after a stable sort by set index the stream is processed in
    "rounds" — one op per set per round — with wide NumPy operations
    over an age-matrix LRU representation.

Repeated ops on the same line within a set are additionally folded into
one when at most ``assoc - 1`` other ops on the set intervene (dirty
flags OR together, the fold carries the first position for emissions
and the last for recency).  The fold is exact: evicting the line in
between would require ``assoc - 1`` younger distinct lines plus the
evicting insert — at least ``assoc`` intervening ops — so the line is
guaranteed resident, and at every insert the true LRU victim's age is
unchanged by the fold while every other line's age can only move
forward, leaving ``argmin(age)`` identical.  The fold is skipped at
victim levels, where a hit *removes* the line.
"""

from __future__ import annotations

import numpy as np

from repro.machine.cache import CacheLevel

__all__ = ["VectorCache", "replay_batch"]

#: Op kinds of the per-level streams.
_DEMAND = 0   # lookup; on miss: count the load, fill, propagate deeper
_INSTALL = 1  # eviction from the level above installed into this level
_VDEMAND = 2  # demand probe of an exclusive victim level (hit removes)


def _cat(parts: list, dtype) -> np.ndarray:
    return np.concatenate(parts) if parts else np.empty(0, dtype=dtype)


def _narrow(key: np.ndarray, span: int) -> np.ndarray:
    """Cast a non-negative sort key to uint16 when its range allows.

    ``np.argsort(kind="stable")`` uses radix sort only for <= 16-bit
    integer types; the cast is order-preserving for values below 2**16.
    """
    if span <= 1 << 16:
        return key.astype(np.uint16)
    return key


class VectorCache:
    """Array-backed set-associative LRU level for the vector engine.

    Mirrors the observable state of
    :class:`~repro.cachesim.lru.SetAssocCache`: ``tags[s, w]`` is the
    line resident in way ``w`` of set ``s`` (``-1`` = empty), ``dirty``
    its write-back flag, and ``age`` the position of the line's last
    use.  Positions increase monotonically, so the LRU victim of a full
    set is simply ``argmin(age)``.
    """

    def __init__(self, level: CacheLevel) -> None:
        self.level = level
        self.n_sets = level.n_sets
        self.assoc = level.assoc
        self.tags = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        self.dirty = np.zeros((self.n_sets, self.assoc), dtype=bool)
        self.age = np.zeros((self.n_sets, self.assoc), dtype=np.int64)
        self.hits = 0
        self.misses = 0

    def contains(self, line: int) -> bool:
        """Non-destructive membership test."""
        return bool((self.tags[line % self.n_sets] == line).any())

    def remove(self, line: int) -> bool | None:
        """Invalidate ``line``; return its dirty flag, or ``None``."""
        s = line % self.n_sets
        ways = np.flatnonzero(self.tags[s] == line)
        if ways.size == 0:
            return None
        w = ways[0]
        was_dirty = bool(self.dirty[s, w])
        self.tags[s, w] = -1
        return was_dirty

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return int((self.tags >= 0).sum())

    def flush(self) -> int:
        """Drop all contents; return the number of dirty lines discarded."""
        n_dirty = int((self.dirty & (self.tags >= 0)).sum())
        self.tags[...] = -1
        self.dirty[...] = False
        return n_dirty

    def lru_snapshot(self) -> list[list[tuple[int, bool]]]:
        """Per-set ``(line, dirty)`` pairs in LRU-to-MRU order."""
        snap: list[list[tuple[int, bool]]] = []
        for s in range(self.n_sets):
            occ = np.flatnonzero(self.tags[s] >= 0)
            occ = occ[np.argsort(self.age[s, occ], kind="stable")]
            snap.append(
                [(int(self.tags[s, w]), bool(self.dirty[s, w])) for w in occ]
            )
        return snap


def _replay_level(
    cache: VectorCache,
    lines: np.ndarray,
    kinds: np.ndarray,
    flags: np.ndarray,
    pos: np.ndarray,
    victim_level: bool,
):
    """Replay one level's ordered op stream.

    Returns ``(demand_hits, demand_misses, dem_lines, dem_pos,
    vic_lines, vic_dirty, vic_pos)`` where the ``dem_*`` arrays are the
    demand misses to propagate one level deeper (positions already
    rescaled) and the ``vic_*`` arrays the evicted lines (positions
    rescaled and sub-ordered after their causing op).
    """
    assoc = cache.assoc
    sets = lines % cache.n_sets
    # NumPy's radix sort only kicks in for <= 16-bit keys; every sort
    # key below is narrowed to uint16 whenever its range allows (an
    # order-preserving cast), which is where most of the fixed per-batch
    # cost would otherwise go.
    order = np.argsort(_narrow(sets, cache.n_sets), kind="stable")
    s_set = sets[order]
    s_line = lines[order]
    s_kind = kinds[order]
    s_flag = flags[order]
    s_pos = pos[order]
    n = s_set.shape[0]
    s_emit = s_pos  # position used for emissions (leader occurrence)
    s_agep = s_pos  # position used for recency (last occurrence)

    # Demand probes at this level (folded followers count as hits, so the
    # total is taken before folding and misses are counted at the end).
    n_dem_total = int((s_kind != _INSTALL).sum())

    if not victim_level and n > 1:
        # Adjacent-run collapse (the gap-0 fold): needs no extra sort
        # and shrinks install-heavy deeper-level streams massively.
        new_run = np.empty(n, dtype=bool)
        new_run[0] = True
        new_run[1:] = (s_set[1:] != s_set[:-1]) | (s_line[1:] != s_line[:-1])
        starts = np.flatnonzero(new_run)
        if starts.shape[0] < n:
            run_last = np.empty(starts.shape[0], dtype=np.int64)
            run_last[:-1] = starts[1:] - 1
            run_last[-1] = n - 1
            s_flag = np.logical_or.reduceat(s_flag, starts)
            s_agep = s_pos[run_last]
            s_set = s_set[starts]
            s_line = s_line[starts]
            s_kind = s_kind[starts]
            s_emit = s_pos[starts]
            n = starts.shape[0]

    if not victim_level and n > 1 and assoc > 1:
        # Gap-bounded fold of repeated same-line ops (see module doc).
        # A stable sort by line brings each (set, line)'s occurrences
        # together in time order; their index distance in the set-grouped
        # stream counts the intervening ops on the same set.  Folding
        # the already-collapsed stream is exact by the same argument.
        lo_line = int(s_line.min())
        o2 = np.argsort(
            _narrow(s_line - lo_line, int(s_line.max()) - lo_line + 1),
            kind="stable",
        )
        l2 = s_line[o2]
        brk = np.empty(n, dtype=bool)
        brk[0] = True
        brk[1:] = (l2[1:] != l2[:-1]) | (o2[1:] - o2[:-1] > assoc)
        starts = np.flatnonzero(brk)
        if starts.shape[0] < n:
            seg_last = np.empty(starts.shape[0], dtype=np.int64)
            seg_last[:-1] = starts[1:] - 1
            seg_last[-1] = n - 1
            flag_or = np.logical_or.reduceat(s_flag[o2], starts)
            age_pos = s_agep[o2[seg_last]]
            leader = o2[starts]
            lo = np.argsort(_narrow(leader, n), kind="stable")
            leader = leader[lo]
            s_set = s_set[leader]
            s_line = s_line[leader]
            s_kind = s_kind[leader]
            s_emit = s_emit[leader]
            s_agep = age_pos[lo]
            s_flag = flag_or[lo]
            n = leader.shape[0]

    # Rank of each op within its set group = round it runs in.  The
    # arrays are reordered by round once so each round is a cheap
    # contiguous view.
    grp_start = np.empty(n, dtype=bool)
    grp_start[0] = True
    grp_start[1:] = s_set[1:] != s_set[:-1]
    gs_idx = np.flatnonzero(grp_start)
    grp = np.cumsum(grp_start) - 1
    rank = np.arange(n, dtype=np.int64) - gs_idx[grp]
    rorder = np.argsort(_narrow(rank, n), kind="stable")
    counts = np.bincount(rank)
    bl = [0] + np.cumsum(counts).tolist()

    r_set = s_set[rorder]
    r_line = s_line[rorder]
    r_flag = s_flag[rorder]
    r_emit = s_emit[rorder]
    r_agep = s_agep[rorder]
    r_isdem = s_kind[rorder] != _INSTALL
    all_dem = bool(r_isdem.all())

    tags, dirty, age = cache.tags, cache.dirty, cache.age
    dem_lines_l: list[np.ndarray] = []
    dem_pos_l: list[np.ndarray] = []
    vic_lines_l: list[np.ndarray] = []
    vic_dirty_l: list[np.ndarray] = []
    vic_pos_l: list[np.ndarray] = []
    n_vd_miss = 0

    vic_raw = False
    if not victim_level:
        # Non-victim levels never invalidate, so a level observed full at
        # batch start stays full: no empty-way probing is needed and
        # every miss evicts.
        fullness = bool((tags != -1).all())
        vic_raw = fullness and all_dem
        for b, e in zip(bl[:-1], bl[1:]):
            rs = r_set[b:e]
            rt = r_line[b:e]
            wt = tags[rs]  # all sets in a round are distinct
            match = wt == rt[:, None]
            hit = np.logical_or.reduce(match, axis=1)
            nm = np.count_nonzero(hit)
            if nm == e - b:
                hw = match.argmax(axis=1)
                dirty[rs, hw] |= r_flag[b:e]
                age[rs, hw] = r_agep[b:e]
                continue
            miss = ~hit
            if nm:
                hw = match.argmax(axis=1)
                hs = rs[hit]
                hwh = hw[hit]
                dirty[hs, hwh] |= r_flag[b:e][hit]
                age[hs, hwh] = r_agep[b:e][hit]
            ms = rs[miss]
            ml = rt[miss]
            me = r_emit[b:e][miss]
            if all_dem:
                dem_lines_l.append(ml)
                dem_pos_l.append(me)  # scaled by 4 once, after the loop
            else:
                dm = miss & r_isdem[b:e]
                dem_lines_l.append(rt[dm])
                dem_pos_l.append(r_emit[b:e][dm])
            if fullness:
                way = age[ms].argmin(axis=1)
                vic_lines_l.append(tags[ms, way])
                vic_dirty_l.append(dirty[ms, way])
                if all_dem:
                    vic_pos_l.append(me)  # deferred: *4 + 1 after the loop
                else:
                    vic_pos_l.append(
                        me * 4 + np.where(r_isdem[b:e][miss], 1, 2)
                    )
            else:
                empty = wt[miss] == -1
                has_empty = np.logical_or.reduce(empty, axis=1)
                if np.count_nonzero(has_empty) == has_empty.shape[0]:
                    way = empty.argmax(axis=1)
                else:
                    way = np.where(
                        has_empty, empty.argmax(axis=1),
                        age[ms].argmin(axis=1),
                    )
                    full = ~has_empty
                    fs = ms[full]
                    fw = way[full]
                    vic_lines_l.append(tags[fs, fw])
                    vic_dirty_l.append(dirty[fs, fw])
                    if all_dem:
                        vic_pos_l.append(me[full] * 4 + 1)
                    else:
                        sub = np.where(r_isdem[b:e][miss][full], 1, 2)
                        vic_pos_l.append(me[full] * 4 + sub)
            tags[ms, way] = ml
            dirty[ms, way] = r_flag[b:e][miss]
            age[ms, way] = r_agep[b:e][miss]
        n_miss = sum(a.shape[0] for a in dem_lines_l)
        n_hits = n_dem_total - n_miss
    else:
        for b, e in zip(bl[:-1], bl[1:]):
            rs = r_set[b:e]
            rt = r_line[b:e]
            wt = tags[rs]
            match = wt == rt[:, None]
            hit = match.any(axis=1)
            is_vd = r_isdem[b:e]
            vd_hit = hit & is_vd
            if vd_hit.any():
                tags[rs[vd_hit], match[vd_hit].argmax(axis=1)] = -1
            ins_hit = hit & ~is_vd
            if ins_hit.any():
                hs = rs[ins_hit]
                hw = match[ins_hit].argmax(axis=1)
                dirty[hs, hw] |= r_flag[b:e][ins_hit]
                age[hs, hw] = r_agep[b:e][ins_hit]
            n_vd_miss += int((is_vd & ~hit).sum())
            ins = ~hit & ~is_vd
            if ins.any():
                ms = rs[ins]
                empty = wt[ins] == -1
                has_empty = empty.any(axis=1)
                way = np.where(
                    has_empty, empty.argmax(axis=1), age[ms].argmin(axis=1)
                )
                full = ~has_empty
                if full.any():
                    fs = ms[full]
                    fw = way[full]
                    vic_lines_l.append(tags[fs, fw])
                    vic_dirty_l.append(dirty[fs, fw])
                    # A victim level never demand-fills: every insert is
                    # an install, so the eviction sub-position is 2.
                    vic_pos_l.append(r_emit[b:e][ins][full] * 4 + 2)
                tags[ms, way] = rt[ins]
                dirty[ms, way] = r_flag[b:e][ins]
                age[ms, way] = r_agep[b:e][ins]
        n_miss = n_vd_miss
        n_hits = n_dem_total - n_vd_miss

    dem_pos = _cat(dem_pos_l, np.int64) * 4
    vic_pos = _cat(vic_pos_l, np.int64)
    if vic_raw:
        vic_pos = vic_pos * 4 + 1
    return (
        n_hits,
        n_miss,
        _cat(dem_lines_l, np.int64),
        dem_pos,
        _cat(vic_lines_l, np.int64),
        _cat(vic_dirty_l, bool),
        vic_pos,
    )


def replay_batch(hier, lines: np.ndarray, writes: np.ndarray) -> None:
    """Replay one ``(lines, writes)`` batch through a vector hierarchy.

    Updates the hierarchy's traffic counters and per-level hit/miss
    counters exactly like the scalar ``access_many`` loop would.
    """
    n = int(len(lines))
    if n == 0:
        return
    levels = hier.levels
    n_levels = len(levels)
    last = n_levels - 1
    victim_last = hier._victim_last

    lines = np.ascontiguousarray(lines, dtype=np.int64)
    flags = np.ascontiguousarray(writes, dtype=bool)
    hier.accesses += n
    base = hier._clock
    hier._clock = base + n
    pos = np.arange(base, base + n, dtype=np.int64)
    kinds = np.zeros(n, dtype=np.int8)  # phase 0: all demand ops

    for j in range(n_levels):
        victim_level = victim_last and j == last
        h, m, dem_lines, dem_pos, vic_lines, vic_dirty, vic_pos = (
            _replay_level(levels[j], lines, kinds, flags, pos, victim_level)
        )
        levels[j].hits += h
        levels[j].misses += m
        hier.loads[j] += m

        if j == last:
            # Evictions from the deepest level go to memory if dirty.
            hier.writebacks[last] += int(vic_dirty.sum())
            break
        if victim_last and j + 1 == last:
            # Every eviction is installed into the victim level below.
            hier.writebacks[j] += int(vic_lines.shape[0])
            inst_lines = vic_lines
            inst_flags = vic_dirty
            inst_pos = vic_pos
            dem_kind = _VDEMAND
        else:
            # Only dirty lines travel down the write-back path.
            hier.writebacks[j] += int(vic_dirty.sum())
            inst_lines = vic_lines[vic_dirty]
            inst_flags = np.ones(inst_lines.shape[0], dtype=bool)
            inst_pos = vic_pos[vic_dirty]
            dem_kind = _DEMAND

        if dem_lines.shape[0] + inst_lines.shape[0] == 0:
            break
        m_lines = np.concatenate((dem_lines, inst_lines))
        m_kinds = np.concatenate(
            (
                np.full(dem_lines.shape[0], dem_kind, dtype=np.int8),
                np.full(inst_lines.shape[0], _INSTALL, dtype=np.int8),
            )
        )
        m_flags = np.concatenate(
            (np.zeros(dem_lines.shape[0], dtype=bool), inst_flags)
        )
        m_pos = np.concatenate((dem_pos, inst_pos))
        if m_pos.shape[0] > 1:
            lo = int(m_pos.min())
            key = _narrow(m_pos - lo, int(m_pos.max()) - lo + 1)
        else:
            key = m_pos
        order = np.argsort(key, kind="stable")  # positions are unique
        lines = m_lines[order]
        kinds = m_kinds[order]
        flags = m_flags[order]
        pos = m_pos[order]

"""Drivers: replay kernel streams through a cache hierarchy."""

from __future__ import annotations

from math import prod
from typing import Iterable

import numpy as np

from repro import obs
from repro.cachesim.hierarchy import CacheHierarchy, TrafficReport
from repro.cachesim.memo import TrafficCache, resolve_traffic_cache, sweep_key
from repro.cachesim.stream import sweep_stream
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec


def measure_stream(
    machine: Machine,
    stream: Iterable[tuple[np.ndarray, np.ndarray]],
    lups: int = 0,
    hierarchy: CacheHierarchy | None = None,
    engine: str = "auto",
) -> TrafficReport:
    """Replay an arbitrary ``(lines, writes)`` stream; return traffic."""
    hier = hierarchy or CacheHierarchy(machine, engine=engine)
    for lines, writes in stream:
        hier.access_many(lines, writes)
    return hier.report(lups=lups)


def measure_sweep(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool = True,
    engine: str = "auto",
    traffic_cache: TrafficCache | str | None = "default",
) -> TrafficReport:
    """Simulated cache traffic of one steady-state stencil sweep.

    With ``warmup`` a full sweep is replayed first (without counting) so
    the measured sweep sees the warm state a time-stepping loop would —
    the regime the paper's steady-state measurements live in.

    ``engine`` selects the replay implementation (see
    :class:`~repro.cachesim.hierarchy.CacheHierarchy`).  Results are
    memoized in ``traffic_cache`` (``"default"`` = the process-wide
    cache, ``None`` = off): the replay is deterministic, so identical
    configurations return the cached report without re-simulation.
    """
    plan = plan.clipped(grids.interior_shape)
    with obs.span("cachesim.sweep") as sp:
        cache = resolve_traffic_cache(traffic_cache)
        if cache is not None:
            key = sweep_key(spec, grids, plan, machine, warmup)
            cached = cache.get(key)
            if cached is not None:
                sp.add(memo_hits=1)
                return cached
            sp.add(memo_misses=1)
        with obs.span("cachesim.replay") as rp:
            hier = CacheHierarchy(machine, engine=engine)
            rp.set(engine=hier.engine)
            # The vector engine wants block-sized mega-batches; the scalar
            # loop is fastest on the small per-row batches.
            batch = "block" if hier.engine == "vector" else "row"
            if warmup:
                # Addresses are name-bound, so a warm-up replay leaves
                # exactly the footprint a steady pointer-swapping time loop
                # would: the trailing working set of every involved array.
                for lines, writes in sweep_stream(
                    spec, grids, plan, batch=batch
                ):
                    hier.access_many(lines, writes)
                hier.reset_counters()
            for lines, writes in sweep_stream(spec, grids, plan, batch=batch):
                hier.access_many(lines, writes)
            lups = prod(grids.interior_shape)
            report = hier.report(lups=lups)
        if cache is not None:
            cache.put(key, report)
        return report

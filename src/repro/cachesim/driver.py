"""Drivers: replay kernel streams through a cache hierarchy."""

from __future__ import annotations

from math import prod
from typing import Iterable

import numpy as np

from repro.cachesim.hierarchy import CacheHierarchy, TrafficReport
from repro.cachesim.stream import sweep_stream
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec


def measure_stream(
    machine: Machine,
    stream: Iterable[tuple[np.ndarray, np.ndarray]],
    lups: int = 0,
    hierarchy: CacheHierarchy | None = None,
) -> TrafficReport:
    """Replay an arbitrary ``(lines, writes)`` stream; return traffic."""
    hier = hierarchy or CacheHierarchy(machine)
    for lines, writes in stream:
        hier.access_many(lines, writes)
    return hier.report(lups=lups)


def measure_sweep(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool = True,
) -> TrafficReport:
    """Simulated cache traffic of one steady-state stencil sweep.

    With ``warmup`` a full sweep is replayed first (without counting) so
    the measured sweep sees the warm state a time-stepping loop would —
    the regime the paper's steady-state measurements live in.
    """
    hier = CacheHierarchy(machine)
    if warmup:
        # Addresses are name-bound, so a warm-up replay leaves exactly the
        # footprint a steady pointer-swapping time loop would: the trailing
        # working set of every involved array.
        for lines, writes in sweep_stream(spec, grids, plan):
            hier.access_many(lines, writes)
        hier.reset_counters()
    for lines, writes in sweep_stream(spec, grids, plan):
        hier.access_many(lines, writes)
    lups = prod(grids.interior_shape)
    return hier.report(lups=lups)

"""Drivers: replay kernel streams through a cache hierarchy."""

from __future__ import annotations

import threading
from math import prod
from typing import Iterable

import numpy as np

from collections import OrderedDict

from repro import obs
from repro.cachesim.dispatch import (
    PREDICTORS,
    PredictorError,
    analyze_lc,
    predictor_counters,
    validation_enabled,
)
from repro.cachesim.hierarchy import CacheHierarchy, TrafficReport
from repro.cachesim.memo import (
    TrafficCache,
    _grids_fingerprint,
    _spec_fingerprint,
    content_digest,
    resolve_traffic_cache,
    sweep_key,
)
from repro.cachesim.stream import (
    SweepPrefix,
    canonical_sweep_plan,
    sweep_stream,
)
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec


def measure_stream(
    machine: Machine,
    stream: Iterable[tuple[np.ndarray, np.ndarray]],
    lups: int = 0,
    hierarchy: CacheHierarchy | None = None,
    engine: str = "auto",
) -> TrafficReport:
    """Replay an arbitrary ``(lines, writes)`` stream; return traffic."""
    hier = hierarchy or CacheHierarchy(machine, engine=engine)
    for lines, writes in stream:
        hier.access_many(lines, writes)
    return hier.report(lups=lups)


# --- shared stream prefixes ------------------------------------------------
#
# Tuner sweeps replay many plans against one (spec, grids): the per-variant
# stream construction dominates once the vector engine made the replay
# itself cheap.  A small per-process cache keeps the full-grid SweepPrefix
# of the most recent grids alive across consecutive measure_sweep calls.
# The lock covers every LRU mutation so threaded callers cannot corrupt
# the OrderedDict; the (expensive, deterministic) prefix build runs
# outside it — a racing duplicate build is wasted work, never wrong.

_PREFIX_LOCK = threading.Lock()
_PREFIX_CACHE: OrderedDict[str, SweepPrefix] = OrderedDict()
_PREFIX_CAP = 8
_PREFIX_STATS = {"builds": 0, "reuses": 0}


def prefix_stats() -> dict[str, int]:
    """Build/reuse counts of the shared-prefix cache (this process)."""
    with _PREFIX_LOCK:
        return dict(_PREFIX_STATS)


def _shared_prefix(spec: StencilSpec, grids: GridSet) -> SweepPrefix:
    key = content_digest(
        [_spec_fingerprint(spec), _grids_fingerprint(grids)]
    )
    with _PREFIX_LOCK:
        prefix = _PREFIX_CACHE.get(key)
        if prefix is not None:
            _PREFIX_CACHE.move_to_end(key)
            _PREFIX_STATS["reuses"] += 1
            return prefix
    prefix = SweepPrefix(spec, grids)
    with _PREFIX_LOCK:
        _PREFIX_CACHE[key] = prefix
        _PREFIX_STATS["builds"] += 1
        while len(_PREFIX_CACHE) > _PREFIX_CAP:
            _PREFIX_CACHE.popitem(last=False)
    return prefix


def _replay_sweep(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool,
    engine: str,
) -> TrafficReport:
    """Replay one sweep through the simulator (no memo, no dispatch)."""
    with obs.span("cachesim.replay") as rp:
        hier = CacheHierarchy(machine, engine=engine)
        rp.set(engine=hier.engine)
        prefix = None
        if hier.engine == "vector":
            candidate = _shared_prefix(spec, grids)
            if candidate.supports(plan):
                prefix = candidate
        if prefix is not None:
            rp.set(batch="prefix")
            stream = lambda: prefix.stream(plan)  # noqa: E731
        else:
            # The vector engine wants block-sized mega-batches; the
            # scalar loop is fastest on the small per-row batches.
            batch = "block" if hier.engine == "vector" else "row"
            stream = lambda: sweep_stream(  # noqa: E731
                spec, grids, plan, batch=batch
            )
        if warmup:
            # Addresses are name-bound, so a warm-up replay leaves
            # exactly the footprint a steady pointer-swapping time loop
            # would: the trailing working set of every involved array.
            for lines, writes in stream():
                hier.access_many(lines, writes)
            hier.reset_counters()
        for lines, writes in stream():
            hier.access_many(lines, writes)
        return hier.report(lups=prod(grids.interior_shape))


def measure_sweep(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool = True,
    engine: str = "auto",
    traffic_cache: TrafficCache | str | None = "default",
    predictor: str = "auto",
) -> TrafficReport:
    """Cache traffic of one steady-state stencil sweep.

    With ``warmup`` a full sweep is replayed first (without counting) so
    the measured sweep sees the warm state a time-stepping loop would —
    the regime the paper's steady-state measurements live in.

    ``engine`` selects the replay implementation (see
    :class:`~repro.cachesim.hierarchy.CacheHierarchy`).  Results are
    memoized in ``traffic_cache`` (``"default"`` = the process-wide
    cache, ``None`` = off): the replay is deterministic, so identical
    configurations return the cached report without re-simulation.

    ``predictor`` selects how the report is produced: ``"simulate"``
    always replays, ``"lc"`` demands the analytic layer-condition fast
    path (raising :class:`~repro.cachesim.dispatch.PredictorError` when
    the analysis cannot certify exactness for this configuration), and
    ``"auto"`` (default) serves analytically whenever the analysis is
    provably exact and falls back to the replay otherwise.  LC-served
    reports are bit-identical to the simulator's, so the predictor
    never enters the memo key.  Set ``REPRO_LC_VALIDATE=1`` to
    cross-check every LC answer against the replay.
    """
    if predictor not in PREDICTORS:
        raise ValueError(
            f"unknown predictor {predictor!r}; choose from {PREDICTORS}"
        )
    # Collapse the plan to its stream-equivalence class representative:
    # every variant in the class has the identical access stream, so
    # the memo entry, the replay and the LC analysis are all shared.
    plan = canonical_sweep_plan(grids.interior_shape, plan)
    counters = predictor_counters()
    with obs.span("cachesim.sweep") as sp:
        cache = resolve_traffic_cache(traffic_cache)
        if cache is not None:
            key = sweep_key(spec, grids, plan, machine, warmup)
            cached = cache.get(key)
            if cached is not None:
                sp.add(memo_hits=1)
                sp.set(served="memo")
                return cached
            sp.add(memo_misses=1)
        if predictor in ("auto", "lc"):
            analysis = analyze_lc(spec, grids, plan, machine, warmup=warmup)
            if analysis.exact:
                report = analysis.report
                if validation_enabled():
                    simulated = _replay_sweep(
                        spec, grids, plan, machine, warmup, engine
                    )
                    if (
                        report.loads != simulated.loads
                        or report.writebacks != simulated.writebacks
                        or report.accesses != simulated.accesses
                    ):
                        counters.incr("lc_validation_mismatch")
                        report = simulated
                if report is analysis.report:
                    counters.incr("lc_served")
                    sp.set(served="lc")
                else:
                    counters.incr("sim_served")
                    sp.set(served="simulate")
                if cache is not None:
                    cache.put(key, report)
                return report
            if predictor == "lc":
                raise PredictorError(
                    f"layer-condition predictor declined for "
                    f"{spec.name}/{plan.describe()}: {analysis.reason}"
                )
        counters.incr("sim_served")
        sp.set(served="simulate")
        report = _replay_sweep(spec, grids, plan, machine, warmup, engine)
        if cache is not None:
            cache.put(key, report)
        return report

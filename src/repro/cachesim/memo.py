"""Content-addressed memoization of simulated traffic reports.

Replaying a sweep through the exact cache simulator is deterministic:
the resulting :class:`~repro.cachesim.hierarchy.TrafficReport` is a
pure function of the stencil's access geometry, the grid placement,
the (clipped) kernel plan and the machine's cache geometry.  Tuners
re-evaluate identical configurations constantly — the exhaustive tuner
re-visits plans across seeds, the Offsite ranking re-measures the same
variant on fresh grids — so traffic reports are memoized behind a
content-addressed key.

The cache is in-memory by default and optionally persistent: pass a
directory (one JSON file per key) or set ``REPRO_TRAFFIC_CACHE_DIR``
to make the default cache disk-backed, e.g. under ``~/.cache/repro``.
Noise is applied by the perf layer *after* lookup, so memoization never
changes simulated measurements.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.cachesim.hierarchy import TrafficReport
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec
from repro.store.stack import TierStack
from repro.store.tier import DiskJsonTier, LruTier

__all__ = [
    "TrafficCache",
    "default_traffic_cache",
    "set_default_traffic_cache",
    "resolve_traffic_cache",
    "sweep_key",
    "stream_key",
    "report_to_dict",
    "report_from_dict",
    "content_digest",
]

#: Environment variable that makes the default cache disk-backed.
CACHE_DIR_ENV = "REPRO_TRAFFIC_CACHE_DIR"


def _report_to_dict(report: TrafficReport) -> dict:
    return {
        "level_names": list(report.level_names),
        "line_bytes": report.line_bytes,
        "loads": list(report.loads),
        "writebacks": list(report.writebacks),
        "accesses": report.accesses,
        "lups": report.lups,
    }


def _report_from_dict(rec: dict) -> TrafficReport:
    return TrafficReport(
        level_names=tuple(rec["level_names"]),
        line_bytes=int(rec["line_bytes"]),
        loads=[int(v) for v in rec["loads"]],
        writebacks=[int(v) for v in rec["writebacks"]],
        accesses=int(rec["accesses"]),
        lups=int(rec["lups"]),
    )


# Public names for the record serializers: the tuner checkpoint layer
# persists Measurement objects and reuses exactly this wire form.
report_to_dict = _report_to_dict
report_from_dict = _report_from_dict


#: Tier names the traffic memo reports itself under in the unified
#: store ledger (``/metrics`` ``tiers`` section).
MEMORY_TIER = "traffic-memory"
DISK_TIER = "traffic-disk"


class TrafficCache:
    """Keyed store of traffic reports (in-memory, optionally on disk).

    Internally a :class:`~repro.store.stack.TierStack` of an unbounded
    :class:`~repro.store.tier.LruTier` (memory) over an optional
    :class:`~repro.store.tier.DiskJsonTier` (one crash-safe JSON file
    per key, quarantine-on-corrupt) — disk hits are promoted into
    memory, and each tier keeps its own hit/miss ledger so ``/metrics``
    can tell warm-disk serving apart from warm-memory serving.

    ``get`` returns a *fresh* :class:`TrafficReport` copy on every hit,
    so callers may mutate the result (e.g. stamp ``lups``) without
    corrupting the cache.  ``hits``/``misses`` count overall lookups
    (hit in *any* tier vs. missed everywhere), which is what the tuners
    surface as their cost accounting.

    Thread-safe: one lock covers the lookup/promote/count sequence, so
    threaded in-process callers (the server's degraded-mode thread
    path, thread-executor service pools) can share one instance without
    dropping counts or corrupting the memory dict.
    """

    def __init__(self, disk_dir: str | os.PathLike | None = None) -> None:
        self._lock = threading.Lock()
        self._mem = LruTier(MEMORY_TIER, capacity=None)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._disk = (
            DiskJsonTier(
                DISK_TIER,
                self.disk_dir,
                validator=_report_from_dict,  # validate before trusting
                read_fault="memo.read",
                write_fault="memo.write",
            )
            if self.disk_dir is not None
            else None
        )
        # ``is not None``, not truthiness: tiers define __len__, so an
        # *empty* disk tier is falsy but very much present.
        tiers = [self._mem] + ([self._disk] if self._disk is not None else [])
        self._stack = TierStack(tiers)

    def __len__(self) -> int:
        return len(self._mem)

    # -- ledger views ---------------------------------------------------
    @property
    def hits(self) -> int:
        """Lookups served by any tier (memory or promoted disk)."""
        hits = self._mem.ledger.hits
        if self._disk is not None:
            hits += self._disk.ledger.hits
        return hits

    @property
    def misses(self) -> int:
        """Lookups no tier could serve (the last tier's misses)."""
        last = self._disk if self._disk is not None else self._mem
        return last.ledger.misses

    def tier_counts(self) -> tuple[int, int, int, int]:
        """``(mem_hits, mem_misses, disk_hits, disk_misses)`` totals.

        Memory misses include lookups the disk tier then served; disk
        misses are overall misses.  Cheap enough for the tuners' hot
        per-variant delta accounting.
        """
        mem = self._mem.ledger
        if self._disk is None:
            return mem.hits, mem.misses, 0, 0
        disk = self._disk.ledger
        return mem.hits, mem.misses, disk.hits, disk.misses

    def tier_stats(self) -> dict:
        """Per-tier ledger snapshots in the unified store shape."""
        return self._stack.stats()

    # -- lookups --------------------------------------------------------
    def get(self, key: str) -> TrafficReport | None:
        """Look up a report; return a fresh copy or ``None``.

        A disk hit is promoted into the memory tier (one disk hit, one
        memory miss on the per-tier ledgers; one overall hit).
        """
        with self._lock:
            rec = self._stack.get(key)
        if rec is None:
            return None
        return _report_from_dict(rec)

    def put(self, key: str, report: TrafficReport) -> None:
        """Store a report under ``key`` (memory and, if set, disk).

        The disk write is concurrency-safe: each writer uses its own
        unique temp file and publishes it with an atomic
        :func:`os.replace`, so parallel workers (server pool, ``--workers
        N`` tuners) sharing one cache directory never collide on a temp
        path or expose torn JSON to readers.  Last writer wins, which is
        harmless — all writers store the same deterministic report.
        """
        rec = _report_to_dict(report)
        with self._lock:
            self._stack.put(key, rec)

    def clear(self) -> None:
        """Drop all in-memory entries and reset the counters."""
        with self._lock:
            self._mem.clear()
            self._mem.ledger.reset()
            if self._disk is not None:
                self._disk.ledger.reset()


_default_cache: TrafficCache | None = None


def default_traffic_cache() -> TrafficCache:
    """The process-wide cache (created on first use).

    Disk-backed iff ``REPRO_TRAFFIC_CACHE_DIR`` is set; in-memory only
    otherwise.
    """
    global _default_cache
    if _default_cache is None:
        _default_cache = TrafficCache(disk_dir=os.environ.get(CACHE_DIR_ENV))
    return _default_cache


def set_default_traffic_cache(cache: TrafficCache | None) -> None:
    """Replace the process-wide default cache (``None`` resets it)."""
    global _default_cache
    _default_cache = cache


def resolve_traffic_cache(
    cache: TrafficCache | str | None,
) -> TrafficCache | None:
    """Resolve a ``traffic_cache`` argument.

    ``"default"`` → the process-wide cache, ``None`` → memoization off,
    a :class:`TrafficCache` instance → itself.
    """
    if cache is None:
        return None
    if cache == "default":
        return default_traffic_cache()
    if isinstance(cache, TrafficCache):
        return cache
    raise TypeError(
        f"traffic_cache must be a TrafficCache, 'default' or None, "
        f"got {cache!r}"
    )


def _digest(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: Public name for the content-addressing digest (checkpoint keys reuse it).
content_digest = _digest


def _spec_fingerprint(spec: StencilSpec) -> dict:
    return {
        "name": spec.name,
        "output": spec.output,
        "dtype_bytes": spec.dtype_bytes,
        "offsets": {
            g: sorted(offs) for g, offs in spec.offsets.items()
        },
    }


def _grids_fingerprint(grids: GridSet) -> list:
    return [
        [
            g.name,
            list(g.interior_shape),
            g.halo,
            g.dtype_bytes,
            g.base_addr,
            list(g.layout.shape),
        ]
        for g in grids
    ]


def _machine_fingerprint(machine: Machine) -> list:
    return [
        [
            c.name,
            c.size_bytes,
            c.line_bytes,
            c.assoc,
            c.bytes_per_cycle,
            c.write_policy.value,
            c.victim,
        ]
        for c in machine.caches
    ]


def sweep_key(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool,
) -> str:
    """Content key of one ``measure_sweep`` configuration.

    Only inputs the access stream and the replay depend on enter the
    key: stencil geometry, grid placement, the clipped plan's block and
    loop order, cache geometry and the warm-up mode.
    """
    plan = plan.clipped(grids.interior_shape)
    payload = {
        "kind": "sweep",
        "spec": _spec_fingerprint(spec),
        "grids": _grids_fingerprint(grids),
        "block": list(plan.block),
        "order": list(plan.order()),
        "machine": _machine_fingerprint(machine),
        "warmup": bool(warmup),
    }
    return _digest(payload)


def stream_key(kind: str, payload: object) -> str:
    """Content key for a caller-described stream replay.

    Used by drivers whose access stream is not a plain spatial sweep
    (e.g. Offsite composite kernels): the caller supplies whatever
    JSON-serializable description uniquely determines its stream, plus
    a ``kind`` namespace tag.
    """
    return _digest({"kind": kind, "payload": payload})

"""Content-addressed memoization of simulated traffic reports.

Replaying a sweep through the exact cache simulator is deterministic:
the resulting :class:`~repro.cachesim.hierarchy.TrafficReport` is a
pure function of the stencil's access geometry, the grid placement,
the (clipped) kernel plan and the machine's cache geometry.  Tuners
re-evaluate identical configurations constantly — the exhaustive tuner
re-visits plans across seeds, the Offsite ranking re-measures the same
variant on fresh grids — so traffic reports are memoized behind a
content-addressed key.

The cache is in-memory by default and optionally persistent: pass a
directory (one JSON file per key) or set ``REPRO_TRAFFIC_CACHE_DIR``
to make the default cache disk-backed, e.g. under ``~/.cache/repro``.
Noise is applied by the perf layer *after* lookup, so memoization never
changes simulated measurements.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path

from repro import faults
from repro.cachesim.hierarchy import TrafficReport
from repro.codegen.plan import KernelPlan
from repro.grid.grid import GridSet
from repro.machine.machine import Machine
from repro.stencil.spec import StencilSpec
from repro.util import crashsafe

__all__ = [
    "TrafficCache",
    "default_traffic_cache",
    "set_default_traffic_cache",
    "resolve_traffic_cache",
    "sweep_key",
    "stream_key",
    "report_to_dict",
    "report_from_dict",
    "content_digest",
]

#: Environment variable that makes the default cache disk-backed.
CACHE_DIR_ENV = "REPRO_TRAFFIC_CACHE_DIR"


def _report_to_dict(report: TrafficReport) -> dict:
    return {
        "level_names": list(report.level_names),
        "line_bytes": report.line_bytes,
        "loads": list(report.loads),
        "writebacks": list(report.writebacks),
        "accesses": report.accesses,
        "lups": report.lups,
    }


def _report_from_dict(rec: dict) -> TrafficReport:
    return TrafficReport(
        level_names=tuple(rec["level_names"]),
        line_bytes=int(rec["line_bytes"]),
        loads=[int(v) for v in rec["loads"]],
        writebacks=[int(v) for v in rec["writebacks"]],
        accesses=int(rec["accesses"]),
        lups=int(rec["lups"]),
    )


# Public names for the record serializers: the tuner checkpoint layer
# persists Measurement objects and reuses exactly this wire form.
report_to_dict = _report_to_dict
report_from_dict = _report_from_dict


class TrafficCache:
    """Keyed store of traffic reports (in-memory, optionally on disk).

    ``get`` returns a *fresh* :class:`TrafficReport` copy on every hit,
    so callers may mutate the result (e.g. stamp ``lups``) without
    corrupting the cache.  ``hits``/``misses`` count lookups, which is
    what the tuners surface as their cost accounting.
    """

    def __init__(self, disk_dir: str | os.PathLike | None = None) -> None:
        self._mem: dict[str, dict] = {}
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._tmp_counter = itertools.count()

    def __len__(self) -> int:
        return len(self._mem)

    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.json"

    def _disk_load(self, path: Path) -> dict | None:
        """Read and verify one disk entry.

        An unreadable file (including an injected ``memo.read`` fault)
        is a plain miss — the file may be fine and I/O flaky, so it is
        left in place.  A file that *parses wrong* or fails its
        checksum is quarantined: it would stay wrong forever and shadow
        every future write of the key.
        """
        try:
            faults.check("memo.read")
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            # json.loads handles the decode: undecodable bytes parse
            # wrong (UnicodeDecodeError is a ValueError) → quarantine.
            data = json.loads(raw)
            rec = crashsafe.unwrap(data) if crashsafe.is_envelope(data) else data
            _report_from_dict(rec)  # validate before trusting
        except (crashsafe.CorruptPayload, KeyError, TypeError, ValueError):
            crashsafe.quarantine(path)
            return None
        return rec

    def get(self, key: str) -> TrafficReport | None:
        """Look up a report; return a fresh copy or ``None``."""
        rec = self._mem.get(key)
        if rec is None and self.disk_dir is not None:
            rec = self._disk_load(self._disk_path(key))
            if rec is not None:
                self._mem[key] = rec
        if rec is None:
            self.misses += 1
            return None
        self.hits += 1
        return _report_from_dict(rec)

    def put(self, key: str, report: TrafficReport) -> None:
        """Store a report under ``key`` (memory and, if set, disk).

        The disk write is concurrency-safe: each writer uses its own
        unique temp file and publishes it with an atomic
        :func:`os.replace`, so parallel workers (server pool, ``--workers
        N`` tuners) sharing one cache directory never collide on a temp
        path or expose torn JSON to readers.  Last writer wins, which is
        harmless — all writers store the same deterministic report.
        """
        rec = _report_to_dict(report)
        self._mem[key] = rec
        if self.disk_dir is not None:
            tmp = self.disk_dir / (
                f".{key}.{os.getpid()}.{next(self._tmp_counter)}.tmp"
            )
            try:
                faults.check("memo.write")
                tmp.write_text(json.dumps(crashsafe.wrap(rec)))
                os.replace(tmp, self._disk_path(key))
            except OSError:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass

    def clear(self) -> None:
        """Drop all in-memory entries and reset the counters."""
        self._mem.clear()
        self.hits = 0
        self.misses = 0


_default_cache: TrafficCache | None = None


def default_traffic_cache() -> TrafficCache:
    """The process-wide cache (created on first use).

    Disk-backed iff ``REPRO_TRAFFIC_CACHE_DIR`` is set; in-memory only
    otherwise.
    """
    global _default_cache
    if _default_cache is None:
        _default_cache = TrafficCache(disk_dir=os.environ.get(CACHE_DIR_ENV))
    return _default_cache


def set_default_traffic_cache(cache: TrafficCache | None) -> None:
    """Replace the process-wide default cache (``None`` resets it)."""
    global _default_cache
    _default_cache = cache


def resolve_traffic_cache(
    cache: TrafficCache | str | None,
) -> TrafficCache | None:
    """Resolve a ``traffic_cache`` argument.

    ``"default"`` → the process-wide cache, ``None`` → memoization off,
    a :class:`TrafficCache` instance → itself.
    """
    if cache is None:
        return None
    if cache == "default":
        return default_traffic_cache()
    if isinstance(cache, TrafficCache):
        return cache
    raise TypeError(
        f"traffic_cache must be a TrafficCache, 'default' or None, "
        f"got {cache!r}"
    )


def _digest(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: Public name for the content-addressing digest (checkpoint keys reuse it).
content_digest = _digest


def _spec_fingerprint(spec: StencilSpec) -> dict:
    return {
        "name": spec.name,
        "output": spec.output,
        "dtype_bytes": spec.dtype_bytes,
        "offsets": {
            g: sorted(offs) for g, offs in spec.offsets.items()
        },
    }


def _grids_fingerprint(grids: GridSet) -> list:
    return [
        [
            g.name,
            list(g.interior_shape),
            g.halo,
            g.dtype_bytes,
            g.base_addr,
            list(g.layout.shape),
        ]
        for g in grids
    ]


def _machine_fingerprint(machine: Machine) -> list:
    return [
        [
            c.name,
            c.size_bytes,
            c.line_bytes,
            c.assoc,
            c.bytes_per_cycle,
            c.write_policy.value,
            c.victim,
        ]
        for c in machine.caches
    ]


def sweep_key(
    spec: StencilSpec,
    grids: GridSet,
    plan: KernelPlan,
    machine: Machine,
    warmup: bool,
) -> str:
    """Content key of one ``measure_sweep`` configuration.

    Only inputs the access stream and the replay depend on enter the
    key: stencil geometry, grid placement, the clipped plan's block and
    loop order, cache geometry and the warm-up mode.
    """
    plan = plan.clipped(grids.interior_shape)
    payload = {
        "kind": "sweep",
        "spec": _spec_fingerprint(spec),
        "grids": _grids_fingerprint(grids),
        "block": list(plan.block),
        "order": list(plan.order()),
        "machine": _machine_fingerprint(machine),
        "warmup": bool(warmup),
    }
    return _digest(payload)


def stream_key(kind: str, payload: object) -> str:
    """Content key for a caller-described stream replay.

    Used by drivers whose access stream is not a plain spatial sweep
    (e.g. Offsite composite kernels): the caller supplies whatever
    JSON-serializable description uniquely determines its stream, plus
    a ``kind`` namespace tag.
    """
    return _digest({"kind": kind, "payload": payload})
